/**
 * @file
 * The campaign engine: a work-stealing worker fleet that turns the
 * generators, the timed simulator and the online monitor into bulk
 * verification of the paper's Definition-2 contract.
 *
 * Each of N workers owns a deque of cells.  Fresh mutants from the
 * fuzz frontier are pushed locally (LIFO, so a bug's neighborhood is
 * explored while it is hot); a worker drains its own deque first, then
 * steals from a random victim's opposite end (FIFO).  Half the global
 * budget is reserved for the deterministic base stream -- even tickets
 * always draw the next base cell -- so a self-sustaining mutant
 * frontier can never starve corpus coverage.  A global ticket counter
 * bounds the campaign at `cells` cells (or the time budget), counting
 * resumed skips, so kill + `--resume` converges instead of re-running
 * history.
 *
 * Every hardware-blaming verdict is shrunk to a minimal reproducer
 * (see shrink.hh) and deduplicated by verdict kind + shrunk-program
 * hash; the first equivalent failure writes a `.wo` reproducer plus an
 * evidence bundle under the output directory, later ones only count.
 *
 * The per-cell hot path carries no serialization point, so throughput
 * scales near-linearly with --jobs: the journal group-commits from a
 * dedicated writer thread (see journal.hh), resume lookups read an
 * immutable snapshot, each worker owns a materialization cache and a
 * cache-line-aligned statistics block merged at join, and failure
 * provenance is staged per worker instead of behind a global mutex.
 */

#ifndef WO_CAMPAIGN_SCHEDULER_HH
#define WO_CAMPAIGN_SCHEDULER_HH

#include <string>
#include <vector>

#include "campaign/cell.hh"
#include "campaign/fuzzer.hh"
#include "obs/json.hh"
#include "obs/timeline.hh"

namespace wo {

class HttpServer;

/** Campaign configuration (the `wotool campaign` surface). */
struct CampaignCfg
{
    int jobs = 1;                 //!< worker threads
    std::uint64_t cells = 200;    //!< cell budget (includes skips)
    double time_budget_s = 0;     //!< wall-clock cap; 0 = none
    std::string out_dir = "campaign-out";
    std::string journal_path;     //!< default: <out_dir>/campaign.journal.jsonl
    std::vector<std::string> program_files; //!< extra .wo corpus
    std::vector<OrderingPolicy> policies = {
        OrderingPolicy::sc, OrderingPolicy::wo_def1,
        OrderingPolicy::wo_drf0};
    bool shrink = true;           //!< minimize hardware failures
    bool resume = false;          //!< replay the journal, skip done cells
    /**
     * Feed novelty-earned mutants back into the fleet (`--no-frontier`
     * turns it off).  With the frontier off every ticket draws the
     * deterministic base stream, so the executed cell *set* is a pure
     * function of (seed, cells) -- the property the distributed fleet
     * (src/fleet/) shards on, and what makes two runs comparable
     * cell-for-cell in the verdict-parity tests.
     */
    bool frontier = true;
    std::uint64_t seed = 1;       //!< base-stream / mutation seed
    std::uint64_t max_events = 300'000; //!< per-cell livelock budget
    std::uint64_t shrink_max_runs = 500;
    bool inject_reserve_bug = false; //!< seeded-fault campaign
    /**
     * Verify campaign (`--verify`): cells model-check programs with
     * the dual-engine judge (campaign/verify.hh) instead of running
     * timed simulations.  Engine disagreements and broken Definition-2
     * subset claims become shrunk, auto-filed reproducers through the
     * same failure pipeline as monitor findings.
     */
    bool verify = false;
    /** Models verify cells check; empty = every registered model. */
    std::vector<std::string> verify_models;
    /** Per-engine state budget of each verify cell. */
    std::uint64_t max_states = 200'000;
    /**
     * Worker threads inside each verify cell's DPOR exploration
     * (`--explore-jobs`; orthogonal to `jobs`, which fans out across
     * cells).  Bit-identical results at any value keep it out of cell
     * keys and the journal.
     */
    int explore_jobs = 1;
    /** Seeded axiomatic-evaluator fault (cross-check path exercise). */
    bool inject_axiom_bug = false;
    bool progress = false;        //!< live progress line on stderr
    /** Run cells on the legacy heap kernel (A/B cross-checking). */
    bool legacy_queue = false;
    /**
     * Journal group-commit granularity: fwrite+fflush after at most
     * this many buffered records (`--sync-every`; 1 = one flush per
     * cell, the pre-group-commit behavior).  A partial batch is
     * committed within `flush_interval_ms` regardless.
     */
    std::uint64_t sync_every = 64;
    int flush_interval_ms = 5;
    /**
     * Self-profile the fleet (`--profile`): sample every engine thread
     * at profile_hz, write the collapsed stacks and the per-lane
     * Chrome trace under out_dir, and mount the top-N tables in the
     * summary JSON.  Span *aggregates* (the per-lane decomposition in
     * the summary and the live idle%) are always on; --profile adds
     * the sampled stacks and the raw span events.
     */
    bool profile = false;
    /** Self-profiler sampling rate, in samples per second. */
    double profile_hz = 97;
    /** Folded-stack output path; default <out_dir>/campaign.folded.txt. */
    std::string profile_out;
    /**
     * Live control plane (`--serve-port`): an already-started server
     * the caller owns.  runCampaign() mounts /healthz, /metrics,
     * /progress and /events on it for the duration of the run and
     * stops it before returning -- the handlers capture engine state
     * whose lifetime ends with the call.  Binding (and surfacing a
     * port-in-use as a config error) is the caller's job.
     */
    HttpServer *serve = nullptr;
};

/** One deduplicated hardware failure, as the campaign reports it. */
struct FailureRecord
{
    std::string dedup;        //!< "<kind>:<shrunk-program hash>"
    std::string kind;         //!< violation kind name
    std::string first_cell;   //!< key of the first cell that hit it
    std::string repro_path;   //!< minimized .wo reproducer
    std::size_t instructions = 0;      //!< after shrinking
    std::size_t orig_instructions = 0; //!< before shrinking
    std::uint64_t count = 0;  //!< equivalent failures (dedup hits)
    bool reproduced = false;  //!< shrink predicate held on the minimum
};

/** What a campaign did. */
struct CampaignSummary
{
    std::uint64_t ran = 0;     //!< cells actually simulated
    std::uint64_t skipped = 0; //!< journaled cells skipped on resume
    std::uint64_t clean = 0;
    std::uint64_t racy = 0;    //!< software races (contract void)
    std::uint64_t hw = 0;      //!< cells with hardware violations
    std::uint64_t deadlocked = 0;
    std::uint64_t livelocked = 0;
    std::uint64_t errors = 0;  //!< cells whose program failed to build
    std::uint64_t inconclusive = 0; //!< verify cells without a verdict
    std::uint64_t nonsc = 0;   //!< verify cells: hw escaped SC (expected)
    std::uint64_t by_kind[num_violation_kinds] = {};
    std::uint64_t novelty = 0; //!< fuzz-frontier discoveries
    std::vector<FailureRecord> failures; //!< deduplicated
    double wall_s = 0;
    double cells_per_sec = 0;
    double lat_p50_ms = 0; //!< median per-cell wall time (ran cells)
    double lat_p99_ms = 0; //!< tail per-cell wall time

    /**
     * One engine thread's span decomposition: where its wall clock
     * went, by span kind (see obs/timeline.hh).  Lanes are the jobs
     * workers in order plus the journal writer; always populated, so
     * every campaign explains its own scaling.
     */
    struct LaneSummary
    {
        std::string lane;      //!< "worker<i>" or "journal-writer"
        double wall_ms = 0;    //!< markStart..markEnd of the thread loop
        double span_ms[num_span_kinds] = {};
        std::uint64_t span_count[num_span_kinds] = {};
        double span_max_ms[num_span_kinds] = {};
    };
    std::vector<LaneSummary> lanes;

    // Self-profiler results (zero / empty unless cfg.profile).
    std::uint64_t profile_samples = 0;
    std::uint64_t profile_dropped = 0;
    std::string folded_path;  //!< collapsed stacks written here
    std::string trace_path;   //!< per-lane Chrome trace written here
    Json profiler_json;       //!< Profiler::toJson(); null when off

    /** Exit-0 condition: no hardware violation survived shrinking. */
    bool hardwareClean() const { return failures.empty(); }

    /** The final human-readable summary table. */
    std::string table() const;

    /** Machine-readable form (journal footer / tooling). */
    Json toJson() const;
};

/** Run a campaign to completion (or its budget). */
CampaignSummary runCampaign(const CampaignCfg &cfg);

} // namespace wo

#endif // WO_CAMPAIGN_SCHEDULER_HH

/**
 * @file
 * Experiment E4 -- Section 6, first claim: "the hardware of Definition 1
 * is weakly ordered by Definition 2 with respect to DRF0".
 *
 * Checks the Definition-2 contract for the abstract Definition-1 machine
 * over the canned litmus suite and a batch of random lock-disciplined
 * programs: every program that obeys DRF0 must appear sequentially
 * consistent; programs that violate DRF0 are unconstrained (and the table
 * shows several really do exceed SC, i.e. the machine is genuinely weak).
 */

#include <cstdio>

#include "common/table.hh"
#include "core/weak_ordering.hh"
#include "models/wo_def1_model.hh"
#include "program/litmus.hh"
#include "program/workload.hh"

namespace wo {
namespace {

void
run()
{
    std::vector<Program> suite;
    suite.push_back(litmus::fig1StoreBuffer());
    suite.push_back(litmus::messagePassing());
    suite.push_back(litmus::messagePassingSync());
    suite.push_back(litmus::coherenceCoRR());
    suite.push_back(litmus::fig3Scenario());
    suite.push_back(litmus::fig3ScenarioTestAndTas());
    suite.push_back(litmus::lockedCounter(2, 1));
    suite.push_back(litmus::lockedCounter(2, 1, true));
    suite.push_back(litmus::barrier(2));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Drf0WorkloadCfg cfg;
        cfg.seed = seed;
        cfg.procs = 2;
        cfg.sections = 1;
        cfg.ops_per_section = 2;
        cfg.private_ops = 1;
        suite.push_back(randomDrf0Program(cfg));
    }
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        RacyWorkloadCfg cfg;
        cfg.seed = seed;
        suite.push_back(randomRacyProgram(cfg));
    }

    auto result = checkContract(
        [](const Program &p) { return WoDef1Model(p); }, suite);

    std::printf("== E4: Definition-2 contract for the Definition-1 "
                "machine w.r.t. DRF0 ==\n");
    Table t({"program", "obeys DRF0", "appears SC", "contract"});
    for (const auto &e : result.entries) {
        t.addRow({e.program, e.obeys_model ? "yes" : "no",
                  e.appears_sc ? "yes" : "NO",
                  !e.relevant ? "n/a (racy)"
                              : (e.appears_sc ? "ok" : "VIOLATED")});
    }
    t.print();
    std::printf("contract %s over %zu programs\n",
                result.holds ? "HOLDS" : "VIOLATED",
                result.entries.size());
    std::printf("Paper's claim: every DRF0 row must appear SC; racy rows "
                "may legally exceed SC (several do, showing the machine "
                "is genuinely weaker than SC).\n");
    return;
}

} // namespace
} // namespace wo

int
main()
{
    wo::run();
    return 0;
}

/**
 * @file
 * Machine-readable benchmark artifacts.
 *
 * Every bench binary prints human-readable tables and, through this
 * helper, drops a `BENCH_<name>.json` file in the working directory so
 * the experiment trajectory can be tracked across commits without
 * scraping stdout.  The schema is a top-level object with "bench" and
 * whatever structured payload the experiment adds.
 */

#ifndef WO_OBS_ARTIFACT_HH
#define WO_OBS_ARTIFACT_HH

#include <string>

#include "obs/json.hh"

namespace wo {

class Table;

/**
 * A table rendered as a JSON array: one object per row, keyed by the
 * column headers (cell text verbatim).  The bridge from the benches'
 * printed tables to their machine-readable artifacts.
 */
Json tableToJson(const Table &table);

/**
 * Write @p payload as BENCH_<name>.json in the current directory.
 * A "bench" member with @p name is added to the payload.  Returns the
 * path written, or an empty string on I/O failure (a warning is
 * printed; benches should not fail a run over an artifact).
 */
std::string writeBenchArtifact(const std::string &name, Json payload);

/** Write @p text to @p path; true on success. */
bool writeFile(const std::string &path, const std::string &text);

} // namespace wo

#endif // WO_OBS_ARTIFACT_HH

/**
 * @file
 * The executable form of the paper's Lemma 1 (Appendix A), sufficiency
 * direction: an execution of a DRF0 program appears sequentially
 * consistent if there is a happens-before relation under which
 *
 *   (1) every read returns the value of the write to the same location
 *       ordered LAST before it by happens-before (or the location's
 *       initial value when no write precedes it), and
 *   (2) that last write is unique -- for DRF0 programs the conflicting
 *       writes preceding a read are totally ordered by hb, so ambiguity
 *       itself witnesses a data race.
 *
 * checkHbLastWrite() evaluates this on a concrete execution using the hb
 * relation induced by the execution's own completion order.  It is a
 * *sufficient* witness: success proves SC-explainability without the
 * exponential search of the full checker; failure of clause (1) on a
 * race-free execution refutes it; ambiguity (clause 2) reports the race.
 *
 * The execution's append order must be its completion order (true for
 * idealized executions and for the traces the machines in this repository
 * produce).
 */

#ifndef WO_HB_LEMMA1_HH
#define WO_HB_LEMMA1_HH

#include <string>
#include <vector>

#include "execution/execution.hh"
#include "hb/happens_before.hh"

namespace wo {

/** One read whose value disagrees with the hb-last write. */
struct Lemma1Violation
{
    enum class Kind
    {
        wrong_value,    //!< read differs from the unique hb-last write
        ambiguous_last, //!< hb-maximal preceding writes not unique (race)
    };
    Kind kind;
    OpId read;             //!< the offending read
    OpId last_write;       //!< an hb-maximal preceding write (if any)
    Value expected;        //!< value the read should have returned

    /** Render with op detail from @p exec. */
    std::string toString(const Execution &exec) const;
};

/** Result of a Lemma-1 check. */
struct Lemma1Result
{
    bool ok = true;
    std::vector<Lemma1Violation> violations;

    explicit operator bool() const { return ok; }
};

/**
 * Check that every read of @p exec returns the value of the hb-last write
 * to its location (initial value if none).
 *
 * For a read-write synchronization operation the read component is
 * checked against writes strictly hb-before the operation.
 */
Lemma1Result checkHbLastWrite(const Execution &exec,
                              HbRelation::SyncFlavor flavor =
                                  HbRelation::SyncFlavor::drf0);

} // namespace wo

#endif // WO_HB_LEMMA1_HH

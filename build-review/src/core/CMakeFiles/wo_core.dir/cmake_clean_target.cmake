file(REMOVE_RECURSE
  "libwo_core.a"
)

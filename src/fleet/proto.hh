/**
 * @file
 * The fleet wire protocol: versioned JSONL over TCP.
 *
 * A fleet is one long-running coordinator (`wotool serve`), any number
 * of worker processes (`wotool worker --connect host:port`) and any
 * number of submitting clients (`wotool submit`).  Every peer speaks
 * the same framing: one JSON object per '\n'-terminated line, in both
 * directions, reusing the obs/json document model.  The first line on
 * any connection is a `hello` carrying `proto`; a version mismatch is
 * answered with an `error` line and a close, so mixed-build fleets
 * fail loudly instead of mis-parsing each other.
 *
 * Message types (all objects carry `"type"`):
 *
 *   hello      peer -> coord   {proto, role:"worker"|"client", name,
 *                               jobs, hw_threads}
 *   hello_ok   coord -> peer   {proto, name}
 *   error      coord -> peer   {text}; the connection closes after it
 *   submit     client -> coord {spec:{...campaign spec...}}
 *   accepted   coord -> client {campaign}
 *   lease      coord -> worker {campaign, lease, shard, spec,
 *                               indices:[...]}
 *   result     worker -> coord {campaign, lease, idx, cell:{...},
 *                               failure?:{kind, wo_text, insns,
 *                                          orig_insns, reproduced}}
 *   lease_done worker -> coord {campaign, lease}
 *   heartbeat  worker -> coord {}
 *   progress   coord -> client {campaign, cells:{...}, ...}
 *   done       coord -> client {campaign, hardware_clean, summary}
 *   drain      coord -> worker {}; finish in-flight work and exit
 *
 * The campaign *spec* is the portable subset of CampaignCfg: the
 * deterministic base stream (fuzzer.hh) is a pure function of
 * (seed, index), so a lease only needs the spec plus a list of base
 * indices -- workers regenerate the exact cells the coordinator
 * sharded, and a resumed coordinator can re-lease precisely the
 * uncommitted indices recorded in its journal.
 */

#ifndef WO_FLEET_PROTO_HH
#define WO_FLEET_PROTO_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sys/policy.hh"

namespace wo {

/** Bump on any wire-visible change; hello carries it both ways. */
constexpr std::uint64_t fleet_proto_version = 1;

/** A parsed `host:port` endpoint (the `--connect` surface). */
struct HostPort
{
    std::string host;
    std::uint16_t port = 0;
};

/**
 * Parse "host:port".  Strict: a non-empty host, a decimal port in
 * 1..65535, nothing else.  False (with @p out untouched) otherwise.
 */
bool parseHostPort(const std::string &text, HostPort &out);

/**
 * The portable campaign description a client submits and a lease
 * carries.  Deliberately a subset of CampaignCfg: everything here is
 * meaningful on a remote worker (no out-dir, no serve pointer, no
 * journal tuning -- those belong to the coordinator).
 */
struct FleetCampaignSpec
{
    std::uint64_t seed = 1;
    std::uint64_t cells = 200;
    std::vector<OrderingPolicy> policies;
    std::vector<std::string> program_files; //!< paths valid on workers
    std::uint64_t max_events = 300'000;
    bool shrink = true;
    std::uint64_t shrink_max_runs = 500;
    bool inject_reserve_bug = false;

    // Verify campaigns (see campaign/verify.hh): workers model-check
    // program x model cells instead of running timed simulations.
    bool verify = false;
    std::vector<std::string> verify_models; //!< empty = all models
    std::uint64_t max_states = 200'000;     //!< per-engine budget
    int explore_jobs = 1; //!< DPOR threads inside each verify cell
    bool inject_axiom_bug = false;          //!< seeded divergence
};

/** Encode @p spec as the wire/journal-header JSON object. */
Json fleetSpecToJson(const FleetCampaignSpec &spec);

/**
 * Decode a spec object (tolerates absent optional members).  False
 * with @p error set when a present member is malformed (unknown
 * policy name, zero cells, ...).
 */
bool fleetSpecFromJson(const Json &j, FleetCampaignSpec &out,
                       std::string *error);

/** A fresh `{"type": type}` message skeleton. */
Json fleetMsg(const char *type);

/** The message's "type" member ("" when absent/malformed). */
std::string fleetMsgType(const Json &j);

// --- transport -------------------------------------------------------

/**
 * Bind and listen on @p addr:@p port (dotted IPv4; port 0 picks an
 * ephemeral one).  Returns the listening fd, or -1 with @p error set.
 * @p bound_port receives the resolved port.
 */
int fleetListen(const std::string &addr, std::uint16_t port,
                std::uint16_t *bound_port, std::string *error);

/** Connect to @p hp.  Returns the fd, or -1 with @p error set. */
int fleetConnect(const HostPort &hp, std::string *error);

/**
 * One line-framed connection.  Reads are buffered and poll-bounded;
 * writes are whole lines under an internal mutex, so any thread of a
 * peer may send (worker heartbeats race lease results by design).
 * Owns the fd; the destructor closes it.
 */
class LineConn
{
  public:
    explicit LineConn(int fd) : fd_(fd) {}
    ~LineConn() { closeNow(); }

    LineConn(const LineConn &) = delete;
    LineConn &operator=(const LineConn &) = delete;

    enum class Read : std::uint8_t
    {
        line,    //!< @p out holds one complete line (no '\n')
        timeout, //!< nothing arrived within the window
        closed,  //!< EOF or a socket error; no more lines will come
    };

    /** Next line, waiting at most @p timeout_ms (-1 = forever). */
    Read readLine(std::string &out, int timeout_ms);

    /** Send @p msg as one line.  False when the peer is gone. */
    bool writeLine(const Json &msg);

    /**
     * Abruptly shut the socket down both ways (a blocked reader or
     * writer unblocks with `closed`).  Thread-safe; used to sever a
     * dead worker and by the tests' SIGKILL stand-in.
     */
    void shutdownNow();

    /** Close the fd (idempotent). */
    void closeNow();

    bool valid() const { return fd_ >= 0; }

  private:
    int fd_;
    std::string buf_;   //!< bytes received past the last full line
    std::mutex write_mu_;
};

} // namespace wo

#endif // WO_FLEET_PROTO_HH

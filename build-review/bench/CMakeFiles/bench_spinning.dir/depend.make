# Empty dependencies file for bench_spinning.
# This may be replaced when dependencies are built.

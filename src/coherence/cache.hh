/**
 * @file
 * A private write-back cache with the Section-5.3 machinery: the
 * outstanding-access counter, per-line reserve bits, and the stall/NACK
 * treatment of synchronization requests that arrive for reserved lines.
 *
 * Modelling choices (documented in DESIGN.md):
 *  - one memory word per line, and no capacity evictions: the paper's rule
 *    that a reserved line is never flushed is then vacuous, and eviction
 *    traffic is orthogonal to every reproduced claim;
 *  - the counter counts cache misses and is decremented per the paper:
 *    on data for a read, on data for a write sourced from an exclusive
 *    owner (or needing no invalidations), and on the directory's MemAck
 *    for writes to previously shared lines;
 *  - a synchronization operation is treated as a write by the protocol
 *    (exclusive ownership) unless the Section-6 read-only-sync refinement
 *    is enabled, in which case sync reads use the shared-read path;
 *  - at a synchronization commit with a positive counter the line's
 *    reserve bit is set; all reserve bits clear when the counter reads 0;
 *  - a forwarded request for a reserved line is either queued at the owner
 *    until the counter reads zero (the paper's footnote-2 first option) or
 *    NACKed back through the directory for retry (the second option).
 *    The queue option can deadlock on crossed release/acquire pairs unless
 *    new misses are throttled while a line is reserved (the paper's
 *    bounded-miss refinement); the configuration exposes all of it.
 */

#ifndef WO_COHERENCE_CACHE_HH
#define WO_COHERENCE_CACHE_HH

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "coherence/message.hh"
#include "coherence/network.hh"
#include "common/stats.hh"
#include "event/event_queue.hh"

namespace wo {

/** A CPU-side memory request handed to the cache. */
struct CacheReq
{
    std::uint64_t id = 0; //!< CPU-chosen identifier, echoed in callbacks
    Addr addr = invalid_addr;
    bool read = false;    //!< has a read component
    bool write = false;   //!< has a write component
    bool is_sync = false; //!< synchronization operation
    Value wvalue = 0;     //!< value stored when write
};

/** Callbacks from the cache to its processor. */
class CacheClient
{
  public:
    virtual ~CacheClient() = default;

    /**
     * Request @p id committed: a read's value is bound (@p read_value), a
     * write has modified the local copy.
     */
    virtual void onCommit(std::uint64_t id, Value read_value) = 0;

    /** Request @p id is globally performed. */
    virtual void onGloballyPerformed(std::uint64_t id) = 0;
};

/** How incoming synchronization requests meet a reserved line. */
enum class ReserveStallMode
{
    nack, //!< abort through the directory; requester retries later
    queue //!< hold at the owner until the counter reads zero
};

/** Cache configuration. */
struct CacheCfg
{
    Tick hit_latency = 1;      //!< cycles for a local hit to commit
    Tick retry_delay = 25;     //!< backoff before re-sending a NACKed miss
    ReserveStallMode stall_mode = ReserveStallMode::nack;
    bool sync_reads_as_reads = false; //!< Section-6 refinement
    /**
     * The paper's bounded-miss refinement: at most this many new misses
     * may be sent while any line is reserved; further ones are deferred
     * until the counter reads zero.  -1 = unthrottled.  Only 0 (defer all
     * new misses) guarantees deadlock freedom in queue stall mode, since
     * any post-reservation synchronization miss may itself stall at a
     * remote reserved line.
     */
    int reserved_miss_limit = -1;

    /**
     * Seeded hardware fault, test-only: when the counter reads zero the
     * reserve bits are NOT cleared, breaking the Section-5.3 invariant
     * ("all reserve bits are reset when the counter reads zero").  Used
     * to prove the online monitor reports the breach at the violating
     * cycle; never enable outside fault-injection tests.
     */
    bool bug_drop_reserve_clear = false;
};

/** One processor's private cache. */
class Cache : public MsgHandler
{
  public:
    /**
     * @param id       network node id (== processor id)
     * @param dir      directory node id
     * @param procs    processor count (for statistics labels only)
     * @param eq       event queue
     * @param net      interconnect
     * @param client   the processor to notify
     * @param n_locs   number of memory words
     * @param cfg      behaviour knobs
     */
    Cache(NodeId id, NodeId dir, ProcId procs, EventQueue &eq, Network &net,
          CacheClient *client, Addr n_locs, const CacheCfg &cfg);

    /** CPU entry point: start a memory request. */
    void access(const CacheReq &req);

    /**
     * Pre-install a shared copy of @p addr with value @p v (cache warm-up
     * before the run starts; the directory must be warmed to match).
     */
    void warmShared(Addr addr, Value v);

    /** Protocol entry point. */
    void receive(const Message &msg) override;

    /** The Section-5.3 counter: outstanding misses of this processor. */
    int counter() const { return counter_; }

    /** Is @p addr currently reserved here? */
    bool isReserved(Addr addr) const { return reserved_.count(addr) > 0; }

    /** Local line value (for final-state assembly); line must be valid. */
    Value lineValue(Addr addr) const;

    /** Does this cache hold @p addr in modified state? */
    bool holdsModified(Addr addr) const;

    /** Statistics. */
    const StatGroup &stats() const { return stats_; }

  private:
    enum class LineState : std::uint8_t
    {
        invalid,
        shared,
        exclusive_clean, // MESI E: sole copy, clean; writes upgrade silently
        modified
    };

    struct Line
    {
        LineState st = LineState::invalid;
        Value value = 0;
    };

    /**
     * Miss bookkeeping for one address.  The MSHR lives from the first
     * GetS/GetX until the data arrives (surviving NACK/retry cycles);
     * the wait for a MemAck after the data is tracked separately in
     * mem_ack_wait_ because the line is already usable then.
     */
    struct Mshr
    {
        CacheReq req;
        bool want_exclusive = false;
        Tick issued = 0;                  //!< first GetS/GetX send time
        std::deque<CacheReq> queued_reqs; //!< same-address CPU requests
        std::deque<Message> queued_fwds;  //!< forwards pending our data
    };

    /** Dispatch a request against the current line state. */
    void start(const CacheReq &req);

    /**
     * Commit @p req locally (hit or data arrival): state changes happen
     * now, client callbacks fire after @p delay; @p performed_now also
     * reports the request globally performed.
     */
    void commit(const CacheReq &req, Tick delay, bool performed_now);

    /** The miss path: allocate an MSHR and send GetS/GetX. */
    void sendMiss(const CacheReq &req, bool exclusive);

    /** Counter decrement + reserve clearing + deferred work. */
    void decrementCounter();

    /** Handle a forwarded request we are the owner for. */
    void serveForward(const Message &msg);

    /** True if the forward must stall on a reserve bit. */
    bool mustStall(const Message &msg) const;

    /** Issue deferred misses once the throttle window opens. */
    void drainDeferred();

    void handleData(const Message &msg);
    void handleMemAck(const Message &msg);
    void handleInv(const Message &msg);
    void handleNack(const Message &msg);

    NodeId id_;
    NodeId dir_;
    EventQueue &eq_;
    Network &net_;
    CacheClient *client_;
    CacheCfg cfg_;
    std::vector<Line> lines_;
    std::map<Addr, Mshr> mshrs_;
    std::map<Addr, std::uint64_t> mem_ack_wait_; //!< req awaiting MemAck
    std::set<Addr> reserved_;
    int counter_ = 0;
    int misses_in_flight_ = 0;
    int reserved_window_misses_ = 0; //!< misses sent while reserved
    std::deque<CacheReq> deferred_; //!< throttled misses awaiting issue
    std::deque<Message> stalled_;   //!< queue-mode stalled forwards
    StatGroup stats_;
};

} // namespace wo

#endif // WO_COHERENCE_CACHE_HH

/**
 * @file
 * Text serialization for executions, so traces captured from the timed
 * system (or written by hand, or produced by other tools) can be stored
 * and analyzed offline with the SC checker, the race detector and the
 * DOT exporter via `wotool`.
 *
 * Format (line oriented, '#' comments):
 *
 *     trace <procs> <locations>
 *     init <addr> <value>            -- optional, non-zero initial values
 *     op <proc> <kind> <addr> <value_read> <value_written> <tick>
 *
 * kind is one of R, W, SR, SW, SRW (as printed by accessKindName).  Ops
 * appear in completion order; per-processor subsequences are program
 * order, as Execution requires.
 */

#ifndef WO_EXECUTION_TRACE_IO_HH
#define WO_EXECUTION_TRACE_IO_HH

#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "execution/execution.hh"

namespace wo {

/** A parse diagnostic. */
struct TraceError
{
    int line = 0;
    std::string message;

    std::string
    toString() const
    {
        return strprintf("line %d: %s", line, message.c_str());
    }
};

/** Result of parsing a trace text. */
struct TraceParseResult
{
    std::optional<Execution> execution;
    std::vector<TraceError> errors;

    bool ok() const { return execution.has_value() && errors.empty(); }
};

/** Serialize @p exec (round-trips through traceFromText). */
std::string traceToText(const Execution &exec);

/** Parse a trace text. */
TraceParseResult traceFromText(const std::string &text);

/** Parse a trace file; adds an error if unreadable. */
TraceParseResult traceFromFile(const std::string &path);

} // namespace wo

#endif // WO_EXECUTION_TRACE_IO_HH

file(REMOVE_RECURSE
  "CMakeFiles/kernel_equiv_test.dir/kernel_equiv_test.cc.o"
  "CMakeFiles/kernel_equiv_test.dir/kernel_equiv_test.cc.o.d"
  "kernel_equiv_test"
  "kernel_equiv_test.pdb"
  "kernel_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * A parallel program: one instruction sequence per processor plus the shape
 * of shared memory.  Programs are immutable once built (see builder.hh) and
 * are consumed by the abstract model explorer, the happens-before/DRF0
 * machinery, and the timed full-system simulator alike.
 */

#ifndef WO_PROGRAM_PROGRAM_HH
#define WO_PROGRAM_PROGRAM_HH

#include <string>
#include <vector>

#include "program/instruction.hh"

namespace wo {

/** The code of one thread. */
struct ThreadCode
{
    std::vector<Instruction> code;

    /** Instruction at @p pc; pc must be in range. */
    const Instruction &at(Pc pc) const;

    /** Number of instructions. */
    Pc size() const { return static_cast<Pc>(code.size()); }
};

/** An immutable parallel program. */
class Program
{
  public:
    /**
     * Construct and validate.
     * @param name          label used in reports
     * @param threads       per-processor code (every thread ends in halt)
     * @param num_locations shared locations are addresses [0, num_locations)
     * @param initial       initial value of every shared location
     */
    Program(std::string name, std::vector<ThreadCode> threads,
            Addr num_locations, Value initial = 0);

    /** Label for reports. */
    const std::string &name() const { return name_; }

    /** Number of threads / processors. */
    ProcId numThreads() const
    {
        return static_cast<ProcId>(threads_.size());
    }

    /** Code of thread @p p. */
    const ThreadCode &thread(ProcId p) const;

    /** Number of shared memory locations. */
    Addr numLocations() const { return num_locations_; }

    /** Initial value of location @p a. */
    Value initialValue(Addr a) const;

    /** Override the initial value of location @p a. */
    void setInitial(Addr a, Value v);

    /** Initial memory image, indexed by address. */
    std::vector<Value> initialMemory() const { return initials_; }

    /** Give location @p a a name for pretty-printing (e.g. "x"). */
    void nameLocation(Addr a, std::string name);

    /** Pretty name of location @p a ("[a]" when unnamed). */
    std::string locationName(Addr a) const;

    /** Total static instruction count over all threads. */
    std::size_t staticSize() const;

    /** Multi-line disassembly of the whole program. */
    std::string toString() const;

  private:
    /** Panic on out-of-range registers, addresses or branch targets. */
    void validate() const;

    std::string name_;
    std::vector<ThreadCode> threads_;
    Addr num_locations_;
    std::vector<Value> initials_;
    std::vector<std::string> loc_names_;
};

} // namespace wo

#endif // WO_PROGRAM_PROGRAM_HH

#include "assembler.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "program/builder.hh"

namespace wo {

namespace {

/** Tokenize one line (whitespace separated; '#' ends the line). */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

class Assembler
{
  public:
    explicit Assembler(const std::string &source) : source_(source) {}

    AsmResult
    run()
    {
        std::istringstream in(source_);
        std::string line;
        while (std::getline(in, line)) {
            ++lineno_;
            parseLine(tokenize(line));
        }
        AsmResult result;
        result.errors = std::move(errors_);
        if (!result.errors.empty())
            return result;
        if (threads_.empty()) {
            result.errors.push_back(AsmError{lineno_, "no threads defined"});
            return result;
        }
        // Build the program.
        ProgramBuilder b(name_.empty() ? "asm-program" : name_,
                         static_cast<ProcId>(threads_.size()));
        for (ProcId p = 0; p < threads_.size(); ++p) {
            auto &t = b.thread(p);
            for (const auto &emit : threads_[p])
                emit(t);
        }
        for (const auto &[loc_name, addr] : locs_)
            b.nameLocation(addr, loc_name);
        for (const auto &[addr, v] : inits_)
            b.initLocation(addr, v);
        result.program = b.build();
        result.probe = probe_;
        result.warm = warm_;
        for (const auto &w : result.warm) {
            for (ProcId p : w.procs) {
                if (p >= result.program->numThreads()) {
                    result.errors.push_back(AsmError{
                        0, strprintf("warm thread %u out of range", p)});
                }
            }
            if (w.addr >= result.program->numLocations()) {
                result.errors.push_back(AsmError{
                    0, strprintf("warm location %u out of range", w.addr)});
            }
        }
        // A probe addressing a thread or location outside the program is
        // a user error worth flagging here rather than at match time.
        for (const auto &t : result.probe) {
            if (!t.is_memory && t.proc >= result.program->numThreads()) {
                result.errors.push_back(AsmError{
                    0, strprintf("probe thread %u out of range", t.proc)});
            }
            if (t.is_memory &&
                t.addr >= result.program->numLocations()) {
                result.errors.push_back(AsmError{
                    0,
                    strprintf("probe location %u out of range", t.addr)});
            }
        }
        return result;
    }

  private:
    using Emit = std::function<void(ThreadBuilder &)>;

    void
    error(const std::string &msg)
    {
        errors_.push_back(AsmError{lineno_, msg});
    }

    bool
    parseReg(const std::string &tok, RegId &out)
    {
        if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
            error("expected register (r0..r" +
                  std::to_string(num_regs - 1) + "), got '" + tok + "'");
            return false;
        }
        char *end = nullptr;
        long v = std::strtol(tok.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 || v >= num_regs) {
            error("bad register '" + tok + "'");
            return false;
        }
        out = static_cast<RegId>(v);
        return true;
    }

    bool
    parseImm(const std::string &tok, Value &out)
    {
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 0);
        if (*end != '\0' || tok.empty()) {
            error("expected number, got '" + tok + "'");
            return false;
        }
        out = v;
        return true;
    }

    bool
    isNumber(const std::string &tok)
    {
        if (tok.empty())
            return false;
        std::size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
        if (i >= tok.size())
            return false;
        for (; i < tok.size(); ++i)
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                return false;
        return true;
    }

    Addr
    location(const std::string &tok)
    {
        if (isNumber(tok)) {
            Addr a =
                static_cast<Addr>(std::strtoul(tok.c_str(), nullptr, 0));
            // Keep symbolic allocation clear of explicit addresses.
            next_loc_ = std::max(next_loc_, a + 1);
            return a;
        }
        auto it = locs_.find(tok);
        if (it != locs_.end())
            return it->second;
        Addr a = next_loc_++;
        locs_.emplace(tok, a);
        return a;
    }

    bool
    looksLikeReg(const std::string &tok)
    {
        return tok.size() >= 2 && (tok[0] == 'r' || tok[0] == 'R') &&
               std::isdigit(static_cast<unsigned char>(tok[1]));
    }

    std::vector<Emit> *
    code()
    {
        if (threads_.empty()) {
            error("instruction before any 'thread' directive");
            return nullptr;
        }
        return &threads_[current_];
    }

    void
    parseLine(const std::vector<std::string> &toks)
    {
        if (toks.empty())
            return;
        const std::string &op = toks[0];

        // Label?
        if (toks.size() == 1 && op.size() > 1 && op.back() == ':') {
            std::string label = op.substr(0, op.size() - 1);
            if (auto *c = code())
                c->push_back(
                    [label](ThreadBuilder &t) { t.label(label); });
            return;
        }

        if (op == "program") {
            if (toks.size() != 2)
                return error("usage: program <name>");
            name_ = toks[1];
            return;
        }
        if (op == "probe") {
            if (toks.size() != 4)
                return error("usage: probe <proc|mem> <reg|loc> <value>");
            ProbeTerm term;
            Value v;
            if (!parseImm(toks[3], v))
                return;
            term.value = v;
            if (toks[1] == "mem") {
                term.is_memory = true;
                term.addr = location(toks[2]);
            } else {
                Value proc;
                if (!parseImm(toks[1], proc) || proc < 0 || proc > 255) {
                    error("bad probe thread '" + toks[1] + "'");
                    return;
                }
                term.proc = static_cast<ProcId>(proc);
                RegId r;
                if (!parseReg(toks[2], r))
                    return;
                term.reg = r;
            }
            probe_.push_back(term);
            return;
        }
        if (op == "init") {
            if (toks.size() != 3)
                return error("usage: init <loc> <value>");
            Value v;
            if (!parseImm(toks[2], v))
                return;
            inits_.emplace_back(location(toks[1]), v);
            return;
        }
        if (op == "warm") {
            if (toks.size() < 3)
                return error("usage: warm <loc> <thread>...");
            WarmTerm w;
            w.addr = location(toks[1]);
            for (std::size_t i = 2; i < toks.size(); ++i) {
                Value n;
                if (!parseImm(toks[i], n))
                    return;
                if (n < 0 || n > 255)
                    return error("warm thread index out of range");
                w.procs.push_back(static_cast<ProcId>(n));
            }
            warm_.push_back(std::move(w));
            return;
        }
        if (op == "thread") {
            if (toks.size() != 2)
                return error("usage: thread <n>");
            Value n;
            if (!parseImm(toks[1], n))
                return;
            if (n < 0 || n > 255)
                return error("thread index out of range");
            while (threads_.size() <= static_cast<std::size_t>(n))
                threads_.emplace_back();
            current_ = static_cast<std::size_t>(n);
            return;
        }

        auto *c = code();
        if (!c)
            return;

        auto need = [&](std::size_t n, const char *usage) {
            if (toks.size() != n) {
                error(std::string("usage: ") + usage);
                return false;
            }
            return true;
        };

        if (op == "ld" || op == "syncld" || op == "tas") {
            if (!need(3, "ld|syncld|tas <reg> <loc>"))
                return;
            RegId r;
            if (!parseReg(toks[1], r))
                return;
            Addr a = location(toks[2]);
            if (op == "ld")
                c->push_back([r, a](ThreadBuilder &t) { t.load(r, a); });
            else if (op == "syncld")
                c->push_back(
                    [r, a](ThreadBuilder &t) { t.syncLoad(r, a); });
            else
                c->push_back(
                    [r, a](ThreadBuilder &t) { t.testAndSet(r, a); });
            return;
        }
        if (op == "st" || op == "syncst") {
            if (!need(3, "st|syncst <loc> <imm|reg>"))
                return;
            Addr a = location(toks[1]);
            if (looksLikeReg(toks[2])) {
                if (op == "syncst")
                    return error("syncst takes an immediate value");
                RegId r;
                if (!parseReg(toks[2], r))
                    return;
                c->push_back(
                    [a, r](ThreadBuilder &t) { t.storeReg(a, r); });
            } else {
                Value v;
                if (!parseImm(toks[2], v))
                    return;
                if (op == "st")
                    c->push_back(
                        [a, v](ThreadBuilder &t) { t.store(a, v); });
                else
                    c->push_back(
                        [a, v](ThreadBuilder &t) { t.syncStore(a, v); });
            }
            return;
        }
        if (op == "movi") {
            if (!need(3, "movi <reg> <imm>"))
                return;
            RegId r;
            Value v;
            if (!parseReg(toks[1], r) || !parseImm(toks[2], v))
                return;
            c->push_back([r, v](ThreadBuilder &t) { t.movi(r, v); });
            return;
        }
        if (op == "add") {
            if (!need(4, "add <reg> <reg> <reg>"))
                return;
            RegId d, s1, s2;
            if (!parseReg(toks[1], d) || !parseReg(toks[2], s1) ||
                !parseReg(toks[3], s2))
                return;
            c->push_back(
                [d, s1, s2](ThreadBuilder &t) { t.add(d, s1, s2); });
            return;
        }
        if (op == "addi") {
            if (!need(4, "addi <reg> <reg> <imm>"))
                return;
            RegId d, s;
            Value v;
            if (!parseReg(toks[1], d) || !parseReg(toks[2], s) ||
                !parseImm(toks[3], v))
                return;
            c->push_back([d, s, v](ThreadBuilder &t) { t.addi(d, s, v); });
            return;
        }
        if (op == "beq" || op == "bne") {
            if (!need(4, "beq|bne <reg> <imm> <label>"))
                return;
            RegId r;
            Value v;
            if (!parseReg(toks[1], r) || !parseImm(toks[2], v))
                return;
            std::string label = toks[3];
            if (op == "beq")
                c->push_back([r, v, label](ThreadBuilder &t) {
                    t.beq(r, v, label);
                });
            else
                c->push_back([r, v, label](ThreadBuilder &t) {
                    t.bne(r, v, label);
                });
            return;
        }
        if (op == "jmp") {
            if (!need(2, "jmp <label>"))
                return;
            std::string label = toks[1];
            c->push_back([label](ThreadBuilder &t) { t.jmp(label); });
            return;
        }
        if (op == "work") {
            if (!need(2, "work <cycles>"))
                return;
            Value v;
            if (!parseImm(toks[1], v))
                return;
            if (v < 0)
                return error("work takes a non-negative cycle count");
            c->push_back([v](ThreadBuilder &t) { t.work(v); });
            return;
        }
        if (op == "halt") {
            c->push_back([](ThreadBuilder &t) { t.halt(); });
            return;
        }
        error("unknown instruction '" + op + "'");
    }

    const std::string &source_;
    int lineno_ = 0;
    std::string name_;
    std::vector<std::vector<Emit>> threads_;
    std::size_t current_ = 0;
    std::map<std::string, Addr> locs_;
    Addr next_loc_ = 0;
    std::vector<std::pair<Addr, Value>> inits_;
    std::vector<ProbeTerm> probe_;
    std::vector<WarmTerm> warm_;
    std::vector<AsmError> errors_;
};

} // namespace

std::string
ProbeTerm::toString() const
{
    if (is_memory)
        return strprintf("mem[%u]=%lld", addr,
                         static_cast<long long>(value));
    return strprintf("P%u:r%u=%lld", proc, reg,
                     static_cast<long long>(value));
}

bool
probeMatches(const std::vector<ProbeTerm> &probe, const Outcome &outcome)
{
    for (const ProbeTerm &t : probe) {
        if (t.is_memory) {
            if (t.addr >= outcome.memory.size() ||
                outcome.memory[t.addr] != t.value)
                return false;
        } else {
            if (t.proc >= outcome.regs.size() ||
                t.reg >= outcome.regs[t.proc].size() ||
                outcome.regs[t.proc][t.reg] != t.value)
                return false;
        }
    }
    return true;
}

AsmResult
assembleString(const std::string &source)
{
    return Assembler(source).run();
}

AsmResult
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        AsmResult r;
        r.errors.push_back(AsmError{0, "cannot open '" + path + "'"});
        return r;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return assembleString(ss.str());
}

std::string
disassemble(const Program &prog)
{
    std::string out = strprintf("program %s\n", prog.name().c_str());
    for (Addr a = 0; a < prog.numLocations(); ++a)
        if (prog.initialValue(a) != 0)
            out += strprintf("init %s %lld\n",
                             prog.locationName(a).c_str(),
                             static_cast<long long>(prog.initialValue(a)));
    for (ProcId p = 0; p < prog.numThreads(); ++p) {
        out += strprintf("thread %u\n", p);
        const ThreadCode &t = prog.thread(p);
        // Collect branch targets so they get labels.
        std::map<Pc, std::string> labels;
        for (Pc pc = 0; pc < t.size(); ++pc) {
            const Instruction &i = t.at(pc);
            if (i.op == Opcode::branch_eq || i.op == Opcode::branch_ne ||
                i.op == Opcode::jump)
                if (!labels.count(i.target))
                    labels[i.target] =
                        strprintf("L%u_%zu", p, labels.size());
        }
        for (Pc pc = 0; pc < t.size(); ++pc) {
            if (labels.count(pc))
                out += labels[pc] + ":\n";
            const Instruction &i = t.at(pc);
            std::string loc =
                i.accessesMemory() ? prog.locationName(i.addr) : "";
            // locationName falls back to "[n]"; strip to a number form.
            if (!loc.empty() && loc.front() == '[')
                loc = loc.substr(1, loc.size() - 2);
            switch (i.op) {
              case Opcode::load_data:
                out += strprintf("  ld r%u %s\n", i.dst, loc.c_str());
                break;
              case Opcode::sync_load:
                out += strprintf("  syncld r%u %s\n", i.dst, loc.c_str());
                break;
              case Opcode::test_and_set:
                out += strprintf("  tas r%u %s\n", i.dst, loc.c_str());
                break;
              case Opcode::store_data:
                if (i.use_imm)
                    out += strprintf("  st %s %lld\n", loc.c_str(),
                                     static_cast<long long>(i.imm));
                else
                    out += strprintf("  st %s r%u\n", loc.c_str(), i.src);
                break;
              case Opcode::sync_store:
                out += strprintf("  syncst %s %lld\n", loc.c_str(),
                                 static_cast<long long>(i.imm));
                break;
              case Opcode::mov_imm:
                out += strprintf("  movi r%u %lld\n", i.dst,
                                 static_cast<long long>(i.imm));
                break;
              case Opcode::add:
                out += strprintf("  add r%u r%u r%u\n", i.dst, i.src,
                                 i.src2);
                break;
              case Opcode::add_imm:
                out += strprintf("  addi r%u r%u %lld\n", i.dst, i.src,
                                 static_cast<long long>(i.imm));
                break;
              case Opcode::branch_eq:
                out += strprintf("  beq r%u %lld %s\n", i.src,
                                 static_cast<long long>(i.imm),
                                 labels[i.target].c_str());
                break;
              case Opcode::branch_ne:
                out += strprintf("  bne r%u %lld %s\n", i.src,
                                 static_cast<long long>(i.imm),
                                 labels[i.target].c_str());
                break;
              case Opcode::jump:
                out += strprintf("  jmp %s\n", labels[i.target].c_str());
                break;
              case Opcode::delay:
                out += strprintf("  work %lld\n",
                                 static_cast<long long>(i.imm));
                break;
              case Opcode::halt:
                out += "  halt\n";
                break;
            }
        }
    }
    return out;
}

} // namespace wo

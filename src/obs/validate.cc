#include "validate.hh"

#include "common/logging.hh"
#include "obs/json.hh"

namespace wo {

TraceValidation
validateChromeTrace(const std::string &text)
{
    TraceValidation v;
    auto parsed = jsonParse(text);
    if (!parsed.ok) {
        v.error = strprintf("not valid JSON at offset %zu: %s",
                            parsed.offset, parsed.error.c_str());
        return v;
    }
    if (!parsed.value.isObject()) {
        v.error = "top level is not an object";
        return v;
    }
    const Json *events = parsed.value.find("traceEvents");
    if (!events || !events->isArray()) {
        v.error = "missing traceEvents array";
        return v;
    }
    for (const Json &ev : events->items()) {
        ++v.events;
        if (!ev.isObject()) {
            v.error = strprintf("event %llu is not an object",
                                static_cast<unsigned long long>(v.events));
            return v;
        }
        const Json *ph = ev.find("ph");
        const Json *name = ev.find("name");
        if (!ph || !ph->isString() || !name || !name->isString()) {
            v.error = strprintf("event %llu lacks string ph/name",
                                static_cast<unsigned long long>(v.events));
            return v;
        }
        const std::string &phase = ph->stringValue();
        if (phase == "M") {
            ++v.metadata;
            continue;
        }
        const Json *ts = ev.find("ts");
        const Json *pid = ev.find("pid");
        const Json *tid = ev.find("tid");
        if (!ts || !ts->isNumber() || !pid || !pid->isNumber() || !tid ||
            !tid->isNumber()) {
            v.error = strprintf("event %llu lacks numeric ts/pid/tid",
                                static_cast<unsigned long long>(v.events));
            return v;
        }
        if (phase == "X") {
            ++v.complete;
            const Json *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->numberValue() < 0) {
                v.error = strprintf(
                    "complete event %llu lacks non-negative dur",
                    static_cast<unsigned long long>(v.events));
                return v;
            }
        } else if (phase == "i") {
            ++v.instants;
        } else if (phase == "C") {
            ++v.counters;
            // A counter sample's args members are the track values.
            const Json *args = ev.find("args");
            if (!args || !args->isObject() || args->members().empty()) {
                v.error = strprintf(
                    "counter event %llu lacks an args object",
                    static_cast<unsigned long long>(v.events));
                return v;
            }
            for (const auto &kv : args->members()) {
                if (!kv.second.isNumber()) {
                    v.error = strprintf(
                        "counter event %llu has non-numeric value '%s'",
                        static_cast<unsigned long long>(v.events),
                        kv.first.c_str());
                    return v;
                }
            }
        } else {
            v.error = strprintf("event %llu has unknown phase '%s'",
                                static_cast<unsigned long long>(v.events),
                                phase.c_str());
            return v;
        }
    }
    v.ok = true;
    return v;
}

} // namespace wo

/**
 * @file
 * Tests for the Section-5.1 sufficient-conditions audit: real runs under
 * every policy must satisfy conditions 2-5 (the premises of Appendix B's
 * proof), and doctored results must be caught.
 */

#include <gtest/gtest.h>

#include "core/conditions.hh"
#include "program/litmus.hh"
#include "program/workload.hh"

namespace wo {
namespace {

SystemResult
runProgram(const Program &p, OrderingPolicy pol, std::uint64_t seed = 1,
           Tick jitter = 0)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    cfg.net.jitter = jitter;
    cfg.net.seed = seed;
    System sys(p, cfg);
    return sys.run();
}

const OrderingPolicy all_policies[] = {
    OrderingPolicy::sc, OrderingPolicy::wo_def1, OrderingPolicy::wo_drf0,
    OrderingPolicy::wo_drf0_ro};

class ConditionsEveryPolicy : public testing::TestWithParam<OrderingPolicy>
{
};

TEST_P(ConditionsEveryPolicy, HoldOnCannedPrograms)
{
    for (const Program &p :
         {litmus::messagePassingSync(), litmus::fig3Scenario(10),
          litmus::lockedCounter(3, 2), litmus::barrier(3),
          litmus::pingPong(2)}) {
        auto r = runProgram(p, GetParam());
        ASSERT_TRUE(r.completed) << p.name();
        auto audit = checkSufficientConditions(r);
        EXPECT_TRUE(audit.ok)
            << p.name() << " under " << policyName(GetParam()) << ": "
            << (audit.violations.empty()
                    ? "?"
                    : audit.violations[0].toString());
    }
}

TEST_P(ConditionsEveryPolicy, HoldOnRandomWorkloadsWithJitter)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Drf0WorkloadCfg wl;
        wl.seed = seed;
        wl.procs = 3;
        wl.regions = 2;
        wl.sections = 2;
        wl.ops_per_section = 3;
        wl.private_ops = 2;
        Program p = randomDrf0Program(wl);
        auto r = runProgram(p, GetParam(), seed, /*jitter=*/6);
        ASSERT_TRUE(r.completed);
        auto audit = checkSufficientConditions(r);
        EXPECT_TRUE(audit.ok)
            << policyName(GetParam()) << " seed " << seed << ": "
            << (audit.violations.empty()
                    ? "?"
                    : audit.violations[0].toString());
    }
}

TEST_P(ConditionsEveryPolicy, HoldEvenOnRacyPrograms)
{
    // The conditions are hardware invariants, independent of whether the
    // software obeys DRF0.
    auto r = runProgram(litmus::racyCounter(3, 2), GetParam());
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(checkSufficientConditions(r).ok);
}

INSTANTIATE_TEST_SUITE_P(Policies, ConditionsEveryPolicy,
                         testing::ValuesIn(all_policies),
                         [](const auto &info) {
                             std::string n = policyName(info.param);
                             for (auto &c : n)
                                 if (c == '-' || c == '+')
                                     c = '_';
                             return n;
                         });

TEST(ConditionsCompose, HoldUnderMesiAndAcksFirstVariants)
{
    // The conditions are invariants of the protocol family, not of one
    // configuration: they must survive the MESI grant, the acks-first
    // directory, queue-mode stalls with the bounded-miss throttle, and
    // an MLP limit, all at once.
    Program p = litmus::lockedCounter(3, 2);
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.net.hop_latency = 10;
    cfg.net.jitter = 5;
    cfg.net.seed = 9;
    cfg.dir.grant_exclusive_clean = true;
    cfg.dir.forward_line_with_invs = false;
    cfg.cache.stall_mode = ReserveStallMode::queue;
    cfg.cache.reserved_miss_limit = 0;
    cfg.cpu.max_outstanding = 2;
    System sys(p, cfg);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.outcome.memory[1], 6);
    auto audit = checkSufficientConditions(r);
    EXPECT_TRUE(audit.ok)
        << (audit.violations.empty() ? "?"
                                     : audit.violations[0].toString());
}

TEST(ConditionsAudit, CatchesDoctoredWriteOrder)
{
    auto r = runProgram(litmus::lockedCounter(2, 1),
                        OrderingPolicy::wo_drf0);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(checkSufficientConditions(r).ok);
    // Corrupt the final memory: condition 2(c) must fire.
    r.outcome.memory[1] = 999;
    auto audit = checkSufficientConditions(r);
    ASSERT_FALSE(audit.ok);
    EXPECT_EQ(audit.violations[0].condition, 2);
}

TEST(ConditionsAudit, CatchesDoctoredSyncWindow)
{
    Program p = litmus::fig3Scenario();
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.net.hop_latency = 10;
    System sys(p, cfg);
    sys.warmShared(0, {1});
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(checkSufficientConditions(r).ok);
    // Pretend P0's W(x) performed much later than it did: P1's TAS now
    // falls inside the pre-sync window, tripping condition 5.
    for (auto &t : r.timings[0])
        if (t.kind == AccessKind::data_write)
            t.performed += 100000;
    auto audit = checkSufficientConditions(r);
    ASSERT_FALSE(audit.ok);
    bool c5 = false;
    for (const auto &v : audit.violations)
        c5 = c5 || v.condition == 5;
    EXPECT_TRUE(c5);
}

TEST(ConditionsAudit, CatchesDoctoredIssueBeforeSyncCommit)
{
    auto r = runProgram(litmus::messagePassingSync(),
                        OrderingPolicy::wo_drf0);
    ASSERT_TRUE(r.completed);
    // Shift P1's post-sync read to issue before the sync committed.
    auto &tv = r.timings[1];
    ASSERT_GE(tv.size(), 2u);
    tv.back().issued = 0;
    auto audit = checkSufficientConditions(r);
    ASSERT_FALSE(audit.ok);
    EXPECT_EQ(audit.violations[0].condition, 4);
}

} // namespace
} // namespace wo

# Empty compiler generated dependencies file for fig2_drf0.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sweep_latency.
# This may be replaced when dependencies are built.

#include "dot.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "hb/closure.hh"
#include "hb/race.hh"

namespace wo {

namespace {

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
executionToDot(const Execution &exec, const DotCfg &cfg)
{
    HbClosure closure(exec, cfg.flavor);
    std::string out = "digraph execution {\n"
                      "  rankdir=TB;\n"
                      "  node [shape=box, fontname=\"monospace\"];\n";
    if (!cfg.title.empty())
        out += strprintf("  label=\"%s\";\n  labelloc=t;\n",
                         escape(cfg.title).c_str());

    for (ProcId p = 0; p < exec.numProcs(); ++p) {
        out += strprintf("  subgraph cluster_p%u {\n    label=\"P%u\";\n",
                         p, p);
        for (OpId id : exec.procOps(p)) {
            const MemoryOp &op = exec.op(id);
            const char *fill = op.isSync() ? "lightblue" : "white";
            out += strprintf(
                "    n%u [label=\"%s\", style=filled, fillcolor=%s];\n",
                id, escape(op.toString()).c_str(), fill);
        }
        out += "  }\n";
    }
    for (const auto &[a, b] : closure.poEdges())
        out += strprintf("  n%u -> n%u;\n", a, b);
    for (const auto &[a, b] : closure.soEdges())
        out += strprintf(
            "  n%u -> n%u [style=dashed, color=blue, label=\"so\"];\n", a,
            b);
    if (cfg.mark_races) {
        RaceDetectorCfg rcfg;
        rcfg.flavor = cfg.flavor;
        for (const Race &r : findRaces(exec, rcfg))
            out += strprintf("  n%u -> n%u [dir=none, color=red, "
                             "penwidth=2, label=\"race\"];\n",
                             r.first, r.second);
    }
    out += "}\n";
    return out;
}

namespace {

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default:  out.push_back(c);
        }
    return out;
}

// Figure geometry.  Labels are monospace, so width is chars * advance.
constexpr double box_h = 24.0;
constexpr double row_gap = 22.0;  //!< vertical space between boxes
constexpr double col_gap = 56.0;  //!< space between processor columns
constexpr double char_w = 7.0;    //!< 11px monospace advance
constexpr double margin = 24.0;

struct NodePos
{
    double cx; //!< box center x
    double cy; //!< box center y
    double w;  //!< box width
};

/** An edge label with a surface-colored halo so it stays legible on
 *  top of whatever it crosses. */
std::string
edgeLabel(double x, double y, const char *text, const char *color)
{
    return strprintf("  <text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" "
                     "text-anchor=\"middle\" fill=\"%s\" stroke=\"#fcfcfb\" "
                     "stroke-width=\"3\" paint-order=\"stroke\">%s</text>\n",
                     x, y, color, text);
}

} // namespace

std::string
executionToSvg(const Execution &exec, const DotCfg &cfg)
{
    HbClosure closure(exec, cfg.flavor);

    // Column layout: width from the longest label in that column.
    const ProcId nprocs = exec.numProcs();
    std::vector<double> col_w(nprocs, 64.0);
    std::vector<double> col_x(nprocs, 0.0);
    std::size_t max_rows = 0;
    for (ProcId p = 0; p < nprocs; ++p) {
        std::size_t chars = 4;
        for (OpId id : exec.procOps(p))
            chars = std::max(chars, exec.op(id).toString().size());
        col_w[p] = static_cast<double>(chars) * char_w + 20.0;
        max_rows = std::max(max_rows, exec.procOps(p).size());
    }
    const double top = (cfg.title.empty() ? 0.0 : 22.0) + 30.0;
    double x = margin;
    for (ProcId p = 0; p < nprocs; ++p) {
        col_x[p] = x;
        x += col_w[p] + col_gap;
    }
    const double width = x - col_gap + margin;
    const double height = top +
        static_cast<double>(max_rows) * (box_h + row_gap) - row_gap +
        margin;

    std::map<OpId, NodePos> pos;
    for (ProcId p = 0; p < nprocs; ++p) {
        std::size_t row = 0;
        for (OpId id : exec.procOps(p)) {
            pos[id] = {col_x[p] + col_w[p] / 2,
                       top + static_cast<double>(row) * (box_h + row_gap) +
                           box_h / 2,
                       col_w[p]};
            ++row;
        }
    }

    // Chrome/ink follow the report's light surface: boxes carry
    // hairline borders, sync ops a light-blue wash, so edges the
    // series blue, races the reserved critical red.
    std::string out = strprintf(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
        "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"ui-"
        "monospace,SFMono-Regular,Menlo,monospace\">\n"
        "<defs>\n"
        "  <marker id=\"m-po\" viewBox=\"0 0 8 8\" refX=\"7\" refY=\"4\" "
        "markerWidth=\"6\" markerHeight=\"6\" orient=\"auto-start-reverse\">"
        "<path d=\"M0 0 L8 4 L0 8 z\" fill=\"#52514e\"/></marker>\n"
        "  <marker id=\"m-so\" viewBox=\"0 0 8 8\" refX=\"7\" refY=\"4\" "
        "markerWidth=\"6\" markerHeight=\"6\" orient=\"auto-start-reverse\">"
        "<path d=\"M0 0 L8 4 L0 8 z\" fill=\"#2a78d6\"/></marker>\n"
        "</defs>\n"
        "<rect width=\"%.0f\" height=\"%.0f\" fill=\"#fcfcfb\"/>\n",
        width, height, width, height, width, height);

    if (!cfg.title.empty())
        out += strprintf("  <text x=\"%.1f\" y=\"18\" font-size=\"12\" "
                         "font-family=\"system-ui,sans-serif\" "
                         "fill=\"#0b0b0b\">%s</text>\n",
                         margin, xmlEscape(cfg.title).c_str());
    for (ProcId p = 0; p < nprocs; ++p)
        out += strprintf("  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                         "font-family=\"system-ui,sans-serif\" "
                         "text-anchor=\"middle\" fill=\"#52514e\">P%u"
                         "</text>\n",
                         col_x[p] + col_w[p] / 2, top - 12.0, p);

    // po edges first (under the boxes' own layer order they sit
    // between columns of boxes anyway; draw before so/race so the
    // colored structure stays on top).
    for (const auto &[a, b] : closure.poEdges()) {
        const NodePos &pa = pos[a];
        const NodePos &pb = pos[b];
        out += strprintf("  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                         "y2=\"%.1f\" stroke=\"#52514e\" stroke-width=\"1.5\" "
                         "marker-end=\"url(#m-po)\"/>\n",
                         pa.cx, pa.cy + box_h / 2, pb.cx,
                         pb.cy - box_h / 2 - 1.5);
    }
    for (const auto &[a, b] : closure.soEdges()) {
        const NodePos &pa = pos[a];
        const NodePos &pb = pos[b];
        // Leave/enter through the box sides facing each other; a
        // gentle cubic keeps crossings readable.
        const double dir = pb.cx >= pa.cx ? 1.0 : -1.0;
        const double x1 = pa.cx + dir * pa.w / 2;
        const double x2 = pb.cx - dir * (pb.w / 2 + 2.0);
        const double bend = std::min(24.0, std::max(8.0,
            (x2 - x1) * dir * 0.25));
        out += strprintf(
            "  <path d=\"M%.1f %.1f C%.1f %.1f %.1f %.1f %.1f %.1f\" "
            "fill=\"none\" stroke=\"#2a78d6\" stroke-width=\"1.5\" "
            "stroke-dasharray=\"5 3\" marker-end=\"url(#m-so)\"/>\n",
            x1, pa.cy, x1 + dir * bend, pa.cy, x2 - dir * bend, pb.cy, x2,
            pb.cy);
        out += edgeLabel((x1 + x2) / 2, (pa.cy + pb.cy) / 2 - 4.0, "so",
                         "#2a78d6");
    }
    if (cfg.mark_races) {
        RaceDetectorCfg rcfg;
        rcfg.flavor = cfg.flavor;
        for (const Race &r : findRaces(exec, rcfg)) {
            const NodePos &pa = pos[r.first];
            const NodePos &pb = pos[r.second];
            const double dir = pb.cx >= pa.cx ? 1.0 : -1.0;
            const double x1 = pa.cx + dir * pa.w / 2;
            const double x2 = pb.cx - dir * pb.w / 2;
            out += strprintf("  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                             "y2=\"%.1f\" stroke=\"#d03b3b\" "
                             "stroke-width=\"2\"/>\n",
                             x1, pa.cy, x2, pb.cy);
            out += edgeLabel((x1 + x2) / 2, (pa.cy + pb.cy) / 2 - 4.0,
                             "race", "#d03b3b");
        }
    }

    // Boxes + labels last, so line endpoints tuck under their borders.
    for (ProcId p = 0; p < nprocs; ++p)
        for (OpId id : exec.procOps(p)) {
            const MemoryOp &op = exec.op(id);
            const NodePos &np = pos[id];
            const char *fill = op.isSync() ? "#cde2fb" : "#ffffff";
            const char *border = op.isSync() ? "#2a78d6" : "#c3c2b7";
            out += strprintf(
                "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                "height=\"%.1f\" rx=\"4\" fill=\"%s\" stroke=\"%s\"/>\n",
                np.cx - np.w / 2, np.cy - box_h / 2, np.w, box_h, fill,
                border);
            out += strprintf(
                "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                "text-anchor=\"middle\" fill=\"#0b0b0b\">%s</text>\n",
                np.cx, np.cy + 4.0, xmlEscape(op.toString()).c_str());
        }

    out += "</svg>\n";
    return out;
}

} // namespace wo

/**
 * @file
 * Quickstart: the library in five minutes.
 *
 *  1. Build a small parallel program with the fluent builder.
 *  2. Ask whether it obeys the DRF0 synchronization model.
 *  3. Explore every outcome on the idealized SC machine and on the
 *     paper's weakly ordered machine.
 *  4. Verify the Definition-2 contract: because the program is DRF0, the
 *     weak machine must appear sequentially consistent to it.
 *  5. Run it on the timed cache-coherent system and inspect the result.
 */

#include <cstdio>

#include "core/drf0_checker.hh"
#include "core/weak_ordering.hh"
#include "models/wo_drf0_model.hh"
#include "program/builder.hh"
#include "sys/system.hh"

int
main()
{
    using namespace wo;

    // -- 1. a producer/consumer handshake ---------------------------------
    const Addr data = 0, flag = 1;
    ProgramBuilder b("quickstart", 2);
    b.thread(0)
        .store(data, 42)     // ordinary write
        .syncStore(flag, 1); // release: write-only synchronization
    b.thread(1)
        .label("spin")
        .syncLoad(0, flag)   // acquire: read-only synchronization
        .beq(0, 0, "spin")
        .load(1, data);      // must observe 42
    b.nameLocation(data, "data").nameLocation(flag, "flag");
    Program prog = b.build();
    std::printf("%s\n", prog.toString().c_str());

    // -- 2. software side of the contract: does it obey DRF0? -------------
    SyncModelVerdict verdict = checkDrf0(prog);
    std::printf("DRF0 check: %s\n\n", verdict.toString().c_str());

    // -- 3. outcome sets on the SC and weakly ordered machines ------------
    ScModel sc(prog);
    auto sc_outcomes = exploreOutcomes(sc);
    WoDrf0Model weak(prog);
    auto weak_outcomes = exploreOutcomes(weak);
    std::printf("SC machine: %zu outcome(s); weak machine: %zu "
                "outcome(s)\n",
                sc_outcomes.outcomes.size(),
                weak_outcomes.outcomes.size());
    for (const auto &o : weak_outcomes.outcomes)
        std::printf("  weak outcome: %s\n", o.toString().c_str());

    // -- 4. hardware side of the contract (Definition 2) ------------------
    auto conformance = conformsForProgram(weak, prog);
    std::printf("Definition-2 conformance: %s\n\n",
                conformance.toString().c_str());

    // -- 5. the timed cache-coherent system (Section 5.3 hardware) --------
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.net.hop_latency = 10;
    System system(prog, cfg);
    auto run = system.run();
    std::printf("timed run: completed=%d, finish tick=%llu, consumer "
                "read data=%lld\n",
                run.completed,
                static_cast<unsigned long long>(run.finish_tick),
                static_cast<long long>(run.outcome.regs[1][1]));
    std::printf("\nretired execution trace:\n%s",
                run.execution.toString().c_str());
    return 0;
}

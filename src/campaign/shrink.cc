#include "shrink.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace wo {

bool
reproducesViolation(const Program &prog,
                    const std::vector<WarmTerm> &warm, SystemCfg cfg,
                    ViolationKind kind)
{
    cfg.monitor = true;
    cfg.quiet = true;
    cfg.dump_on_fail.clear(); // candidates must not spray evidence files
    System sys(prog, cfg);
    for (const auto &w : warm)
        sys.warmShared(w.addr, w.procs);
    sys.run();
    return sys.monitor()->countOf(kind) > 0;
}

namespace {

/** A mutable program candidate the reductions edit in place. */
struct Candidate
{
    std::string name;
    std::vector<std::vector<Instruction>> threads;
    Addr nlocs = 0;
    std::vector<Value> initials;
    std::vector<std::string> names; //!< per location ("" = unnamed)
    std::vector<WarmTerm> warm;
};

Candidate
fromProgram(const Program &prog, const std::vector<WarmTerm> &warm)
{
    Candidate c;
    c.name = prog.name() + "-shrunk";
    for (ProcId p = 0; p < prog.numThreads(); ++p)
        c.threads.push_back(prog.thread(p).code);
    c.nlocs = prog.numLocations();
    for (Addr a = 0; a < c.nlocs; ++a) {
        c.initials.push_back(prog.initialValue(a));
        std::string n = prog.locationName(a);
        c.names.push_back(n.front() == '[' ? std::string() : n);
    }
    c.warm = warm;
    return c;
}

/** Cheap structural validity so Program's panicking validate never fires. */
bool
valid(const Candidate &c)
{
    if (c.threads.empty() || c.nlocs == 0)
        return false;
    for (const auto &code : c.threads) {
        if (code.empty() || code.back().op != Opcode::halt)
            return false;
        for (const Instruction &i : code) {
            if (i.accessesMemory() && i.addr >= c.nlocs)
                return false;
            if ((i.op == Opcode::branch_eq || i.op == Opcode::branch_ne ||
                 i.op == Opcode::jump) &&
                i.target >= code.size())
                return false;
        }
    }
    for (const WarmTerm &w : c.warm) {
        if (w.addr >= c.nlocs || w.procs.empty())
            return false;
        for (ProcId p : w.procs)
            if (p >= c.threads.size())
                return false;
    }
    return true;
}

Program
toProgram(const Candidate &c)
{
    std::vector<ThreadCode> threads;
    for (const auto &code : c.threads)
        threads.push_back(ThreadCode{code});
    Program prog(c.name, std::move(threads), c.nlocs);
    for (Addr a = 0; a < c.nlocs; ++a) {
        if (c.initials[a] != 0)
            prog.setInitial(a, c.initials[a]);
        if (!c.names[a].empty())
            prog.nameLocation(a, c.names[a]);
    }
    return prog;
}

std::size_t
staticSize(const Candidate &c)
{
    std::size_t n = 0;
    for (const auto &code : c.threads)
        n += code.size();
    return n;
}

/** Remove instructions [a, b) of thread @p t, fixing branch targets. */
Candidate
withoutRange(const Candidate &c, std::size_t t, Pc a, Pc b)
{
    Candidate out = c;
    auto &code = out.threads[t];
    code.erase(code.begin() + a, code.begin() + b);
    for (Instruction &i : code) {
        if (i.op != Opcode::branch_eq && i.op != Opcode::branch_ne &&
            i.op != Opcode::jump)
            continue;
        if (i.target >= b)
            i.target -= b - a;
        else if (i.target >= a)
            i.target = a; // fall to the first surviving instruction
    }
    return out;
}

/** Remove thread @p t (renumbering warm procs). */
Candidate
withoutThread(const Candidate &c, std::size_t t)
{
    Candidate out = c;
    out.threads.erase(out.threads.begin() + t);
    std::vector<WarmTerm> warm;
    for (WarmTerm w : out.warm) {
        std::vector<ProcId> procs;
        for (ProcId p : w.procs) {
            if (p == t)
                continue;
            procs.push_back(p > t ? static_cast<ProcId>(p - 1) : p);
        }
        if (procs.empty())
            continue;
        w.procs = std::move(procs);
        warm.push_back(std::move(w));
    }
    out.warm = std::move(warm);
    return out;
}

/** Renumber shared locations to just the accessed ones. */
Candidate
compacted(const Candidate &c)
{
    std::map<Addr, Addr> remap;
    for (const auto &code : c.threads)
        for (const Instruction &i : code)
            if (i.accessesMemory())
                remap.emplace(i.addr, 0);
    if (remap.empty() || remap.size() == c.nlocs)
        return c;
    Addr next = 0;
    for (auto &[old_addr, new_addr] : remap)
        new_addr = next++;

    Candidate out = c;
    out.nlocs = next;
    out.initials.assign(next, 0);
    out.names.assign(next, "");
    for (const auto &[old_addr, new_addr] : remap) {
        out.initials[new_addr] = c.initials[old_addr];
        out.names[new_addr] = c.names[old_addr];
    }
    for (auto &code : out.threads)
        for (Instruction &i : code)
            if (i.accessesMemory())
                i.addr = remap.at(i.addr);
    std::vector<WarmTerm> warm;
    for (WarmTerm w : out.warm) {
        auto it = remap.find(w.addr);
        if (it == remap.end())
            continue; // the location vanished with its accesses
        w.addr = it->second;
        warm.push_back(std::move(w));
    }
    out.warm = std::move(warm);
    return out;
}

/** Location name as the assembler spells it (strip the "[n]" form). */
std::string
warmLocSpelling(const Program &prog, Addr a)
{
    std::string loc = prog.locationName(a);
    if (!loc.empty() && loc.front() == '[')
        loc = loc.substr(1, loc.size() - 2);
    return loc;
}

/** disassemble() plus the warm directives it does not know about. */
std::string
renderWo(const Program &prog, const std::vector<WarmTerm> &warm)
{
    std::string text = disassemble(prog);
    if (warm.empty())
        return text;
    std::string lines;
    for (const WarmTerm &w : warm) {
        lines += "warm " + warmLocSpelling(prog, w.addr);
        for (ProcId p : w.procs)
            lines += strprintf(" %u", p);
        lines += "\n";
    }
    const std::size_t at = text.find("thread ");
    text.insert(at == std::string::npos ? text.size() : at, lines);
    return text;
}

} // namespace

ShrinkOutcome
shrinkCounterexample(const Program &prog,
                     const std::vector<WarmTerm> &warm,
                     const ShrinkPredicate &still_fails,
                     const ShrinkCfg &cfg)
{
    ShrinkOutcome out;
    out.orig_instructions = prog.staticSize();

    Candidate best = fromProgram(prog, warm);
    auto test = [&](const Candidate &c) {
        if (out.runs >= cfg.max_runs || !valid(c))
            return false;
        ++out.runs;
        return still_fails(toProgram(c), c.warm);
    };

    out.reproduced = test(best);
    if (out.reproduced) {
        bool progress = true;
        while (progress && out.runs < cfg.max_runs) {
            progress = false;
            // Pass 1: drop whole processors, highest first so lower
            // ProcIds (and warm renumbering) stay stable.
            for (std::size_t t = best.threads.size(); t-- > 0;) {
                if (best.threads.size() <= 1)
                    break;
                Candidate cand = withoutThread(best, t);
                if (test(cand)) {
                    best = std::move(cand);
                    progress = true;
                }
            }
            // Pass 2: ddmin over each thread's body (the trailing halt
            // is structural and never removed).
            for (std::size_t t = 0; t < best.threads.size(); ++t) {
                Pc body = static_cast<Pc>(best.threads[t].size() - 1);
                for (Pc chunk = body ? (body + 1) / 2 : 0; chunk >= 1;
                     chunk /= 2) {
                    bool removed_one = true;
                    while (removed_one) {
                        removed_one = false;
                        body =
                            static_cast<Pc>(best.threads[t].size() - 1);
                        for (Pc start = 0; start + chunk <= body;
                             start += chunk) {
                            Candidate cand = withoutRange(
                                best, t, start, start + chunk);
                            if (test(cand)) {
                                best = std::move(cand);
                                removed_one = true;
                                progress = true;
                                break; // indices shifted: rescan
                            }
                        }
                    }
                    if (chunk == 1)
                        break;
                }
            }
            // Pass 3: drop now-unreferenced shared locations.
            Candidate cand = compacted(best);
            if (cand.nlocs < best.nlocs && test(cand)) {
                best = std::move(cand);
                progress = true;
            }
        }
    }

    out.instructions = staticSize(best);
    out.procs = static_cast<ProcId>(best.threads.size());
    out.locations = best.nlocs;
    out.program = toProgram(best);
    out.warm = best.warm;
    out.wo_text = renderWo(*out.program, out.warm);
    return out;
}

ShrinkOutcome
shrinkCounterexample(const Program &prog,
                     const std::vector<WarmTerm> &warm,
                     const SystemCfg &sys_cfg, ViolationKind kind,
                     const ShrinkCfg &cfg)
{
    return shrinkCounterexample(
        prog, warm,
        [&](const Program &p, const std::vector<WarmTerm> &w) {
            return reproducesViolation(p, w, sys_cfg, kind);
        },
        cfg);
}

} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/sc_test.dir/sc_test.cc.o"
  "CMakeFiles/sc_test.dir/sc_test.cc.o.d"
  "sc_test"
  "sc_test.pdb"
  "sc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

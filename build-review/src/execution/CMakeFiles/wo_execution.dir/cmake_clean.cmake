file(REMOVE_RECURSE
  "CMakeFiles/wo_execution.dir/execution.cc.o"
  "CMakeFiles/wo_execution.dir/execution.cc.o.d"
  "CMakeFiles/wo_execution.dir/memory_op.cc.o"
  "CMakeFiles/wo_execution.dir/memory_op.cc.o.d"
  "CMakeFiles/wo_execution.dir/trace_io.cc.o"
  "CMakeFiles/wo_execution.dir/trace_io.cc.o.d"
  "libwo_execution.a"
  "libwo_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

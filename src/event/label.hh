/**
 * @file
 * Lazily-materialized event labels.
 *
 * Every event used to carry a formatted std::string label, built (and
 * heap-allocated) at schedule() time even though the label is only ever
 * read under verbose logging or queue-event tracing.  EventLabel stores
 * either a string literal or a small trivially-copyable closure that
 * renders the text on demand; scheduling an event costs no formatting
 * and no allocation, and a run without an attached consumer
 * materializes nothing.  Lazy materializations are counted so a
 * regression test can assert a no-obs run stays at zero.
 */

#ifndef WO_EVENT_LABEL_HH
#define WO_EVENT_LABEL_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>

namespace wo {

/** A debugging label rendered only when someone actually looks at it. */
class EventLabel
{
  public:
    /** Inline capture capacity for lazy labels, in bytes. */
    static constexpr std::size_t inline_capacity = 40;

    /** An empty label. */
    EventLabel() = default;

    /** A literal label: stores the pointer, never formats or copies. */
    EventLabel(const char *literal) : literal_(literal) {}

    /**
     * A lazy label: @p f renders the text when (and only when) the
     * label is materialized.  The capture must be trivially copyable
     * and fit the inline buffer, which keeps EventLabel itself
     * trivially copyable -- an event never owns label storage.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_convertible_v<F, const char *> &&
                  !std::is_same_v<std::decay_t<F>, EventLabel> &&
                  std::is_invocable_r_v<std::string, const std::decay_t<F> &>>>
    EventLabel(F f) // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "lazy label captures must be trivially copyable");
        static_assert(sizeof(Fn) <= inline_capacity,
                      "lazy label capture exceeds the inline buffer");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "lazy label capture over-aligned");
        ::new (static_cast<void *>(buf_)) Fn(f);
        make_ = [](const void *p) {
            return (*std::launder(reinterpret_cast<const Fn *>(p)))();
        };
    }

    /** True when no label was provided. */
    bool empty() const { return !literal_ && !make_; }

    /** Render the label text.  Lazy renders are counted. */
    std::string
    materialize() const
    {
        if (make_) {
            ++lazy_materializations_;
            return make_(buf_);
        }
        return literal_ ? std::string(literal_) : std::string();
    }

    /**
     * Lazy labels rendered since process start.  The regression tests
     * assert the delta over a no-obs run is exactly zero.
     */
    static std::uint64_t lazyMaterializations()
    {
        return lazy_materializations_;
    }

  private:
    const char *literal_ = nullptr;
    std::string (*make_)(const void *) = nullptr;
    alignas(std::max_align_t) unsigned char buf_[inline_capacity];

    inline static std::uint64_t lazy_materializations_ = 0;
};

static_assert(std::is_trivially_copyable_v<EventLabel>,
              "events copy labels by value on every queue move");

} // namespace wo

#endif // WO_EVENT_LABEL_HH

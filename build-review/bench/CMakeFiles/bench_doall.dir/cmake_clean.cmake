file(REMOVE_RECURSE
  "CMakeFiles/bench_doall.dir/bench_doall.cc.o"
  "CMakeFiles/bench_doall.dir/bench_doall.cc.o.d"
  "bench_doall"
  "bench_doall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_doall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace wo {

void
Histogram::sample(std::uint64_t v)
{
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = std::min(min_, v);
    samples_.push_back(v);
    sorted_ = false;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(std::llround(rank));
    return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<Histogram::Bucket>
Histogram::cumulativeBuckets() const
{
    std::vector<Bucket> out;
    if (samples_.empty())
        return out;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    std::size_t i = 0;
    for (std::uint64_t le = 1;; le <<= 1) {
        while (i < samples_.size() && samples_[i] <= le)
            ++i;
        out.push_back({le, i});
        if (le >= max_ || le > (~std::uint64_t{0} >> 1))
            break;
    }
    return out;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~std::uint64_t{0};
    samples_.clear();
    sorted_ = true;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : hists_)
        kv.second.reset();
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto &kv : counters_) {
        out += strprintf("%s.%s %llu\n", name_.c_str(), kv.first.c_str(),
                         static_cast<unsigned long long>(kv.second.value()));
    }
    for (const auto &kv : hists_) {
        const Histogram &h = kv.second;
        out += strprintf(
            "%s.%s count=%llu mean=%.2f min=%llu max=%llu p50=%llu p99=%llu\n",
            name_.c_str(), kv.first.c_str(),
            static_cast<unsigned long long>(h.count()), h.mean(),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()),
            static_cast<unsigned long long>(h.percentile(50)),
            static_cast<unsigned long long>(h.percentile(99)));
    }
    return out;
}

} // namespace wo

# Empty dependencies file for bench_drf0check.
# This may be replaced when dependencies are built.

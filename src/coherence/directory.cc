#include "directory.hh"

#include "common/logging.hh"

namespace wo {

Directory::Directory(NodeId id, Network &net, std::vector<Value> initial,
                     const DirectoryCfg &cfg)
    : id_(id), net_(net), cfg_(cfg), stats_("dir")
{
    lines_.resize(initial.size());
    for (std::size_t a = 0; a < initial.size(); ++a)
        lines_[a].mem = initial[a];
}

Directory::DirLine &
Directory::line(Addr addr)
{
    wo_assert(addr < lines_.size(), "dir line %u out of range", addr);
    return lines_[addr];
}

Value
Directory::memoryValue(Addr addr) const
{
    wo_assert(addr < lines_.size(), "dir line %u out of range", addr);
    return lines_[addr].mem;
}

NodeId
Directory::ownerOf(Addr addr) const
{
    wo_assert(addr < lines_.size(), "dir line %u out of range", addr);
    return lines_[addr].st == LineState::exclusive ? lines_[addr].owner
                                                   : invalid_proc;
}

bool
Directory::quiescent() const
{
    for (const auto &l : lines_)
        if (l.busy || l.collecting || !l.waiting.empty())
            return false;
    return true;
}

std::uint64_t
Directory::busyLines() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        if (l.busy || l.collecting || !l.waiting.empty())
            ++n;
    return n;
}

void
Directory::warmSharer(Addr addr, NodeId node)
{
    DirLine &l = line(addr);
    wo_assert(l.st != LineState::exclusive, "warming an exclusive line");
    l.st = LineState::shared;
    l.sharers.insert(node);
}

void
Directory::handleGetS(const Message &msg)
{
    DirLine &l = line(msg.addr);
    if (l.busy || l.collecting) {
        // Serialize behind the in-flight transaction (including the
        // invalidation-collection window of a previous writer).
        l.waiting.push_back(msg);
        return;
    }
    stats_.counter("get_s").inc();
    switch (l.st) {
      case LineState::uncached:
        if (cfg_.grant_exclusive_clean) {
            // MESI: nobody else holds the line; grant it exclusive-clean
            // so a subsequent write by this processor upgrades silently.
            l.st = LineState::exclusive;
            l.owner = msg.src;
            Message d;
            d.type = MsgType::data_e;
            d.src = id_;
            d.dst = msg.src;
            d.addr = msg.addr;
            d.value = l.mem;
            net_.send(d);
            break;
        }
        [[fallthrough]];
      case LineState::shared: {
        l.st = LineState::shared;
        l.sharers.insert(msg.src);
        Message d;
        d.type = MsgType::data_s;
        d.src = id_;
        d.dst = msg.src;
        d.addr = msg.addr;
        d.value = l.mem;
        net_.send(d);
        break;
      }
      case LineState::exclusive: {
        l.busy = true;
        Message f;
        f.type = MsgType::fwd_get_s;
        f.src = id_;
        f.dst = l.owner;
        f.addr = msg.addr;
        f.requester = msg.src;
        f.is_sync = msg.is_sync;
        net_.send(f);
        break;
      }
    }
}

void
Directory::handleGetX(const Message &msg)
{
    DirLine &l = line(msg.addr);
    if (l.busy || l.collecting) {
        // While invalidations are being collected the line's value is
        // already with the new writer; serialize behind the transaction.
        l.waiting.push_back(msg);
        return;
    }
    stats_.counter("get_x").inc();
    switch (l.st) {
      case LineState::uncached: {
        l.st = LineState::exclusive;
        l.owner = msg.src;
        Message d;
        d.type = MsgType::data_x;
        d.src = id_;
        d.dst = msg.src;
        d.addr = msg.addr;
        d.value = l.mem;
        d.ack_count = 0;
        net_.send(d);
        break;
      }
      case LineState::shared: {
        std::set<NodeId> others = l.sharers;
        others.erase(msg.src);
        l.st = LineState::exclusive;
        l.owner = msg.src;
        l.sharers.clear();
        Message d;
        d.type = MsgType::data_x;
        d.src = id_;
        d.dst = msg.src;
        d.addr = msg.addr;
        d.value = l.mem;
        if (others.empty()) {
            d.ack_count = 0;
            net_.send(d);
            break;
        }
        l.collecting = true;
        l.acks_needed = static_cast<int>(others.size());
        l.acks_got = 0;
        l.writer = msg.src;
        if (cfg_.forward_line_with_invs) {
            // Section 5.2's design point: the line is forwarded in
            // parallel with the invalidations; a MemAck follows once all
            // acks are in.
            d.ack_count = static_cast<int>(others.size());
            net_.send(d);
        } else {
            // Conservative ablation: withhold the grant until every
            // invalidation is acknowledged.
            l.data_deferred = true;
        }
        for (NodeId s : others) {
            Message inv;
            inv.type = MsgType::inv;
            inv.src = id_;
            inv.dst = s;
            inv.addr = msg.addr;
            inv.requester = msg.src;
            net_.send(inv);
        }
        break;
      }
      case LineState::exclusive: {
        l.busy = true;
        Message f;
        f.type = MsgType::fwd_get_x;
        f.src = id_;
        f.dst = l.owner;
        f.addr = msg.addr;
        f.requester = msg.src;
        f.is_sync = msg.is_sync;
        net_.send(f);
        break;
      }
    }
}

void
Directory::handleWbData(const Message &msg)
{
    DirLine &l = line(msg.addr);
    wo_assert(l.busy, "WbData for idle line %u", msg.addr);
    wo_assert(l.st == LineState::exclusive, "WbData for non-exclusive %u",
              msg.addr);
    // The old owner downgraded to shared; the requester joins it.
    l.mem = msg.value;
    l.st = LineState::shared;
    l.sharers = {msg.src, msg.requester};
    l.owner = invalid_proc;
    Message d;
    d.type = MsgType::data_s;
    d.src = id_;
    d.dst = msg.requester;
    d.addr = msg.addr;
    d.value = msg.value;
    net_.send(d);
    unblock(msg.addr);
}

void
Directory::handleTransferAck(const Message &msg)
{
    DirLine &l = line(msg.addr);
    wo_assert(l.busy, "TransferAck for idle line %u", msg.addr);
    l.st = LineState::exclusive;
    l.owner = msg.requester;
    unblock(msg.addr);
}

void
Directory::handleInvAck(const Message &msg)
{
    DirLine &l = line(msg.addr);
    wo_assert(l.collecting, "InvAck for line %u not collecting", msg.addr);
    if (++l.acks_got < l.acks_needed)
        return;
    // All invalidations acknowledged: the write is globally performed.
    if (l.data_deferred) {
        Message d;
        d.type = MsgType::data_x;
        d.src = id_;
        d.dst = l.writer;
        d.addr = msg.addr;
        d.value = l.mem;
        d.ack_count = 0; // performed on arrival
        net_.send(d);
        l.data_deferred = false;
    } else {
        Message ack;
        ack.type = MsgType::mem_ack;
        ack.src = id_;
        ack.dst = l.writer;
        ack.addr = msg.addr;
        net_.send(ack);
    }
    l.collecting = false;
    l.acks_needed = 0;
    l.acks_got = 0;
    l.writer = invalid_proc;
    unblock(msg.addr);
}

void
Directory::handleNack(const Message &msg)
{
    // The owner refused a forwarded request (reserved line): abort the
    // transaction and bounce the requester.
    DirLine &l = line(msg.addr);
    wo_assert(l.busy, "owner Nack for idle line %u", msg.addr);
    stats_.counter("nacks_relayed").inc();
    Message n;
    n.type = MsgType::nack;
    n.src = id_;
    n.dst = msg.requester;
    n.addr = msg.addr;
    net_.send(n);
    unblock(msg.addr);
}

void
Directory::unblock(Addr addr)
{
    DirLine &l = line(addr);
    l.busy = false;
    while (!l.busy && !l.collecting && !l.waiting.empty()) {
        Message m = l.waiting.front();
        l.waiting.pop_front();
        receive(m);
    }
}

void
Directory::receive(const Message &msg)
{
    switch (msg.type) {
      case MsgType::get_s:
        handleGetS(msg);
        break;
      case MsgType::get_x:
        handleGetX(msg);
        break;
      case MsgType::wb_data:
        handleWbData(msg);
        break;
      case MsgType::transfer_ack:
        handleTransferAck(msg);
        break;
      case MsgType::inv_ack:
        handleInvAck(msg);
        break;
      case MsgType::nack:
        handleNack(msg);
        break;
      default:
        wo_panic("directory cannot handle %s", msg.toString().c_str());
    }
}

} // namespace wo

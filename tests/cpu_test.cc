/**
 * @file
 * Processor-level tests: instruction timing, program-order retirement
 * despite out-of-order completion, stall accounting, and the issue rules
 * each policy enforces, observed through single- and dual-processor runs.
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "sys/system.hh"

namespace wo {
namespace {

SystemCfg
cfg(OrderingPolicy pol = OrderingPolicy::wo_drf0, Tick hop = 10)
{
    SystemCfg c;
    c.policy = pol;
    c.net.hop_latency = hop;
    return c;
}

TEST(CpuTiming, LocalInstructionsTakeOneCycle)
{
    ProgramBuilder b("locals", 1);
    b.thread(0).movi(0, 1).addi(0, 0, 1).add(1, 0, 0).halt();
    Program p = b.build();
    System sys(p, cfg());
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // boot at 0, three locals and a halt: finishes at tick 3.
    EXPECT_EQ(r.finish_tick, 3u);
    EXPECT_EQ(r.outcome.regs[0][1], 4);
}

TEST(CpuTiming, DelayConsumesExactCycles)
{
    ProgramBuilder b("delay", 1);
    b.thread(0).work(25).halt();
    Program p = b.build();
    System sys(p, cfg());
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.finish_tick, 26u);
    EXPECT_EQ(r.cpu_stat_total("work_cycles"), 25u);
}

TEST(CpuTiming, LoadBlocksForMissRoundTrip)
{
    ProgramBuilder b("ld", 1);
    b.thread(0).load(0, 0).halt();
    Program p = b.build();
    System sys(p, cfg(OrderingPolicy::wo_drf0, 10));
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // GetS out (10) + DataS back (10): commit at 20, halt shortly after.
    const auto &t = r.timings[0][0];
    EXPECT_EQ(t.issued, 0u);
    EXPECT_EQ(t.committed, 20u);
    EXPECT_EQ(t.performed, 20u);
    EXPECT_GE(r.cpu_stat_total("read_stall_cycles"), 20u);
}

TEST(CpuTiming, StoresAreFireAndForgetUnderWeakPolicies)
{
    ProgramBuilder b("st", 1);
    b.thread(0).store(0, 1).store(1, 2).store(2, 3).halt();
    Program p = b.build();
    System sys(p, cfg(OrderingPolicy::wo_drf0, 10));
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // One cycle per store: the CPU halts at tick 3 while misses drain.
    EXPECT_EQ(r.finish_tick, 3u);
    EXPECT_GT(r.drain_tick, r.finish_tick);
    for (const auto &t : r.timings[0])
        EXPECT_EQ(t.issued, t.reached) << "no issue stalls";
}

TEST(CpuRetirement, ProgramOrderDespiteOutOfOrderCompletion)
{
    // Store (slow miss) then loads of a different, already-written
    // location: loads commit before the store's data arrives, but the
    // retired execution must still list the store first.
    ProgramBuilder b("ooo", 1);
    b.thread(0)
        .store(0, 5)  // local location, still a cold miss
        .store(1, 6)
        .load(2, 0)   // queued behind the store's MSHR
        .halt();
    Program p = b.build();
    System sys(p, cfg());
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    const auto &po = r.execution.procOps(0);
    ASSERT_EQ(po.size(), 3u);
    EXPECT_TRUE(r.execution.op(po[0]).isWrite());
    EXPECT_EQ(r.execution.op(po[0]).addr, 0u);
    EXPECT_EQ(r.execution.op(po[2]).value_read, 5);
}

TEST(CpuPolicy, ScBlocksPerAccess)
{
    ProgramBuilder b("sc-two", 1);
    b.thread(0).store(0, 1).store(1, 2).halt();
    Program p = b.build();
    System sc(p, cfg(OrderingPolicy::sc, 10));
    auto rs = sc.run();
    ASSERT_TRUE(rs.completed);
    // Second store may not issue until the first globally performs.
    EXPECT_GE(rs.timings[0][1].issued, rs.timings[0][0].performed);

    System weak(p, cfg(OrderingPolicy::wo_drf0, 10));
    auto rw = weak.run();
    EXPECT_LT(rw.timings[0][1].issued, rw.timings[0][0].performed);
}

TEST(CpuPolicy, Def1SyncWaitsForPriorAccesses)
{
    ProgramBuilder b("def1-sync", 1);
    b.thread(0).store(0, 1).syncStore(1, 1).halt();
    Program p = b.build();
    System sys(p, cfg(OrderingPolicy::wo_def1, 10));
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.timings[0][1].issued, r.timings[0][0].performed);
    EXPECT_GT(r.cpu_stat_total("sync_issue_stall_cycles"), 0u);
}

TEST(CpuPolicy, Drf0SyncIssuesImmediatelyAndWaitsForCommitOnly)
{
    ProgramBuilder b("drf0-sync", 1);
    b.thread(0).store(0, 1).syncStore(1, 1).store(2, 3).halt();
    Program p = b.build();
    System sys(p, cfg(OrderingPolicy::wo_drf0, 10));
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    const auto &st = r.timings[0][0];
    const auto &sy = r.timings[0][1];
    const auto &post = r.timings[0][2];
    EXPECT_LT(sy.issued, st.performed) << "no wait for prior accesses";
    EXPECT_GE(post.issued, sy.committed) << "but waits for sync commit";
    EXPECT_EQ(r.cpu_stat_total("sync_issue_stall_cycles"), 0u);
    EXPECT_GT(r.cpu_stat_total("sync_commit_stall_cycles"), 0u);
}

TEST(CpuStats, OpCountsAreExact)
{
    ProgramBuilder b("counts", 1);
    b.thread(0)
        .store(0, 1)
        .load(0, 0)
        .syncStore(1, 1)
        .testAndSet(1, 1)
        .halt();
    Program p = b.build();
    System sys(p, cfg());
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.cpu_stat_total("data_ops"), 2u);
    EXPECT_EQ(r.cpu_stat_total("sync_ops"), 2u);
}

TEST(CpuTiming, TimingsAlignWithExecution)
{
    ProgramBuilder b("align", 2);
    b.thread(0).store(0, 1).load(1, 0).halt();
    b.thread(1).store(1, 2).halt();
    Program p = b.build();
    System sys(p, cfg());
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    for (ProcId q = 0; q < 2; ++q) {
        ASSERT_EQ(r.timings[q].size(), r.execution.procOps(q).size());
        for (std::size_t i = 0; i < r.timings[q].size(); ++i) {
            const auto &t = r.timings[q][i];
            const auto &op = r.execution.op(r.execution.procOps(q)[i]);
            EXPECT_EQ(t.addr, op.addr);
            EXPECT_EQ(t.kind, op.kind);
            EXPECT_EQ(t.committed, op.commit_tick);
            EXPECT_LE(t.reached, t.issued);
            EXPECT_LE(t.issued, t.committed);
            EXPECT_LE(t.committed, t.performed);
        }
    }
}

} // namespace
} // namespace wo

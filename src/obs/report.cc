#include "report.hh"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "common/logging.hh"
#include "obs/artifact.hh"
#include "obs/json.hh"
#include "obs/timeline.hh"

namespace wo {

namespace {

bool
readTextFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default:  out.push_back(c);
        }
    return out;
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

double
numberAt(const Json &obj, const char *key, double dflt = 0)
{
    const Json *v = obj.find(key);
    return v && v->isNumber() ? v->numberValue() : dflt;
}

std::uint64_t
uintAt(const Json &obj, const char *key, std::uint64_t dflt = 0)
{
    const Json *v = obj.find(key);
    return v && v->isNumber() ? v->uintValue() : dflt;
}

std::string
stringAt(const Json &obj, const char *key)
{
    const Json *v = obj.find(key);
    return v && v->isString() ? v->stringValue() : std::string();
}

// --- the merged campaign data model ---------------------------------

struct CellRow
{
    std::string key, verdict;
    double ms = 0;
    std::uint64_t mat_us = 0, run_us = 0, shrink_us = 0;
};

struct FailRow
{
    std::string dedup, kind, cell, file;
    std::uint64_t count = 0, insns = 0, orig_insns = 0;
};

struct Data
{
    Json header = Json();  //!< journal campaign header (or null)
    Json summary = Json(); //!< campaign.summary.json (or null)
    std::vector<CellRow> cells;
    std::vector<FailRow> failures; //!< deduplicated, discovery order
    std::vector<std::pair<std::string, Json>> benches;
    std::vector<std::string> artifacts; //!< relative links
};

void
loadJournal(const std::string &path, Data &d)
{
    std::string text;
    if (!readTextFile(path, text))
        return;
    d.artifacts.push_back(baseName(path));
    std::map<std::string, std::size_t> fail_index;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string_view line(text.data() + start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue; // a torn tail line is expected after a crash
        const std::string type = stringAt(p.value, "type");
        if (type == "campaign") {
            d.header = p.value;
        } else if (type == "cell") {
            CellRow c;
            c.key = stringAt(p.value, "key");
            c.verdict = stringAt(p.value, "verdict");
            c.ms = numberAt(p.value, "ms");
            c.mat_us = uintAt(p.value, "mat_us");
            c.run_us = uintAt(p.value, "run_us");
            c.shrink_us = uintAt(p.value, "shrink_us");
            d.cells.push_back(std::move(c));
        } else if (type == "failure") {
            const std::string dedup = stringAt(p.value, "dedup");
            auto it = fail_index.find(dedup);
            if (it == fail_index.end()) {
                FailRow f;
                f.dedup = dedup;
                f.kind = stringAt(p.value, "kind");
                f.cell = stringAt(p.value, "cell");
                f.file = stringAt(p.value, "file");
                f.insns = uintAt(p.value, "insns");
                f.orig_insns = uintAt(p.value, "orig_insns");
                f.count = 1;
                fail_index[dedup] = d.failures.size();
                d.failures.push_back(std::move(f));
            } else {
                ++d.failures[it->second].count;
            }
        }
    }
}

Data
loadData(const ReportCfg &cfg)
{
    Data d;
    loadJournal(cfg.out_dir + "/campaign.journal.jsonl", d);
    std::string text;
    if (readTextFile(cfg.out_dir + "/campaign.summary.json", text)) {
        JsonParseResult p = jsonParse(text);
        if (p.ok) {
            d.summary = std::move(p.value);
            d.artifacts.push_back("campaign.summary.json");
        }
    }
    for (const char *opt :
         {"campaign.trace.json", "campaign.folded.txt"})
        if (std::filesystem::exists(cfg.out_dir + "/" + opt))
            d.artifacts.push_back(opt);

    std::set<std::string> bench_paths(cfg.bench_files.begin(),
                                      cfg.bench_files.end());
    std::error_code ec;
    for (const auto &e :
         std::filesystem::directory_iterator(cfg.out_dir, ec)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 + 6 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            bench_paths.insert(e.path().string());
    }
    for (const std::string &bp : bench_paths) {
        if (!readTextFile(bp, text))
            continue;
        JsonParseResult p = jsonParse(text);
        if (p.ok && p.value.isObject())
            d.benches.emplace_back(baseName(bp), std::move(p.value));
    }
    return d;
}

// --- verdict census -------------------------------------------------

/** Verdict display classes, in table order. */
constexpr int num_classes = 6;
const char *const class_name[num_classes] = {
    "clean", "race", "hw", "deadlock", "livelock", "error"};
const char *const class_icon[num_classes] = {"&#10003;", "&#8767;",
                                             "&#10007;", "&#8856;",
                                             "&#8634;",  "&#63;"};

int
classOf(const std::string &verdict)
{
    if (verdict == "clean")
        return 0;
    if (verdict == "race")
        return 1;
    if (verdict.rfind("hw", 0) == 0)
        return 2;
    if (verdict == "deadlock")
        return 3;
    if (verdict == "livelock")
        return 4;
    return 5;
}

/** "litmus:iriw|drf0|n7|..." -> program "litmus:iriw", policy "drf0". */
void
splitKey(const std::string &key, std::string &program,
         std::string &policy)
{
    const std::size_t p1 = key.find('|');
    program = key.substr(0, p1);
    if (p1 == std::string::npos) {
        policy = "?";
        return;
    }
    const std::size_t p2 = key.find('|', p1 + 1);
    policy = key.substr(p1 + 1, p2 == std::string::npos
                                    ? std::string::npos
                                    : p2 - p1 - 1);
}

// --- section renderers ----------------------------------------------

std::string
statTiles(const Data &d)
{
    std::uint64_t ran = 0, skipped = 0, clean = 0, hw_cells = 0;
    double cps = 0, p50 = 0, p99 = 0;
    if (d.summary.isObject()) {
        ran = uintAt(d.summary, "ran");
        skipped = uintAt(d.summary, "skipped");
        clean = uintAt(d.summary, "clean");
        hw_cells = uintAt(d.summary, "hw");
        cps = numberAt(d.summary, "cells_per_sec");
        p50 = numberAt(d.summary, "lat_p50_ms");
        p99 = numberAt(d.summary, "lat_p99_ms");
    } else {
        std::vector<double> lat;
        for (const CellRow &c : d.cells) {
            ++ran;
            const int k = classOf(c.verdict);
            clean += k == 0;
            hw_cells += k == 2;
            lat.push_back(c.ms);
        }
        std::sort(lat.begin(), lat.end());
        if (!lat.empty()) {
            p50 = lat[lat.size() / 2];
            p99 = lat[std::min(lat.size() - 1,
                               static_cast<std::size_t>(
                                   0.99 * static_cast<double>(
                                              lat.size())))];
        }
    }
    std::string out = "<div class=tiles>\n";
    const auto tile = [&](const std::string &value, const char *label,
                          const char *cls = "") {
        out += strprintf("<div class=tile><div class=\"tv %s\">%s</div>"
                         "<div class=tl>%s</div></div>\n",
                         cls, value.c_str(), label);
    };
    tile(strprintf("%llu", static_cast<unsigned long long>(ran)),
         "cells run");
    if (skipped > 0)
        tile(strprintf("%llu",
                       static_cast<unsigned long long>(skipped)),
             "resumed");
    tile(strprintf("%llu", static_cast<unsigned long long>(clean)),
         "clean");
    tile(strprintf("%zu", d.failures.size()), "unique failures",
         d.failures.empty() ? "ok" : "bad");
    if (hw_cells > 0)
        tile(strprintf("%llu",
                       static_cast<unsigned long long>(hw_cells)),
             "hw-failing cells", "bad");
    if (cps > 0)
        tile(strprintf("%.0f", cps), "cells / s");
    tile(strprintf("%.2f / %.2f", p50, p99), "cell p50 / p99 ms");
    out += "</div>\n";
    return out;
}

std::string
outcomeMatrix(const Data &d)
{
    // program -> policy -> census.  Policies keep first-seen order so
    // the columns match the campaign's --policies list.
    std::vector<std::string> policies;
    std::map<std::string, std::map<std::string,
                                   std::array<std::uint64_t,
                                              num_classes>>> matrix;
    for (const CellRow &c : d.cells) {
        std::string program, policy;
        splitKey(c.key, program, policy);
        if (std::find(policies.begin(), policies.end(), policy) ==
            policies.end())
            policies.push_back(policy);
        auto &census = matrix[program][policy];
        ++census[static_cast<std::size_t>(classOf(c.verdict))];
    }
    if (matrix.empty())
        return "<p class=muted>no journaled cells.</p>\n";

    std::string out = "<table class=matrix><thead><tr>"
                      "<th>program</th>";
    for (const std::string &p : policies)
        out += "<th>" + htmlEscape(p) + "</th>";
    out += "</tr></thead><tbody>\n";
    for (const auto &[program, row] : matrix) {
        out += "<tr><td class=prog>" + htmlEscape(program) + "</td>";
        for (const std::string &p : policies) {
            out += "<td>";
            const auto it = row.find(p);
            if (it == row.end()) {
                out += "<span class=muted>&mdash;</span>";
            } else {
                for (int k = 0; k < num_classes; ++k)
                    if (it->second[static_cast<std::size_t>(k)] > 0)
                        out += strprintf(
                            "<span class=\"pill c-%s\" data-tip=\"%s\">"
                            "%s&nbsp;%llu</span> ",
                            class_name[k], class_name[k],
                            class_icon[k],
                            static_cast<unsigned long long>(
                                it->second[static_cast<std::size_t>(
                                    k)]));
            }
            out += "</td>";
        }
        out += "</tr>\n";
    }
    out += "</tbody></table>\n";
    return out;
}

std::string
latencyHistogram(const Data &d)
{
    if (d.cells.empty())
        return std::string();
    // Power-of-two microsecond buckets, like the live /metrics view.
    constexpr int nb = 28;
    std::uint64_t bucket[nb] = {};
    for (const CellRow &c : d.cells) {
        const std::uint64_t us =
            c.ms <= 0 ? 0 : static_cast<std::uint64_t>(c.ms * 1000.0);
        int b = 0;
        while (b + 1 < nb && (std::uint64_t{1} << b) < us)
            ++b;
        ++bucket[b];
    }
    int lo = 0, hi = nb - 1;
    while (lo < hi && bucket[lo] == 0)
        ++lo;
    while (hi > lo && bucket[hi] == 0)
        --hi;
    const int n = hi - lo + 1;
    std::uint64_t peak = 1;
    for (int b = lo; b <= hi; ++b)
        peak = std::max(peak, bucket[b]);

    // label_room keeps the peak's direct label inside the viewBox:
    // the tallest bar tops out 12px below the plot ceiling.
    const double bw = 26, gap = 2, ph = 150, axis = 22, pad = 8;
    const double label_room = 12;
    const double w = pad * 2 + n * bw;
    const double h = pad + ph + axis;
    std::string svg = strprintf(
        "<svg class=chart viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
        "height=\"%.0f\" role=\"img\" aria-label=\"per-cell latency "
        "histogram\">\n",
        w, h, w, h);
    svg += strprintf("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                     "y2=\"%.1f\" class=axis />\n",
                     pad, pad + ph + 0.5, w - pad, pad + ph + 0.5);
    for (int b = lo; b <= hi; ++b) {
        const double bh =
            (ph - label_room) * static_cast<double>(bucket[b]) /
            static_cast<double>(peak);
        const double x = pad + (b - lo) * bw + gap / 2;
        const double y = pad + ph - bh;
        const double bwid = bw - gap, r = std::min(3.0, bh);
        const double le_ms =
            static_cast<double>(std::uint64_t{1} << b) / 1000.0;
        // Rounded top, square bottom: data ends round, baseline sits.
        svg += strprintf(
            "<path class=bar d=\"M%.1f %.1f L%.1f %.1f Q%.1f %.1f "
            "%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z\" "
            "data-tip=\"&le; %.3g ms: %llu cells\"/>\n",
            x, pad + ph, x, y + r, x, y, x + r, y, x + bwid - r, y,
            x + bwid, y, x + bwid, y + r, x + bwid, pad + ph,
            le_ms, static_cast<unsigned long long>(bucket[b]));
        if (bucket[b] == peak)
            svg += strprintf("<text class=dlabel x=\"%.1f\" y=\"%.1f\" "
                             "text-anchor=\"middle\">%llu</text>\n",
                             x + bwid / 2, y - 4,
                             static_cast<unsigned long long>(peak));
        if ((b - lo) % 2 == 0)
            svg += strprintf("<text class=alabel x=\"%.1f\" y=\"%.1f\" "
                             "text-anchor=\"middle\">%.3g</text>\n",
                             x + bwid / 2, pad + ph + 14, le_ms);
    }
    svg += strprintf("<text class=alabel x=\"%.1f\" y=\"%.1f\" "
                     "text-anchor=\"end\">ms (&le; bucket)</text>\n",
                     w - pad, h - 4);
    svg += "</svg>\n";

    // The table view (relief for the chart; also the a11y path).
    std::string table = "<details><summary>table view</summary>"
                        "<table><thead><tr><th>&le; ms</th>"
                        "<th>cells</th></tr></thead><tbody>";
    for (int b = lo; b <= hi; ++b)
        table += strprintf(
            "<tr><td>%.3g</td><td>%llu</td></tr>",
            static_cast<double>(std::uint64_t{1} << b) / 1000.0,
            static_cast<unsigned long long>(bucket[b]));
    table += "</tbody></table></details>\n";
    return svg + table;
}

std::string
laneDecomposition(const Data &d)
{
    const Json *lanes =
        d.summary.isObject() ? d.summary.find("lanes") : nullptr;
    if (!lanes || !lanes->isArray() || lanes->items().empty())
        return "<p class=muted>no lane summary (campaign.summary.json "
               "not found).</p>\n";

    double max_wall = 0;
    for (const Json &l : lanes->items())
        max_wall = std::max(max_wall, numberAt(l, "wall_ms"));
    if (max_wall <= 0)
        return "<p class=muted>lanes recorded no wall time.</p>\n";

    const double label_w = 110, plot_w = 520, row_h = 26, bar_h = 14;
    const double w = label_w + plot_w + 10;
    const double h = lanes->items().size() * row_h + 6;
    std::string svg = strprintf(
        "<svg class=chart viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
        "height=\"%.0f\" role=\"img\" aria-label=\"per-lane span "
        "decomposition\">\n",
        w, h, w, h);
    double y = 3;
    for (const Json &l : lanes->items()) {
        const std::string lane = stringAt(l, "lane");
        const double wall = numberAt(l, "wall_ms");
        svg += strprintf("<text class=llabel x=\"%.1f\" y=\"%.1f\" "
                         "text-anchor=\"end\">%s</text>\n",
                         label_w - 8, y + bar_h - 3,
                         htmlEscape(lane).c_str());
        double x = label_w;
        const Json *spans = l.find("spans");
        for (int k = 0; k < num_span_kinds; ++k) {
            const char *kn = spanKindName(static_cast<SpanKind>(k));
            const Json *s = spans ? spans->find(kn) : nullptr;
            if (!s)
                continue;
            const double ms = numberAt(*s, "ms");
            const double seg = plot_w * ms / max_wall;
            if (seg < 0.5) {
                x += seg;
                continue;
            }
            svg += strprintf(
                "<rect class=seg x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                "height=\"%.0f\" rx=\"2\" fill=\"var(--s%d)\" "
                "data-tip=\"%s: %.1f ms (%.0f%% of %s)\"/>\n",
                x, y, std::max(seg - 2.0, 1.0), bar_h, k + 1, kn, ms,
                wall > 0 ? 100.0 * ms / wall : 0.0,
                htmlEscape(lane).c_str());
            x += seg;
        }
        y += row_h;
    }
    svg += "</svg>\n";

    std::string legend = "<div class=legend>";
    for (int k = 0; k < num_span_kinds; ++k)
        legend += strprintf(
            "<span class=key><span class=swatch "
            "style=\"background:var(--s%d)\"></span>%s</span>",
            k + 1, spanKindName(static_cast<SpanKind>(k)));
    legend += "</div>\n";

    std::string table = "<details><summary>table view</summary>"
                        "<table><thead><tr><th>lane</th>"
                        "<th>wall ms</th>";
    for (int k = 0; k < num_span_kinds; ++k)
        table += strprintf("<th>%s ms</th>",
                           spanKindName(static_cast<SpanKind>(k)));
    table += "</tr></thead><tbody>";
    for (const Json &l : lanes->items()) {
        table += "<tr><td>" + htmlEscape(stringAt(l, "lane")) +
                 strprintf("</td><td>%.1f</td>", numberAt(l, "wall_ms"));
        const Json *spans = l.find("spans");
        for (int k = 0; k < num_span_kinds; ++k) {
            const Json *s =
                spans ? spans->find(spanKindName(
                            static_cast<SpanKind>(k)))
                      : nullptr;
            table += strprintf("<td>%.1f</td>",
                               s ? numberAt(*s, "ms") : 0.0);
        }
        table += "</tr>";
    }
    table += "</tbody></table></details>\n";
    return legend + svg + table;
}

std::string
violationBrowser(const ReportCfg &cfg, const Data &d)
{
    if (d.failures.empty())
        return "<p class=\"status ok\">&#10003; hardware clean: no "
               "violation survived shrinking.</p>\n";
    std::string out;
    for (const FailRow &f : d.failures) {
        out += "<div class=fail>\n";
        out += strprintf(
            "<div class=fhead><span class=\"status bad\">&#9888; "
            "%s</span><span class=muted> &times;%llu</span>"
            "<span class=fcell>%s</span></div>\n",
            htmlEscape(f.kind).c_str(),
            static_cast<unsigned long long>(f.count),
            htmlEscape(f.cell).c_str());
        out += strprintf(
            "<div class=muted>minimized to %llu instructions%s "
            "&mdash; %s</div>\n",
            static_cast<unsigned long long>(f.insns),
            f.orig_insns > f.insns
                ? strprintf(" (from %llu)",
                            static_cast<unsigned long long>(
                                f.orig_insns))
                      .c_str()
                : "",
            htmlEscape(baseName(f.file)).c_str());

        // Evidence lives next to the journal; the journal's recorded
        // path may be relative to the campaign's cwd instead.
        const auto resolve = [&](const std::string &p) {
            if (std::filesystem::exists(p))
                return p;
            return cfg.out_dir + "/" + baseName(p);
        };
        std::string text;
        if (readTextFile(resolve(f.file), text))
            out += "<details open><summary>shrunk reproducer</summary>"
                   "<pre class=wo>" +
                   htmlEscape(text) + "</pre></details>\n";
        const std::string stem =
            f.file.size() > 3 ? f.file.substr(0, f.file.size() - 3)
                              : f.file;
        if (readTextFile(resolve(stem + ".hb.svg"), text))
            out += "<details open><summary>happens-before witness"
                   "</summary><div class=hbcard>" +
                   text + "</div></details>\n";
        if (readTextFile(resolve(stem + ".monitor.txt"), text))
            out += "<details><summary>monitor report</summary>"
                   "<pre class=wo>" +
                   htmlEscape(text) + "</pre></details>\n";
        out += "</div>\n";
    }
    return out;
}

std::string
benchTables(const Data &d)
{
    if (d.benches.empty())
        return std::string();
    std::string out = "<h2>bench artifacts</h2>\n";
    for (const auto &[name, j] : d.benches) {
        out += "<h3>" + htmlEscape(name) + "</h3>\n";
        const Json *table = j.find("table");
        if (table && table->isArray() && !table->items().empty() &&
            table->items().front().isObject()) {
            out += "<table><thead><tr>";
            for (const auto &[col, v] :
                 table->items().front().members()) {
                (void)v;
                out += "<th>" + htmlEscape(col) + "</th>";
            }
            out += "</tr></thead><tbody>";
            for (const Json &row : table->items()) {
                out += "<tr>";
                for (const auto &[col, v] : row.members()) {
                    (void)col;
                    out += "<td>" +
                           htmlEscape(v.isString() ? v.stringValue()
                                                   : v.dump(0)) +
                           "</td>";
                }
                out += "</tr>";
            }
            out += "</tbody></table>\n";
        } else {
            out += "<pre class=wo>" + htmlEscape(j.dump(1)) +
                   "</pre>\n";
        }
    }
    return out;
}

// The style block follows the dataviz reference palette: roles as CSS
// custom properties, dark mode selected (not flipped) from the same
// ramps, status colors reserved for verdict state.
const char *const style_block = R"css(
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --s4: #eda100; --s5: #e87ba4; --s6: #008300;
  --good: #0ca30c; --warn: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --s4: #c98500; --s5: #d55181; --s6: #008300;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page);
  color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
h3 { font-size: 13px; margin: 16px 0 6px; color: var(--ink2); }
.sub { color: var(--ink2); margin: 0 0 16px; }
.muted { color: var(--muted); }
section, .tile, .fail { background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; }
section { padding: 14px 16px; margin: 12px 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { padding: 10px 16px; min-width: 110px; }
.tv { font-size: 22px; }
.tv.ok { color: var(--good); } .tv.bad { color: var(--critical); }
.tl { font-size: 12px; color: var(--ink2); }
table { border-collapse: collapse; font-size: 13px; margin: 6px 0; }
th, td { text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--grid); font-weight: normal; }
th { color: var(--muted); font-variant-numeric: tabular-nums; }
td { font-variant-numeric: tabular-nums; }
.matrix .prog { font-family: ui-monospace, Menlo, monospace;
  font-size: 12px; }
.pill { white-space: nowrap; font-size: 12px; }
.c-clean { color: var(--good); }
.c-race { color: var(--warn); }
.c-hw { color: var(--critical); }
.c-deadlock, .c-livelock { color: var(--serious); }
.c-error { color: var(--muted); }
.pill { border: 1px solid var(--border); border-radius: 9px;
  padding: 0 6px; }
.chart { display: block; margin: 8px 0; max-width: 100%; }
.chart .bar { fill: var(--s1); }
.chart .bar:hover, .chart .seg:hover { opacity: 0.8; }
.chart .axis { stroke: var(--axis); stroke-width: 1; }
.chart .alabel { fill: var(--muted); font-size: 10px; }
.chart .dlabel { fill: var(--ink2); font-size: 10px; }
.chart .llabel { fill: var(--ink2); font-size: 11px; }
.legend { display: flex; flex-wrap: wrap; gap: 12px;
  font-size: 12px; color: var(--ink2); margin: 4px 0; }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }
.status.ok { color: var(--good); }
.status.bad { color: var(--critical); }
.fail { padding: 12px 14px; margin: 10px 0; }
.fhead { display: flex; gap: 10px; align-items: baseline; }
.fcell { font-family: ui-monospace, Menlo, monospace;
  font-size: 11px; color: var(--muted); overflow-wrap: anywhere; }
pre.wo { background: var(--page); border: 1px solid var(--grid);
  border-radius: 6px; padding: 10px; font-size: 12px;
  overflow-x: auto; }
.hbcard { background: #fcfcfb; border: 1px solid var(--grid);
  border-radius: 6px; padding: 6px; overflow-x: auto; }
details summary { cursor: pointer; color: var(--ink2);
  font-size: 12px; margin: 6px 0; }
.links a { color: var(--s1); margin-right: 14px; }
#tip { position: fixed; pointer-events: none; display: none;
  background: var(--ink); color: var(--page);
  padding: 3px 8px; border-radius: 4px; font-size: 12px;
  z-index: 10; max-width: 340px; }
)css";

// The hover layer: one tooltip div fed by data-tip attributes.
const char *const script_block = R"js(
const tip = document.getElementById('tip');
document.addEventListener('mouseover', e => {
  const t = e.target.closest('[data-tip]');
  if (!t) { tip.style.display = 'none'; return; }
  tip.textContent = t.getAttribute('data-tip');
  tip.style.display = 'block';
});
document.addEventListener('mousemove', e => {
  if (tip.style.display !== 'block') return;
  const pad = 12;
  let x = e.clientX + pad, y = e.clientY + pad;
  const r = tip.getBoundingClientRect();
  if (x + r.width > innerWidth - 4) x = e.clientX - r.width - pad;
  if (y + r.height > innerHeight - 4) y = e.clientY - r.height - pad;
  tip.style.left = x + 'px'; tip.style.top = y + 'px';
});
)js";

} // namespace

std::string
buildCampaignReportHtml(const ReportCfg &cfg, std::string *error)
{
    Data d = loadData(cfg);
    if (d.cells.empty() && !d.summary.isObject() &&
        d.failures.empty()) {
        if (error)
            *error = "nothing to report in '" + cfg.out_dir +
                     "': no campaign.journal.jsonl or "
                     "campaign.summary.json";
        return std::string();
    }

    std::string sub;
    if (d.header.isObject()) {
        sub = strprintf(
            "seed %llu &middot; %llu-cell budget &middot; %llu jobs",
            static_cast<unsigned long long>(uintAt(d.header, "seed")),
            static_cast<unsigned long long>(uintAt(d.header, "cells")),
            static_cast<unsigned long long>(uintAt(d.header, "jobs")));
        const std::string pols = stringAt(d.header, "policies");
        if (!pols.empty())
            sub += " &middot; policies " + htmlEscape(pols);
        if (d.header.find("inject_reserve_bug"))
            sub += " &middot; <span class=\"status bad\">seeded "
                   "reserve-bit fault</span>";
    }

    std::string html;
    html += "<!doctype html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            "<meta name=\"viewport\" content=\"width=device-width, "
            "initial-scale=1\">\n<title>" +
            htmlEscape(cfg.title) + "</title>\n<style>" + style_block +
            "</style>\n</head>\n<body>\n<main>\n";
    html += "<h1>" + htmlEscape(cfg.title) + "</h1>\n";
    if (!sub.empty())
        html += "<p class=sub>" + sub + "</p>\n";
    html += statTiles(d);
    html += "<h2>outcome matrix</h2>\n<section>" + outcomeMatrix(d) +
            "</section>\n";
    html += "<h2>per-cell latency</h2>\n<section>" +
            latencyHistogram(d) + "</section>\n";
    html += "<h2>where the fleet's time went</h2>\n<section>" +
            laneDecomposition(d) + "</section>\n";
    html += "<h2>violations</h2>\n" + violationBrowser(cfg, d);
    html += benchTables(d);
    if (!d.artifacts.empty()) {
        html += "<h2>artifacts</h2>\n<p class=links>";
        for (const std::string &a : d.artifacts)
            html += "<a href=\"" + a + "\">" + htmlEscape(a) + "</a>";
        html += "</p>\n";
    }
    html += "</main>\n<div id=tip></div>\n<script>" + std::string(
                script_block) + "</script>\n</body>\n</html>\n";
    return html;
}

std::string
writeCampaignReport(const ReportCfg &cfg, std::string *error)
{
    const std::string html = buildCampaignReportHtml(cfg, error);
    if (html.empty())
        return std::string();
    const std::string path = cfg.html_path.empty()
                                 ? cfg.out_dir + "/report.html"
                                 : cfg.html_path;
    if (!writeFile(path, html)) {
        if (error)
            *error = "cannot write " + path;
        return std::string();
    }
    return path;
}

} // namespace wo

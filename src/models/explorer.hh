/**
 * @file
 * Exhaustive state-space exploration over any abstract operational model.
 *
 * The explorer walks the full reachable state graph of a model (visited-set
 * pruned, so spin loops and other cycles terminate) and collects the set of
 * observable Outcomes of final states.  The outcome *set* is the object the
 * new definition of weak ordering talks about: hardware "appears
 * sequentially consistent" to a program exactly when its outcome set is a
 * subset of the SC machine's outcome set for that program.
 *
 * Model concept:
 *     struct State;                         // copyable machine state
 *     State initial() const;
 *     bool isFinal(const State&) const;     // halted and quiescent
 *     std::vector<State> successors(const State&) const;
 *     Outcome outcome(const State&) const;  // defined for final states
 *     std::string encode(const State&) const; // injective
 *     static const char *name();
 */

#ifndef WO_MODELS_EXPLORER_HH
#define WO_MODELS_EXPLORER_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "execution/execution.hh"

namespace wo {

/** Exploration limits. */
struct ExploreCfg
{
    /** Abort after visiting this many states (0 = unlimited). */
    std::uint64_t max_states = 5'000'000;
};

/** What exploration found. */
struct ExploreResult
{
    std::set<Outcome> outcomes;   //!< outcomes of all reachable final states
    std::uint64_t states = 0;     //!< states visited
    bool truncated = false;       //!< state budget hit: outcomes incomplete
    bool stuck = false;           //!< some non-final state had no successors

    /** True iff every outcome also appears in @p reference. */
    bool
    subsetOf(const ExploreResult &reference) const
    {
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                return false;
        return true;
    }

    /** Outcomes in this result but not in @p reference. */
    std::set<Outcome>
    minus(const ExploreResult &reference) const
    {
        std::set<Outcome> extra;
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                extra.insert(o);
        return extra;
    }
};

/**
 * Search for a shortest transition chain from the initial state to a
 * final state whose outcome equals @p target (BFS with parent pointers).
 * Returns the state chain, initial first; empty if unreachable within the
 * budget.  Use Model::dump to render the chain -- this is the "why is
 * this outcome possible" explanation a litmus investigation wants.
 */
template <typename Model>
std::vector<typename Model::State>
witnessChain(const Model &model, const Outcome &target,
             const ExploreCfg &cfg = {})
{
    struct Node
    {
        typename Model::State state;
        std::size_t parent; // index into nodes; SIZE_MAX for the root
    };
    std::vector<Node> nodes;
    std::unordered_set<std::string> visited;
    std::deque<std::size_t> frontier;

    auto push = [&](typename Model::State s, std::size_t parent) {
        std::string key = model.encode(s);
        if (!visited.insert(std::move(key)).second)
            return;
        nodes.push_back(Node{std::move(s), parent});
        frontier.push_back(nodes.size() - 1);
    };

    push(model.initial(), static_cast<std::size_t>(-1));
    std::uint64_t seen = 0;
    while (!frontier.empty()) {
        if (cfg.max_states && ++seen > cfg.max_states)
            break;
        const std::size_t at = frontier.front();
        frontier.pop_front();
        if (model.isFinal(nodes[at].state) &&
            model.outcome(nodes[at].state) == target) {
            std::vector<typename Model::State> chain;
            for (std::size_t n = at; n != static_cast<std::size_t>(-1);
                 n = nodes[n].parent)
                chain.push_back(nodes[n].state);
            std::reverse(chain.begin(), chain.end());
            return chain;
        }
        for (auto &succ : model.successors(nodes[at].state))
            push(std::move(succ), at);
    }
    return {};
}

/** Exhaustively explore @p model and collect final-state outcomes. */
template <typename Model>
ExploreResult
exploreOutcomes(const Model &model, const ExploreCfg &cfg = {})
{
    ExploreResult result;
    std::unordered_set<std::string> visited;
    std::deque<typename Model::State> frontier;

    auto push = [&](typename Model::State s) {
        std::string key = model.encode(s);
        if (visited.insert(std::move(key)).second)
            frontier.push_back(std::move(s));
    };

    push(model.initial());
    while (!frontier.empty()) {
        if (cfg.max_states && result.states >= cfg.max_states) {
            result.truncated = true;
            warn("%s: exploration truncated at %llu states", Model::name(),
                 static_cast<unsigned long long>(result.states));
            break;
        }
        typename Model::State s = std::move(frontier.front());
        frontier.pop_front();
        ++result.states;

        if (model.isFinal(s)) {
            result.outcomes.insert(model.outcome(s));
            continue;
        }
        auto succs = model.successors(s);
        if (succs.empty()) {
            // A non-final state with nothing enabled: the machine is stuck
            // (e.g. a deadlock in a blocking implementation model).
            result.stuck = true;
            continue;
        }
        for (auto &n : succs)
            push(std::move(n));
    }
    return result;
}

} // namespace wo

#endif // WO_MODELS_EXPLORER_HH

/**
 * @file
 * The idealized architecture of the paper's Section 4: every memory access
 * executes atomically and in program order.  This model plays two roles:
 * it produces the reference outcome set that defines "appears sequentially
 * consistent", and its executions are the idealized executions over which
 * DRF0's happens-before condition is evaluated.
 */

#ifndef WO_MODELS_SC_MODEL_HH
#define WO_MODELS_SC_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "execution/execution.hh"
#include "models/state_enc.hh"
#include "models/thread_ctx.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** The sequentially consistent reference machine. */
class ScModel
{
  public:
    /** A machine state: thread contexts plus the single atomic memory. */
    struct State
    {
        std::vector<ThreadCtx> threads;
        std::vector<Value> mem;

        bool operator==(const State &other) const = default;
    };

    /** Bind the model to @p prog (which must outlive the model). */
    explicit ScModel(const Program &prog);

    /** Model name for reports. */
    static const char *name() { return "SC"; }

    /** The initial state (threads advanced to their first access). */
    State initial() const;

    /** All threads halted (memory is always quiescent here). */
    bool isFinal(const State &s) const;

    /** Every state reachable in one visible step. */
    std::vector<State> successors(const State &s) const;

    /** Successors with transition labels (the DPOR explorer's view). */
    std::vector<LabeledSucc<State>> labeledSuccessors(const State &s) const;

    /**
     * The successor reached from @p s by the single transition @p l, or
     * nullopt if @p l is not enabled.  Materializes exactly one state:
     * the explorer's commutation probes chase individual labels and
     * must not pay for a full successor list.
     */
    std::optional<State> stepLabel(const State &s, const TransLabel &l) const;

    /** The observable result of a final state. */
    Outcome outcome(const State &s) const;

    /**
     * Injective state layout, written into either encoder: threads,
     * separator, memory image.
     */
    template <typename Enc>
    void
    encodeInto(const State &s, Enc &enc) const
    {
        for (const auto &t : s.threads)
            enc.putThread(t);
        enc.sep();
        for (Value v : s.mem)
            enc.put(v);
    }

    /** Injective byte encoding for the visited set (cold paths). */
    std::string encode(const State &s) const;

    /** Allocation-free 128-bit key over the encoded bytes (hot path). */
    StateHash
    hashState(const State &s) const
    {
        HashEnc enc;
        encodeInto(s, enc);
        return enc.take();
    }

    /** Human-readable state rendering (for witness chains/debugging). */
    std::string dump(const State &s) const;

    /** The bound program. */
    const Program &program() const { return prog_; }

    /** Locations @p p's queued effects will still write (none: no queues). */
    void pendingAddrs(const State &, ProcId, std::vector<Addr> &) const {}

    /**
     * Execute the access thread @p p currently sits at, atomically, in
     * place, and append the resulting dynamic operation to @p trace when
     * non-null.  Exposed so the DRF0 program checker can drive the
     * idealized machine path-by-path.
     * @return false if thread p is halted (no step taken)
     */
    bool step(State &s, ProcId p, Execution *trace = nullptr) const;

  private:
    /** Append @p p's instruction-step successor (if enabled) to @p out. */
    void instrSucc(const State &s, ProcId p,
                   std::vector<LabeledSucc<State>> &out) const;

    const Program &prog_;
};

} // namespace wo

#endif // WO_MODELS_SC_MODEL_HH

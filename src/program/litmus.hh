/**
 * @file
 * Canned programs used throughout the tests and benches: the paper's
 * Figure 1 and Figure 3 scenarios plus the classical litmus shapes
 * (message passing, IRIW, coherence tests, lock-based critical sections,
 * barriers) the discussion relies on.
 *
 * Each factory documents the sequentially consistent verdict that the
 * checkers assert against.
 */

#ifndef WO_PROGRAM_LITMUS_HH
#define WO_PROGRAM_LITMUS_HH

#include "program/program.hh"

namespace wo {
namespace litmus {

/** Shared-location numbering used by the simple two-variable tests. */
inline constexpr Addr loc_x = 0;
inline constexpr Addr loc_y = 1;

/**
 * The Figure 1 program ("store buffering" / Dekker's core):
 *
 *     P0: X = 1; r0 = Y        P1: Y = 1; r0 = X
 *
 * Sequential consistency forbids the outcome r0==0 on both processors
 * ("both killed"); every one of the paper's four relaxed configurations
 * allows it.
 */
Program fig1StoreBuffer();

/**
 * Message passing with ordinary accesses only:
 *
 *     P0: data = 1; flag = 1   P1: r0 = flag; r1 = data
 *
 * SC forbids (r0,r1) == (1,0).  This program does NOT obey DRF0 (data and
 * flag accesses race), so weakly ordered hardware may produce (1,0).
 */
Program messagePassing();

/**
 * Message passing where the flag accesses are synchronization operations
 * (write-only sync store / read-only sync load with a retry loop).  This
 * program obeys DRF0; all weakly ordered implementations must make it
 * appear SC, i.e. after the sync load observes 1, the data read returns 1.
 */
Program messagePassingSync();

/**
 * Coherence read-read test: P0: x = 1.  P1: r0 = x; r1 = x.
 * Per-location write serialization (condition 2 of Section 5.1) forbids
 * (r0,r1) == (1,0): once a processor has seen the new value it may not
 * subsequently see the old one.
 */
Program coherenceCoRR();

/**
 * Independent reads of independent writes (4 processors):
 *
 *     P0: x = 1    P1: y = 1    P2: r0 = x; r1 = y    P3: r0 = y; r1 = x
 *
 * SC (atomic writes) forbids P2 seeing (1,0) while P3 sees (1,0) -- the two
 * readers disagreeing on the order of the independent writes.
 */
Program iriw();

/**
 * Load buffering: P0: r0 = x; y = 1.   P1: r1 = y; x = 1.
 * SC forbids (r0,r1) == (1,1).  Every machine in this repository performs
 * reads at issue, so all of them forbid it too -- the row documents that
 * the laboratory's weakness is write-side only.
 */
Program loadBuffering();

/**
 * Write-to-read causality (WRC):
 *     P0: x = 1    P1: r0 = x; y = 1    P2: r1 = y; r2 = x
 * SC forbids (1, 1, 0): if P1 saw x and P2 saw P1's y, P2 must see x.
 */
Program wrc();

/**
 * 2+2W: P0: x = 1; y = 2.   P1: y = 1; x = 2.
 * SC forbids the final state x == 1 && y == 1 (each location's last write
 * would have to be the other processor's FIRST write).  The pool-based
 * weak machines allow it: pending writes drain in any cross-location
 * order.
 */
Program twoPlusTwoW();

/**
 * S shape: P0: x = 2; y = 1.   P1: r0 = y; x = 1.
 * SC forbids r0 == 1 with final x == 2.  The weak machines allow it: P0's
 * write of x may drain after everything else.
 */
Program sShape();

/**
 * Coherence write-write: P0: x = 1; x = 2.  Final x must be 2 under
 * per-location program order on every machine here.
 */
Program coWW();

/**
 * The Figure 3 scenario.  Location s is a lock initially held by P0
 * (initial value of s is 1); x is data.
 *
 *     P0: W(x)=1; <work>; Unset(s); <work>
 *     P1: while (TestAndSet(s) != 0) {}; <work>; r0 = x
 *
 * The program obeys DRF0, so every conforming implementation must let P1
 * read x == 1 (r0 == 1).  The timed benches measure where P0 and P1 stall
 * under the Definition-1 and the new Section-5.3 implementations.
 *
 * @param work_cycles  local-work delay inserted at each <work> point
 */
Program fig3Scenario(Value work_cycles = 0);

/**
 * Like fig3Scenario but P1 spins with Test-and-TestAndSet (a read-only
 * sync load before the atomic), the idiom of Section 6's discussion.
 */
Program fig3ScenarioTestAndTas(Value work_cycles = 0);

/**
 * @p procs processors each perform @p iters lock-protected increments of a
 * shared counter (Test-and-TestAndSet acquire).  Obeys DRF0.  Under any
 * conforming implementation the final counter equals procs * iters.
 *
 * @param tas_only  spin with bare TestAndSet instead of Test-and-TAS
 */
Program lockedCounter(ProcId procs, int iters, bool tas_only = false);

/**
 * The same counter increments with no lock at all: a racy, non-DRF0
 * program.  Used to show the implementations are genuinely weaker than SC.
 */
Program racyCounter(ProcId procs, int iters);

/**
 * A sense-reversing-free centralized barrier: every processor increments a
 * lock-protected arrival counter; the last arrival sync-stores a release
 * flag on which the others spin with read-only sync loads; afterwards each
 * processor reads a data location written before the barrier by processor
 * 0.  Obeys DRF0; all readers must observe the pre-barrier write.
 */
Program barrier(ProcId procs);

/**
 * Two processors handing a value back and forth through a lock-protected
 * mailbox @p rounds times; ends with P1 holding the accumulated value.
 * Obeys DRF0.  Exercises repeated cross-processor synchronization chains.
 */
Program pingPong(int rounds);

} // namespace litmus
} // namespace wo

#endif // WO_PROGRAM_LITMUS_HH

file(REMOVE_RECURSE
  "CMakeFiles/conditions_test.dir/conditions_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_test.cc.o.d"
  "conditions_test"
  "conditions_test.pdb"
  "conditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lockset_test.dir/lockset_test.cc.o"
  "CMakeFiles/lockset_test.dir/lockset_test.cc.o.d"
  "lockset_test"
  "lockset_test.pdb"
  "lockset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

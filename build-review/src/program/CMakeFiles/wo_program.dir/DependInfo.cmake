
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/builder.cc" "src/program/CMakeFiles/wo_program.dir/builder.cc.o" "gcc" "src/program/CMakeFiles/wo_program.dir/builder.cc.o.d"
  "/root/repo/src/program/instruction.cc" "src/program/CMakeFiles/wo_program.dir/instruction.cc.o" "gcc" "src/program/CMakeFiles/wo_program.dir/instruction.cc.o.d"
  "/root/repo/src/program/litmus.cc" "src/program/CMakeFiles/wo_program.dir/litmus.cc.o" "gcc" "src/program/CMakeFiles/wo_program.dir/litmus.cc.o.d"
  "/root/repo/src/program/program.cc" "src/program/CMakeFiles/wo_program.dir/program.cc.o" "gcc" "src/program/CMakeFiles/wo_program.dir/program.cc.o.d"
  "/root/repo/src/program/workload.cc" "src/program/CMakeFiles/wo_program.dir/workload.cc.o" "gcc" "src/program/CMakeFiles/wo_program.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

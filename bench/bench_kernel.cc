/**
 * @file
 * Event-kernel throughput: the calendar/bucket queue against the legacy
 * binary-heap kernel, on (a) a synthetic self-rescheduling event mesh
 * that isolates the queue itself and (b) a full-system run where the
 * kernel is one cost among caches, directory and interconnect.  The
 * artifact records events/sec and simulated ticks/sec per kernel plus
 * the speedups, so CI can hold the hot path to its trajectory.  When
 * the build disables WO_LEGACY_EVENT_QUEUE the comparison columns are
 * omitted and only the calendar numbers are tracked.
 */

#include <chrono>
#include <cstdio>

#include "common/table.hh"
#include "event/event_queue.hh"
#include "obs/artifact.hh"
#include "program/litmus.hh"
#include "sys/system.hh"

namespace wo {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * The synthetic mesh: eight self-rescheduling chains with mixed
 * short/medium delays, same-tick collisions and occasional hops past
 * the bucket-wheel window -- the same traffic shape the allocation
 * audit uses, scaled up to benchmark length.
 */
struct MicroResult
{
    double wall_s = 0;
    std::uint64_t events = 0;
    double events_per_sec = 0;
};

MicroResult
microBench(EventQueueKind kind, std::uint64_t events)
{
    EventQueue q(kind);

    struct Chain
    {
        EventQueue *q;
        std::uint64_t *remaining;
        std::uint64_t rng;

        void
        operator()()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            const Tick delay =
                (rng % 97 == 0) ? 5000 + rng % 3000 : rng % 24;
            q->schedule(delay, "chain", *this);
        }
    };

    static std::uint64_t budgets[8];
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < 8; ++c) {
        budgets[c] = events / 8;
        Chain chain{&q, &budgets[c], 0x9e3779b97f4a7c15ULL * (c + 1)};
        q.schedule(static_cast<Tick>(c), "seed", chain);
    }
    q.runAll(events + 64);

    MicroResult r;
    r.wall_s = secondsSince(t0);
    r.events = q.executed();
    r.events_per_sec = r.wall_s > 0 ? r.events / r.wall_s : 0.0;
    return r;
}

/** A full-system run: contended locked counters, repeated. */
struct SysResult
{
    double wall_s = 0;
    std::uint64_t events = 0;
    Tick ticks = 0;
    double events_per_sec = 0;
    double ticks_per_sec = 0;
};

SysResult
sysBench(EventQueueKind kind, int repeats)
{
    Program p = litmus::lockedCounter(4, 40);
    SysResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < repeats; ++i) {
        SystemCfg cfg;
        cfg.policy = OrderingPolicy::wo_drf0;
        cfg.queue = kind;
        cfg.net.jitter = 3;
        cfg.net.seed = 7 + i;
        System sys(p, cfg);
        SystemResult res = sys.run();
        if (!res.completed)
            wo_panic("bench_kernel: locked counter did not complete");
        r.events += sys.eventQueue().executed();
        r.ticks += sys.eventQueue().now();
    }
    r.wall_s = secondsSince(t0);
    r.events_per_sec = r.wall_s > 0 ? r.events / r.wall_s : 0.0;
    r.ticks_per_sec = r.wall_s > 0 ? r.ticks / r.wall_s : 0.0;
    return r;
}

} // namespace
} // namespace wo

int
main()
{
    using namespace wo;

    constexpr std::uint64_t micro_events = 4'000'000;
    constexpr int sys_repeats = 60;

    std::printf("== event-kernel throughput ==\n");
    // Warm the allocator and caches once, unmeasured.
    microBench(EventQueueKind::calendar, micro_events / 8);

    const MicroResult micro_cal =
        microBench(EventQueueKind::calendar, micro_events);
    const SysResult sys_cal = sysBench(EventQueueKind::calendar,
                                       sys_repeats);

    Json payload = Json::object();
    payload.set("micro_events", Json(micro_events));
    payload.set("micro_events_per_sec", Json(micro_cal.events_per_sec));
    payload.set("sys_events_per_sec", Json(sys_cal.events_per_sec));
    payload.set("ticks_per_sec", Json(sys_cal.ticks_per_sec));

    Table t({"workload", "kernel", "events/s", "ticks/s"});
    t.addRow({"mesh", "calendar",
              strprintf("%.0f", micro_cal.events_per_sec), "-"});
    t.addRow({"system", "calendar",
              strprintf("%.0f", sys_cal.events_per_sec),
              strprintf("%.0f", sys_cal.ticks_per_sec)});

#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
    const MicroResult micro_old =
        microBench(EventQueueKind::legacy_heap, micro_events);
    const SysResult sys_old = sysBench(EventQueueKind::legacy_heap,
                                       sys_repeats);
    const double micro_speedup =
        micro_old.events_per_sec > 0
            ? micro_cal.events_per_sec / micro_old.events_per_sec
            : 0.0;
    const double sys_speedup =
        sys_old.ticks_per_sec > 0
            ? sys_cal.ticks_per_sec / sys_old.ticks_per_sec
            : 0.0;
    t.addRow({"mesh", "legacy-heap",
              strprintf("%.0f", micro_old.events_per_sec), "-"});
    t.addRow({"system", "legacy-heap",
              strprintf("%.0f", sys_old.events_per_sec),
              strprintf("%.0f", sys_old.ticks_per_sec)});
    payload.set("legacy_micro_events_per_sec",
                Json(micro_old.events_per_sec));
    payload.set("legacy_ticks_per_sec", Json(sys_old.ticks_per_sec));
    payload.set("micro_speedup", Json(micro_speedup));
    payload.set("sys_speedup", Json(sys_speedup));
#endif

    t.print();
#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
    std::printf("Read: calendar vs legacy heap, same binary -- mesh "
                "speedup %.2fx, full-system speedup %.2fx.\n",
                micro_speedup, sys_speedup);
#else
    std::printf("Read: legacy kernel compiled out; tracking calendar "
                "throughput only.\n");
#endif

    payload.set("table", tableToJson(t));
    writeBenchArtifact("kernel", std::move(payload));
    return 0;
}

/**
 * @file
 * The crash-safe campaign journal: one JSON object per line.  Writes
 * are *group-committed*: workers enqueue formatted lines onto a
 * lock-free MPSC stack and a dedicated writer thread drains it,
 * batching `fwrite`s and issuing one `fflush` per batch.  The commit
 * point is the flushed batch — a `kill -9` loses at most the lines of
 * the last uncommitted batch (bounded by `JournalCfg::sync_every`
 * records and `flush_interval_ms` milliseconds), never a committed
 * one.  On `--resume` the journal is replayed: finished cell keys are
 * skipped without re-running, and previously recorded failures keep
 * their deduplication identity (verdict kind + shrunk-program hash),
 * so an interrupted hunt neither repeats work nor double-reports the
 * same bug.
 *
 * Line types (see docs/CAMPAIGN.md for the full schema):
 *
 *   {"type":"campaign", ...config echo...}
 *   {"type":"cell","key":K,"verdict":V,"hw":N,"races":N,"sig":S,...}
 *   {"type":"failure","dedup":D,"kind":K,"file":F,"insns":N,...}
 *
 * A truncated or malformed line (the crash can tear at most the tail
 * of the last batch) is ignored by the reader.
 *
 * done() is lock-free on the worker hot path: the resume set is
 * snapshotted into an immutable hash set by load() before the fleet
 * starts, and the keys journaled by the current run live in an
 * insert-only atomic hash set (SeenSet below).
 */

#ifndef WO_CAMPAIGN_JOURNAL_HH
#define WO_CAMPAIGN_JOURNAL_HH

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "campaign/cell.hh"
#include "obs/json.hh"
#include "obs/timeline.hh"

namespace wo {

/**
 * The journal line schema version, stamped into every header line
 * (with the writing build's hardware concurrency) and checked by
 * load().  A fleet coordinator merges journal records produced by
 * remote workers, so a version mismatch means records from mixed
 * builds are being combined -- the reader warns instead of silently
 * mixing schemas.  Bump on any line-schema change.
 */
constexpr std::uint64_t journal_schema_version = 2;

/** One replayed failure record (resume-time state). */
struct JournalFailure
{
    std::string kind;       //!< violation kind name
    std::string file;       //!< reproducer path (may be empty)
    std::size_t insns = 0;  //!< shrunk instruction count
    std::uint64_t count = 0; //!< equivalent failures seen so far
};

/** Group-commit tuning (the `--sync-every` surface). */
struct JournalCfg
{
    /**
     * Commit (fwrite the batch + one fflush) after at most this many
     * buffered records.  1 restores the one-flush-per-record journal.
     */
    std::uint64_t sync_every = 64;
    /**
     * A partial batch never waits longer than this before it is
     * committed, so journal lines stay fresh even when the fleet
     * produces them slowly.
     */
    int flush_interval_ms = 5;
    /**
     * Span timeline for the writer thread (the campaign's
     * "journal-writer" lane): the writer installs it as the thread's
     * current timeline and accounts every batch commit as a
     * writer_flush span.  Null = no accounting (standalone journals,
     * unit tests).  Must outlive the journal.
     */
    Timeline *timeline = nullptr;
};

/**
 * Insert-only concurrent set of 64-bit key hashes.  Open addressing
 * over a fixed table of atomics (CAS to claim a slot); reserve() sizes
 * it before the fleet starts so the load factor stays below 1/2, and a
 * mutexed overflow set catches the never-expected spill so a
 * mis-sized table degrades instead of breaking.  Distinct keys
 * colliding in the full 64-bit hash would alias; with million-cell
 * campaigns the birthday bound is ~2^-25, which the journal accepts.
 */
class SeenSet
{
  public:
    SeenSet() { rebuild(1u << 12); }

    /** Size for @p keys expected inserts.  Single-threaded; call
     *  before any concurrent insert()/contains(). */
    void reserve(std::size_t keys);

    /** True when @p h was absent (the caller claimed it). */
    bool insert(std::uint64_t h);

    bool contains(std::uint64_t h) const;

    /** Distinct hashes inserted. */
    std::size_t size() const
    {
        return used_.load(std::memory_order_relaxed) + overflowSize();
    }

  private:
    void rebuild(std::size_t pow2_cap);
    bool tableContains(std::uint64_t h) const;
    bool insertOverflow(std::uint64_t h);
    std::size_t overflowSize() const;

    std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
    std::size_t cap_ = 0; //!< power of two
    std::atomic<std::size_t> used_{0};
    std::atomic<bool> has_overflow_{false};
    mutable std::mutex ov_mu_;
    std::unordered_set<std::uint64_t> overflow_;
};

/** The campaign journal (group-commit writer + resume reader). */
class Journal
{
  public:
    explicit Journal(std::string path, JournalCfg cfg = {})
        : path_(std::move(path)), cfg_(cfg)
    {
    }
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Replay an existing journal into the resume/failure sets.
     * Missing file is fine (fresh campaign); malformed lines are
     * skipped.  Call before open(); the resume set is immutable (and
     * therefore read lock-free) from then on.
     */
    void load();

    /**
     * Open for appending and start the writer thread.  @p fresh
     * truncates (non-resume campaigns start clean).  False when the
     * file cannot be opened.
     */
    bool open(bool fresh);

    /**
     * Drain the queue, flush, and join the writer.  Idempotent; the
     * destructor calls it.  After close() every appended line is
     * durable on disk.
     */
    void close();

    /** Size the this-run seen set for @p cells expected appends.
     *  Single-threaded; call before the fleet starts. */
    void reserveKeys(std::size_t cells);

    /**
     * Append the campaign-config header line.  `schema_version` and
     * `hw_threads` are stamped automatically (members already present
     * in @p meta win, which keeps replayed/merged headers verbatim).
     */
    void writeHeader(Json meta);

    /** The header object load() replayed (null for a fresh journal). */
    const Json &header() const { return header_; }

    /** The replayed header's schema_version (0 when absent). */
    std::uint64_t loadedSchemaVersion() const
    {
        return loaded_schema_version_;
    }

    /** Did load() see a header from a different schema version? */
    bool schemaMismatch() const { return schema_mismatch_; }

    /**
     * Base-stream indices of replayed cell lines that carried an
     * "idx" member (fleet journals; single-process lines have none).
     * A restarted coordinator re-leases exactly the complement.
     */
    const std::unordered_set<std::uint64_t> &resumeIndices() const
    {
        return resume_idx_;
    }

    /**
     * Append an arbitrary journal line (the fleet merge path: the
     * coordinator forwards cell records it received from workers,
     * annotated with shard/idx).  A `"type":"cell"` line with a
     * string "key" marks that key done exactly like appendCell().
     */
    void appendJson(Json line);

    /**
     * Was @p key journaled (this run or a resumed one)?  Lock-free:
     * an immutable resume snapshot plus the atomic seen set.
     */
    bool done(const std::string &key) const;

    /** Number of journaled cells (including replayed ones). */
    std::size_t doneCells() const;

    /** Append one finished cell (marks its key done immediately;
     *  the line itself is durable at the next batch commit). */
    void appendCell(const CellResult &r);

    /**
     * Record a failure under deduplication key @p dedup ("<kind>:<hash
     * of the shrunk program>").  Returns true when this is the first
     * equivalent failure (caller should emit the reproducer bundle);
     * repeats only bump the count.  Always journaled either way.
     */
    bool recordFailure(const std::string &dedup, const std::string &kind,
                       const std::string &cell_key,
                       const std::string &file, std::size_t insns,
                       std::size_t orig_insns);

    /** Deduplicated failures, keyed by dedup string. */
    std::map<std::string, JournalFailure> failures() const;

    const std::string &path() const { return path_; }

    /** Batches committed (fflush calls) so far.  Diagnostic. */
    std::uint64_t commitBatches() const
    {
        return commits_.load(std::memory_order_relaxed);
    }

  private:
    struct Line
    {
        Line *next = nullptr;
        std::string text;
    };

    void appendLine(const Json &j);
    void push(Line *n);
    Line *takeAllFifo();
    void writerLoop();
    void commitBatch(Line *fifo);

    std::string path_;
    JournalCfg cfg_;
    std::FILE *f_ = nullptr;

    // Resume state: written by load() single-threaded, immutable and
    // lock-free to read once the fleet is running.
    std::unordered_set<std::string> resume_done_;
    std::unordered_set<std::uint64_t> resume_idx_;
    Json header_;
    std::uint64_t loaded_schema_version_ = 0;
    bool schema_mismatch_ = false;
    // Keys appended by this run.
    SeenSet seen_;

    // The MPSC line queue (Treiber stack; the writer reverses a drained
    // batch back to push order) and the writer thread it feeds.
    std::atomic<Line *> head_{nullptr};
    std::atomic<std::uint64_t> queued_{0};   //!< pushed - drained
    std::atomic<std::uint64_t> commits_{0};
    std::atomic<bool> writer_idle_{false};
    std::atomic<bool> closing_{false};
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    std::thread writer_;

    mutable std::mutex fail_mu_; //!< failures_ only (off the hot path)
    std::map<std::string, JournalFailure> failures_;
};

/** Stable 64-bit FNV-1a over @p text (journal key hashing). */
std::uint64_t fnv1a64(std::string_view text);

} // namespace wo

#endif // WO_CAMPAIGN_JOURNAL_HH

# Empty compiler generated dependencies file for wo_program.
# This may be replaced when dependencies are built.

#include "event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace wo {

EventQueue::EventQueue(EventQueueKind kind) : kind_(kind)
{
#ifndef WO_HAVE_LEGACY_EVENT_QUEUE
    wo_assert(kind_ == EventQueueKind::calendar,
              "legacy event queue requested but compiled out "
              "(configure with -DWO_LEGACY_EVENT_QUEUE=ON)");
#endif
    if (kind_ == EventQueueKind::calendar) {
        wheel_.resize(wheel_size);
        occupied_.assign(wheel_size / 64, 0);
    }
}

void
EventQueue::markOccupied(std::size_t idx)
{
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void
EventQueue::clearOccupied(std::size_t idx)
{
    occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

std::size_t
EventQueue::findOccupied(std::size_t from) const
{
    std::size_t w = from >> 6;
    std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
        if (word)
            return (w << 6) + std::countr_zero(word);
        if (++w == occupied_.size())
            return npos;
        word = occupied_[w];
    }
}

void
EventQueue::schedule(Tick delay, EventLabel label, EventCallback fn)
{
    scheduleAt(now_ + delay, label, std::move(fn));
}

void
EventQueue::scheduleAt(Tick when, EventLabel label, EventCallback fn)
{
    if (when < now_) [[unlikely]]
        wo_panic("scheduling event '%s' in the past (%llu < %llu)",
                 label.materialize().c_str(),
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    ++pending_;
#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
    if (kind_ == EventQueueKind::legacy_heap) [[unlikely]] {
        pq_.push(Event{when, next_seq_++, std::move(fn), label});
        return;
    }
#endif
    if (when < wheel_base_ + wheel_size) {
        const std::size_t idx = when & wheel_mask;
        wheel_[idx].events.push_back(
            Event{when, next_seq_++, std::move(fn), label});
        markOccupied(idx);
        ++wheel_pending_;
    } else {
        overflow_.push_back(Event{when, next_seq_++, std::move(fn), label});
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
}

void
EventQueue::refillWheel()
{
    wo_assert(!overflow_.empty() && wheel_pending_ == 0,
              "wheel refill without a drained wheel and pending overflow");
    wheel_base_ = overflow_.front().when & ~wheel_mask;
    const Tick limit = wheel_base_ + wheel_size;
    // The heap pops in (when, seq) order, so per-tick buckets fill in
    // schedule order and same-tick FIFO survives the migration.
    while (!overflow_.empty() && overflow_.front().when < limit) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        const std::size_t idx = ev.when & wheel_mask;
        wheel_[idx].events.push_back(std::move(ev));
        markOccupied(idx);
        ++wheel_pending_;
    }
}

bool
EventQueue::popNext(Event &out)
{
#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
    if (kind_ == EventQueueKind::legacy_heap) [[unlikely]] {
        if (pq_.empty())
            return false;
        // priority_queue exposes top() as const; moving out right
        // before pop() is safe because nothing re-examines the slot.
        out = std::move(const_cast<Event &>(pq_.top()));
        pq_.pop();
        --pending_;
        return true;
    }
#endif
    if (pending_ == 0)
        return false;
    if (wheel_pending_ == 0)
        refillWheel();
    const std::size_t start =
        now_ > wheel_base_ ? static_cast<std::size_t>(now_ - wheel_base_) : 0;
    const std::size_t idx = findOccupied(start);
    wo_assert(idx != npos, "calendar wheel lost track of %zu events",
              wheel_pending_);
    Bucket &b = wheel_[idx];
    out = std::move(b.events[b.pos++]);
    --wheel_pending_;
    --pending_;
    if (b.pos == b.events.size()) {
        // clear() keeps capacity: the bucket is the event arena and is
        // recycled allocation-free next time this tick index comes by.
        b.events.clear();
        b.pos = 0;
        clearOccupied(idx);
    }
    return true;
}

void
EventQueue::observeFire(const Event &ev)
{
    const std::string label = ev.label.materialize();
    if (logLevel() == LogLevel::verbose)
        verbose("t=%llu event %s", static_cast<unsigned long long>(now_),
                label.c_str());
    if (obs_ && obs_->wantsQueueEvents())
        obs_->queueFire(now_, label);
}

bool
EventQueue::step()
{
    Event ev;
    if (!popNext(ev))
        return false;
    now_ = ev.when;
    // Label materialization is the cold path: only verbose logging or
    // queue-event tracing ever looks at the text.
    if (logLevel() == LogLevel::verbose ||
        (obs_ && obs_->wantsQueueEvents())) [[unlikely]]
        observeFire(ev);
    ++executed_;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (step()) {
        if (++n > max_events)
            wo_panic("event queue exceeded %llu events: livelock?",
                     static_cast<unsigned long long>(max_events));
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(const std::function<bool()> &done,
                     std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!done() && step()) {
        if (++n > max_events)
            wo_panic("event queue exceeded %llu events: livelock?",
                     static_cast<unsigned long long>(max_events));
    }
    return n;
}

} // namespace wo

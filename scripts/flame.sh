#!/usr/bin/env bash
# Render a collapsed-stack profile (the folded.txt the self-profiler
# emits under `wotool ... --profile`) as an interactive flame graph.
#
# Usage:  scripts/flame.sh FOLDED [OUT.svg]
#
# The folded format is the flamegraph.pl / speedscope interchange
# format: one `lane;frame;...;leaf count` line per unique stack.  When
# Brendan Gregg's flamegraph.pl is on PATH (or $FLAMEGRAPH points at
# it) an SVG is rendered; otherwise the script explains the zero-
# dependency alternatives instead of failing the pipeline.
set -euo pipefail

if [ $# -lt 1 ] || [ ! -f "$1" ]; then
    echo "usage: scripts/flame.sh FOLDED [OUT.svg]" >&2
    echo "  FOLDED is a collapsed-stack file, e.g." >&2
    echo "  campaign-out/campaign.folded.txt from" >&2
    echo "  'wotool campaign --profile'" >&2
    exit 2
fi

folded="$1"
out="${2:-${folded%.txt}.svg}"

if [ ! -s "$folded" ]; then
    echo "error: '$folded' is empty (did the profiled run finish?)" >&2
    exit 1
fi

renderer="${FLAMEGRAPH:-}"
if [ -z "$renderer" ]; then
    renderer="$(command -v flamegraph.pl || true)"
fi

if [ -n "$renderer" ]; then
    "$renderer" --title "$(basename "$folded")" \
        --countname samples "$folded" > "$out"
    echo "wrote $out"
    exit 0
fi

stacks=$(wc -l < "$folded")
echo "flamegraph.pl not found (set \$FLAMEGRAPH to point at it)."
echo "'$folded' holds $stacks unique stacks; render it with either:"
echo "  - https://github.com/brendangregg/FlameGraph :"
echo "      flamegraph.pl '$folded' > '$out'"
echo "  - https://www.speedscope.app : drag the file in (the folded"
echo "      format is auto-detected)"
exit 0

/**
 * @file
 * Experiment E10 -- ablation of Section 5.2's protocol design point:
 * "Our protocol allows the line requested by the write to be forwarded to
 * the requesting processor in parallel with the sending of these
 * invalidations."
 *
 * Compares the parallel-forwarding protocol against the conservative
 * variant that withholds the grant until every invalidation is
 * acknowledged, under each ordering policy.  Parallel forwarding is what
 * makes a write's *commit* early while its *global perform* trails -- the
 * very gap the counter/reserve-bit machinery manages; without it commits
 * and performs coincide and the new implementation loses its overlap.
 */

#include <cstdio>

#include "common/table.hh"
#include "program/litmus.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol, bool parallel, bool warm,
    ProcId warm_holders)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    cfg.dir.forward_line_with_invs = parallel;
    System sys(p, cfg);
    if (warm) {
        std::vector<ProcId> holders;
        for (ProcId q = 0; q < warm_holders && q < p.numThreads(); ++q)
            holders.push_back(q);
        for (Addr a = 0; a < p.numLocations(); ++a)
            sys.warmShared(a, holders);
    }
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

void
ablation()
{
    std::printf("== E10: line-forwarded-with-invalidations ablation ==\n");
    Table t({"workload", "policy", "parallel fwd", "acks-first",
             "benefit"});
    struct Case
    {
        const char *label;
        Program prog;
        bool warm;
    };
    std::vector<Case> cases;
    cases.push_back({"fig3 (x shared)", litmus::fig3Scenario(20), true});
    cases.push_back({"locked counter 4x3", litmus::lockedCounter(4, 3),
                     true});
    {
        Drf0WorkloadCfg wl;
        wl.procs = 4;
        wl.regions = 2;
        wl.sections = 3;
        wl.ops_per_section = 4;
        wl.seed = 5;
        cases.push_back({"random DRF0 (seed 5)", randomDrf0Program(wl),
                         true});
    }
    for (const auto &c : cases) {
        for (OrderingPolicy pol :
             {OrderingPolicy::sc, OrderingPolicy::wo_def1,
              OrderingPolicy::wo_drf0}) {
            Tick par = run(c.prog, pol, true, c.warm, c.prog.numThreads());
            Tick ser = run(c.prog, pol, false, c.warm,
                           c.prog.numThreads());
            t.addRow({c.label, policyName(pol),
                      strprintf("%llu", (unsigned long long)par),
                      strprintf("%llu", (unsigned long long)ser),
                      par ? strprintf("%.2fx", (double)ser / (double)par)
                          : "-"});
        }
    }
    t.print();
    std::printf("Read: >1.0x means forwarding the line in parallel with "
                "invalidations is faster.\n");
}

} // namespace
} // namespace wo

int
main()
{
    wo::ablation();
    return 0;
}

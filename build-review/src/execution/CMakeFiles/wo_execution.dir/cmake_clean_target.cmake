file(REMOVE_RECURSE
  "libwo_execution.a"
)

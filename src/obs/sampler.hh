/**
 * @file
 * The periodic sampler: turns the hub's end-of-run aggregates into
 * time-resolved series.
 *
 * A Sampler owns a table of named probes (closures reading a live
 * counter: per-CPU outstanding-access counters, stall-bucket totals,
 * network occupancy, directory busy lines).  Once started it samples
 * every probe immediately and then every `interval` ticks via a
 * self-rescheduling event, stopping by itself when its event is the
 * only thing left in the queue -- so it never keeps a drained system
 * alive.  Results export two ways: a wide CSV (one row per sample,
 * one column per probe) and Perfetto counter-track events ('C' phase)
 * merged into the Chrome trace.
 */

#ifndef WO_OBS_SAMPLER_HH
#define WO_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"

namespace wo {

class EventQueue;

/** The periodic sampler.  Create, add probes, start, run, export. */
class Sampler
{
  public:
    /** @param interval ticks between samples (>= 1) */
    explicit Sampler(Tick interval);

    /** Sampling period. */
    Tick interval() const { return interval_; }

    /** Register a probe.  All probes must be added before start(). */
    void addProbe(std::string name, std::function<std::uint64_t()> read);

    /** Number of registered probes. */
    std::size_t probeCount() const { return probes_.size(); }

    /**
     * Take the baseline sample now and schedule the periodic ones on
     * @p eq.  The queue (and every component the probes read) must
     * outlive the drain.
     */
    void start(EventQueue &eq);

    /** Rows captured so far. */
    std::size_t sampleCount() const { return ticks_.size(); }

    /**
     * Wide CSV: header "tick,<probe>,...", one row per sample.
     */
    std::string csv() const;

    /**
     * Append one Perfetto counter-track event ('C' phase, pid/tid 0)
     * per probe per sample to @p events (a "traceEvents" array).
     */
    void appendCounterEvents(Json &events) const;

  private:
    void sampleNow(Tick now);
    void scheduleNext(EventQueue &eq);

    Tick interval_;
    std::vector<std::string> names_;
    std::vector<std::function<std::uint64_t()>> probes_;
    std::vector<Tick> ticks_;
    std::vector<std::uint64_t> values_; //!< row-major, probeCount() wide
};

} // namespace wo

#endif // WO_OBS_SAMPLER_HH

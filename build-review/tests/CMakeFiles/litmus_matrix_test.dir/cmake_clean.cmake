file(REMOVE_RECURSE
  "CMakeFiles/litmus_matrix_test.dir/litmus_matrix_test.cc.o"
  "CMakeFiles/litmus_matrix_test.dir/litmus_matrix_test.cc.o.d"
  "litmus_matrix_test"
  "litmus_matrix_test.pdb"
  "litmus_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

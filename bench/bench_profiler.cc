/**
 * @file
 * Overhead of the self-profiler: the same campaign workload run with
 * sampling off and with sampling on at the default rate, interleaved
 * A/B/A/B so drift hits both sides equally.  The observability
 * contract is that `--profile` is cheap enough to leave on whenever a
 * scaling question comes up: the artifact records the wall-time ratio
 * and CI asserts it stays below 1.10x (best-of-reps, so scheduler
 * noise on a loaded runner cannot fail the gate spuriously).
 */

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "campaign/scheduler.hh"
#include "common/table.hh"
#include "obs/artifact.hh"

namespace wo {
namespace {

constexpr std::uint64_t cells = 600;
constexpr int reps = 3;
constexpr double default_hz = 97;

double
runOnce(bool profile, int rep, std::uint64_t &samples)
{
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = cells;
    cfg.out_dir = strprintf("bench-campaign-out/prof-%s-r%d",
                            profile ? "on" : "off", rep);
    cfg.seed = 11;
    cfg.max_events = 200'000;
    cfg.shrink = false; // conforming hardware: nothing to shrink
    cfg.profile = profile;
    cfg.profile_hz = default_hz;
    auto sum = runCampaign(cfg);
    if (!sum.hardwareClean())
        wo_panic("bench_profiler: conforming hardware reported a "
                 "violation");
    samples = sum.profile_samples;
    return sum.wall_s;
}

} // namespace
} // namespace wo

int
main()
{
    using namespace wo;

    std::printf("== profiler overhead: %llu cells x2 workers, off vs "
                "on at %.0f Hz, %d interleaved reps ==\n",
                static_cast<unsigned long long>(cells), default_hz,
                reps);

    std::vector<double> off_s, on_s;
    std::uint64_t samples = 0, ignored = 0;
    for (int r = 0; r < reps; ++r) {
        off_s.push_back(runOnce(false, r, ignored));
        on_s.push_back(runOnce(true, r, samples));
    }
    const double off_best = *std::min_element(off_s.begin(), off_s.end());
    const double on_best = *std::min_element(on_s.begin(), on_s.end());
    const double ratio = off_best > 0 ? on_best / off_best : 0.0;

    Table t({"mode", "best wall s", "samples"});
    t.addRow({"profile off", strprintf("%.3f", off_best), "0"});
    t.addRow({"profile on", strprintf("%.3f", on_best),
              strprintf("%llu",
                        static_cast<unsigned long long>(samples))});
    t.print();
    std::printf("overhead: %.3fx (CI gates this below 1.10x)\n", ratio);

    Json payload = Json::object();
    payload.set("cells", Json(cells));
    payload.set("hz", Json(default_hz));
    payload.set("reps", Json(std::uint64_t{reps}));
    payload.set("off_best_s", Json(off_best));
    payload.set("on_best_s", Json(on_best));
    payload.set("overhead_ratio", Json(ratio));
    payload.set("samples", Json(samples));
    payload.set("table", tableToJson(t));
    writeBenchArtifact("profiler_overhead", std::move(payload));
    return 0;
}

#include "obs.hh"

#include "common/logging.hh"
#include "obs/monitor.hh"
#include "obs/recorder.hh"
#include "obs/sampler.hh"

namespace wo {

const char *
stallBucketName(StallBucket b)
{
    switch (b) {
      case StallBucket::reserve_wait:
        return "reserve_wait";
      case StallBucket::counter_drain:
        return "counter_drain";
      case StallBucket::mlp_limit:
        return "mlp_limit";
      case StallBucket::cache_miss:
        return "cache_miss";
      case StallBucket::network:
        return "network";
      case StallBucket::hit_latency:
        return "hit_latency";
    }
    return "?";
}

const char *
opSideName(OpSide s)
{
    switch (s) {
      case OpSide::data:
        return "data";
      case OpSide::release:
        return "release";
      case OpSide::acquire:
        return "acquire";
    }
    return "?";
}

Obs::Obs(ProcId nprocs) : nprocs_(nprocs)
{
    stall_groups_.reserve(nprocs);
    for (ProcId p = 0; p < nprocs; ++p) {
        stall_groups_.emplace_back(strprintf("cpu%u.stall", p));
        // Pre-create every bucket plus the summaries so each dump has
        // the full schema and buckets provably sum to the total even
        // when a bucket never fires.
        StatGroup &g = stall_groups_.back();
        for (int b = 0; b < num_stall_buckets; ++b)
            g.counter(stallBucketName(static_cast<StallBucket>(b)));
        g.counter("total");
        g.counter("data");
        g.counter("release");
        g.counter("acquire");
    }
}

void
Obs::enableTrace(bool queue_events)
{
    trace_enabled_ = true;
    trace_queue_events_ = queue_events;
}

void
Obs::raw(Json line)
{
    jsonl_.push_back(line.dump(0));
}

void
Obs::chrome(Json ev)
{
    chrome_events_.push_back(std::move(ev));
}

Json
Obs::completeEvent(const std::string &name, std::uint64_t tid, Tick start,
                   Tick end) const
{
    Json ev = Json::object();
    ev.set("name", name);
    ev.set("ph", "X");
    ev.set("ts", start);
    ev.set("dur", end - start);
    ev.set("pid", std::uint64_t{0});
    ev.set("tid", tid);
    return ev;
}

void
Obs::queueFire(Tick now, const std::string &label)
{
    if (!trace_enabled_ || !trace_queue_events_)
        return;
    Json r = Json::object();
    r.set("t", now);
    r.set("ev", "fire");
    r.set("label", label);
    raw(std::move(r));

    Json ev = Json::object();
    ev.set("name", label);
    ev.set("ph", "i");
    ev.set("ts", now);
    ev.set("pid", std::uint64_t{0});
    ev.set("tid", std::uint64_t{2u * nprocs_ + 1});
    ev.set("s", "t");
    chrome(std::move(ev));
}

void
Obs::mirrorViolations(Tick now)
{
    if (!monitor_)
        return;
    const std::uint64_t total = monitor_->totalViolations();
    if (!recorder_) {
        mirrored_violations_ = total;
        return;
    }
    const auto &rec = monitor_->violations();
    while (mirrored_violations_ < total) {
        FlightEvent e;
        e.kind = FlightKind::violation;
        e.t = now;
        if (mirrored_violations_ < rec.size()) {
            const MonitorViolation &v = rec[mirrored_violations_];
            e.t = v.tick;
            e.proc = v.proc == invalid_proc ? 0 : v.proc;
            e.addr = v.addr;
            e.label = violationKindName(v.kind);
        } else {
            e.label = "unrecorded";
        }
        recorder_->record(e);
        ++mirrored_violations_;
    }
}

void
Obs::message(Tick sent, Tick deliver, unsigned src, unsigned dst,
             const char *type, Addr addr, bool is_sync)
{
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::msg;
        e.t = sent;
        e.t2 = deliver;
        e.proc = static_cast<ProcId>(src);
        e.addr = addr;
        e.label = type;
        e.a = dst;
        recorder_->record(e);
    }
    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", sent);
    r.set("ev", "msg");
    r.set("type", type);
    r.set("src", std::uint64_t{src});
    r.set("dst", std::uint64_t{dst});
    if (addr != invalid_addr)
        r.set("addr", std::uint64_t{addr});
    r.set("deliver", deliver);
    if (is_sync)
        r.set("sync", true);
    raw(std::move(r));

    Json ev = completeEvent(strprintf("%s %u>%u", type, src, dst),
                            2u * nprocs_, sent, deliver);
    Json args = Json::object();
    args.set("addr", std::uint64_t{addr});
    args.set("sync", is_sync);
    ev.set("args", std::move(args));
    chrome(std::move(ev));
}

void
Obs::opIssue(ProcId p, std::uint64_t req, const char *kind, Addr addr,
             Pc pc, Tick reached, Tick issued)
{
    LiveOp op;
    op.kind = kind;
    op.addr = addr;
    op.pc = pc;
    op.reached = reached;
    op.issued = issued;
    live_[{p, req}] = std::move(op);
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::issue;
        e.t = issued;
        e.proc = p;
        e.addr = addr;
        e.req = req;
        e.label = kind; // accessKindName: static storage
        recorder_->record(e);
    }
    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", issued);
    r.set("ev", "issue");
    r.set("cpu", std::uint64_t{p});
    r.set("req", req);
    r.set("kind", kind);
    r.set("addr", std::uint64_t{addr});
    r.set("pc", std::uint64_t{pc});
    r.set("reached", reached);
    raw(std::move(r));
}

void
Obs::opCommit(ProcId p, std::uint64_t req, Tick now)
{
    auto it = live_.find({p, req});
    if (it != live_.end()) {
        it->second.committed = now;
        it->second.has_committed = true;
    }
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::commit;
        e.t = now;
        e.proc = p;
        e.req = req;
        recorder_->record(e);
    }
    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", now);
    r.set("ev", "commit");
    r.set("cpu", std::uint64_t{p});
    r.set("req", req);
    raw(std::move(r));
}

void
Obs::opPerform(ProcId p, std::uint64_t req, Tick now)
{
    auto it = live_.find({p, req});
    if (it != live_.end()) {
        if (trace_enabled_) {
            const LiveOp &op = it->second;
            Json ev = completeEvent(
                strprintf("%s a%u", op.kind.c_str(), op.addr), 2u * p,
                op.issued, now);
            Json args = Json::object();
            args.set("req", req);
            args.set("pc", std::uint64_t{op.pc});
            args.set("addr", std::uint64_t{op.addr});
            args.set("reached", op.reached);
            args.set("issued", op.issued);
            if (op.has_committed)
                args.set("committed", op.committed);
            args.set("performed", now);
            ev.set("args", std::move(args));
            chrome(std::move(ev));
        }
        live_.erase(it);
    }
    facts_.erase({p, req});
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::perform;
        e.t = now;
        e.proc = p;
        e.req = req;
        recorder_->record(e);
    }
    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", now);
    r.set("ev", "perform");
    r.set("cpu", std::uint64_t{p});
    r.set("req", req);
    raw(std::move(r));
}

void
Obs::opRetire(ProcId p, std::uint64_t req, Tick now, Addr addr,
              AccessKind kind, Value value_read, Value value_written,
              Tick commit_tick)
{
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::retire;
        e.t = now;
        e.proc = p;
        e.addr = addr;
        e.req = req;
        e.label = accessKindName(kind);
        recorder_->record(e);
    }
    if (monitor_) {
        monitor_->opRetired(p, addr, kind, value_read, value_written,
                            commit_tick, now);
        mirrorViolations(now);
    }
    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", now);
    r.set("ev", "retire");
    r.set("cpu", std::uint64_t{p});
    r.set("req", req);
    r.set("addr", std::uint64_t{addr});
    raw(std::move(r));
}

void
Obs::counterChanged(ProcId p, int value, Tick now)
{
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::counter;
        e.t = now;
        e.proc = p;
        e.a = value;
        recorder_->record(e);
    }
    if (monitor_) {
        monitor_->counterChanged(p, value, now);
        mirrorViolations(now);
    }
}

void
Obs::reserveSet(ProcId p, Addr addr, Tick now)
{
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::reserve;
        e.t = now;
        e.proc = p;
        e.addr = addr;
        e.label = "set";
        e.a = 1;
        recorder_->record(e);
    }
    if (monitor_) {
        monitor_->reserveSet(p, addr, now);
        mirrorViolations(now);
    }
}

void
Obs::reserveCleared(ProcId p, Tick now)
{
    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::reserve;
        e.t = now;
        e.proc = p;
        e.label = "clear";
        e.a = 0;
        recorder_->record(e);
    }
    if (monitor_) {
        monitor_->reserveCleared(p, now);
        mirrorViolations(now);
    }
}

void
Obs::reqMiss(ProcId p, std::uint64_t req)
{
    facts_[{p, req}].missed = true;
}

void
Obs::reqNack(ProcId p, std::uint64_t req)
{
    facts_[{p, req}].nacked = true;
}

void
Obs::reserveHold(ProcId requester, Addr addr)
{
    reserve_held_[{requester, addr}] = true;
}

StallBucket
Obs::classify(ProcId p, std::uint64_t req, Addr addr, StallPhase phase)
{
    switch (phase) {
      case StallPhase::issue_counter:
        return StallBucket::counter_drain;
      case StallPhase::issue_mlp:
        return StallBucket::mlp_limit;
      case StallPhase::perform_wait:
        return StallBucket::network;
      case StallPhase::commit_wait:
        break;
    }
    auto f = facts_.find({p, req});
    auto h = reserve_held_.find({p, addr});
    const bool held = h != reserve_held_.end();
    if (held)
        reserve_held_.erase(h);
    if ((f != facts_.end() && f->second.nacked) || held)
        return StallBucket::reserve_wait;
    if (f != facts_.end() && f->second.missed)
        return StallBucket::cache_miss;
    return StallBucket::hit_latency;
}

void
Obs::stall(ProcId p, std::uint64_t req, Addr addr, StallPhase phase,
           OpSide side, Tick from, Tick to)
{
    if (to <= from)
        return;
    wo_assert(p < stall_groups_.size(), "stall for unknown cpu %u", p);
    const StallBucket bucket = classify(p, req, addr, phase);
    const Tick cycles = to - from;
    StatGroup &g = stall_groups_[p];
    g.counter(stallBucketName(bucket)).inc(cycles);
    g.counter("total").inc(cycles);
    g.counter(opSideName(side)).inc(cycles);

    if (recorder_) {
        FlightEvent e;
        e.kind = FlightKind::stall;
        e.t = from;
        e.t2 = to;
        e.proc = p;
        e.addr = addr;
        e.req = req;
        e.label = stallBucketName(bucket);
        recorder_->record(e);
    }

    if (!trace_enabled_)
        return;
    Json r = Json::object();
    r.set("t", from);
    r.set("ev", "stall");
    r.set("cpu", std::uint64_t{p});
    r.set("req", req);
    r.set("bucket", stallBucketName(bucket));
    r.set("side", opSideName(side));
    r.set("cycles", cycles);
    raw(std::move(r));

    Json ev = completeEvent(
        strprintf("stall:%s", stallBucketName(bucket)), 2u * p + 1, from,
        to);
    Json args = Json::object();
    args.set("side", opSideName(side));
    args.set("req", req);
    ev.set("args", std::move(args));
    chrome(std::move(ev));
}

const StatGroup &
Obs::stallStats(ProcId p) const
{
    wo_assert(p < stall_groups_.size(), "no stall stats for cpu %u", p);
    return stall_groups_[p];
}

std::vector<const StatGroup *>
Obs::stallGroups() const
{
    std::vector<const StatGroup *> out;
    out.reserve(stall_groups_.size());
    for (const auto &g : stall_groups_)
        out.push_back(&g);
    return out;
}

std::string
Obs::chromeTraceJson() const
{
    Json root = Json::object();
    Json events = Json::array();

    // Named lanes so Perfetto shows "cpu0", "cpu0 stalls", "network",
    // "event kernel" instead of bare tids.
    auto thread_name = [](std::uint64_t tid, const std::string &name) {
        Json ev = Json::object();
        ev.set("name", "thread_name");
        ev.set("ph", "M");
        ev.set("pid", std::uint64_t{0});
        ev.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        ev.set("args", std::move(args));
        return ev;
    };
    for (ProcId p = 0; p < nprocs_; ++p) {
        events.push(thread_name(2u * p, strprintf("cpu%u ops", p)));
        events.push(thread_name(2u * p + 1, strprintf("cpu%u stalls", p)));
    }
    events.push(thread_name(2u * nprocs_, "network"));
    if (trace_queue_events_)
        events.push(thread_name(2u * nprocs_ + 1, "event kernel"));

    for (const Json &ev : chrome_events_)
        events.push(ev);
    if (sampler_)
        sampler_->appendCounterEvents(events);
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", "ns");
    Json other = Json::object();
    other.set("source", "wotool");
    other.set("unfinished_ops", std::uint64_t{live_.size()});
    root.set("otherData", std::move(other));
    return root.dump(1);
}

std::string
Obs::traceJsonl() const
{
    std::string out;
    for (const std::string &line : jsonl_) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace wo

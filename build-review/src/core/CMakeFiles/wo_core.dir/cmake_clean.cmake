file(REMOVE_RECURSE
  "CMakeFiles/wo_core.dir/conditions.cc.o"
  "CMakeFiles/wo_core.dir/conditions.cc.o.d"
  "CMakeFiles/wo_core.dir/doall.cc.o"
  "CMakeFiles/wo_core.dir/doall.cc.o.d"
  "CMakeFiles/wo_core.dir/drf0_checker.cc.o"
  "CMakeFiles/wo_core.dir/drf0_checker.cc.o.d"
  "CMakeFiles/wo_core.dir/lockset.cc.o"
  "CMakeFiles/wo_core.dir/lockset.cc.o.d"
  "CMakeFiles/wo_core.dir/weak_ordering.cc.o"
  "CMakeFiles/wo_core.dir/weak_ordering.cc.o.d"
  "libwo_core.a"
  "libwo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wo_execution.
# This may be replaced when dependencies are built.

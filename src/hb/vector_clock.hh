/**
 * @file
 * Vector clocks over processors, the workhorse representation of the
 * happens-before partial order.  A clock maps each processor to the number
 * of its operations known to causally precede the clock's owner.
 */

#ifndef WO_HB_VECTOR_CLOCK_HH
#define WO_HB_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wo {

/** A fixed-width vector clock. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** An all-zero clock over @p procs processors. */
    explicit VectorClock(ProcId procs) : c_(procs, 0) {}

    /** Component for processor @p p. */
    std::uint32_t operator[](ProcId p) const { return c_[p]; }

    /** Mutable component for processor @p p. */
    std::uint32_t &operator[](ProcId p) { return c_[p]; }

    /** Component-wise maximum with @p other (in place). */
    void join(const VectorClock &other);

    /** True iff every component of this is <= the matching one of other. */
    bool leq(const VectorClock &other) const;

    /** Number of components. */
    ProcId size() const { return static_cast<ProcId>(c_.size()); }

    bool operator==(const VectorClock &other) const = default;

    /** e.g. "<1,0,2>". */
    std::string toString() const;

  private:
    std::vector<std::uint32_t> c_;
};

} // namespace wo

#endif // WO_HB_VECTOR_CLOCK_HH

#include "weak_ordering.hh"

namespace wo {

std::string
ContractResult::toString() const
{
    std::string out =
        !holds        ? "contract VIOLATED\n"
        : !conclusive ? "contract INCONCLUSIVE (a relevant check hit "
                        "its exploration budget)\n"
                      : "contract HOLDS over suite\n";
    for (const auto &e : entries) {
        out += strprintf("  %-28s %-14s %-12s%s\n", e.program.c_str(),
                         e.obeys_model ? "obeys-DRF0" : "violates-DRF0",
                         e.appears_sc ? "appears-SC" : "NOT-SC",
                         e.reliable ? ""
                                    : "  (inconclusive: budget hit)");
    }
    return out;
}

} // namespace wo

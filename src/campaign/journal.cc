#include "journal.hh"

#include "common/logging.hh"

namespace wo {

Journal::~Journal()
{
    if (f_)
        std::fclose(f_);
}

void
Journal::load()
{
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f)
        return;
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break; // a line without \n was cut mid-write: ignore it
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue; // crash-truncated or corrupt: skip
        const Json *type = p.value.find("type");
        if (!type || !type->isString())
            continue;
        if (type->stringValue() == "cell") {
            if (const Json *k = p.value.find("key"))
                if (k->isString())
                    done_.insert(k->stringValue());
        } else if (type->stringValue() == "failure") {
            const Json *dedup = p.value.find("dedup");
            if (!dedup || !dedup->isString())
                continue;
            JournalFailure &rec = failures_[dedup->stringValue()];
            ++rec.count;
            if (const Json *k = p.value.find("kind"))
                if (k->isString())
                    rec.kind = k->stringValue();
            if (const Json *fl = p.value.find("file"))
                if (fl->isString() && !fl->stringValue().empty())
                    rec.file = fl->stringValue();
            if (const Json *i = p.value.find("insns"))
                if (i->isNumber() && rec.insns == 0)
                    rec.insns = static_cast<std::size_t>(i->uintValue());
        }
    }
}

bool
Journal::open(bool fresh)
{
    f_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
    if (!f_) {
        warn("cannot open campaign journal '%s'", path_.c_str());
        return false;
    }
    return true;
}

void
Journal::appendLine(const Json &j)
{
    if (!f_)
        return;
    const std::string line = j.dump() + "\n";
    std::fwrite(line.data(), 1, line.size(), f_);
    std::fflush(f_); // crash safety: the line is the commit point
}

void
Journal::writeHeader(Json meta)
{
    std::lock_guard<std::mutex> lock(mu_);
    Json j = Json::object();
    j.set("type", Json("campaign"));
    for (const auto &[k, v] : meta.members())
        j.set(k, v);
    appendLine(j);
}

bool
Journal::done(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return done_.count(key) > 0;
}

std::size_t
Journal::doneCells() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return done_.size();
}

void
Journal::appendCell(const CellResult &r)
{
    Json j = Json::object();
    j.set("type", Json("cell"));
    j.set("key", Json(r.key));
    j.set("verdict", Json(r.verdict()));
    j.set("hw", Json(r.hw));
    j.set("races", Json(r.races));
    j.set("sig", Json(r.outcome_sig));
    j.set("tick", Json(r.finish_tick));
    j.set("ms", Json(r.wall_ms));
    if (!r.primary_kind.empty())
        j.set("kind", Json(r.primary_kind));

    std::lock_guard<std::mutex> lock(mu_);
    done_.insert(r.key);
    appendLine(j);
}

bool
Journal::recordFailure(const std::string &dedup, const std::string &kind,
                       const std::string &cell_key,
                       const std::string &file, std::size_t insns,
                       std::size_t orig_insns)
{
    std::lock_guard<std::mutex> lock(mu_);
    JournalFailure &rec = failures_[dedup];
    const bool first = rec.count == 0;
    ++rec.count;
    if (first) {
        rec.kind = kind;
        rec.file = file;
        rec.insns = insns;
    }

    Json j = Json::object();
    j.set("type", Json("failure"));
    j.set("dedup", Json(dedup));
    j.set("kind", Json(kind));
    j.set("cell", Json(cell_key));
    j.set("file", Json(first ? file : rec.file));
    j.set("insns", Json(static_cast<std::uint64_t>(insns)));
    j.set("orig_insns", Json(static_cast<std::uint64_t>(orig_insns)));
    j.set("dup", Json(!first));
    appendLine(j);
    return first;
}

std::map<std::string, JournalFailure>
Journal::failures() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
}

} // namespace wo

/**
 * @file
 * Lightweight statistics collection for the timed simulator and benches.
 *
 * A StatGroup owns a set of named scalar counters and histograms.  The timed
 * components (CPUs, caches, directory, network) register their statistics in
 * a group and the benchmark harness formats them; nothing here is meant to
 * be clever, only uniform and printable.
 */

#ifndef WO_COMMON_STATS_HH
#define WO_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wo {

/** A named monotonically adjustable scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta (default 1) to the counter. */
    void inc(std::uint64_t delta = 1) { value_ += delta; }

    /** Overwrite the counter (for sampled gauges). */
    void set(std::uint64_t v) { value_ = v; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A histogram over non-negative samples with mean/max/percentile queries. */
class Histogram
{
  public:
    /** Record one sample. */
    void sample(std::uint64_t v);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Largest sample (0 when empty). */
    std::uint64_t max() const { return max_; }

    /** Smallest sample (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /**
     * The p-th percentile (nearest-rank) computed from the stored
     * samples.  The full sample vector is retained; simulations here are
     * small enough that exactness beats a sketch.
     *
     * Contract: 0 when empty; @p p is clamped to [0,100];
     * percentile(0) == min() and percentile(100) == max().
     */
    std::uint64_t percentile(double p) const;

    /** One cumulative bucket of the Prometheus-style export. */
    struct Bucket
    {
        std::uint64_t le;  //!< upper bound (inclusive)
        std::uint64_t cum; //!< samples <= le
    };

    /**
     * Cumulative buckets over a power-of-two ladder (1, 2, 4, ... up
     * to the first bound >= max()), the shape Prometheus histogram
     * exposition wants: bucket[i].cum counts every sample <= le, so
     * the counts are monotonically non-decreasing and the final bucket
     * equals count().  Empty histogram -> empty vector (the renderer
     * emits only the implicit +Inf bucket).
     */
    std::vector<Bucket> cumulativeBuckets() const;

    /** Drop all samples. */
    void reset();

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = true;
};

/** A named collection of counters and histograms with a text dump. */
class StatGroup
{
  public:
    /** Construct a group labelled @p name (appears in dumps). */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Find or create the counter @p name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Find or create the histogram @p name. */
    Histogram &histogram(const std::string &name) { return hists_[name]; }

    /** Group label. */
    const std::string &name() const { return name_; }

    /** Reset every statistic in the group. */
    void resetAll();

    /**
     * Render all statistics as "group.stat value" lines.
     *
     * Contract: the output is order-stable — statistics appear sorted by
     * name (counters first, then histograms), independent of creation
     * order, so dumps diff cleanly across runs and golden files can rely
     * on line order.
     */
    std::string dump() const;

    /** Read access for formatters. */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** Read access for formatters. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> hists_;
};

} // namespace wo

#endif // WO_COMMON_STATS_HH

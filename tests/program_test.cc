/**
 * @file
 * Unit tests for the program IR, the builder, the canned litmus programs
 * and the random workload generators.
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "program/litmus.hh"
#include "program/program.hh"
#include "program/workload.hh"

namespace wo {
namespace {

TEST(Instruction, Classification)
{
    Instruction ld;
    ld.op = Opcode::load_data;
    EXPECT_TRUE(ld.readsMemory());
    EXPECT_FALSE(ld.writesMemory());
    EXPECT_FALSE(ld.isSync());

    Instruction tas;
    tas.op = Opcode::test_and_set;
    EXPECT_TRUE(tas.readsMemory());
    EXPECT_TRUE(tas.writesMemory());
    EXPECT_TRUE(tas.isSync());
    EXPECT_FALSE(tas.isReadOnlySync());

    Instruction tst;
    tst.op = Opcode::sync_load;
    EXPECT_TRUE(tst.isReadOnlySync());

    Instruction b;
    b.op = Opcode::branch_eq;
    EXPECT_FALSE(b.accessesMemory());
}

TEST(Builder, BuildsAndResolvesLabels)
{
    ProgramBuilder b("t", 1);
    b.thread(0)
        .movi(0, 3)
        .label("top")
        .addi(0, 0, -1)
        .bne(0, 0, "top")
        .halt();
    Program p = b.build();
    EXPECT_EQ(p.numThreads(), 1);
    // The bne at index 2 must point at the addi at index 1.
    EXPECT_EQ(p.thread(0).at(2).target, 1u);
}

TEST(Builder, UndefinedLabelIsFatal)
{
    ProgramBuilder b("t", 1);
    b.thread(0).jmp("nowhere").halt();
    EXPECT_EXIT(b.build(), testing::ExitedWithCode(1), "undefined label");
}

TEST(Builder, DuplicateLabelPanics)
{
    ProgramBuilder b("t", 1);
    auto &t = b.thread(0);
    t.label("l");
    EXPECT_DEATH(t.label("l"), "twice");
}

TEST(Builder, AutoHaltAppended)
{
    ProgramBuilder b("t", 2);
    b.thread(0).store(0, 1); // no explicit halt
    Program p = b.build();
    EXPECT_EQ(p.thread(0).code.back().op, Opcode::halt);
    EXPECT_EQ(p.thread(1).code.back().op, Opcode::halt);
}

TEST(Builder, LocationsGrowOnDemand)
{
    ProgramBuilder b("t", 1);
    b.thread(0).store(9, 1).halt();
    Program p = b.build();
    EXPECT_EQ(p.numLocations(), 10u);
}

TEST(Builder, InitLocationSetsInitialValue)
{
    ProgramBuilder b("t", 1);
    b.thread(0).load(0, 2).halt();
    b.initLocation(2, 77);
    Program p = b.build();
    EXPECT_EQ(p.initialValue(2), 77);
    EXPECT_EQ(p.initialValue(0), 0);
}

TEST(Builder, AcquireEmitsTestAndTas)
{
    ProgramBuilder b("t", 1);
    b.thread(0).acquire(0).halt();
    Program p = b.build();
    int sync_loads = 0, tases = 0;
    for (const auto &i : p.thread(0).code) {
        sync_loads += i.op == Opcode::sync_load;
        tases += i.op == Opcode::test_and_set;
    }
    EXPECT_EQ(sync_loads, 1);
    EXPECT_EQ(tases, 1);
}

TEST(Program, DisassemblyMentionsEverything)
{
    Program p = litmus::fig1StoreBuffer();
    std::string s = p.toString();
    EXPECT_NE(s.find("ST"), std::string::npos);
    EXPECT_NE(s.find("LD"), std::string::npos);
    EXPECT_NE(s.find("P0"), std::string::npos);
    EXPECT_NE(s.find("P1"), std::string::npos);
}

TEST(Program, LocationNames)
{
    Program p = litmus::fig1StoreBuffer();
    EXPECT_EQ(p.locationName(litmus::loc_x), "X");
    EXPECT_EQ(p.locationName(litmus::loc_y), "Y");
}

TEST(Litmus, Fig1Shape)
{
    Program p = litmus::fig1StoreBuffer();
    ASSERT_EQ(p.numThreads(), 2);
    EXPECT_EQ(p.thread(0).at(0).op, Opcode::store_data);
    EXPECT_EQ(p.thread(0).at(1).op, Opcode::load_data);
    EXPECT_EQ(p.thread(0).at(0).addr, litmus::loc_x);
    EXPECT_EQ(p.thread(0).at(1).addr, litmus::loc_y);
}

TEST(Litmus, Fig3LockStartsHeld)
{
    Program p = litmus::fig3Scenario();
    EXPECT_EQ(p.initialValue(1), 1) << "s must start held by P0";
    EXPECT_EQ(p.initialValue(0), 0);
}

TEST(Litmus, BarrierHasOneSyncStoreOfGoPerThread)
{
    Program p = litmus::barrier(3);
    ASSERT_EQ(p.numThreads(), 3);
    for (ProcId t = 0; t < 3; ++t) {
        int go_stores = 0;
        for (const auto &i : p.thread(t).code)
            go_stores += i.op == Opcode::sync_store && i.addr == 2;
        EXPECT_EQ(go_stores, 1);
    }
}

TEST(Workload, Drf0GeneratorIsDeterministic)
{
    Drf0WorkloadCfg cfg;
    cfg.seed = 123;
    Program a = randomDrf0Program(cfg);
    Program b = randomDrf0Program(cfg);
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(Workload, Drf0GeneratorVariesBySeed)
{
    Drf0WorkloadCfg cfg;
    cfg.seed = 1;
    Program a = randomDrf0Program(cfg);
    cfg.seed = 2;
    Program b = randomDrf0Program(cfg);
    EXPECT_NE(a.toString(), b.toString());
}

TEST(Workload, Drf0DataAccessesOnlyInsideCriticalSections)
{
    Drf0WorkloadCfg cfg;
    cfg.procs = 3;
    cfg.regions = 2;
    cfg.sections = 3;
    cfg.seed = 99;
    Program p = randomDrf0Program(cfg);
    const Addr data_base = cfg.regions;
    const Addr private_base = data_base + cfg.regions * cfg.locs_per_region;
    for (ProcId t = 0; t < p.numThreads(); ++t) {
        int depth = 0;
        for (const auto &i : p.thread(t).code) {
            if (i.op == Opcode::test_and_set)
                depth = 1;
            if (i.op == Opcode::sync_store)
                depth = 0;
            const bool is_region_data =
                (i.op == Opcode::load_data || i.op == Opcode::store_data) &&
                i.addr >= data_base && i.addr < private_base;
            if (is_region_data) {
                EXPECT_EQ(depth, 1)
                    << "shared data access outside critical section";
            }
        }
    }
}

TEST(Workload, RacyGeneratorHasNoSyncOps)
{
    RacyWorkloadCfg cfg;
    cfg.seed = 4;
    Program p = randomRacyProgram(cfg);
    for (ProcId t = 0; t < p.numThreads(); ++t)
        for (const auto &i : p.thread(t).code)
            EXPECT_FALSE(i.isSync());
}

TEST(Workload, SyntheticMixRespectsSyncPercentExtremes)
{
    Program none = syntheticMix(2, 4, 2, 20, 0, 0, 7);
    for (ProcId t = 0; t < none.numThreads(); ++t)
        for (const auto &i : none.thread(t).code)
            EXPECT_FALSE(i.isSync());

    Program all = syntheticMix(2, 4, 2, 20, 100, 0, 7);
    int syncs = 0, datas = 0;
    for (ProcId t = 0; t < all.numThreads(); ++t) {
        for (const auto &i : all.thread(t).code) {
            syncs += i.isSync();
            datas += i.accessesMemory() && !i.isSync();
        }
    }
    EXPECT_EQ(datas, 0);
    EXPECT_EQ(syncs, 40);
}

TEST(Program, ValidationCatchesBadBranchTarget)
{
    std::vector<ThreadCode> threads(1);
    Instruction b;
    b.op = Opcode::branch_eq;
    b.target = 99;
    Instruction h;
    h.op = Opcode::halt;
    threads[0].code = {b, h};
    EXPECT_EXIT(Program("bad", std::move(threads), 1),
                testing::ExitedWithCode(1), "branch target");
}

TEST(Program, ValidationCatchesMissingHalt)
{
    std::vector<ThreadCode> threads(1);
    Instruction s;
    s.op = Opcode::store_data;
    s.addr = 0;
    threads[0].code = {s};
    EXPECT_EXIT(Program("bad", std::move(threads), 1),
                testing::ExitedWithCode(1), "HALT");
}

} // namespace
} // namespace wo

# Empty compiler generated dependencies file for wo_campaign.
# This may be replaced when dependencies are built.

/**
 * @file
 * The litmus matrix as assertions: for each classical shape, which
 * machines allow the SC-forbidden outcome.  These tests pin down the
 * precise weakness of every model -- write-side relaxation with reads
 * performed at issue, per-location coherence everywhere -- so that any
 * future change to a model's semantics trips a fence here.
 */

#include <gtest/gtest.h>

#include <functional>

#include "models/explorer.hh"
#include "models/network_model.hh"
#include "models/sc_model.hh"
#include "models/stale_cache_model.hh"
#include "models/wo_def1_model.hh"
#include "models/wo_drf0_model.hh"
#include "models/write_buffer_model.hh"
#include "program/litmus.hh"

namespace wo {
namespace {

using Probe = std::function<bool(const Outcome &)>;

template <typename Model>
bool
allows(const Model &m, const Probe &probe)
{
    auto r = exploreOutcomes(m);
    EXPECT_FALSE(r.truncated);
    for (const auto &o : r.outcomes)
        if (probe(o))
            return true;
    return false;
}

/** Expected allow/forbid per machine for one shape. */
struct Row
{
    Program prog;
    Probe probe;
    bool sc, wb, net, stale, def1, drf0;
};

void
checkRow(const Row &row)
{
    const Program &p = row.prog;
    EXPECT_EQ(allows(ScModel(p), row.probe), row.sc) << p.name() << " SC";
    EXPECT_EQ(allows(WriteBufferModel(p), row.probe), row.wb)
        << p.name() << " WB";
    EXPECT_EQ(allows(NetworkReorderModel(p), row.probe), row.net)
        << p.name() << " NET";
    EXPECT_EQ(allows(StaleCacheModel(p), row.probe), row.stale)
        << p.name() << " STALE";
    EXPECT_EQ(allows(WoDef1Model(p), row.probe), row.def1)
        << p.name() << " DEF1";
    EXPECT_EQ(allows(WoDrf0Model(p), row.probe), row.drf0)
        << p.name() << " DRF0";
}

TEST(LitmusMatrix, StoreBuffering)
{
    checkRow(Row{litmus::fig1StoreBuffer(),
                 [](const Outcome &o) {
                     return o.regs[0][0] == 0 && o.regs[1][0] == 0;
                 },
                 false, true, true, true, true, true});
}

TEST(LitmusMatrix, MessagePassing)
{
    checkRow(Row{litmus::messagePassing(),
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[1][1] == 0;
                 },
                 // The FIFO write buffer and the per-receiver-FIFO stale
                 // cache preserve MP; the unordered pools and the network
                 // do not.
                 false, false, true, false, true, true});
}

TEST(LitmusMatrix, LoadBuffering)
{
    checkRow(Row{litmus::loadBuffering(),
                 [](const Outcome &o) {
                     return o.regs[0][0] == 1 && o.regs[1][1] == 1;
                 },
                 // Reads perform at issue on every machine here.
                 false, false, false, false, false, false});
}

TEST(LitmusMatrix, WriteToReadCausality)
{
    checkRow(Row{litmus::wrc(),
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[2][1] == 1 &&
                            o.regs[2][2] == 0;
                 },
                 // A value becomes readable only once globally reachable
                 // (single memory / per-receiver FIFO), so causality
                 // holds everywhere.
                 false, false, false, false, false, false});
}

TEST(LitmusMatrix, TwoPlusTwoW)
{
    checkRow(Row{litmus::twoPlusTwoW(),
                 [](const Outcome &o) {
                     return o.memory[0] == 1 && o.memory[1] == 1;
                 },
                 // Needs cross-location write reordering: only the
                 // network machine and the unordered pools provide it.
                 false, false, true, false, true, true});
}

TEST(LitmusMatrix, SShape)
{
    checkRow(Row{litmus::sShape(),
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.memory[0] == 2;
                 },
                 false, false, true, false, true, true});
}

TEST(LitmusMatrix, CoherenceWW)
{
    checkRow(Row{litmus::coWW(),
                 [](const Outcome &o) { return o.memory[0] != 2; },
                 // Per-location program order holds on every machine.
                 false, false, false, false, false, false});
}

TEST(LitmusMatrix, CoherenceRR)
{
    checkRow(Row{litmus::coherenceCoRR(),
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[1][1] == 0;
                 },
                 false, false, false, false, false, false});
}

TEST(LitmusMatrix, Iriw)
{
    checkRow(Row{litmus::iriw(),
                 [](const Outcome &o) {
                     return o.regs[2][0] == 1 && o.regs[2][1] == 0 &&
                            o.regs[3][0] == 1 && o.regs[3][1] == 0;
                 },
                 // Every machine here has a single serialization point
                 // per write, so IRIW stays forbidden.
                 false, false, false, false, false, false});
}

TEST(LitmusMatrix, EveryMachineContainsSc)
{
    for (const Program &p :
         {litmus::fig1StoreBuffer(), litmus::messagePassing(),
          litmus::loadBuffering(), litmus::wrc(), litmus::twoPlusTwoW(),
          litmus::sShape(), litmus::iriw()}) {
        auto sc = exploreOutcomes(ScModel(p));
        EXPECT_TRUE(sc.subsetOf(exploreOutcomes(WriteBufferModel(p))))
            << p.name();
        EXPECT_TRUE(sc.subsetOf(exploreOutcomes(NetworkReorderModel(p))))
            << p.name();
        EXPECT_TRUE(sc.subsetOf(exploreOutcomes(StaleCacheModel(p))))
            << p.name();
        EXPECT_TRUE(sc.subsetOf(exploreOutcomes(WoDef1Model(p))))
            << p.name();
        EXPECT_TRUE(sc.subsetOf(exploreOutcomes(WoDrf0Model(p))))
            << p.name();
    }
}

} // namespace
} // namespace wo

/**
 * @file
 * The whole-program DRF0 check (Definition 3): a program obeys DRF0 iff
 * (1) its synchronization operations are hardware-recognizable and access
 * exactly one location -- true by construction of the instruction set --
 * and (2) in EVERY execution on the idealized architecture all conflicting
 * accesses are ordered by that execution's happens-before relation.
 *
 * The checker drives the ScModel path by path (depth-first over scheduler
 * choices) and detects races on the fly with vector clocks, exiting on the
 * first race found.  Two sound reductions keep this tractable:
 *
 *  - residual-conflict reduction: for every thread and program point the
 *    checker precomputes the set of locations the thread may still read
 *    or write from there on (a reverse CFG fixpoint).  An access that no
 *    OTHER thread's residual can conflict with commutes with every
 *    current and future transition -- residual sets only shrink as
 *    control advances -- so it is executed eagerly (race-checked against
 *    the past, but without a scheduling branch).  This subsumes the
 *    static "location touched by one thread" case and, e.g., lets each
 *    barrier phase of a phased program be explored independently;
 *
 *  - stutter pruning: a step that changes neither the thread's context nor
 *    memory (a failed spin iteration re-reading an unchanged location) is
 *    not explored; the iteration's race possibilities are identical to
 *    those of the spin read already executed, and the loop is re-enabled
 *    as soon as any other processor changes the machine state.
 *
 * Stutter pruning makes the search terminate for spin-based programs; for
 * loop-free programs no stutters exist and the search is fully exhaustive.
 * Path enumeration is exponential in the number of *visible* (shared,
 * schedulable) accesses, so keep checked programs small; the `max_steps`
 * budget turns blow-ups into an explicit `exhausted` verdict.
 */

#ifndef WO_CORE_DRF0_CHECKER_HH
#define WO_CORE_DRF0_CHECKER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "execution/execution.hh"
#include "hb/happens_before.hh"
#include "hb/race.hh"
#include "program/program.hh"

namespace wo {

/** Verdict of a whole-program synchronization-model check. */
struct SyncModelVerdict
{
    bool obeys = false;          //!< no race in any explored execution
    bool exhausted = false;      //!< budget hit: obeys is only "so far"
    std::uint64_t paths = 0;     //!< completed idealized executions
    std::uint64_t steps = 0;     //!< visible steps executed
    std::optional<Execution> witness; //!< a racy idealized execution prefix
    std::vector<Race> races;     //!< the offending pair(s) within witness

    explicit operator bool() const { return obeys; }

    /** One-line human summary. */
    std::string toString() const;
};

/** Options for the DRF0 checker. */
struct Drf0CheckerCfg
{
    /** Total visible-step budget across all paths (0 = unlimited). */
    std::uint64_t max_steps = 20'000'000;

    /**
     * Happens-before flavor: plain DRF0, or the Section-6 refinement in
     * which read-only synchronization does not publish ordering (then
     * sync-sync conflicts are exempted, as the synchronization mechanism).
     */
    HbRelation::SyncFlavor flavor = HbRelation::SyncFlavor::drf0;
};

/** Check whether @p prog obeys DRF0 (or its read-only-sync refinement). */
SyncModelVerdict checkDrf0(const Program &prog,
                           const Drf0CheckerCfg &cfg = {});

} // namespace wo

#endif // WO_CORE_DRF0_CHECKER_HH

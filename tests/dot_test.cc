/**
 * @file
 * Tests for the DOT (Graphviz) export of happens-before structure.
 */

#include <gtest/gtest.h>

#include "hb/dot.hh"
#include "hb/fig2.hh"

namespace wo {
namespace {

TEST(Dot, Fig2aRendersClustersAndEdges)
{
    Execution e = fig2::executionA();
    DotCfg cfg;
    cfg.title = "figure 2(a)";
    std::string dot = executionToDot(e, cfg);
    EXPECT_NE(dot.find("digraph execution"), std::string::npos);
    EXPECT_NE(dot.find("cluster_p0"), std::string::npos);
    EXPECT_NE(dot.find("cluster_p5"), std::string::npos);
    EXPECT_NE(dot.find("label=\"figure 2(a)\""), std::string::npos);
    EXPECT_NE(dot.find("style=dashed, color=blue"), std::string::npos)
        << "so edges present";
    EXPECT_EQ(dot.find("color=red"), std::string::npos)
        << "figure 2(a) has no races";
}

TEST(Dot, Fig2bMarksRaces)
{
    std::string dot = executionToDot(fig2::executionB());
    EXPECT_NE(dot.find("color=red"), std::string::npos);
    EXPECT_NE(dot.find("label=\"race\""), std::string::npos);
}

TEST(Dot, RaceMarkingCanBeDisabled)
{
    DotCfg cfg;
    cfg.mark_races = false;
    std::string dot = executionToDot(fig2::executionB(), cfg);
    EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

TEST(Dot, SyncOpsHighlighted)
{
    std::string dot = executionToDot(fig2::executionA());
    EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
}

TEST(Dot, EscapesQuotes)
{
    Execution e(1, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    DotCfg cfg;
    cfg.title = "say \"hi\"";
    std::string dot = executionToDot(e, cfg);
    EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(Dot, BalancedBraces)
{
    std::string dot = executionToDot(fig2::executionA());
    int depth = 0;
    for (char c : dot) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace wo

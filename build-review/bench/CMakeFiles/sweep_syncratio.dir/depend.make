# Empty dependencies file for sweep_syncratio.
# This may be replaced when dependencies are built.

/**
 * @file
 * The directory / memory controller of the Section-5.2 implementation
 * model: a straightforward full-map, write-back, invalidation directory
 * (in the style of [ASH88]) that forwards the requested line to a writer
 * *in parallel* with the invalidations it sends to sharers, and later
 * acknowledges the writer (MemAck) once every invalidation has been
 * acknowledged -- the point at which the write is globally performed.
 *
 * The directory serializes transactions per line: while one is in flight
 * (awaiting a downgrade, an ownership transfer, or invalidation acks),
 * subsequent requests for the same line queue here.  Requests for other
 * lines proceed independently, which is what lets the reserve-bit
 * mechanism overlap one processor's pending data misses with another's
 * synchronization attempt.
 */

#ifndef WO_COHERENCE_DIRECTORY_HH
#define WO_COHERENCE_DIRECTORY_HH

#include <deque>
#include <set>
#include <vector>

#include "coherence/message.hh"
#include "coherence/network.hh"
#include "common/stats.hh"

namespace wo {

/** Directory behaviour knobs. */
struct DirectoryCfg
{
    /**
     * Section 5.2's design point: "Our protocol allows the line requested
     * by the write to be forwarded to the requesting processor in
     * parallel with the sending of these invalidations."  When false, the
     * directory instead collects every invalidation ack before granting
     * the line (the conservative alternative) -- the ablation of
     * bench/ablation_parallel_inv.
     */
    bool forward_line_with_invs = true;

    /**
     * MESI option: grant a read of an uncached line in exclusive-clean
     * state, so a subsequent write by the same processor upgrades
     * silently (no GetX).  The matching cache must run with
     * CacheCfg::mesi.  Ablated in bench/ablation_mesi.
     */
    bool grant_exclusive_clean = false;
};

/** The directory plus memory. */
class Directory : public MsgHandler
{
  public:
    /**
     * @param id      network node id of the directory
     * @param net     interconnect
     * @param initial initial memory image (one word per line)
     * @param cfg     behaviour knobs
     */
    Directory(NodeId id, Network &net, std::vector<Value> initial,
              const DirectoryCfg &cfg = {});

    /** Protocol entry point. */
    void receive(const Message &msg) override;

    /** Pre-register @p node as a sharer of @p addr (warm-up). */
    void warmSharer(Addr addr, NodeId node);

    /** Memory word @p addr (only current when no cache holds it M). */
    Value memoryValue(Addr addr) const;

    /** Current exclusive owner of @p addr, or invalid_proc. */
    NodeId ownerOf(Addr addr) const;

    /** True when no transaction is in flight anywhere. */
    bool quiescent() const;

    /** Lines with a transaction in flight (busy, collecting or waiting). */
    std::uint64_t busyLines() const;

    /** Statistics. */
    const StatGroup &stats() const { return stats_; }

  private:
    enum class LineState : std::uint8_t { uncached, shared, exclusive };

    struct DirLine
    {
        LineState st = LineState::uncached;
        std::set<NodeId> sharers;
        NodeId owner = invalid_proc;
        Value mem = 0;
        bool busy = false;
        // Invalidation-collection state.
        bool collecting = false;
        int acks_needed = 0;
        int acks_got = 0;
        NodeId writer = invalid_proc;
        bool data_deferred = false; //!< grant withheld until acks collected
        std::deque<Message> waiting;
    };

    void handleGetS(const Message &msg);
    void handleGetX(const Message &msg);
    void handleWbData(const Message &msg);
    void handleTransferAck(const Message &msg);
    void handleInvAck(const Message &msg);
    void handleNack(const Message &msg);

    /** Finish a transaction on @p line and replay queued requests. */
    void unblock(Addr addr);

    DirLine &line(Addr addr);

    NodeId id_;
    Network &net_;
    DirectoryCfg cfg_;
    std::vector<DirLine> lines_;
    StatGroup stats_;
};

} // namespace wo

#endif // WO_COHERENCE_DIRECTORY_HH

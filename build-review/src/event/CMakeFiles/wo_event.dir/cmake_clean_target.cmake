file(REMOVE_RECURSE
  "libwo_event.a"
)

# Empty compiler generated dependencies file for litmus_matrix_test.
# This may be replaced when dependencies are built.

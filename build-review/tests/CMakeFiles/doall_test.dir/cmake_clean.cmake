file(REMOVE_RECURSE
  "CMakeFiles/doall_test.dir/doall_test.cc.o"
  "CMakeFiles/doall_test.dir/doall_test.cc.o.d"
  "doall_test"
  "doall_test.pdb"
  "doall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "message.hh"

#include "common/logging.hh"

namespace wo {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::get_s: return "GetS";
      case MsgType::get_x: return "GetX";
      case MsgType::data_s: return "DataS";
      case MsgType::data_e: return "DataE";
      case MsgType::data_x: return "DataX";
      case MsgType::fwd_get_s: return "FwdGetS";
      case MsgType::fwd_get_x: return "FwdGetX";
      case MsgType::inv: return "Inv";
      case MsgType::inv_ack: return "InvAck";
      case MsgType::mem_ack: return "MemAck";
      case MsgType::wb_data: return "WbData";
      case MsgType::transfer_ack: return "TransferAck";
      case MsgType::nack: return "Nack";
    }
    return "?";
}

std::string
Message::toString() const
{
    return strprintf("%s %u->%u [%u] v=%lld acks=%d req=%u%s%s",
                     msgTypeName(type), src, dst, addr,
                     static_cast<long long>(value), ack_count, requester,
                     is_sync ? " sync" : "",
                     from_exclusive ? " fromX" : "");
}

} // namespace wo

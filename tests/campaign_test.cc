/**
 * @file
 * Tests for the campaign engine: generator determinism, the fuzz
 * frontier's reproducible base stream, the crash-safe journal, the
 * counterexample shrinker, and the work-stealing scheduler end to end
 * (including the seeded-fault hunt and `--resume` semantics).
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "campaign/cell.hh"
#include "campaign/fuzzer.hh"
#include "campaign/journal.hh"
#include "campaign/scheduler.hh"
#include "campaign/shrink.hh"
#include "campaign/verify.hh"
#include "common/random.hh"
#include "obs/json.hh"
#include "program/workload.hh"

namespace wo {
namespace {

std::string
slurp(const std::string &path)
{
    std::string out;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/** One journaled cell line plus where it ends in the file. */
struct JournalCellLine
{
    std::string key;
    std::string verdict;
    std::size_t end; //!< byte offset just past the line's newline
};

/** The type=="cell" lines of a journal, in file order. */
std::vector<JournalCellLine>
journalCells(const std::string &path)
{
    std::vector<JournalCellLine> out;
    const std::string text = slurp(path);
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break;
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue;
        const Json *type = p.value.find("type");
        if (!type || !type->isString() || type->stringValue() != "cell")
            continue;
        const Json *key = p.value.find("key");
        const Json *verdict = p.value.find("verdict");
        out.push_back({key && key->isString() ? key->stringValue() : "",
                       verdict && verdict->isString()
                           ? verdict->stringValue()
                           : "",
                       pos});
    }
    return out;
}

// ------------------------------------------------ generator determinism

TEST(GeneratorDeterminism, SameSeedSameDrf0Program)
{
    Drf0WorkloadCfg cfg;
    cfg.procs = 3;
    cfg.regions = 2;
    cfg.seed = 42;
    Program a = randomDrf0Program(cfg);
    Program b = randomDrf0Program(cfg);
    EXPECT_EQ(disassemble(a), disassemble(b));
}

TEST(GeneratorDeterminism, DifferentSeedDifferentDrf0Program)
{
    Drf0WorkloadCfg cfg;
    cfg.procs = 3;
    cfg.regions = 2;
    cfg.seed = 42;
    Program a = randomDrf0Program(cfg);
    cfg.seed = 43;
    Program b = randomDrf0Program(cfg);
    EXPECT_NE(disassemble(a), disassemble(b));
}

TEST(GeneratorDeterminism, SameSeedSameRacyProgram)
{
    RacyWorkloadCfg cfg;
    cfg.procs = 3;
    cfg.ops_per_thread = 5;
    cfg.seed = 7;
    EXPECT_EQ(disassemble(randomRacyProgram(cfg)),
              disassemble(randomRacyProgram(cfg)));
    RacyWorkloadCfg other = cfg;
    other.seed = 8;
    EXPECT_NE(disassemble(randomRacyProgram(cfg)),
              disassemble(randomRacyProgram(other)));
}

// ------------------------------------------------------- mutation hooks

TEST(MutationHooks, Drf0MutantsStayInBoundsAndRedrawSeed)
{
    Drf0WorkloadCfg base;
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        Drf0WorkloadCfg m = mutateDrf0Cfg(base, rng);
        EXPECT_GE(m.procs, 2u);
        EXPECT_LE(m.procs, 4u);
        EXPECT_GE(m.regions, 1u);
        EXPECT_LE(m.regions, 3u);
        EXPECT_GE(m.sections, 1);
        EXPECT_LE(m.sections, 3);
        EXPECT_GE(m.ops_per_section, 1);
        EXPECT_LE(m.ops_per_section, 4);
        EXPECT_NE(m.seed, base.seed); // fresh generator draw
        // Every mutant must still describe a buildable program.
        Program p = randomDrf0Program(m);
        EXPECT_GT(p.staticSize(), 0u);
    }
}

TEST(MutationHooks, EqualRngStreamsDeriveEqualMutants)
{
    Drf0WorkloadCfg base;
    Rng a(99), b(99);
    for (int i = 0; i < 50; ++i) {
        Drf0WorkloadCfg ma = mutateDrf0Cfg(base, a);
        Drf0WorkloadCfg mb = mutateDrf0Cfg(base, b);
        EXPECT_EQ(disassemble(randomDrf0Program(ma)),
                  disassemble(randomDrf0Program(mb)));
    }
}

TEST(MutationHooks, RacyMutantsStayInBounds)
{
    RacyWorkloadCfg base;
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        RacyWorkloadCfg m = mutateRacyCfg(base, rng);
        EXPECT_GE(m.procs, 2u);
        EXPECT_LE(m.procs, 4u);
        EXPECT_GE(m.locs, 1u);
        EXPECT_LE(m.locs, 3u);
        EXPECT_GE(m.ops_per_thread, 1);
        EXPECT_LE(m.ops_per_thread, 6);
        Program p = randomRacyProgram(m);
        EXPECT_GT(p.staticSize(), 0u);
    }
}

// ------------------------------------------------- fuzzer base stream

TEST(Fuzzer, BaseStreamIsAPureFunctionOfSeedAndIndex)
{
    FuzzerCfg cfg;
    cfg.seed = 1234;
    Fuzzer a(cfg), b(cfg);
    for (std::uint64_t i = 0; i < 200; ++i)
        EXPECT_EQ(a.baseCell(i).key(), b.baseCell(i).key()) << i;
    // Out-of-order queries see the same cells: no hidden stream state.
    EXPECT_EQ(a.baseCell(7).key(), b.baseCell(7).key());
}

TEST(Fuzzer, DifferentCampaignSeedsShiftTheStream)
{
    FuzzerCfg a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    Fuzzer a(a_cfg), b(b_cfg);
    int differing = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        differing += a.baseCell(i).key() != b.baseCell(i).key();
    EXPECT_GT(differing, 0);
}

TEST(Fuzzer, BaseCellsMaterializeAndRun)
{
    FuzzerCfg cfg;
    Fuzzer f(cfg);
    for (std::uint64_t i = 0; i < 12; ++i) {
        Cell c = f.baseCell(i);
        auto run = runCell(c, 200'000);
        EXPECT_EQ(run.result.key, c.key());
        EXPECT_TRUE(run.program.has_value()) << c.key();
        // A conforming machine never trips a hardware invariant.
        EXPECT_EQ(run.result.hw, 0u) << c.key();
    }
}

// -------------------------------------------- the materialization cache

TEST(MaterializeCache, LitmusCellsHitAcrossTimingAndPolicy)
{
    ASSERT_FALSE(litmusCorpus().empty());
    Cell c;
    c.source = CellSource::litmus;
    c.spec = litmusCorpus().front().name;

    MaterializeCache cache;
    MaterializedCell a = materializeCell(c, &cache);
    // Same program family, different timing/policy coordinates: the
    // cache serves the parse, the run still differs.
    Cell c2 = c;
    c2.net_seed = 99;
    c2.policy = OrderingPolicy::sc;
    MaterializedCell b = materializeCell(c2, &cache);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(disassemble(*a.program), disassemble(*b.program));
    // The cached copy is byte-identical to an uncached build.
    MaterializedCell plain = materializeCell(c);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(disassemble(*plain.program), disassemble(*a.program));
}

TEST(MaterializeCache, RandomDrawsBypassAndErrorsAreCached)
{
    MaterializeCache cache;
    // Every random draw embeds its own generator seed: caching one
    // would replay it forever, so the cache must pass them through.
    Cell r;
    r.source = CellSource::drf0_rand;
    r.drf0.seed = 5;
    EXPECT_TRUE(materializeCell(r, &cache).ok());
    Cell r2 = r;
    r2.drf0.seed = 6;
    EXPECT_TRUE(materializeCell(r2, &cache).ok());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);

    // A broken corpus file costs one parse attempt, not one per cell.
    Cell bad;
    bad.source = CellSource::file;
    bad.spec = testing::TempDir() + "missing_corpus.wo";
    MaterializedCell e1 = materializeCell(bad, &cache);
    MaterializedCell e2 = materializeCell(bad, &cache);
    EXPECT_FALSE(e1.ok());
    EXPECT_FALSE(e2.ok());
    EXPECT_EQ(e1.error, e2.error);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

// --------------------------------------------------------- the journal

TEST(Journal, RoundTripAndResumeState)
{
    const std::string path = testing::TempDir() + "journal_rt.jsonl";
    std::remove(path.c_str());
    {
        Journal j(path);
        j.load(); // missing file: fresh start
        ASSERT_TRUE(j.open(/*fresh=*/true));
        j.writeHeader(Json::object());
        CellResult r;
        r.key = "litmus:iriw|WO-DRF0|n7|h10|j2";
        r.completed = true;
        r.outcome_sig = "abcd";
        j.appendCell(r);
        EXPECT_TRUE(j.done(r.key));
        EXPECT_TRUE(j.recordFailure("reserve_leak:123abc",
                                    "reserve_leak", r.key, "x.wo", 4, 24));
        // An equivalent failure only bumps the count.
        EXPECT_FALSE(j.recordFailure("reserve_leak:123abc",
                                     "reserve_leak", r.key, "x.wo", 4, 24));
    }
    Journal j2(path);
    j2.load();
    EXPECT_TRUE(j2.done("litmus:iriw|WO-DRF0|n7|h10|j2"));
    EXPECT_FALSE(j2.done("litmus:mp|WO-DRF0|n7|h10|j2"));
    EXPECT_EQ(j2.doneCells(), 1u);
    auto fails = j2.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_EQ(fails.begin()->second.kind, "reserve_leak");
    EXPECT_EQ(fails.begin()->second.count, 2u);
    EXPECT_EQ(fails.begin()->second.insns, 4u);
}

TEST(Journal, TruncatedTrailingLineIsIgnored)
{
    const std::string path = testing::TempDir() + "journal_trunc.jsonl";
    std::remove(path.c_str());
    {
        Journal j(path);
        ASSERT_TRUE(j.open(true));
        CellResult r;
        r.key = "k1";
        j.appendCell(r);
    }
    // Simulate a crash mid-append: a torn, unterminated JSON line.
    FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"cell\",\"key\":\"k2", f);
    std::fclose(f);

    Journal j2(path);
    j2.load();
    EXPECT_TRUE(j2.done("k1"));
    EXPECT_FALSE(j2.done("k2"));
    EXPECT_EQ(j2.doneCells(), 1u);
}

TEST(Journal, SeenSetInsertContainsAndOverflowSpill)
{
    SeenSet s;
    s.reserve(100);
    EXPECT_TRUE(s.insert(fnv1a64("a")));
    EXPECT_FALSE(s.insert(fnv1a64("a"))); // second claim loses
    EXPECT_TRUE(s.contains(fnv1a64("a")));
    EXPECT_FALSE(s.contains(fnv1a64("b")));
    EXPECT_EQ(s.size(), 1u);

    // Spill far past the default table's half-load watermark: the
    // mutexed overflow set must keep every key, and duplicates must
    // still be rejected across the table/overflow boundary.
    SeenSet t; // default-sized: 4096 slots, spills past 2048
    const std::uint64_t stride = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t i = 1; i <= 5000; ++i)
        EXPECT_TRUE(t.insert(i * stride)) << i;
    EXPECT_EQ(t.size(), 5000u);
    for (std::uint64_t i = 1; i <= 5000; ++i)
        EXPECT_TRUE(t.contains(i * stride)) << i;
    EXPECT_FALSE(t.insert(42 * stride));
    EXPECT_FALSE(t.insert(4999 * stride));
}

TEST(Journal, SyncEveryOneFlushesEveryRecord)
{
    const std::string path = testing::TempDir() + "journal_sync1.jsonl";
    std::remove(path.c_str());
    JournalCfg jcfg;
    jcfg.sync_every = 1; // the pre-group-commit contract
    Journal j(path, jcfg);
    ASSERT_TRUE(j.open(/*fresh=*/true));
    for (int i = 0; i < 20; ++i) {
        CellResult r;
        r.key = "k" + std::to_string(i);
        r.completed = true;
        j.appendCell(r);
    }
    j.close();
    // One commit (fflush) per record, not per drained batch.
    EXPECT_GE(j.commitBatches(), 20u);

    Journal j2(path);
    j2.load();
    EXPECT_EQ(j2.doneCells(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(j2.done("k" + std::to_string(i))) << i;
}

TEST(Journal, GroupCommitIsDurableAfterClose)
{
    const std::string path = testing::TempDir() + "journal_group.jsonl";
    std::remove(path.c_str());
    JournalCfg jcfg;
    jcfg.sync_every = 1000;      // never reach the batch threshold...
    jcfg.flush_interval_ms = 1000; // ...and outlive the interval too
    Journal j(path, jcfg);
    ASSERT_TRUE(j.open(/*fresh=*/true));
    for (int i = 0; i < 100; ++i) {
        CellResult r;
        r.key = "g" + std::to_string(i);
        j.appendCell(r);
        EXPECT_TRUE(j.done(r.key)); // done immediately, pre-durability
    }
    j.close(); // the final drain commits whatever is still queued
    EXPECT_GE(j.commitBatches(), 1u);

    Journal j2(path);
    j2.load();
    EXPECT_EQ(j2.doneCells(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(j2.done("g" + std::to_string(i))) << i;
}

TEST(Journal, HeaderStampsSchemaVersionAndHwThreads)
{
    const std::string path = testing::TempDir() + "journal_schema.jsonl";
    std::remove(path.c_str());
    {
        Journal j(path);
        ASSERT_TRUE(j.open(/*fresh=*/true));
        Json meta = Json::object();
        meta.set("seed", Json(std::uint64_t{7}));
        j.writeHeader(std::move(meta));
    }
    Journal j2(path);
    j2.load();
    EXPECT_EQ(j2.loadedSchemaVersion(), journal_schema_version);
    EXPECT_FALSE(j2.schemaMismatch());
    const Json &h = j2.header();
    ASSERT_TRUE(h.isObject());
    EXPECT_EQ(h.find("seed")->uintValue(), 7u);
    EXPECT_EQ(h.find("schema_version")->uintValue(),
              journal_schema_version);
    // The run's hardware parallelism, for apples-to-apples perf
    // comparisons across journals.
    EXPECT_GE(h.find("hw_threads")->uintValue(), 1u);
}

TEST(Journal, HeaderMembersAlreadyPresentWin)
{
    // Merged/replayed headers are forwarded verbatim: the stamps must
    // not overwrite members the caller provided.
    const std::string path = testing::TempDir() + "journal_verb.jsonl";
    std::remove(path.c_str());
    {
        Journal j(path);
        ASSERT_TRUE(j.open(true));
        Json meta = Json::object();
        meta.set("hw_threads", Json(std::uint64_t{99}));
        j.writeHeader(std::move(meta));
    }
    Journal j2(path);
    j2.load();
    EXPECT_EQ(j2.header().find("hw_threads")->uintValue(), 99u);
}

TEST(Journal, SchemaMismatchIsFlaggedButStillReplays)
{
    const std::string path = testing::TempDir() + "journal_old.jsonl";
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"campaign\",\"schema_version\":1}\n", f);
    std::fputs("{\"type\":\"cell\",\"key\":\"old1\"}\n", f);
    std::fclose(f);

    Journal j(path);
    j.load(); // warns on the version skew, then replays anyway
    EXPECT_TRUE(j.schemaMismatch());
    EXPECT_EQ(j.loadedSchemaVersion(), 1u);
    EXPECT_TRUE(j.done("old1"));
}

TEST(Journal, FleetIdxLinesBuildTheResumeIndexSet)
{
    const std::string path = testing::TempDir() + "journal_idx.jsonl";
    std::remove(path.c_str());
    {
        Journal j(path);
        ASSERT_TRUE(j.open(true));
        j.writeHeader(Json::object());
        for (std::uint64_t i : {0ull, 3ull, 17ull}) {
            Json line = Json::object();
            line.set("type", Json("cell"));
            line.set("key", Json("k" + std::to_string(i)));
            line.set("idx", Json(i));
            j.appendJson(std::move(line));
        }
        // A single-process line (no idx) marks its key done but adds
        // no resume index.
        CellResult r;
        r.key = "plain";
        j.appendCell(r);
    }
    Journal j2(path);
    j2.load();
    EXPECT_EQ(j2.doneCells(), 4u);
    const auto &idx = j2.resumeIndices();
    EXPECT_EQ(idx.size(), 3u);
    EXPECT_TRUE(idx.count(0) && idx.count(3) && idx.count(17));
    EXPECT_TRUE(j2.done("plain"));
}

// -------------------------------------------------------- the shrinker

/** The seeded-fault witness from the monitor suite, plus dead weight
 *  the shrinker should strip. */
const char *const fat_leak_source = R"(program fatleak
thread 0
  ld r1 pad0
  st pad1 7
  tas r7 lock
  st data 1
  st data2 2
  syncst lock 0
  ld r2 pad0
  st pad1 9
thread 1
  work 300
  ld r3 pad2
  tas r7 lock
  syncst lock 0
  st pad2 5
thread 2
  ld r4 pad3
  st pad3 1
  ld r5 pad3
)";

TEST(Shrinker, MinimizesSeededReserveLeak)
{
    AsmResult a = assembleString(fat_leak_source);
    ASSERT_TRUE(a.ok());
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.cache.bug_drop_reserve_clear = true;
    cfg.max_events = 60'000;

    ASSERT_TRUE(reproducesViolation(*a.program, a.warm, cfg,
                                    ViolationKind::reserve_leak));

    ShrinkCfg scfg;
    scfg.max_runs = 300;
    auto out = shrinkCounterexample(*a.program, a.warm, cfg,
                                    ViolationKind::reserve_leak, scfg);
    EXPECT_TRUE(out.reproduced);
    EXPECT_LT(out.instructions, out.orig_instructions);
    EXPECT_LE(out.instructions, 12u); // the minimal witness is tiny
    ASSERT_TRUE(out.program.has_value());

    // The emitted .wo text must reassemble into a program that still
    // triggers the same verdict -- that is what makes it a reproducer.
    AsmResult re = assembleString(out.wo_text);
    ASSERT_TRUE(re.ok()) << out.wo_text;
    EXPECT_TRUE(reproducesViolation(*re.program, re.warm, cfg,
                                    ViolationKind::reserve_leak))
        << out.wo_text;
}

TEST(Shrinker, NonReproducingInputIsReportedNotMangled)
{
    AsmResult a = assembleString(fat_leak_source);
    ASSERT_TRUE(a.ok());
    SystemCfg cfg; // no fault injected: nothing to reproduce
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.max_events = 60'000;
    auto out = shrinkCounterexample(*a.program, a.warm, cfg,
                                    ViolationKind::reserve_leak);
    EXPECT_FALSE(out.reproduced);
    EXPECT_EQ(out.instructions, out.orig_instructions);
}

// ------------------------------------------------------- the scheduler

TEST(Campaign, SmallFleetRunsCleanOnConformingHardware)
{
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 40;
    cfg.out_dir = testing::TempDir() + "camp_clean";
    cfg.max_events = 200'000;
    cfg.seed = 11;
    auto sum = runCampaign(cfg);
    EXPECT_EQ(sum.ran + sum.skipped, 40u);
    EXPECT_EQ(sum.skipped, 0u);
    EXPECT_TRUE(sum.hardwareClean());
    EXPECT_EQ(sum.hw, 0u);
    EXPECT_GT(sum.clean + sum.racy, 0u);
    // The journal exists and replays to the same done-set size.
    Journal j(cfg.out_dir + "/campaign.journal.jsonl");
    j.load();
    EXPECT_EQ(j.doneCells(), sum.ran);
}

TEST(Campaign, ResumeSkipsJournaledCells)
{
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 30;
    cfg.out_dir = testing::TempDir() + "camp_resume";
    cfg.max_events = 200'000;
    cfg.seed = 21;
    auto first = runCampaign(cfg);
    EXPECT_EQ(first.ran, 30u);

    cfg.resume = true;
    auto second = runCampaign(cfg);
    // The budget counts skips, so resume converges instead of
    // re-running history; the deterministic base stream guarantees the
    // journaled keys are re-encountered.
    EXPECT_EQ(second.ran + second.skipped, 30u);
    EXPECT_GT(second.skipped, 0u);
}

TEST(Campaign, MidBatchTruncationResumesExactlyTheCommittedCells)
{
    // A crash between group commits tears the journal inside a batch.
    // The committed prefix (the whole lines) must be skipped on
    // --resume and the torn tail re-run.
    CampaignCfg cfg;
    cfg.jobs = 1; // processing order == journal order
    cfg.cells = 24;
    cfg.out_dir = testing::TempDir() + "camp_midbatch";
    cfg.max_events = 200'000;
    cfg.seed = 51;
    cfg.sync_every = 8;
    auto first = runCampaign(cfg);
    ASSERT_EQ(first.ran, 24u);

    const std::string jpath = cfg.out_dir + "/campaign.journal.jsonl";
    auto lines = journalCells(jpath);
    // close() drained the queue: every cell is durable despite batching.
    ASSERT_EQ(lines.size(), 24u);

    // Cut so the torn cell is a *base-stream* cell: the resumed run is
    // then guaranteed to re-encounter it (frontier mutants bred by
    // skipped parents are legitimately never re-bred).  Even tickets
    // always draw from the base stream, so the window below has one.
    FuzzerCfg pcfg;
    pcfg.seed = cfg.seed;
    Fuzzer probe(pcfg);
    std::unordered_set<std::string> base_keys;
    for (std::uint64_t i = 0; i < cfg.cells; ++i)
        base_keys.insert(probe.baseCell(i).key());
    std::size_t committed = 0;
    for (std::size_t i = 4; i <= 11; ++i)
        if (base_keys.count(lines[i].key))
            committed = i;
    ASSERT_GT(committed, 0u) << "no base cell in the cuttable window";

    // Keep `committed` whole lines plus half of the next one.
    const std::size_t line_start = lines[committed - 1].end;
    const std::size_t line_end = lines[committed].end;
    ASSERT_GT(line_end - line_start, 2u);
    std::filesystem::resize_file(jpath,
                                 line_start + (line_end - line_start) / 2);

    // The journal layer resumes exactly the committed prefix.
    std::unordered_set<std::string> committed_keys;
    for (std::size_t i = 0; i < committed; ++i)
        committed_keys.insert(lines[i].key);
    {
        Journal j(jpath);
        j.load();
        EXPECT_EQ(j.doneCells(), committed);
        for (std::size_t i = 0; i < committed; ++i)
            EXPECT_TRUE(j.done(lines[i].key)) << i;
        for (std::size_t i = committed; i < lines.size(); ++i)
            if (!committed_keys.count(lines[i].key)) {
                EXPECT_FALSE(j.done(lines[i].key)) << i;
            }
    }

    // The resumed campaign skips the committed cells within the same
    // budget.  Every committed base cell sits in the first few base
    // draws and a 24-ticket run draws at least 12, so each one is
    // re-encountered -- and must be skipped, not re-run.
    cfg.resume = true;
    auto second = runCampaign(cfg);
    EXPECT_EQ(second.ran + second.skipped, 24u);
    std::size_t base_committed = 0;
    for (std::size_t i = 0; i < committed; ++i)
        base_committed += base_keys.count(lines[i].key) != 0;
    EXPECT_GT(base_committed, 0u);
    EXPECT_GE(second.skipped, base_committed);

    // Committed cells were never re-journaled (exactly one line each);
    // the torn cell was re-run and re-journaled.
    auto after = journalCells(jpath);
    std::unordered_map<std::string, int> times;
    for (const auto &l : after)
        ++times[l.key];
    for (std::size_t i = 0; i < committed; ++i)
        EXPECT_EQ(times[lines[i].key], 1) << lines[i].key;
    EXPECT_GE(times[lines[committed].key], 1) << lines[committed].key;
}

TEST(Campaign, SingleWorkerRunIsAPureFunctionOfTheSeed)
{
    // --seed N --jobs 1 must journal the same cells with the same
    // verdicts run over run: the materialization cache, the sharded
    // novelty sets and the group-commit writer may not perturb the
    // cell stream.
    CampaignCfg cfg;
    cfg.jobs = 1;
    cfg.cells = 30;
    cfg.max_events = 200'000;
    cfg.seed = 17;
    cfg.out_dir = testing::TempDir() + "camp_det_a";
    auto a = runCampaign(cfg);
    cfg.out_dir = testing::TempDir() + "camp_det_b";
    auto b = runCampaign(cfg);
    EXPECT_EQ(a.ran, b.ran);

    auto la = journalCells(testing::TempDir() +
                           "camp_det_a/campaign.journal.jsonl");
    auto lb = journalCells(testing::TempDir() +
                           "camp_det_b/campaign.journal.jsonl");
    ASSERT_EQ(la.size(), lb.size());
    ASSERT_GT(la.size(), 0u);
    for (std::size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].key, lb[i].key) << i;
        EXPECT_EQ(la[i].verdict, lb[i].verdict) << i;
    }
}

TEST(Campaign, SeededFaultIsFoundDedupedAndShrunk)
{
    // Plant a leak-shaped witness in the file corpus so the hunt is
    // deterministic, and pin the policy: the reserve-bit fault is only
    // reachable under WO-DRF0 (sc/def1 never leave the lock line
    // reserved across the release).
    const std::string wo_path = testing::TempDir() + "fatleak.wo";
    FILE *f = std::fopen(wo_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(fat_leak_source, f);
    std::fclose(f);

    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 30;
    cfg.out_dir = testing::TempDir() + "camp_fault";
    cfg.max_events = 60'000; // buggy cells livelock; keep them cheap
    cfg.shrink_max_runs = 200;
    cfg.inject_reserve_bug = true;
    cfg.policies = {OrderingPolicy::wo_drf0};
    cfg.program_files = {wo_path};
    cfg.seed = 31;
    auto sum = runCampaign(cfg);
    EXPECT_FALSE(sum.hardwareClean());
    EXPECT_GT(sum.hw, 0u);
    ASSERT_GE(sum.failures.size(), 1u);
    // Many cells trip the same fault; dedup must collapse them.
    std::uint64_t hits = 0;
    for (const auto &f : sum.failures) {
        hits += f.count;
        EXPECT_EQ(f.kind, "reserve_leak");
        EXPECT_TRUE(f.reproduced) << f.dedup;
        EXPECT_LE(f.instructions, 12u) << f.dedup;
        // The reproducer bundle is on disk and reassembles.
        AsmResult re = assembleString(slurp(f.repro_path));
        ASSERT_TRUE(re.ok()) << f.repro_path;
        SystemCfg scfg;
        scfg.policy = OrderingPolicy::wo_drf0;
        scfg.cache.bug_drop_reserve_clear = true;
        scfg.max_events = 60'000;
        EXPECT_TRUE(reproducesViolation(*re.program, re.warm, scfg,
                                        ViolationKind::reserve_leak))
            << f.repro_path;
    }
    EXPECT_EQ(hits, sum.hw); // every hw cell folded into a record
    EXPECT_LT(sum.failures.size(), sum.hw);
}

TEST(Campaign, SummaryJsonCarriesTheVerdictCounts)
{
    CampaignCfg cfg;
    cfg.jobs = 1;
    cfg.cells = 10;
    cfg.out_dir = testing::TempDir() + "camp_json";
    cfg.seed = 41;
    auto sum = runCampaign(cfg);
    std::string js = sum.toJson().dump();
    EXPECT_NE(js.find("\"ran\""), std::string::npos);
    EXPECT_NE(js.find("\"cells_per_sec\""), std::string::npos);
    EXPECT_NE(js.find("\"failures\""), std::string::npos);
    EXPECT_NE(js.find("\"lat_p50_ms\""), std::string::npos);
    EXPECT_NE(js.find("\"lat_p99_ms\""), std::string::npos);
    EXPECT_GE(sum.lat_p99_ms, sum.lat_p50_ms);
    EXPECT_GT(sum.lat_p99_ms, 0.0);
    EXPECT_FALSE(sum.table().empty());
}

TEST(CampaignTimeline, LanesDecomposeEachWorkersWallClock)
{
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 40;
    cfg.out_dir = testing::TempDir() + "camp_lanes";
    cfg.max_events = 200'000;
    cfg.seed = 11;
    auto sum = runCampaign(cfg);
    ASSERT_EQ(sum.ran, 40u);

    // Lanes are stable: the jobs workers in order, then the writer.
    ASSERT_EQ(sum.lanes.size(), 3u);
    EXPECT_EQ(sum.lanes[0].lane, "worker0");
    EXPECT_EQ(sum.lanes[1].lane, "worker1");
    EXPECT_EQ(sum.lanes[2].lane, "journal-writer");

    const int run_k = static_cast<int>(SpanKind::run);
    const int flush_k = static_cast<int>(SpanKind::writer_flush);
    std::uint64_t run_count = 0;
    for (int w = 0; w < 2; ++w) {
        const auto &l = sum.lanes[static_cast<std::size_t>(w)];
        ASSERT_GT(l.wall_ms, 0.0) << l.lane;
        double span_sum = 0;
        for (int k = 0; k < num_span_kinds; ++k)
            span_sum += l.span_ms[k];
        // The spans tile the worker's loop: their sum explains the
        // thread's wall clock.  The in-tree bound is loose (a loaded
        // CI box can preempt a worker between spans); on an idle box
        // the decomposition lands within a few percent.
        EXPECT_GT(span_sum, 0.5 * l.wall_ms) << l.lane;
        EXPECT_LT(span_sum, 1.1 * l.wall_ms) << l.lane;
        EXPECT_GT(l.span_ms[run_k], 0.0) << l.lane;
        EXPECT_GE(l.span_max_ms[run_k], 0.0) << l.lane;
        run_count += l.span_count[run_k];
    }
    // Every ran cell opened exactly one run span on some worker.
    EXPECT_EQ(run_count, sum.ran);
    // The writer lane flushed at least one batch and did so on its own
    // lane, not a worker's.
    EXPECT_GT(sum.lanes[2].span_count[flush_k], 0u);
    EXPECT_EQ(sum.lanes[0].span_count[flush_k], 0u);
    EXPECT_EQ(sum.lanes[1].span_count[flush_k], 0u);

    // Summary JSON mounts the decomposition.
    const std::string js = sum.toJson().dump();
    EXPECT_NE(js.find("\"lanes\""), std::string::npos);
    EXPECT_NE(js.find("\"journal-writer\""), std::string::npos);

    // Without --profile there is no sampled profile and no trace file.
    EXPECT_EQ(sum.profile_samples, 0u);
    EXPECT_TRUE(sum.folded_path.empty());
    EXPECT_FALSE(
        std::filesystem::exists(cfg.out_dir + "/campaign.trace.json"));
}

TEST(CampaignTimeline, ProfileEmitsFoldedStacksAndOneTraceLanePerThread)
{
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 60;
    cfg.out_dir = testing::TempDir() + "camp_profile";
    cfg.max_events = 200'000;
    cfg.seed = 11;
    cfg.profile = true;
    cfg.profile_hz = 500; // short fleet: sample densely
    auto sum = runCampaign(cfg);
    ASSERT_EQ(sum.ran, 60u);

    // The folded artifact exists, is non-empty, and every line is
    // `lane;frames... count`.
    ASSERT_EQ(sum.folded_path, cfg.out_dir + "/campaign.folded.txt");
    const std::string folded = slurp(sum.folded_path);
    ASSERT_FALSE(folded.empty());
    EXPECT_GT(sum.profile_samples, 0u);
    for (std::size_t pos = 0; pos < folded.size();) {
        const std::size_t eol = folded.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        const std::string_view line(folded.data() + pos, eol - pos);
        EXPECT_NE(line.find(';'), std::string_view::npos) << line;
        EXPECT_NE(line.rfind(' '), std::string_view::npos) << line;
        pos = eol + 1;
    }

    // The Chrome trace has one named lane per engine thread.
    ASSERT_EQ(sum.trace_path, cfg.out_dir + "/campaign.trace.json");
    JsonParseResult p = jsonParse(slurp(sum.trace_path));
    ASSERT_TRUE(p.ok) << p.error;
    const Json *events = p.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::vector<std::string> lane_names;
    std::uint64_t x_events = 0;
    for (const Json &e : events->items()) {
        if (e.find("ph")->stringValue() == "M")
            lane_names.push_back(
                e.find("args")->find("name")->stringValue());
        else if (e.find("ph")->stringValue() == "X")
            ++x_events;
    }
    ASSERT_EQ(lane_names.size(), 3u);
    EXPECT_EQ(lane_names[0], "worker0");
    EXPECT_EQ(lane_names[1], "worker1");
    EXPECT_EQ(lane_names[2], "journal-writer");
    EXPECT_GT(x_events, 0u);

    // The summary JSON carries the profiler block.
    const std::string js = sum.toJson().dump();
    EXPECT_NE(js.find("\"profiler\""), std::string::npos);
    EXPECT_NE(js.find("\"folded\""), std::string::npos);
}

// ---------------------------------------------------- verify campaigns

TEST(Campaign, VerifyCellsRunCleanWithoutASeededBug)
{
    // With no seeded fault the three checking engines agree on every
    // cell: loop-bearing programs may honestly report inconclusive and
    // counterexample escapes report nonsc, but nothing may blame the
    // hardware and nothing may file a reproducer.
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 10;
    cfg.out_dir = testing::TempDir() + "camp_verify_clean";
    cfg.seed = 61;
    cfg.verify = true;
    cfg.verify_models = {"sc"};
    cfg.max_states = 20'000;
    auto sum = runCampaign(cfg);
    EXPECT_EQ(sum.ran + sum.skipped, 10u);
    EXPECT_TRUE(sum.hardwareClean());
    EXPECT_EQ(sum.hw, 0u);
    EXPECT_GT(sum.clean, 0u);

    // The journal records verify cells under the untimed key scheme
    // with verify-specific verdicts only.
    auto lines =
        journalCells(cfg.out_dir + "/campaign.journal.jsonl");
    ASSERT_EQ(lines.size(), sum.ran);
    for (const auto &l : lines) {
        EXPECT_TRUE(l.verdict == "clean" || l.verdict == "racy" ||
                    l.verdict == "nonsc" ||
                    l.verdict == "inconclusive")
            << l.key << ": " << l.verdict;
    }
}

TEST(Campaign, SeededAxiomBugIsFoundShrunkAndReproducible)
{
    // The acceptance path: a seeded axiomatic-vs-operational
    // disagreement must flow through the campaign as an auto-filed,
    // shrunk reproducer with a .verify.txt evidence report, and the
    // emitted minimum must still reproduce under the dual-engine
    // predicate when reassembled from disk.
    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 12;
    cfg.out_dir = testing::TempDir() + "camp_verify_bug";
    cfg.seed = 71;
    cfg.verify = true;
    cfg.verify_models = {"sc"};
    cfg.max_states = 20'000;
    cfg.inject_axiom_bug = true;
    cfg.shrink_max_runs = 60;
    auto sum = runCampaign(cfg);
    EXPECT_FALSE(sum.hardwareClean());
    EXPECT_GT(sum.hw, 0u);
    ASSERT_GE(sum.failures.size(), 1u);
    for (const auto &f : sum.failures) {
        EXPECT_EQ(f.kind, "axiom_divergence") << f.dedup;
        EXPECT_TRUE(f.reproduced) << f.dedup;
        EXPECT_LE(f.instructions, f.orig_instructions) << f.dedup;

        // The reproducer reassembles and still diverges.
        AsmResult re = assembleString(slurp(f.repro_path));
        ASSERT_TRUE(re.ok()) << f.repro_path;
        VerifyCfg vcfg;
        vcfg.max_states = 20'000;
        vcfg.axiom.inject_bug = true;
        EXPECT_TRUE(verifyReproduces(*re.program, "sc",
                                     ViolationKind::axiom_divergence,
                                     vcfg))
            << f.repro_path;

        // The evidence report sits next to the .wo and names the
        // disagreement.
        std::string ev_path = f.repro_path;
        ev_path.replace(ev_path.size() - 3, 3, ".verify.txt");
        const std::string ev = slurp(ev_path);
        ASSERT_FALSE(ev.empty()) << ev_path;
        EXPECT_NE(ev.find("verdict=hw:axiom_divergence"),
                  std::string::npos)
            << ev;
        EXPECT_NE(ev.find("axiomatic and operational SC disagree"),
                  std::string::npos)
            << ev;
    }
}

TEST(CampaignTimeline, ProfiledRunMatchesUnprofiledVerdicts)
{
    // --profile must observe, not perturb: same seed, same cells, same
    // verdict counts with sampling on and off.
    CampaignCfg cfg;
    cfg.jobs = 1;
    cfg.cells = 20;
    cfg.max_events = 200'000;
    cfg.seed = 17;
    cfg.out_dir = testing::TempDir() + "camp_prof_a";
    auto plain = runCampaign(cfg);
    cfg.profile = true;
    cfg.out_dir = testing::TempDir() + "camp_prof_b";
    auto profiled = runCampaign(cfg);
    EXPECT_EQ(plain.ran, profiled.ran);
    EXPECT_EQ(plain.clean, profiled.clean);
    EXPECT_EQ(plain.racy, profiled.racy);
    EXPECT_EQ(plain.hw, profiled.hw);
}

} // namespace
} // namespace wo

/**
 * @file
 * Data-race detection over idealized executions, and the single-execution
 * half of the DRF0 check (Definition 3, clause 2): all conflicting accesses
 * must be ordered by the execution's happens-before relation.
 *
 * The whole-program check ("for any execution on the idealized system...")
 * lives in wo_core, which enumerates the idealized executions with the
 * model explorer and applies this detector to each.
 */

#ifndef WO_HB_RACE_HH
#define WO_HB_RACE_HH

#include <string>
#include <vector>

#include "execution/execution.hh"
#include "hb/happens_before.hh"

namespace wo {

/** A pair of conflicting accesses unordered by happens-before. */
struct Race
{
    OpId first;  //!< earlier op in completion order
    OpId second; //!< later op in completion order

    /** Render with full op detail from @p exec. */
    std::string toString(const Execution &exec) const;
};

/** Options for race detection. */
struct RaceDetectorCfg
{
    /** Synchronization-order flavor used to build happens-before. */
    HbRelation::SyncFlavor flavor = HbRelation::SyncFlavor::drf0;

    /**
     * Exempt conflicts where both accesses are synchronization operations.
     * Under plain DRF0 such pairs are always so-ordered, so the flag has no
     * effect; under the weak-sync-read refinement sync-sync pairs are the
     * synchronization mechanism itself and must not be reported.
     */
    bool ignore_sync_pairs = false;

    /** Stop after this many races (0 = find all). */
    std::size_t max_races = 0;
};

/**
 * Find every pair of conflicting accesses not ordered by happens-before in
 * @p exec (whose append order must be the completion order).
 */
std::vector<Race> findRaces(const Execution &exec,
                            const RaceDetectorCfg &cfg = {});

/** Convenience: true iff @p exec is free of races. */
bool isRaceFree(const Execution &exec, const RaceDetectorCfg &cfg = {});

} // namespace wo

#endif // WO_HB_RACE_HH

# Empty dependencies file for stress_deadlock.
# This may be replaced when dependencies are built.

/**
 * @file
 * Tests for the always-on runtime verification layer: the online
 * SC/DRF0 invariant monitor (unit-level, hook by hook), the flight
 * recorder ring, the periodic sampler, the full program x policy
 * matrix (every stock combination must be hardware-clean), and the
 * seeded reserve-bit hardware bug that the monitor must catch at the
 * violating cycle with dumped evidence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "asm/assembler.hh"
#include "event/event_queue.hh"
#include "obs/monitor.hh"
#include "obs/recorder.hh"
#include "obs/sampler.hh"
#include "obs/validate.hh"
#include "sys/system.hh"

namespace wo {
namespace {

// ------------------------------------------------------- monitor: unit

TEST(Monitor, NegativeCounterIsHardwareViolation)
{
    Monitor m(2, 2, {});
    m.counterChanged(0, -1, 7);
    EXPECT_EQ(m.totalViolations(), 1u);
    EXPECT_EQ(m.hardwareViolations(), 1u);
    EXPECT_EQ(m.countOf(ViolationKind::counter_negative), 1u);
    EXPECT_EQ(m.firstViolationTick(), 7u);
    EXPECT_FALSE(m.clean());
}

TEST(Monitor, ReserveBitHeldAtCounterZeroLeaks)
{
    Monitor m(2, 2, {});
    m.counterChanged(1, 1, 1);
    m.reserveSet(1, 0, 2);
    EXPECT_EQ(m.totalViolations(), 0u);
    // S5.3: "all reserve bits are reset when the counter reads zero";
    // zero becoming observable with a bit still held is the breach.
    m.counterChanged(1, 0, 9);
    ASSERT_EQ(m.totalViolations(), 1u);
    EXPECT_EQ(m.countOf(ViolationKind::reserve_leak), 1u);
    EXPECT_EQ(m.violations()[0].tick, 9u);
    EXPECT_EQ(m.violations()[0].proc, 1u);
}

TEST(Monitor, StockClearBeforeZeroStaysClean)
{
    Monitor m(2, 2, {});
    m.counterChanged(1, 1, 1);
    m.reserveSet(1, 0, 2);
    m.reserveCleared(1, 8);
    m.counterChanged(1, 0, 8);
    m.finalize(10, true, 0);
    EXPECT_EQ(m.totalViolations(), 0u);
    EXPECT_TRUE(m.clean());
}

TEST(Monitor, ReserveWithoutOutstandingAccessLeaks)
{
    Monitor m(2, 2, {});
    m.reserveSet(0, 1, 3);
    EXPECT_EQ(m.countOf(ViolationKind::reserve_leak), 1u);
}

TEST(Monitor, UnsynchronizedConflictIsSoftwareRace)
{
    Monitor m(2, 1, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, 5, 10);
    m.opRetired(1, 0, AccessKind::data_read, 1, 0, 6, 12);
    ASSERT_EQ(m.totalViolations(), 1u);
    EXPECT_EQ(m.races(), 1u);
    EXPECT_EQ(m.hardwareViolations(), 0u);
    EXPECT_TRUE(m.clean()); // races blame software, not the machine
    const MonitorViolation &v = m.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::drf0_race);
    EXPECT_NE(v.op_a, invalid_op);
    EXPECT_NE(v.op_b, invalid_op);
    EXPECT_NE(m.report().find("RACY PROGRAM"), std::string::npos);
}

TEST(Monitor, SyncOrderedHandoffIsRaceFree)
{
    // P0: W(x)=1; Set(s).   P1: Test(s)=1; R(x)=1.  The sync channel
    // on s orders the conflicting accesses to x -- and the read sees
    // its hb-last write, so the whole history is clean.
    Monitor m(2, 2, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, 1, 10);
    m.opRetired(0, 1, AccessKind::sync_write, 0, 1, 2, 11);
    m.opRetired(1, 1, AccessKind::sync_read, 1, 0, 3, 12);
    m.opRetired(1, 0, AccessKind::data_read, 1, 0, 4, 13);
    m.finalize(20, true, 0);
    EXPECT_EQ(m.totalViolations(), 0u);
}

TEST(Monitor, StaleReadInRaceFreeHistoryBlamesHardware)
{
    // Same handoff, but the hardware returns the pre-write value of x.
    Monitor m(2, 2, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, 1, 10);
    m.opRetired(0, 1, AccessKind::sync_write, 0, 1, 2, 11);
    m.opRetired(1, 1, AccessKind::sync_read, 1, 0, 3, 12);
    m.opRetired(1, 0, AccessKind::data_read, /*value_read=*/0, 0, 4, 13);
    ASSERT_EQ(m.totalViolations(), 1u);
    const MonitorViolation &v = m.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::stale_read);
    EXPECT_EQ(v.expected, 1);
    EXPECT_EQ(v.got, 0);
    EXPECT_EQ(v.tick, 13u);
    EXPECT_EQ(m.hardwareViolations(), 1u);
    EXPECT_NE(m.report().find("HARDWARE VIOLATION"), std::string::npos);
}

TEST(Monitor, InFlightRacyWriteValueIsNotBlamedOnHardware)
{
    // P1's read returns 6 -- the value of P0's racing write, which has
    // not *retired* into the monitor yet.  At the read the frontier is
    // empty and no retired write explains 6, so blaming the hardware
    // would be unsound; the verdict must wait.  When the write retires
    // it races with the read, voiding the contract on x: the only
    // finding is the software race.
    Monitor m(2, 1, {});
    m.opRetired(1, 0, AccessKind::data_read, /*value_read=*/6, 0, 5, 10);
    EXPECT_EQ(m.totalViolations(), 0u); // suspicion held, not raised
    m.opRetired(0, 0, AccessKind::data_write, 0, /*value_written=*/6, 6, 12);
    m.finalize(20, /*completed=*/true, 0);
    EXPECT_EQ(m.countOf(ViolationKind::stale_read), 0u);
    EXPECT_EQ(m.races(), 1u);
    EXPECT_EQ(m.hardwareViolations(), 0u);
    EXPECT_TRUE(m.clean());
}

TEST(Monitor, NeverWrittenValueIsConfirmedStaleAtFinalize)
{
    // Race-free handoff, but the read returns 7 -- a value no write to
    // x ever produced and not the initial value.  Mid-run this could
    // still be an in-flight racy write, so nothing is raised; once the
    // run completes every write has retired, the value really came
    // from nowhere, and the deferred verdict lands with the read's
    // original tick.
    Monitor m(2, 2, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, 1, 10);
    m.opRetired(0, 1, AccessKind::sync_write, 0, 1, 2, 11);
    m.opRetired(1, 1, AccessKind::sync_read, 1, 0, 3, 12);
    m.opRetired(1, 0, AccessKind::data_read, /*value_read=*/7, 0, 4, 13);
    EXPECT_EQ(m.totalViolations(), 0u); // deferred
    m.finalize(20, /*completed=*/true, 0);
    ASSERT_EQ(m.totalViolations(), 1u);
    const MonitorViolation &v = m.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::stale_read);
    EXPECT_EQ(v.tick, 13u); // the violating cycle, not finalize's
    EXPECT_EQ(v.got, 7);
    EXPECT_EQ(m.hardwareViolations(), 1u);
}

TEST(Monitor, PendingStaleDiesWithAFailedRun)
{
    // A deadlocked/livelocked run may hold the explaining write in
    // flight forever; the suspicion cannot be confirmed and is dropped.
    Monitor m(2, 1, {});
    m.opRetired(1, 0, AccessKind::data_read, /*value_read=*/6, 0, 5, 10);
    m.finalize(20, /*completed=*/false, 0);
    EXPECT_EQ(m.totalViolations(), 0u);
    EXPECT_TRUE(m.clean());
}

TEST(Monitor, WritesRetiringAgainstCommitOrderViolateCoherence)
{
    Monitor m(1, 1, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, /*commit=*/10, 10);
    m.opRetired(0, 0, AccessKind::data_write, 0, 2, /*commit=*/5, 12);
    ASSERT_EQ(m.totalViolations(), 1u);
    EXPECT_EQ(m.violations()[0].kind, ViolationKind::coherence_order);
    EXPECT_EQ(m.hardwareViolations(), 1u);
}

TEST(Monitor, WeakSyncReadFlavorExemptsSyncPairs)
{
    // Under the Section-6 refinement a Test does not publish to the
    // channel, so a later Set conflicts unordered -- but sync-sync
    // pairs are the synchronization mechanism itself, not a race.
    MonitorCfg cfg;
    cfg.flavor = HbRelation::SyncFlavor::weak_sync_read;
    Monitor m(2, 1, {}, cfg);
    m.opRetired(0, 0, AccessKind::sync_read, 0, 0, 1, 10);
    m.opRetired(1, 0, AccessKind::sync_write, 0, 1, 2, 11);
    EXPECT_EQ(m.totalViolations(), 0u);
}

TEST(Monitor, FinalizeChecksQuiescence)
{
    Monitor m(2, 1, {});
    m.counterChanged(0, 2, 5);
    m.finalize(100, /*completed=*/true, /*unperformed_ops=*/3);
    EXPECT_EQ(m.countOf(ViolationKind::counter_undrained), 1u);
    EXPECT_EQ(m.countOf(ViolationKind::unperformed_op), 1u);
    // finalize is idempotent.
    m.finalize(101, true, 3);
    EXPECT_EQ(m.totalViolations(), 2u);
}

TEST(Monitor, FailedRunsSkipQuiescenceChecks)
{
    // A deadlocked/livelocked machine legitimately holds outstanding
    // state; the termination itself is reported by the system.
    Monitor m(2, 1, {});
    m.counterChanged(0, 2, 5);
    m.finalize(100, /*completed=*/false, 3);
    EXPECT_EQ(m.totalViolations(), 0u);
}

TEST(Monitor, JsonAndDotCarryTheVerdict)
{
    Monitor m(2, 1, {});
    m.opRetired(0, 0, AccessKind::data_write, 0, 1, 5, 10);
    m.opRetired(1, 0, AccessKind::data_write, 0, 2, 6, 12);
    auto parsed = jsonParse(m.toJson().dump());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.find("races")->uintValue(), 1u);
    EXPECT_TRUE(parsed.value.find("clean")->boolValue());
    ASSERT_NE(parsed.value.find("by_kind")->find("drf0_race"), nullptr);
    const std::string dot = m.witnessDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RingKeepsTheLastNOldestFirst)
{
    FlightRecorder fr(4);
    for (int i = 0; i < 10; ++i) {
        FlightEvent e;
        e.kind = FlightKind::issue;
        e.t = static_cast<Tick>(i);
        fr.record(e);
    }
    EXPECT_EQ(fr.capacity(), 4u);
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.recorded(), 10u);
    EXPECT_EQ(fr.dropped(), 6u);
    auto w = fr.window();
    ASSERT_EQ(w.size(), 4u);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_EQ(w[i].t, 6u + i);
}

TEST(FlightRecorder, WindowExportsValidChromeTrace)
{
    FlightRecorder fr(16);
    FlightEvent msg;
    msg.kind = FlightKind::msg;
    msg.t = 1;
    msg.t2 = 4;
    msg.proc = 0;
    msg.a = 1;
    msg.label = "ReqMiss";
    fr.record(msg);
    FlightEvent stall;
    stall.kind = FlightKind::stall;
    stall.t = 2;
    stall.t2 = 6;
    stall.proc = 1;
    stall.label = "cache_miss";
    fr.record(stall);
    FlightEvent ctr;
    ctr.kind = FlightKind::counter;
    ctr.t = 3;
    ctr.proc = 0;
    ctr.a = 2;
    fr.record(ctr);
    FlightEvent vio;
    vio.kind = FlightKind::violation;
    vio.t = 7;
    vio.proc = 1;
    vio.label = "reserve_leak";
    fr.record(vio);

    auto v = validateChromeTrace(fr.chromeTraceJson(2));
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_GE(v.complete, 2u); // the msg and stall spans
    EXPECT_GE(v.counters, 1u);
    EXPECT_GE(v.instants, 1u); // the violation marker
}

// ------------------------------------------------------------- sampler

TEST(Sampler, SamplesPeriodicallyAndStopsWithTheQueue)
{
    EventQueue eq;
    std::uint64_t work = 0;
    Sampler s(5);
    s.addProbe("work", [&] { return work; });
    eq.schedule(12, "work", [&] { work = 42; });
    s.start(eq);
    eq.runAll();
    // Baseline at 0, periodic at 5/10/15; the 15-tick firing finds the
    // queue empty and does not reschedule.
    EXPECT_EQ(s.sampleCount(), 4u);
    EXPECT_EQ(eq.pending(), 0u);

    const std::string csv = s.csv();
    EXPECT_EQ(csv.rfind("tick,work\n", 0), 0u);
    EXPECT_NE(csv.find("15,42"), std::string::npos);

    Json events = Json::array();
    s.appendCounterEvents(events);
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    auto v = validateChromeTrace(doc.dump());
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.counters, 4u); // one probe, four samples
}

// ---------------------------------------------------- system: matrix

AsmResult
load(const char *file)
{
    AsmResult a = assembleFile(std::string(WO_PROGRAMS_DIR) + "/" + file);
    EXPECT_TRUE(a.ok()) << file;
    return a;
}

SystemResult
runMonitored(const AsmResult &a, OrderingPolicy policy, SystemCfg cfg = {})
{
    cfg.policy = policy;
    cfg.monitor = true;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    return sys.run();
}

TEST(MonitorMatrix, EveryStockComboIsHardwareClean)
{
    // Per Definition 2 the machine owes SC appearance; the monitor
    // must find zero hardware violations on every stock program x
    // policy combination.  Racy programs void the contract and are
    // reported as software races -- deterministically here, since the
    // timed system is deterministic for a fixed seed.
    const struct
    {
        const char *file;
        bool racy;
    } programs[] = {
        {"dekker.wo", true},   {"fig1.wo", true}, {"fig3.wo", false},
        {"handoff.wo", false}, {"iriw.wo", true}, {"mp.wo", true},
        {"spinlock.wo", false},
    };
    const OrderingPolicy policies[] = {OrderingPolicy::sc,
                                       OrderingPolicy::wo_def1,
                                       OrderingPolicy::wo_drf0};
    for (const auto &p : programs) {
        AsmResult a = load(p.file);
        for (OrderingPolicy pol : policies) {
            SCOPED_TRACE(std::string(p.file) + " under " + policyName(pol));
            auto r = runMonitored(a, pol);
            EXPECT_TRUE(r.completed);
            EXPECT_EQ(r.monitor_hw_violations, 0u);
            if (p.racy)
                EXPECT_GT(r.monitor_races, 0u);
            else
                EXPECT_EQ(r.monitor_races, 0u);
        }
    }
}

TEST(MonitorMatrix, RunResultCarriesTheReport)
{
    AsmResult a = load("mp.wo");
    auto r = runMonitored(a, OrderingPolicy::wo_drf0);
    EXPECT_NE(r.monitor_report.find("RACY PROGRAM"), std::string::npos);
    EXPECT_NE(r.monitor_report.find("drf0_race"), std::string::npos);
    EXPECT_NE(r.stats_json.find("\"monitor\""), std::string::npos);
}

// ------------------------------------------------- system: seeded bug

/**
 * The seeded-fault scenario: P0 takes the lock, releases it while its
 * data store is still outstanding (reserving the lock line), and the
 * faulty cache then drops the reserve-bit clear when its counter
 * drains.  P1 arrives later and NACKs against the leaked reservation
 * forever: a silent livelock without the monitor, a pinpointed
 * reserve_leak with it.
 */
const char *const leak_source = R"(program leak
thread 0
  tas r7 lock
  st data 1
  syncst lock 0
thread 1
  work 300
  tas r7 lock
  syncst lock 0
)";

std::string
slurp(const std::string &path)
{
    std::string out;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(SeededBug, DroppedReserveClearIsCaughtWithEvidence)
{
    // The injected hardware fault: the cache "forgets" to reset its
    // reserve bits when the outstanding counter drains to zero,
    // breaking the S5.3 invariant.  The monitor must catch it the
    // cycle zero becomes observable, and the system must dump the
    // flight-recorder window plus the hb witness.
    AsmResult a = assembleString(leak_source);
    ASSERT_TRUE(a.ok());
    SystemCfg cfg;
    cfg.cache.bug_drop_reserve_clear = true;
    cfg.flight_recorder = true;
    cfg.max_events = 50'000; // the stuck machine would spin forever
    const std::string prefix = testing::TempDir() + "monitor_evidence";
    cfg.dump_on_fail = prefix;
    auto r = runMonitored(a, OrderingPolicy::wo_drf0, cfg);

    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.livelocked); // P1 NACKs against the leak forever
    EXPECT_GT(r.monitor_hw_violations, 0u);
    EXPECT_NE(r.monitor_report.find("HARDWARE VIOLATION"),
              std::string::npos);
    EXPECT_NE(r.monitor_report.find("reserve_leak"), std::string::npos);

    const std::string trace = slurp(prefix + ".trace.json");
    ASSERT_FALSE(trace.empty());
    auto v = validateChromeTrace(trace);
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_GE(v.instants, 1u); // the mirrored violation marker

    const std::string dot = slurp(prefix + ".hb.dot");
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    const std::string report = slurp(prefix + ".monitor.txt");
    EXPECT_NE(report.find("reserve_leak"), std::string::npos);
}

TEST(SeededBug, MonitorPinpointsTheViolatingCycle)
{
    AsmResult a = assembleString(leak_source);
    ASSERT_TRUE(a.ok());
    SystemCfg cfg;
    cfg.cache.bug_drop_reserve_clear = true;
    cfg.max_events = 50'000;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.monitor = true;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    auto r = sys.run();
    const Monitor *m = sys.monitor();
    ASSERT_NE(m, nullptr);
    EXPECT_GT(m->countOf(ViolationKind::reserve_leak), 0u);
    // The violation is timestamped at the cycle zero became
    // observable with the bit held -- some 290k ticks of futile
    // retries before the livelock budget finally tripped.
    ASSERT_NE(m->firstViolationTick(), max_tick);
    EXPECT_LT(m->firstViolationTick(), 100u);
    EXPECT_LT(m->firstViolationTick(), r.drain_tick);
    ASSERT_FALSE(m->violations().empty());
    EXPECT_EQ(m->violations()[0].tick, m->firstViolationTick());
}

TEST(SeededBug, StockHardwarePassesTheSameScenario)
{
    AsmResult a = assembleString(leak_source);
    ASSERT_TRUE(a.ok());
    SystemCfg cfg;
    cfg.flight_recorder = true;
    auto r = runMonitored(a, OrderingPolicy::wo_drf0, cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.monitor_violations, 0u);
}

// --------------------------------------------- system: sampler wiring

TEST(SystemSampler, EmitsCsvAndCounterTracks)
{
    AsmResult a = load("fig3.wo");
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.sample_interval = 10;
    cfg.trace = true;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    auto r = sys.run();
    EXPECT_TRUE(r.completed);
    ASSERT_FALSE(r.sampler_csv.empty());
    EXPECT_EQ(r.sampler_csv.rfind("tick,", 0), 0u);
    EXPECT_NE(r.sampler_csv.find("cpu0.outstanding"), std::string::npos);
    EXPECT_NE(r.sampler_csv.find("net.in_flight"), std::string::npos);
    ASSERT_NE(sys.sampler(), nullptr);
    EXPECT_GT(sys.sampler()->sampleCount(), 1u);
    // The counter tracks ride along in the full Chrome trace.
    auto v = validateChromeTrace(sys.obs().chromeTraceJson());
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_GT(v.counters, 0u);
    EXPECT_NE(r.stats_json.find("\"sampler\""), std::string::npos);
}

TEST(SystemRecorder, AlwaysOnRingTracksTheRun)
{
    AsmResult a = load("fig3.wo");
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.flight_recorder = true;
    cfg.flight_recorder_capacity = 64;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    auto r = sys.run();
    EXPECT_TRUE(r.completed);
    ASSERT_NE(sys.recorder(), nullptr);
    EXPECT_GT(sys.recorder()->recorded(), 64u); // ring wrapped
    EXPECT_EQ(sys.recorder()->size(), 64u);
    auto v = validateChromeTrace(sys.recorder()->chromeTraceJson(2));
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_NE(r.stats_json.find("\"flight_recorder\""),
              std::string::npos);
}

} // namespace
} // namespace wo

# Empty compiler generated dependencies file for ablation_mesi.
# This may be replaced when dependencies are built.

/**
 * @file
 * Automatic counterexample minimization (delta debugging).
 *
 * When a campaign cell catches the hardware red-handed, the raw
 * witness is whatever program happened to trigger it -- often dozens
 * of instructions across several processors.  The shrinker reduces it
 * while the verdict keeps reproducing, in the ddmin tradition: drop
 * whole processors, drop instruction chunks of halving size (with
 * branch-target fixup), and compact unused shared locations, iterating
 * to a fixed point or a run budget.  The result is a minimal `.wo`
 * reproducer whose hash doubles as the failure's deduplication
 * identity, so a campaign reports each distinct bug once no matter how
 * many cells tripped over it.
 *
 * Every candidate evaluation is one full timed-system run with the
 * online monitor attached, under the exact configuration of the
 * failing cell (policy, network seed, seeded faults), so reduction
 * never chases a different bug than the one it started from.
 */

#ifndef WO_CAMPAIGN_SHRINK_HH
#define WO_CAMPAIGN_SHRINK_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "obs/monitor.hh"
#include "program/program.hh"
#include "sys/system.hh"

namespace wo {

/** Shrinking knobs. */
struct ShrinkCfg
{
    /** Candidate-evaluation budget (each is one simulated run). */
    std::uint64_t max_runs = 500;
};

/** What the shrinker produced. */
struct ShrinkOutcome
{
    /** The violation still reproduces on the minimized program. */
    bool reproduced = false;
    std::uint64_t runs = 0;         //!< candidate evaluations spent
    std::size_t orig_instructions = 0;
    std::size_t instructions = 0;   //!< static size of the result
    ProcId procs = 0;
    Addr locations = 0;
    std::optional<Program> program; //!< the minimized program
    std::vector<WarmTerm> warm;     //!< surviving warm directives
    std::string wo_text;            //!< assembly reproducer (with warm)
};

/**
 * Does @p kind still reproduce when @p prog runs under @p cfg?  One
 * timed run with the monitor attached; @p warm is applied first.
 * (@p cfg.monitor is forced on and @p cfg.quiet forced true.)
 */
bool reproducesViolation(const Program &prog,
                         const std::vector<WarmTerm> &warm, SystemCfg cfg,
                         ViolationKind kind);

/**
 * "Does the failure still reproduce on this candidate?"  Each call
 * costs whatever the caller's oracle costs -- a timed monitored run
 * for run-cell failures, a full dual-engine verification for verify
 * findings -- so the run budget in ShrinkCfg bounds the total.
 */
using ShrinkPredicate =
    std::function<bool(const Program &, const std::vector<WarmTerm> &)>;

/**
 * Minimize @p prog while @p still_fails keeps holding.  The ddmin core
 * behind both public overloads; when even the input does not satisfy
 * the predicate, the outcome carries the input program with
 * reproduced == false.
 */
ShrinkOutcome shrinkCounterexample(const Program &prog,
                                   const std::vector<WarmTerm> &warm,
                                   const ShrinkPredicate &still_fails,
                                   const ShrinkCfg &cfg = {});

/**
 * Minimize @p prog while @p kind keeps reproducing under @p sys_cfg
 * (the monitored timed-run predicate).
 */
ShrinkOutcome shrinkCounterexample(const Program &prog,
                                   const std::vector<WarmTerm> &warm,
                                   const SystemCfg &sys_cfg,
                                   ViolationKind kind,
                                   const ShrinkCfg &cfg = {});

} // namespace wo

#endif // WO_CAMPAIGN_SHRINK_HH

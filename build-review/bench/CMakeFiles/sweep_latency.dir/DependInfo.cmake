
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sweep_latency.cc" "bench/CMakeFiles/sweep_latency.dir/sweep_latency.cc.o" "gcc" "bench/CMakeFiles/sweep_latency.dir/sweep_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sys/CMakeFiles/wo_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/coherence/CMakeFiles/wo_coherence.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/wo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/models/CMakeFiles/wo_models.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sc/CMakeFiles/wo_sc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hb/CMakeFiles/wo_hb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/execution/CMakeFiles/wo_execution.dir/DependInfo.cmake"
  "/root/repo/build-review/src/program/CMakeFiles/wo_program.dir/DependInfo.cmake"
  "/root/repo/build-review/src/event/CMakeFiles/wo_event.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/wo_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

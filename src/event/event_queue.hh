/**
 * @file
 * The discrete-event simulation kernel.
 *
 * The timed substrate (network, caches, directory, CPUs) advances simulated
 * time by scheduling callbacks on a single EventQueue.  Events scheduled for
 * the same tick execute in FIFO order of scheduling (stable), which keeps
 * runs deterministic for a given seed.
 */

#ifndef WO_EVENT_EVENT_QUEUE_HH
#define WO_EVENT_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wo {

class Obs;

/** A scheduled callback with a firing time and a debugging label. */
struct Event
{
    Tick when;                  //!< absolute firing time
    std::uint64_t seq;          //!< tie-break: schedule order
    std::string label;          //!< debugging aid, shown in traces
    std::function<void()> fn;   //!< the action
};

/**
 * A single-threaded event queue ordered by (tick, schedule sequence).
 *
 * The queue is run either to exhaustion (runAll) or until a caller-supplied
 * predicate holds (runUntil).  Components capture `this` in their callbacks;
 * all components must therefore outlive the queue drain.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Attach the observability hub.  Every timed component holds the
     * event queue, so the queue doubles as the hub's distribution
     * point; a null hub (the default) disables all instrumentation.
     * The hub must outlive the queue drain.
     */
    void setObs(Obs *obs) { obs_ = obs; }

    /** The attached observability hub, or nullptr. */
    Obs *obs() const { return obs_; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @param delay  relative delay (0 runs later in the current tick)
     * @param label  debugging label shown by verbose tracing
     * @param fn     the callback
     */
    void schedule(Tick delay, std::string label, std::function<void()> fn);

    /** Schedule at an absolute tick, which must not be in the past. */
    void scheduleAt(Tick when, std::string label, std::function<void()> fn);

    /** True when no events remain. */
    bool empty() const { return pq_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return pq_.size(); }

    /** Pop and execute a single event; returns false if none remain. */
    bool step();

    /**
     * Drain the queue.
     * @param max_events safety valve: panic after this many events, which
     *        turns an accidental simulator livelock into a loud failure.
     * @return number of events executed
     */
    std::uint64_t runAll(std::uint64_t max_events = 50'000'000);

    /**
     * Drain until @p done returns true (checked after every event) or the
     * queue empties.  @return number of events executed.
     */
    std::uint64_t runUntil(const std::function<bool()> &done,
                           std::uint64_t max_events = 50'000'000);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    Obs *obs_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> pq_;
};

} // namespace wo

#endif // WO_EVENT_EVENT_QUEUE_HH

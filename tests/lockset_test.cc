/**
 * @file
 * Tests for the static monitor-discipline certifier, including the
 * soundness property: every certified program obeys DRF0 (checked against
 * the exhaustive checker).
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/lockset.hh"
#include "program/builder.hh"
#include "program/litmus.hh"
#include "program/workload.hh"

namespace wo {
namespace {

TEST(Lockset, CertifiesLockedCounter)
{
    for (bool tas_only : {false, true}) {
        Program p = litmus::lockedCounter(3, 2, tas_only);
        auto r = checkLockDiscipline(p);
        EXPECT_TRUE(r.certified)
            << (r.issues.empty() ? "?" : r.issues[0].toString(p));
        // The counter (location 1) is protected by the lock (location 0).
        ASSERT_GT(r.protection.size(), 1u);
        EXPECT_TRUE(r.protection[1].count(0));
    }
}

TEST(Lockset, RejectsRacyCounter)
{
    Program p = litmus::racyCounter(2, 1);
    auto r = checkLockDiscipline(p);
    ASSERT_FALSE(r.certified);
    bool found = false;
    for (const auto &i : r.issues)
        found |= i.kind == LocksetIssue::Kind::unprotected_access;
    EXPECT_TRUE(found);
}

TEST(Lockset, FlagHandoffOutsideFragment)
{
    // messagePassingSync obeys DRF0 but spins with beq (not the monitor
    // idiom): the static fragment must reject it as naked sync --
    // demonstrating the fragment is strictly smaller than DRF0.
    Program p = litmus::messagePassingSync();
    auto r = checkLockDiscipline(p);
    ASSERT_FALSE(r.certified);
    EXPECT_EQ(r.issues[0].kind, LocksetIssue::Kind::naked_sync);
    EXPECT_TRUE(checkDrf0(p).obeys);
}

TEST(Lockset, ReleaseWithoutHoldFlagged)
{
    ProgramBuilder b("bad-release", 1);
    b.thread(0).release(0).halt();
    Program p = b.build();
    auto r = checkLockDiscipline(p);
    ASSERT_FALSE(r.certified);
    EXPECT_EQ(r.issues[0].kind, LocksetIssue::Kind::release_not_held);
}

TEST(Lockset, NakedTasFlagged)
{
    ProgramBuilder b("naked-tas", 1);
    b.thread(0).testAndSet(0, 0).halt(); // no spin branch
    Program p = b.build();
    auto r = checkLockDiscipline(p);
    ASSERT_FALSE(r.certified);
    EXPECT_EQ(r.issues[0].kind, LocksetIssue::Kind::naked_sync);
}

TEST(Lockset, DifferentLocksDoNotProtect)
{
    // Each thread locks a DIFFERENT lock around the same location.
    const Addr l0 = 0, l1 = 1, x = 2;
    ProgramBuilder b("two-locks", 2);
    b.thread(0).acquireTasOnly(l0).store(x, 1).release(l0).halt();
    b.thread(1).acquireTasOnly(l1).load(0, x).release(l1).halt();
    Program p = b.build();
    auto r = checkLockDiscipline(p);
    ASSERT_FALSE(r.certified);
    bool unprotected = false;
    for (const auto &i : r.issues)
        unprotected |= i.kind == LocksetIssue::Kind::unprotected_access &&
                       i.addr == x;
    EXPECT_TRUE(unprotected);
    // And it is really racy.
    EXPECT_FALSE(checkDrf0(p).obeys);
}

TEST(Lockset, NestedLocksCertified)
{
    const Addr l0 = 0, l1 = 1, x = 2, y = 3;
    ProgramBuilder b("nested", 2);
    for (ProcId p = 0; p < 2; ++p) {
        b.thread(p)
            .acquireTasOnly(l0)
            .store(x, 1 + p)
            .acquireTasOnly(l1)
            .store(y, 1 + p)
            .release(l1)
            .load(0, x)
            .release(l0)
            .halt();
    }
    Program prog = b.build();
    auto r = checkLockDiscipline(prog);
    EXPECT_TRUE(r.certified)
        << (r.issues.empty() ? "?" : r.issues[0].toString(prog));
    EXPECT_TRUE(r.protection[x].count(l0));
    EXPECT_TRUE(r.protection[y].count(l1));
    EXPECT_TRUE(r.protection[y].count(l0)) << "outer lock also held";
}

TEST(Lockset, PrivateAndReadOnlyNeedNoLocks)
{
    ProgramBuilder b("benign", 2, 3, /*initial=*/9);
    b.thread(0).store(0, 1).load(1, 2).halt(); // 0 private, 2 read-only
    b.thread(1).store(1, 2).load(2, 2).halt(); // 1 private
    Program p = b.build();
    auto r = checkLockDiscipline(p);
    EXPECT_TRUE(r.certified)
        << (r.issues.empty() ? "?" : r.issues[0].toString(p));
}

class LocksetSoundness : public testing::TestWithParam<int>
{
};

TEST_P(LocksetSoundness, CertifiedImpliesDrf0)
{
    Drf0WorkloadCfg cfg;
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    cfg.procs = 2;
    cfg.regions = 2;
    cfg.sections = 2;
    cfg.ops_per_section = 2;
    cfg.private_ops = 1;
    cfg.test_and_tas = (GetParam() % 2) == 0;
    Program p = randomDrf0Program(cfg);
    auto cert = checkLockDiscipline(p);
    ASSERT_TRUE(cert.certified)
        << (cert.issues.empty() ? "?" : cert.issues[0].toString(p));
    // Soundness: the static certificate implies the semantic property.
    auto v = checkDrf0(p);
    EXPECT_TRUE(v.obeys) << v.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocksetSoundness, testing::Range(0, 20));

} // namespace
} // namespace wo

/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/logging.hh"
#include "event/event_queue.hh"
#include "obs/obs.hh"

namespace wo {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, "c", [&] { order.push_back(3); });
    q.schedule(10, "a", [&] { order.push_back(1); });
    q.schedule(20, "b", [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(5, "e", [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 4)
            q.schedule(2, "chain", chain);
    };
    q.schedule(0, "start", chain);
    q.runAll();
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, ZeroDelayRunsThisTick)
{
    EventQueue q;
    Tick seen = max_tick;
    q.schedule(7, "outer", [&] {
        q.schedule(0, "inner", [&] { seen = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), "t", [&] { ++count; });
    q.runUntil([&] { return count >= 3; });
    EXPECT_EQ(count, 3);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, "later", [] {});
    q.runAll();
    EXPECT_DEATH(q.scheduleAt(5, "past", [] {}), "past");
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 6; ++i)
        q.schedule(1, "x", [] {});
    EXPECT_EQ(q.pending(), 6u);
    q.runAll();
    EXPECT_EQ(q.executed(), 6u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, LivelockGuardPanics)
{
    EventQueue q;
    std::function<void()> forever = [&] { q.schedule(1, "loop", forever); };
    q.schedule(0, "start", forever);
    EXPECT_DEATH(q.runAll(1000), "livelock");
}

// --- calendar-kernel specifics --------------------------------------

TEST(CalendarQueue, FarFutureEventsMigrateFromOverflow)
{
    // Delays far beyond the bucket-wheel window land in the overflow
    // heap and must migrate back in (tick, seq) order as time advances.
    EventQueue q;
    std::vector<int> order;
    q.schedule(1'000'000, "far", [&] { order.push_back(2); });
    q.schedule(5, "near", [&] { order.push_back(1); });
    q.schedule(123'456'789, "farther", [&] { order.push_back(3); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 123'456'789u);
}

TEST(CalendarQueue, SameTickFifoSurvivesOverflowMigration)
{
    // All five land on the same far-future tick via the overflow heap;
    // schedule order must still be execution order.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1'000'000, "same", [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CalendarQueue, MixedNearAndFarSchedulingInterleaves)
{
    // A callback firing inside the window schedules both near and far;
    // the drain must interleave them strictly by (tick, seq).
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, "a", [&] {
        fired.push_back(q.now());
        q.schedule(100'000, "far", [&] { fired.push_back(q.now()); });
        q.schedule(3, "near", [&] { fired.push_back(q.now()); });
    });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 13, 100'010}));
}

TEST(CalendarQueue, ZeroDelayDuringBucketDrainStaysFifo)
{
    // Appending a zero-delay event while its own tick's bucket drains
    // must run it this tick, after everything already queued there.
    EventQueue q;
    std::vector<int> order;
    q.schedule(4, "first", [&] {
        order.push_back(1);
        q.schedule(0, "appended", [&] { order.push_back(3); });
    });
    q.schedule(4, "second", [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 4u);
}

#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
TEST(CalendarQueue, MatchesLegacyKernelOnARandomSchedule)
{
    // One deterministic pseudo-random workload driven through both
    // kernels; firing order (tick and identity) must be identical.
    auto drive = [](EventQueueKind kind) {
        EventQueue q(kind);
        std::vector<std::pair<Tick, int>> fired;
        std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
        auto next = [&rng] {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            return rng;
        };
        int id = 0;
        std::function<void(int)> spawn = [&](int depth) {
            const int me = id++;
            const Tick delay = next() % (depth % 3 == 0 ? 9'000 : 40);
            q.schedule(delay, "r", [&, me, depth] {
                fired.emplace_back(q.now(), me);
                if (id < 5000)
                    spawn(depth + 1);
                if (depth % 5 == 0 && id < 5000)
                    spawn(depth + 1);
            });
        };
        spawn(0);
        q.runAll();
        return fired;
    };
    const auto calendar = drive(EventQueueKind::calendar);
    const auto legacy = drive(EventQueueKind::legacy_heap);
    EXPECT_EQ(calendar, legacy);
    EXPECT_GT(calendar.size(), 2000u);
}
#endif // WO_HAVE_LEGACY_EVENT_QUEUE

// --- lazy labels and allocation-free callbacks ----------------------

TEST(LazyLabel, NotMaterializedWithoutAConsumer)
{
    // The satellite regression: scheduling with lazy labels in a run
    // with no obs hub and non-verbose logging must render zero labels.
    const std::uint64_t before = EventLabel::lazyMaterializations();
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<Tick>(i), [i] {
            return strprintf("event#%d", i);
        }, [&] { ++fired; });
    q.runAll();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(EventLabel::lazyMaterializations() - before, 0u);
}

TEST(LazyLabel, MaterializedOncePerFiringWhenTraced)
{
    const std::uint64_t before = EventLabel::lazyMaterializations();
    Obs obs(1);
    obs.enableTrace(/*queue_events=*/true);
    EventQueue q;
    q.setObs(&obs);
    for (int i = 0; i < 7; ++i)
        q.schedule(1, [i] { return strprintf("event#%d", i); }, [] {});
    q.runAll();
    EXPECT_EQ(EventLabel::lazyMaterializations() - before, 7u);
    // And the rendered text reached the trace.
    EXPECT_NE(obs.traceJsonl().find("event#6"), std::string::npos);
}

TEST(EventCallback, SimulatorSizedCapturesStayInline)
{
    const std::uint64_t before = EventCallback::heapFallbacks();
    EventQueue q;
    // The largest real capture in the simulator is a network delivery
    // (this + handler + a Message); six words stands in for it.
    struct { std::uint64_t a, b, c, d, e, f; } big = {1, 2, 3, 4, 5, 6};
    std::uint64_t sum = 0;
    for (int i = 0; i < 50; ++i)
        q.schedule(1, "inline", [&sum, big] { sum += big.f; });
    q.runAll();
    EXPECT_EQ(sum, 300u);
    EXPECT_EQ(EventCallback::heapFallbacks() - before, 0u);
}

TEST(EventCallback, OversizedCapturesFallBackToHeapAndStillRun)
{
    const std::uint64_t before = EventCallback::heapFallbacks();
    EventQueue q;
    struct { std::uint64_t w[16]; } huge = {};
    huge.w[15] = 9;
    std::uint64_t seen = 0;
    q.schedule(1, "huge", [&seen, huge] { seen = huge.w[15]; });
    q.runAll();
    EXPECT_EQ(seen, 9u);
    EXPECT_EQ(EventCallback::heapFallbacks() - before, 1u);
}

} // namespace
} // namespace wo

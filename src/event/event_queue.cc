#include "event_queue.hh"

#include "common/logging.hh"
#include "obs/obs.hh"

namespace wo {

void
EventQueue::schedule(Tick delay, std::string label, std::function<void()> fn)
{
    scheduleAt(now_ + delay, std::move(label), std::move(fn));
}

void
EventQueue::scheduleAt(Tick when, std::string label, std::function<void()> fn)
{
    wo_assert(when >= now_, "scheduling event '%s' in the past (%llu < %llu)",
              label.c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    pq_.push(Event{when, next_seq_++, std::move(label), std::move(fn)});
}

bool
EventQueue::step()
{
    if (pq_.empty())
        return false;
    // The callback may schedule new events, so move the event out first.
    Event ev = pq_.top();
    pq_.pop();
    now_ = ev.when;
    verbose("t=%llu event %s", static_cast<unsigned long long>(now_),
            ev.label.c_str());
    if (obs_)
        obs_->queueFire(now_, ev.label);
    ++executed_;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (step()) {
        if (++n > max_events)
            wo_panic("event queue exceeded %llu events: livelock?",
                     static_cast<unsigned long long>(max_events));
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(const std::function<bool()> &done,
                     std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!done() && step()) {
        if (++n > max_events)
            wo_panic("event queue exceeded %llu events: livelock?",
                     static_cast<unsigned long long>(max_events));
    }
    return n;
}

} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/fig2_drf0.dir/fig2_drf0.cc.o"
  "CMakeFiles/fig2_drf0.dir/fig2_drf0.cc.o.d"
  "fig2_drf0"
  "fig2_drf0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_drf0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

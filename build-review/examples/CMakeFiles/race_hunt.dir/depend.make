# Empty dependencies file for race_hunt.
# This may be replaced when dependencies are built.

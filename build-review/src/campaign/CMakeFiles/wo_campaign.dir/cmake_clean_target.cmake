file(REMOVE_RECURSE
  "libwo_campaign.a"
)

# Empty compiler generated dependencies file for verify_drf0impl.
# This may be replaced when dependencies are built.

#include "system.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace wo {

std::uint64_t
SystemResult::cpu_stat_total(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &m : cpu_counters) {
        auto it = m.find(name);
        if (it != m.end())
            total += it->second;
    }
    return total;
}

std::uint64_t
SystemResult::stall_stat_total(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &m : stall_counters) {
        auto it = m.find(name);
        if (it != m.end())
            total += it->second;
    }
    return total;
}

System::System(const Program &prog, const SystemCfg &cfg)
    : prog_(prog), cfg_(cfg)
{
    const ProcId procs = prog.numThreads();
    const NodeId dir_id = procs;
    cfg_.cache.sync_reads_as_reads =
        cfg_.policy == OrderingPolicy::wo_drf0_ro;

    obs_ = std::make_unique<Obs>(procs);
    if (cfg_.trace)
        obs_->enableTrace(cfg_.trace_queue_events);
    eq_.setObs(obs_.get());

    net_ = std::make_unique<Network>(eq_, cfg_.net);
    dir_ = std::make_unique<Directory>(dir_id, *net_,
                                       prog.initialMemory(), cfg_.dir);
    net_->attach(dir_id, dir_.get());
    exec_ = std::make_unique<Execution>(procs, prog.numLocations(),
                                        prog.initialMemory());
    for (ProcId p = 0; p < procs; ++p) {
        cpus_.push_back(std::make_unique<Cpu>(p, prog, eq_, cfg_.policy,
                                              exec_.get(), cfg_.cpu));
        caches_.push_back(std::make_unique<Cache>(
            p, dir_id, procs, eq_, *net_, cpus_.back().get(),
            prog.numLocations(), cfg_.cache));
        cpus_.back()->attachCache(caches_.back().get());
        net_->attach(p, caches_.back().get());
    }
}

System::~System() = default;

void
System::warmShared(Addr addr, const std::vector<ProcId> &procs)
{
    for (ProcId p : procs) {
        caches_[p]->warmShared(addr, prog_.initialValue(addr));
        dir_->warmSharer(addr, p);
    }
}

std::vector<Value>
System::finalMemory() const
{
    std::vector<Value> mem(prog_.numLocations());
    for (Addr a = 0; a < prog_.numLocations(); ++a) {
        const NodeId owner = dir_->ownerOf(a);
        if (owner != invalid_proc && caches_[owner]->holdsModified(a))
            mem[a] = caches_[owner]->lineValue(a);
        else
            mem[a] = dir_->memoryValue(a);
    }
    return mem;
}

SystemResult
System::run()
{
    for (auto &cpu : cpus_)
        cpu->boot();

    SystemResult r;
    std::uint64_t events = 0;
    while (!eq_.empty()) {
        if (++events > cfg_.max_events) {
            r.livelocked = true;
            warn("system livelocked after %llu events running '%s' (%s)",
                 static_cast<unsigned long long>(events),
                 prog_.name().c_str(), policyName(cfg_.policy));
            break;
        }
        eq_.step();
    }

    bool all_halted = true;
    Tick finish = 0;
    for (auto &cpu : cpus_) {
        all_halted = all_halted && cpu->halted();
        finish = std::max(finish, cpu->finishTick());
    }
    r.completed = all_halted && !r.livelocked;
    r.deadlocked = !all_halted && !r.livelocked;
    r.finish_tick = finish;
    r.drain_tick = eq_.now();
    r.policy = cfg_.policy;
    r.weak_sync_read_policy = cfg_.policy == OrderingPolicy::wo_drf0_ro;

    r.execution = *exec_;
    r.outcome.regs.reserve(cpus_.size());
    for (auto &cpu : cpus_)
        r.outcome.regs.emplace_back(cpu->regs().begin(),
                                    cpu->regs().end());
    r.outcome.memory = finalMemory();
    for (auto &cpu : cpus_)
        r.timings.push_back(cpu->timings());

    for (auto &cpu : cpus_) {
        r.stats += cpu->stats().dump();
        std::map<std::string, std::uint64_t> counters;
        for (const auto &kv : cpu->stats().counters())
            counters[kv.first] = kv.second.value();
        r.cpu_counters.push_back(std::move(counters));
    }
    for (ProcId p = 0; p < cpus_.size(); ++p) {
        const StatGroup &g = obs_->stallStats(p);
        r.stats += g.dump();
        std::map<std::string, std::uint64_t> counters;
        for (const auto &kv : g.counters())
            counters[kv.first] = kv.second.value();
        r.stall_counters.push_back(std::move(counters));
    }
    for (auto &cache : caches_)
        r.stats += cache->stats().dump();
    r.stats += dir_->stats().dump();
    r.stats += net_->stats().dump();

    // The unified machine-readable view: run metadata plus every
    // component group mounted in one hierarchical namespace.
    MetricsRegistry reg;
    reg.set("run.program", Json(prog_.name()));
    reg.set("run.policy", Json(policyName(cfg_.policy)));
    reg.set("run.completed", Json(r.completed));
    reg.set("run.deadlocked", Json(r.deadlocked));
    reg.set("run.livelocked", Json(r.livelocked));
    reg.set("run.finish_tick", Json(r.finish_tick));
    reg.set("run.drain_tick", Json(r.drain_tick));
    reg.set("run.events", Json(eq_.executed()));
    for (ProcId p = 0; p < cpus_.size(); ++p) {
        reg.addGroup(strprintf("cpu%u", p), cpus_[p]->stats());
        reg.addGroup(strprintf("cpu%u.stall", p), obs_->stallStats(p));
    }
    for (ProcId p = 0; p < caches_.size(); ++p)
        reg.addGroup(strprintf("cache%u", p), caches_[p]->stats());
    reg.addGroup("dir", dir_->stats());
    reg.addGroup("net", net_->stats());
    r.stats_json = reg.dump(1);
    return r;
}

} // namespace wo

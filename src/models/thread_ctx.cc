#include "thread_ctx.hh"

#include "common/logging.hh"

namespace wo {

void
runLocal(const ThreadCode &code, ThreadCtx &t)
{
    while (!t.halted) {
        const Instruction &i = code.at(t.pc);
        switch (i.op) {
          case Opcode::mov_imm:
            t.regs[i.dst] = i.imm;
            ++t.pc;
            break;
          case Opcode::add:
            t.regs[i.dst] = t.regs[i.src] + t.regs[i.src2];
            ++t.pc;
            break;
          case Opcode::add_imm:
            t.regs[i.dst] = t.regs[i.src] + i.imm;
            ++t.pc;
            break;
          case Opcode::branch_eq:
            t.pc = (t.regs[i.src] == i.imm) ? i.target : t.pc + 1;
            break;
          case Opcode::branch_ne:
            t.pc = (t.regs[i.src] != i.imm) ? i.target : t.pc + 1;
            break;
          case Opcode::jump:
            t.pc = i.target;
            break;
          case Opcode::delay:
            ++t.pc; // time is not modelled here
            break;
          case Opcode::halt:
            t.halted = true;
            break;
          default:
            return; // a memory access: stop
        }
    }
}

const Instruction *
currentAccess(const ThreadCode &code, const ThreadCtx &t)
{
    if (t.halted)
        return nullptr;
    const Instruction &i = code.at(t.pc);
    wo_assert(i.accessesMemory(),
              "thread not at a memory access (pc %u: %s); runLocal missing?",
              t.pc, i.toString().c_str());
    return &i;
}

Value
storeValue(const Instruction &inst, const ThreadCtx &t)
{
    if (inst.op == Opcode::test_and_set)
        return 1; // TestAndSet writes 1 by definition
    return inst.use_imm ? inst.imm : t.regs[inst.src];
}

AccessKind
accessKindOf(Opcode op)
{
    switch (op) {
      case Opcode::load_data: return AccessKind::data_read;
      case Opcode::store_data: return AccessKind::data_write;
      case Opcode::sync_load: return AccessKind::sync_read;
      case Opcode::sync_store: return AccessKind::sync_write;
      case Opcode::test_and_set: return AccessKind::sync_rmw;
      default:
        wo_panic("opcode %s is not a memory access", opcodeName(op));
    }
}

std::string
dumpThreadsAndMem(const Program &prog,
                  const std::vector<ThreadCtx> &threads,
                  const std::vector<Value> &mem)
{
    std::string out;
    for (ProcId p = 0; p < threads.size(); ++p) {
        const ThreadCtx &t = threads[p];
        out += strprintf("  P%u pc=%u%s", p, t.pc,
                         t.halted ? " halted" : "");
        if (!t.halted)
            out += " @ " + prog.thread(p).at(t.pc).toString();
        out += "\n";
    }
    out += "  mem:";
    for (std::size_t a = 0; a < mem.size(); ++a)
        out += strprintf(" %s=%lld",
                         prog.locationName(static_cast<Addr>(a)).c_str(),
                         static_cast<long long>(mem[a]));
    out += "\n";
    return out;
}

void
completeAccess(const ThreadCode &code, ThreadCtx &t, Value value_read)
{
    const Instruction *i = currentAccess(code, t);
    wo_assert(i != nullptr, "completing access on a halted thread");
    if (i->readsMemory())
        t.regs[i->dst] = value_read;
    ++t.pc;
    runLocal(code, t);
}

} // namespace wo

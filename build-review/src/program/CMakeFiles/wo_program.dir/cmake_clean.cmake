file(REMOVE_RECURSE
  "CMakeFiles/wo_program.dir/builder.cc.o"
  "CMakeFiles/wo_program.dir/builder.cc.o.d"
  "CMakeFiles/wo_program.dir/instruction.cc.o"
  "CMakeFiles/wo_program.dir/instruction.cc.o.d"
  "CMakeFiles/wo_program.dir/litmus.cc.o"
  "CMakeFiles/wo_program.dir/litmus.cc.o.d"
  "CMakeFiles/wo_program.dir/program.cc.o"
  "CMakeFiles/wo_program.dir/program.cc.o.d"
  "CMakeFiles/wo_program.dir/workload.cc.o"
  "CMakeFiles/wo_program.dir/workload.cc.o.d"
  "libwo_program.a"
  "libwo_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

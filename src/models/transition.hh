/**
 * @file
 * Transition labels for the abstract operational models.
 *
 * Every model exposes its successor relation twice: `successors()` (plain
 * states, kept for callers that only walk the graph) and
 * `labeledSuccessors()`, which names each outgoing edge with a TransLabel.
 * The label identifies the *transition*, not the target state, and is the
 * unit the DPOR explorer reasons about: sleep sets are sets of labels, and
 * independence is judged between labels by concretely commuting them.
 *
 * A label must be unique among the outgoing edges of any single state.
 * Two coordinates suffice for every model in this repository:
 *
 *   - (proc, instr):      processor `proc` performs the memory access its
 *                         thread currently sits at.  At most one per
 *                         processor per state.
 *   - (proc, drain, addr): a buffered/pending/in-flight effect owned by (or
 *                         destined for) `proc` becomes visible at `addr`.
 *                         Each model drains either only the oldest entry
 *                         (write buffer, stale-cache inbox) or the oldest
 *                         entry *per location* (network flights, pending
 *                         pools), so (proc, addr) never repeats in one
 *                         state's successor list.
 */

#ifndef WO_MODELS_TRANSITION_HH
#define WO_MODELS_TRANSITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace wo {

/** What kind of edge a TransLabel names. */
enum class TransKind : std::uint8_t {
    instr = 0, ///< a processor executes the access its thread sits at
    drain = 1, ///< a buffered write / flight / update becomes visible
};

/** Name of one outgoing transition of a model state. */
struct TransLabel
{
    ProcId proc = 0;
    TransKind kind = TransKind::instr;
    Addr addr = invalid_addr; ///< drain target location; unused for instr

    friend bool operator==(const TransLabel &a, const TransLabel &b)
    {
        return a.proc == b.proc && a.kind == b.kind && a.addr == b.addr;
    }

    friend bool operator<(const TransLabel &a, const TransLabel &b)
    {
        if (a.proc != b.proc)
            return a.proc < b.proc;
        if (a.kind != b.kind)
            return a.kind < b.kind;
        return a.addr < b.addr;
    }

    std::string toString() const
    {
        if (kind == TransKind::instr)
            return strprintf("P%u:instr", proc);
        return strprintf("P%u:drain@%u", proc, addr);
    }
};

/** Convenience constructors keeping model code terse. */
inline TransLabel
instrLabel(ProcId p)
{
    return TransLabel{p, TransKind::instr, invalid_addr};
}

inline TransLabel
drainLabel(ProcId p, Addr a)
{
    return TransLabel{p, TransKind::drain, a};
}

/** One labeled outgoing edge: the label plus the successor state. */
template <typename State>
struct LabeledSucc
{
    TransLabel label;
    State state;
};

} // namespace wo

#endif // WO_MODELS_TRANSITION_HH

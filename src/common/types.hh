/**
 * @file
 * Fundamental scalar types and identifiers shared across the weak-ordering
 * laboratory.
 *
 * The whole code base deals with a small number of entities: processors,
 * threads of a parallel program, memory locations, simulated time, and the
 * values that flow between them.  Keeping the aliases in one header makes
 * signatures self-describing and lets us tighten the representations later
 * without touching every module.
 */

#ifndef WO_COMMON_TYPES_HH
#define WO_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace wo {

/** Simulated time, in abstract "ticks" of the discrete-event kernel. */
using Tick = std::uint64_t;

/** A tick value that no scheduled event will ever reach. */
inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/**
 * Identifier of a processor in the simulated machine.  Processors and
 * program threads are in one-to-one correspondence throughout this project
 * (the paper's conditions only permit migration after a full drain, which we
 * model as a policy option, not as a separate thread abstraction).
 */
using ProcId = std::uint16_t;

/** Sentinel processor id meaning "no processor" (e.g. an unowned line). */
inline constexpr ProcId invalid_proc = std::numeric_limits<ProcId>::max();

/**
 * A memory location.  The abstract models and the happens-before machinery
 * treat memory as an array of independent words; the timed coherence
 * substrate maps each word onto its own cache line (the paper's
 * synchronization operations access exactly one location, and false sharing
 * is orthogonal to every claim we reproduce).
 */
using Addr = std::uint32_t;

/** Sentinel address meaning "no location". */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/** The value stored in a memory word or a program register. */
using Value = std::int64_t;

/** Index of a register inside one thread's register file. */
using RegId = std::uint8_t;

/** Index of an instruction within one thread's code. */
using Pc = std::uint32_t;

/**
 * Monotonically increasing identifier assigned to every dynamic memory
 * operation of an execution, unique across all processors.  Used as a stable
 * key by the happens-before and sequential-consistency checkers.
 */
using OpId = std::uint32_t;

/** Sentinel operation id. */
inline constexpr OpId invalid_op = std::numeric_limits<OpId>::max();

} // namespace wo

#endif // WO_COMMON_TYPES_HH

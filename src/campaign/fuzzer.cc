#include "fuzzer.hh"

#include "common/random.hh"
#include "models/model_registry.hh"

namespace wo {

namespace {

/** SplitMix64: the stream mix used to derive per-index coordinates. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a, so mutant derivation is identical on every platform. */
std::uint64_t
fnv64(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Fuzzer::Fuzzer(const FuzzerCfg &cfg) : cfg_(cfg)
{
    if (cfg_.verify && cfg_.verify_models.empty())
        cfg_.verify_models = modelNames();
    for (const auto &e : litmusCorpus()) {
        Cell c;
        c.source = CellSource::litmus;
        c.spec = e.name;
        prototypes_.push_back(std::move(c));
    }
    for (const std::string &path : cfg_.program_files) {
        Cell c;
        c.source = CellSource::file;
        c.spec = path;
        prototypes_.push_back(std::move(c));
    }
    // Random generator prototypes: the seed of each draw comes from the
    // stream index, so these stand for whole program families.
    {
        Cell c;
        c.source = CellSource::drf0_rand;
        prototypes_.push_back(c);
        c.source = CellSource::racy_rand;
        prototypes_.push_back(c);
    }
}

Cell
Fuzzer::baseCell(std::uint64_t index) const
{
    const std::uint64_t h = mix64(cfg_.seed * 0x51ed2701u + index);
    Cell cell = prototypes_[index % prototypes_.size()];
    cell.inject_reserve_bug = cfg_.inject_reserve_bug;
    if (cell.source == CellSource::drf0_rand) {
        cell.drf0.seed = h | 1;
        cell.drf0.procs = 2 + (h >> 16) % 2;
        cell.drf0.sections = 1 + (h >> 20) % 2;
    } else if (cell.source == CellSource::racy_rand) {
        cell.racy.seed = h | 1;
        cell.racy.procs = 2 + (h >> 16) % 2;
        cell.racy.ops_per_thread = 2 + (h >> 20) % 3;
    }
    if (cfg_.verify) {
        // Verify streams cross program x model; keys carry no timing
        // coordinates, so deterministic sources repeat after nproto x
        // nmodels indices and the journal's seen set skips the repeats
        // (random sources re-seed per index and never repeat).
        cell.kind = CellKind::verify;
        cell.model = cfg_.verify_models[(index / prototypes_.size()) %
                                        cfg_.verify_models.size()];
        cell.max_states = cfg_.max_states;
        cell.inject_axiom_bug = cfg_.inject_axiom_bug;
        cell.explore_jobs = cfg_.explore_jobs;
        return cell;
    }
    cell.policy = cfg_.policies[(index / prototypes_.size()) %
                                cfg_.policies.size()];
    cell.net_seed = (h % 1024) + 1;
    cell.jitter = (h >> 10) % 4;
    cell.hop = 3 + (h >> 12) % 3; // small hops keep cells fast
    return cell;
}

bool
Fuzzer::insertNovel(std::array<NoveltyShard, num_shards> &shards,
                    std::string key)
{
    NoveltyShard &s = shards[fnv64(key) % num_shards];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.seen.insert(std::move(key)).second;
}

std::vector<Cell>
Fuzzer::observe(const Cell &cell, const CellResult &r)
{
    const bool new_verdict = insertNovel(
        verdict_shards_, cell.familyId() + "|" + r.verdict());
    const bool new_outcome = insertNovel(
        outcome_shards_, cell.programId() + "|" + r.outcome_sig);
    novelty_.fetch_add((new_verdict ? 1 : 0) + (new_outcome ? 1 : 0),
                       std::memory_order_relaxed);
    int energy = 0;
    if (r.hardwareFailure())
        energy = 4; // chase the bug's neighborhood hardest
    else if (new_verdict)
        energy = 3;
    else if (new_outcome)
        energy = 2;
    if (energy == 0)
        return {};

    // Mutants derive from the cell key, so equal discoveries breed
    // equal neighborhoods no matter which worker observed them.
    Rng rng(mix64(cfg_.seed ^ fnv64(r.key)));
    std::vector<Cell> mutants;

    if (cell.kind == CellKind::verify) {
        // Verify keys ignore timing and policy, so the only mutations
        // that produce new work are program-shape ones: random sources
        // breed re-shaped draws, deterministic sources have no
        // neighborhood.
        if (cell.source != CellSource::drf0_rand &&
            cell.source != CellSource::racy_rand)
            return {};
        for (int i = 0; i < energy; ++i) {
            Cell m = cell;
            if (m.source == CellSource::drf0_rand) {
                m.drf0 = mutateDrf0Cfg(m.drf0, rng);
                m.drf0.seed = rng.below(1u << 30) | 1;
            } else {
                m.racy = mutateRacyCfg(m.racy, rng);
                m.racy.seed = rng.below(1u << 30) | 1;
            }
            mutants.push_back(std::move(m));
        }
        return mutants;
    }

    for (int i = 0; i < energy; ++i) {
        Cell m = cell;
        switch (rng.below(4)) {
          case 0: // shape mutation (random sources only; else timing)
            if (m.source == CellSource::drf0_rand) {
                m.drf0 = mutateDrf0Cfg(m.drf0, rng);
                break;
            }
            if (m.source == CellSource::racy_rand) {
                m.racy = mutateRacyCfg(m.racy, rng);
                break;
            }
            [[fallthrough]];
          case 1:
            m.net_seed = rng.below(1 << 20) + 1;
            break;
          case 2:
            m.jitter = rng.below(5);
            m.net_seed = rng.below(1 << 20) + 1;
            break;
          default:
            m.policy = cfg_.policies[rng.below(cfg_.policies.size())];
            m.net_seed = rng.below(1 << 20) + 1;
            break;
        }
        mutants.push_back(std::move(m));
    }
    return mutants;
}

std::uint64_t
Fuzzer::noveltyCount() const
{
    return novelty_.load(std::memory_order_relaxed);
}

} // namespace wo

/**
 * @file
 * Figure 1, configuration 2: a machine whose processors issue accesses in
 * program order into a general (multi-path) interconnection network, so
 * accesses may reach the memory modules in a different order [Lam79].
 *
 * Writes travel through the network: a write is "in flight" from issue
 * until its (nondeterministically scheduled) arrival at memory.  In-flight
 * writes of one processor to the *same* location arrive in issue order
 * (one path per module), but writes to different locations may be passed.
 * A read is modelled as arriving at its module instantly -- which lets it
 * arrive before an older in-flight write to a different module, the exact
 * reordering of Lamport's example -- except that a read may not pass an
 * in-flight write of its own processor to the same location.
 *
 * Synchronization operations wait for all of the processor's in-flight
 * writes to arrive, then act atomically (strongly ordered).
 */

#ifndef WO_MODELS_NETWORK_MODEL_HH
#define WO_MODELS_NETWORK_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "execution/execution.hh"
#include "models/state_enc.hh"
#include "models/thread_ctx.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** General-interconnect machine without caches. */
class NetworkReorderModel
{
  public:
    /** One write travelling through the network. */
    struct Flight
    {
        Addr addr;
        Value value;
        bool operator==(const Flight &other) const = default;
    };

    /** Machine state. */
    struct State
    {
        std::vector<ThreadCtx> threads;
        std::vector<Value> mem;
        std::vector<std::vector<Flight>> flights; // per processor, in order

        bool operator==(const State &other) const = default;
    };

    /**
     * @param prog       the program (must outlive the model)
     * @param max_flights in-flight writes allowed per processor
     */
    explicit NetworkReorderModel(const Program &prog,
                                 std::size_t max_flights = 4);

    static const char *name() { return "general-network"; }

    State initial() const;
    bool isFinal(const State &s) const;
    std::vector<State> successors(const State &s) const;
    std::vector<LabeledSucc<State>> labeledSuccessors(const State &s) const;

    /**
     * The successor reached from @p s by the single transition @p l, or
     * nullopt if @p l is not enabled.  Materializes exactly one state:
     * the explorer's commutation probes chase individual labels and
     * must not pay for a full successor list.
     */
    std::optional<State> stepLabel(const State &s, const TransLabel &l) const;

    Outcome outcome(const State &s) const;

    /**
     * Injective state layout, written into either encoder: threads,
     * memory, then each processor's in-flight writes (separator-delimited).
     */
    template <typename Enc>
    void
    encodeInto(const State &s, Enc &enc) const
    {
        for (const auto &t : s.threads)
            enc.putThread(t);
        enc.sep();
        for (Value v : s.mem)
            enc.put(v);
        enc.sep();
        for (const auto &fl : s.flights) {
            for (const auto &f : fl) {
                enc.put(f.addr);
                enc.put(f.value);
            }
            enc.sep();
        }
    }

    /** Injective byte encoding for the visited set (cold paths). */
    std::string encode(const State &s) const;

    /** Allocation-free 128-bit key over the encoded bytes (hot path). */
    StateHash
    hashState(const State &s) const
    {
        HashEnc enc;
        encodeInto(s, enc);
        return enc.take();
    }

    /** Human-readable state rendering (for witness chains/debugging). */
    std::string dump(const State &s) const;

    /** The bound program. */
    const Program &program() const { return prog_; }

    /** Locations @p p's in-flight writes will still write to memory. */
    void
    pendingAddrs(const State &s, ProcId p, std::vector<Addr> &out) const
    {
        for (const auto &f : s.flights[p])
            out.push_back(f.addr);
    }

  private:
    /** Append @p p's instruction-step successor (if enabled) to @p out. */
    void instrSucc(const State &s, ProcId p,
                   std::vector<LabeledSucc<State>> &out) const;

    /**
     * Append @p p's arrival successors to @p out; @p only restricts the
     * enumeration to arrivals at one location.
     */
    void drainSuccs(const State &s, ProcId p, std::optional<Addr> only,
                    std::vector<LabeledSucc<State>> &out) const;

    const Program &prog_;
    std::size_t max_flights_;
};

} // namespace wo

#endif // WO_MODELS_NETWORK_MODEL_HH

file(REMOVE_RECURSE
  "libwo_sc.a"
)

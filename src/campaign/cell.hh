/**
 * @file
 * The unit of campaign work: one *cell* = program source x ordering
 * policy x timing seed.  The paper's Definition 2 quantifies over every
 * DRF0 program, so confidence comes from running many cells, not one;
 * a campaign (see scheduler.hh) fans thousands of cells over a worker
 * fleet, each executing the full timed system with the online monitor
 * attached and reducing the run to a compact CellResult verdict.
 *
 * A cell's program comes from one of four sources: an assembly file on
 * disk, a named litmus:: factory, or a fresh randomDrf0Program /
 * randomRacyProgram draw from its embedded shape configuration.  Every
 * cell renders to a stable, filesystem- and JSON-safe key string; the
 * journal (journal.hh) uses the key to skip finished cells on resume,
 * so the key must identify the run exactly (same key, same verdict
 * modulo host scheduling).
 */

#ifndef WO_CAMPAIGN_CELL_HH
#define WO_CAMPAIGN_CELL_HH

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asm/assembler.hh"
#include "obs/json.hh"
#include "obs/monitor.hh"
#include "program/program.hh"
#include "program/workload.hh"
#include "sys/policy.hh"
#include "sys/system.hh"

namespace wo {

/** Where a cell's program comes from. */
enum class CellSource : std::uint8_t
{
    file,      //!< a .wo assembly file (spec = path)
    litmus,    //!< a litmus:: factory (spec = corpus name)
    drf0_rand, //!< randomDrf0Program(drf0)
    racy_rand, //!< randomRacyProgram(racy)
};

/**
 * What a cell does with its program.  A *run* cell executes one timed
 * simulation under the online monitor; a *verify* cell model-checks the
 * program on an abstract model with the dual-engine judge (campaign/
 * verify.hh): DPOR vs BFS, axiomatic vs operational SC, and the
 * Definition-2 subset claim.
 */
enum class CellKind : std::uint8_t
{
    run,
    verify,
};

/** One unit of campaign work. */
struct Cell
{
    CellKind kind = CellKind::run;
    CellSource source = CellSource::litmus;
    std::string spec;           //!< file path or litmus corpus name
    Drf0WorkloadCfg drf0;       //!< shape when source == drf0_rand
    RacyWorkloadCfg racy;       //!< shape when source == racy_rand
    OrderingPolicy policy = OrderingPolicy::wo_drf0;
    std::uint64_t net_seed = 1; //!< interconnect jitter seed
    Tick hop = 10;              //!< network hop latency
    Tick jitter = 0;            //!< network jitter bound
    bool inject_reserve_bug = false; //!< seeded fault campaigns

    // Verify-cell coordinates (ignored by run cells).  Timing fields
    // above do not enter a verify key: exploration is untimed, so a
    // verify cell is identified by program x model alone.
    std::string model = "drf0";         //!< model flag name under check
    std::uint64_t max_states = 200'000; //!< per-engine state budget
    bool inject_axiom_bug = false;      //!< seeded divergence campaigns
    /**
     * Worker threads inside each cell's DPOR exploration.  An execution
     * knob, not a coordinate: parallel results are bit-identical to
     * sequential ones, so it stays out of key() and the journal --
     * resuming with a different jobs count must dedup against the same
     * history.
     */
    int explore_jobs = 1;

    /**
     * The stable journal/dedup key, e.g.
     * "litmus:iriw|WO-DRF0|n7|h10|j2".  Random sources encode their
     * full shape: "drf0:p2r1l2v1s2o2t1w0g42|...".
     */
    std::string key() const;

    /**
     * The key with the timing coordinates (net seed / hop / jitter)
     * stripped: identifies the *program x policy*, so outcome-set
     * novelty can be tracked across timing seeds.
     */
    std::string programId() const;

    /**
     * The coarse program family ("litmus:iriw", "drf0-rand", ...):
     * verdict novelty is tracked per family, so one family producing a
     * verdict kind for the first time earns fuzz energy.
     */
    std::string familyId() const;

    /**
     * The timed-system configuration this cell runs under.  @p queue
     * selects the event kernel: the legacy heap exists so a campaign
     * can cross-check verdicts against the pre-overhaul kernel.
     */
    SystemCfg systemCfg(std::uint64_t max_events,
                        EventQueueKind queue =
                            EventQueueKind::calendar) const;
};

/** A materialized cell program, or why it could not be built. */
struct MaterializedCell
{
    std::optional<Program> program;
    std::vector<WarmTerm> warm; //!< 'warm' directives (file cells only)
    std::string error;          //!< non-empty on failure

    bool ok() const { return program.has_value() && error.empty(); }
};

/**
 * A per-worker cache of materialized programs.  `file:` and `litmus:`
 * cells rebuild the *same* program for every timing seed and policy
 * the campaign crosses them with; re-assembling the `.wo` source or
 * re-running the litmus factory thousands of times per campaign is
 * pure waste.  The cache keys on the cell's familyId() and hands out
 * copies of the parsed Program.  Random-source cells bypass it (every
 * draw embeds its own generator seed, so no two repeat).
 *
 * Not thread-safe by design: each worker owns one, so lookups never
 * synchronize.
 */
class MaterializeCache
{
  public:
    /** Cached entry for @p family_id, or nullptr. */
    const MaterializedCell *find(const std::string &family_id) const;

    /** Store @p m under @p family_id and return the cached copy. */
    const MaterializedCell &put(std::string family_id,
                                MaterializedCell m);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return map_.size(); }

  private:
    friend MaterializedCell materializeCell(const Cell &,
                                            MaterializeCache *);
    std::unordered_map<std::string, MaterializedCell> map_;
    mutable std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Build the cell's program (parses, calls the factory, or generates).
 * With @p cache, repeated file/litmus specs are served from the cache
 * (a program copy, not a rebuild); errors are cached too, so a broken
 * corpus file costs one parse attempt per worker, not one per cell.
 */
MaterializedCell materializeCell(const Cell &cell,
                                 MaterializeCache *cache = nullptr);

/** A named entry of the built-in litmus corpus. */
struct LitmusCorpusEntry
{
    const char *name;
    Program (*make)();
};

/** The built-in litmus corpus (stable names; used in cell keys). */
const std::vector<LitmusCorpusEntry> &litmusCorpus();

/** What one cell's run reduced to. */
struct CellResult
{
    std::string key;
    bool completed = false;
    bool deadlocked = false;
    bool livelocked = false;
    std::uint64_t hw = 0;     //!< hardware-blaming monitor violations
    std::uint64_t races = 0;  //!< software races (contract void)
    std::uint64_t total = 0;  //!< all monitor findings
    std::uint64_t by_kind[num_violation_kinds] = {};
    std::string primary_kind; //!< first hardware kind raised (or empty)
    std::string outcome_sig;  //!< 64-bit FNV hash of the final outcome
    Tick finish_tick = 0;
    double wall_ms = 0;       //!< host wall-clock cost of the cell

    // Verify-cell results (always false/zero for run cells).
    bool inconclusive = false; //!< an engine budget tripped: no verdict
    bool nonsc = false;        //!< hw escaped SC (expected, not a failure)
    std::uint64_t dpor_states = 0; //!< reduced-engine states visited
    std::uint64_t bfs_states = 0;  //!< reference-engine states visited
    std::uint64_t dpor_probes = 0; //!< independence queries made
    std::uint64_t dpor_memo_hits = 0; //!< probes answered from the memo

    // Host-time span decomposition, journaled per cell so post-hoc
    // tooling (wotool report) can break a campaign's wall clock down
    // without the profiler on.  shrink_us is stamped by the campaign
    // worker (shrinking happens above runCell).
    std::uint64_t mat_us = 0;    //!< materialize (parse/factory/generate)
    std::uint64_t run_us = 0;    //!< timed simulation
    std::uint64_t shrink_us = 0; //!< shrink + evidence re-run

    /** Did the hardware break the Definition-2 contract? */
    bool hardwareFailure() const { return hw > 0; }

    /**
     * "clean" | "race" | "hw:<kind>" | "deadlock" | "livelock" |
     * "error"; verify cells add "inconclusive" and "nonsc".
     */
    std::string verdict() const;
};

/**
 * The journal cell-line object for @p r (without the "type" member).
 * One schema, two producers: Journal::appendCell for in-process
 * campaigns and the fleet worker's RESULT messages, so a merged fleet
 * journal is line-compatible with a single-process one.
 */
Json cellResultToJson(const CellResult &r);

/**
 * Run one cell to a verdict: materialize, then either simulate under
 * the online monitor (run cells) or judge with the dual-engine
 * verifier (verify cells), and reduce.  Materialization errors surface
 * as a failed cell with verdict "deadlock" never -- they produce hw ==
 * 0, completed == false and primary_kind == "materialize_error".
 */
struct CellRun
{
    CellResult result;
    std::optional<Program> program; //!< kept for the shrinker
    std::vector<WarmTerm> warm;
    std::string verify_detail; //!< verify cells: the evidence report
};

CellRun runCell(const Cell &cell, std::uint64_t max_events,
                EventQueueKind queue = EventQueueKind::calendar,
                MaterializeCache *cache = nullptr);

/** 64-bit FNV-1a over @p text, rendered as 16 hex digits. */
std::string fnv1aHex(const std::string &text);

/** Parse "sc" / "def1" / "drf0" / "drf0ro"; false on unknown text. */
bool parsePolicyName(const std::string &name, OrderingPolicy &out);

/** The flag-style name of a policy ("sc", "def1", "drf0", "drf0ro"). */
const char *policyFlagName(OrderingPolicy p);

} // namespace wo

#endif // WO_CAMPAIGN_CELL_HH

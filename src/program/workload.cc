#include "workload.hh"

#include <algorithm>

#include "common/random.hh"
#include "program/builder.hh"

namespace wo {

Program
randomDrf0Program(const Drf0WorkloadCfg &cfg)
{
    Rng rng(cfg.seed);
    const Addr locks_base = 0;
    const Addr data_base = cfg.regions;
    const Addr private_base = data_base + cfg.regions * cfg.locs_per_region;

    ProgramBuilder b(strprintf("drf0-rand-s%llu",
                               static_cast<unsigned long long>(cfg.seed)),
                     cfg.procs);
    // Unique value per store so reads identify their writer exactly.
    Value next_value = 1;

    for (ProcId p = 0; p < cfg.procs; ++p) {
        auto &t = b.thread(p);
        const Addr my_private = private_base + p * cfg.private_locs;
        for (int s = 0; s < cfg.sections; ++s) {
            // Private work before the section.
            for (int k = 0; k < cfg.private_ops; ++k) {
                if (cfg.private_locs == 0)
                    break;
                Addr a = my_private +
                         static_cast<Addr>(rng.below(cfg.private_locs));
                if (rng.chance(1, 2))
                    t.load(static_cast<RegId>(rng.below(4)), a);
                else
                    t.store(a, next_value++);
                if (cfg.work_cycles > 0)
                    t.work(cfg.work_cycles);
            }
            // One critical section on a random region.
            Addr region = static_cast<Addr>(rng.below(cfg.regions));
            Addr lock = locks_base + region;
            Addr rdata = data_base + region * cfg.locs_per_region;
            if (cfg.test_and_tas)
                t.acquire(lock);
            else
                t.acquireTasOnly(lock);
            for (int k = 0; k < cfg.ops_per_section; ++k) {
                Addr a = rdata +
                         static_cast<Addr>(rng.below(cfg.locs_per_region));
                if (rng.chance(1, 2))
                    t.load(static_cast<RegId>(rng.below(4)), a);
                else
                    t.store(a, next_value++);
                if (cfg.work_cycles > 0)
                    t.work(cfg.work_cycles);
            }
            t.release(lock);
        }
        t.halt();
    }
    for (Addr r = 0; r < cfg.regions; ++r)
        b.nameLocation(locks_base + r, strprintf("L%u", r));
    return b.build();
}

Program
randomRacyProgram(const RacyWorkloadCfg &cfg)
{
    Rng rng(cfg.seed);
    ProgramBuilder b(strprintf("racy-rand-s%llu",
                               static_cast<unsigned long long>(cfg.seed)),
                     cfg.procs);
    Value next_value = 1;
    for (ProcId p = 0; p < cfg.procs; ++p) {
        auto &t = b.thread(p);
        for (int k = 0; k < cfg.ops_per_thread; ++k) {
            Addr a = static_cast<Addr>(rng.below(cfg.locs));
            if (rng.chance(1, 2))
                t.load(static_cast<RegId>(k % 8), a);
            else
                t.store(a, next_value++);
        }
        t.halt();
    }
    return b.build();
}

namespace {

/** Nudge @p v by +/-1 within [lo, hi]. */
template <typename T>
T
nudge(T v, T lo, T hi, Rng &rng)
{
    long long next =
        static_cast<long long>(v) + (rng.chance(1, 2) ? 1 : -1);
    next = std::max(next, static_cast<long long>(lo));
    next = std::min(next, static_cast<long long>(hi));
    return static_cast<T>(next);
}

} // namespace

Drf0WorkloadCfg
mutateDrf0Cfg(const Drf0WorkloadCfg &base, Rng &rng)
{
    Drf0WorkloadCfg cfg = base;
    switch (rng.below(8)) {
      case 0:
        cfg.procs = nudge<ProcId>(cfg.procs, 2, 4, rng);
        break;
      case 1:
        cfg.regions = nudge<Addr>(cfg.regions, 1, 3, rng);
        break;
      case 2:
        cfg.locs_per_region = nudge<Addr>(cfg.locs_per_region, 1, 3, rng);
        break;
      case 3:
        cfg.private_locs = nudge<Addr>(cfg.private_locs, 0, 2, rng);
        break;
      case 4:
        cfg.sections = nudge(cfg.sections, 1, 3, rng);
        break;
      case 5:
        cfg.ops_per_section = nudge(cfg.ops_per_section, 1, 4, rng);
        break;
      case 6:
        cfg.test_and_tas = !cfg.test_and_tas;
        break;
      default:
        cfg.work_cycles = nudge<Value>(cfg.work_cycles, 0, 3, rng);
        break;
    }
    cfg.seed = rng.next();
    return cfg;
}

RacyWorkloadCfg
mutateRacyCfg(const RacyWorkloadCfg &base, Rng &rng)
{
    RacyWorkloadCfg cfg = base;
    switch (rng.below(3)) {
      case 0:
        cfg.procs = nudge<ProcId>(cfg.procs, 2, 4, rng);
        break;
      case 1:
        cfg.locs = nudge<Addr>(cfg.locs, 1, 3, rng);
        break;
      default:
        cfg.ops_per_thread = nudge(cfg.ops_per_thread, 1, 6, rng);
        break;
    }
    cfg.seed = rng.next();
    return cfg;
}

Program
syntheticMix(ProcId procs, Addr data_locs, Addr sync_locs, int ops,
             int sync_pct, Value work_cycles, std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b(strprintf("mix-%d%%sync", sync_pct), procs);
    Value next_value = 1;
    for (ProcId p = 0; p < procs; ++p) {
        auto &t = b.thread(p);
        for (int k = 0; k < ops; ++k) {
            bool is_sync = sync_locs > 0 &&
                           rng.chance(static_cast<std::uint64_t>(sync_pct),
                                      100);
            if (is_sync) {
                Addr a = data_locs + static_cast<Addr>(rng.below(sync_locs));
                switch (rng.below(3)) {
                  case 0:
                    t.syncLoad(static_cast<RegId>(k % 8), a);
                    break;
                  case 1:
                    t.syncStore(a, next_value++);
                    break;
                  default:
                    t.testAndSet(static_cast<RegId>(k % 8), a);
                    break;
                }
            } else {
                Addr a = static_cast<Addr>(rng.below(data_locs));
                if (rng.chance(1, 2))
                    t.load(static_cast<RegId>(k % 8), a);
                else
                    t.store(a, next_value++);
            }
            if (work_cycles > 0)
                t.work(work_cycles);
        }
        t.halt();
    }
    return b.build();
}

} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/sweep_latency.dir/sweep_latency.cc.o"
  "CMakeFiles/sweep_latency.dir/sweep_latency.cc.o.d"
  "sweep_latency"
  "sweep_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

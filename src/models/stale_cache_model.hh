/**
 * @file
 * Figure 1, configurations 3 and 4: cache-based machines whose invalidation
 * (here: update) traffic is not atomic.  Every processor holds a copy of
 * every location.  A write commits to the writer's copy and to memory
 * immediately, and an update message is enqueued, in commit order, towards
 * every other processor; until that message is delivered the other
 * processor keeps reading its stale copy.  This realizes exactly the
 * figure's scenario: "both processors initially have X and Y in their
 * caches, and a processor issues its read before its write is propagated
 * to the cache of the other processor".
 *
 * Each receiving processor consumes its incoming updates in commit order
 * (one queue per receiver), so per-location write serialization is
 * preserved -- the machine is "coherent but not sequentially consistent".
 *
 * Synchronization operations are modelled as heavyweight barriers: they
 * require every update queue in the system to be empty and then act on all
 * copies atomically.  Figure 1 uses none.
 */

#ifndef WO_MODELS_STALE_CACHE_MODEL_HH
#define WO_MODELS_STALE_CACHE_MODEL_HH

#include <string>
#include <vector>

#include "execution/execution.hh"
#include "models/state_enc.hh"
#include "models/thread_ctx.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** Cache-based machine with delayed update propagation. */
class StaleCacheModel
{
  public:
    /** An update travelling towards one processor's cache. */
    struct Update
    {
        Addr addr;
        Value value;
        bool operator==(const Update &other) const = default;
    };

    /** Machine state. */
    struct State
    {
        std::vector<ThreadCtx> threads;
        std::vector<Value> mem;                  // commit-order memory image
        std::vector<std::vector<Value>> copy;    // copy[proc][addr]
        std::vector<std::vector<Update>> inbox;  // per receiving processor
    };

    /**
     * @param prog       the program (must outlive the model)
     * @param max_inbox  pending updates per receiver before writers stall
     */
    explicit StaleCacheModel(const Program &prog, std::size_t max_inbox = 4);

    static const char *name() { return "caches+delayed-inval"; }

    State initial() const;
    bool isFinal(const State &s) const;
    std::vector<State> successors(const State &s) const;
    std::vector<LabeledSucc<State>> labeledSuccessors(const State &s) const;
    Outcome outcome(const State &s) const;
    std::string encode(const State &s) const;

    /** Human-readable state rendering (for witness chains/debugging). */
    std::string dump(const State &s) const;

    /** The bound program. */
    const Program &program() const { return prog_; }

    /**
     * Stores broadcast updates into every other processor's inbox and
     * synchronization barriers wait on every inbox, so any processor that
     * may still write or synchronize conflicts with everyone (the
     * explorer's footprint reduction must not treat its accesses as
     * per-location).
     */
    static constexpr bool stores_broadcast = true;

    /**
     * Pending deliveries update only the receiving processor's private
     * copy, so they expose no cross-processor location footprint.
     */
    void pendingAddrs(const State &, ProcId, std::vector<Addr> &) const {}

  private:
    const Program &prog_;
    std::size_t max_inbox_;
};

} // namespace wo

#endif // WO_MODELS_STALE_CACHE_MODEL_HH

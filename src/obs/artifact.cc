#include "artifact.hh"

#include <cstdio>
#include <thread>

#include "common/logging.hh"
#include "common/table.hh"

namespace wo {

Json
tableToJson(const Table &table)
{
    Json rows = Json::array();
    for (const auto &row : table.rows()) {
        Json obj = Json::object();
        for (std::size_t c = 0;
             c < row.size() && c < table.headers().size(); ++c)
            obj.set(table.headers()[c], Json(row[c]));
        rows.push(std::move(obj));
    }
    return rows;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok && n == text.size())
        return false;
    return ok;
}

std::string
writeBenchArtifact(const std::string &name, Json payload)
{
    if (!payload.isObject()) {
        Json wrapped = Json::object();
        wrapped.set("value", std::move(payload));
        payload = std::move(wrapped);
    }
    Json out = Json::object();
    out.set("bench", name);
    // Every artifact records the machine's hardware concurrency:
    // throughput and scaling numbers are meaningless to compare across
    // commits without knowing whether the boxes matched
    // (scripts/perf_gate.py flags a baseline/fresh topology mismatch).
    out.set("hw_threads",
            Json(std::uint64_t{std::thread::hardware_concurrency()}));
    for (const auto &m : payload.members())
        out.set(m.first, m.second);
    const std::string path = "BENCH_" + name + ".json";
    if (!writeFile(path, out.dump(1) + "\n")) {
        warn("cannot write bench artifact '%s'", path.c_str());
        return "";
    }
    return path;
}

} // namespace wo

#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wo {

namespace {
LogLevel g_level = LogLevel::normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vstrprintf(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

namespace {

void
emit(const char *banner, const char *file, int line, const char *fmt,
     std::va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    if (file)
        std::fprintf(stderr, "%s: %s  @ %s:%d\n", banner, msg.c_str(), file,
                     line);
    else
        std::fprintf(stderr, "%s: %s\n", banner, msg.c_str());
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fflush(stdout); // keep buffered traces ahead of the abort
    std::va_list ap;
    va_start(ap, fmt);
    emit("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
verbose(const char *fmt, ...)
{
    if (g_level != LogLevel::verbose)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

} // namespace wo

/**
 * @file
 * Graphviz (DOT) export of an execution's happens-before structure, in
 * the visual style of the paper's Figure 2: one column ("cluster") per
 * processor in program order, solid po edges, dashed so edges, and races
 * highlighted in red.  Feed the output to `dot -Tsvg` to get the figure.
 */

#ifndef WO_HB_DOT_HH
#define WO_HB_DOT_HH

#include <string>

#include "execution/execution.hh"
#include "hb/happens_before.hh"

namespace wo {

/** Options for the DOT rendering. */
struct DotCfg
{
    HbRelation::SyncFlavor flavor = HbRelation::SyncFlavor::drf0;
    bool mark_races = true; //!< add red edges between racing accesses
    std::string title;      //!< graph label (defaults to nothing)
};

/** Render @p exec as a DOT graph. */
std::string executionToDot(const Execution &exec, const DotCfg &cfg = {});

/**
 * Render @p exec directly as a self-contained SVG -- same figure as
 * executionToDot (one column per processor in program order, solid po
 * arrows, dashed blue so edges, red race edges) without needing
 * graphviz.  The layout is exact because the figure's structure is
 * fixed: processors are columns, program order is the vertical axis.
 * The markup embeds cleanly inline (no XML prolog, no external refs);
 * it is the `.hb.svg` evidence artifact and the per-failure graph in
 * `wotool report`.
 */
std::string executionToSvg(const Execution &exec, const DotCfg &cfg = {});

} // namespace wo

#endif // WO_HB_DOT_HH

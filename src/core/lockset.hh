/**
 * @file
 * A static synchronization model for the "sharing only through monitors"
 * paradigm the paper's conclusion proposes: every shared data location
 * must be protected by a lock, acquired with the canonical TestAndSet
 * spin idioms and released with a synchronization store of 0.
 *
 * The checker is purely static -- no execution enumeration:
 *
 *  1. recognize ACQUIRE(L)/RELEASE(L) regions per thread by pattern
 *     matching the spin idioms (see matchAcquire in the implementation);
 *  2. compute, by a forward dataflow fixpoint over each thread's CFG
 *     (meet = set intersection), the set of locks *definitely held* at
 *     every instruction;
 *  3. for every location accessed by more than one thread with at least
 *     one write, require a common lock held at ALL its accesses (the
 *     static form of the Eraser lockset invariant).
 *
 * Soundness (tested as a property, not proved here): a program certified
 * by this discipline obeys DRF0 -- any two conflicting accesses hold a
 * common lock L, the critical sections of L are totally ordered by so
 * edges through L, and po completes the happens-before chain.  The
 * converse is false: DRF0 admits programs this static fragment rejects
 * (flag handoffs, barriers), which is exactly the trade the paper
 * describes when specializing synchronization models to a paradigm.
 */

#ifndef WO_CORE_LOCKSET_HH
#define WO_CORE_LOCKSET_HH

#include <set>
#include <string>
#include <vector>

#include "program/program.hh"

namespace wo {

/** One static-discipline diagnostic. */
struct LocksetIssue
{
    enum class Kind
    {
        unprotected_access, //!< shared location with no common lock
        naked_sync,         //!< sync op outside a recognized idiom
        release_not_held,   //!< releasing a lock not definitely held
    };
    Kind kind;
    ProcId proc;
    Pc pc;
    Addr addr;
    std::string detail;

    std::string toString(const Program &prog) const;
};

/** Result of the static discipline check. */
struct LocksetResult
{
    bool certified = false; //!< program is in the fragment and race-free
    std::vector<LocksetIssue> issues;
    /** Locks protecting each shared location (for certified programs). */
    std::vector<std::set<Addr>> protection;

    explicit operator bool() const { return certified; }
};

/**
 * Statically certify @p prog under the monitor discipline.
 * Locations touched by only one thread, and locations only ever read,
 * need no protection.
 */
LocksetResult checkLockDiscipline(const Program &prog);

} // namespace wo

#endif // WO_CORE_LOCKSET_HH

#include "sc_checker.hh"

#include <string>
#include <unordered_set>

#include "common/logging.hh"

namespace wo {

namespace {

/** Backtracking search context. */
class Search
{
  public:
    Search(const Execution &exec, const ScCheckerCfg &cfg)
        : exec_(exec), cfg_(cfg), idx_(exec.numProcs(), 0),
          mem_(exec.initialMemory())
    {
    }

    bool
    run(ScCheckResult &out)
    {
        bool ok = dfs(out);
        out.states = states_;
        return ok;
    }

    bool exhausted() const { return exhausted_; }

  private:
    /** Can the next op of processor @p p be appended to the order now? */
    bool
    enabled(ProcId p, const MemoryOp *&op) const
    {
        const auto &po = exec_.procOps(p);
        if (idx_[p] >= po.size())
            return false;
        op = &exec_.op(po[idx_[p]]);
        // A read (or the read half of an rmw) must see the current value.
        if (op->isRead() && mem_[op->addr] != op->value_read)
            return false;
        return true;
    }

    /** Serialize the search state for memoization. */
    std::string
    key() const
    {
        std::string k;
        k.reserve(idx_.size() * 4 + mem_.size() * 8);
        for (auto i : idx_)
            k.append(reinterpret_cast<const char *>(&i), sizeof(i));
        for (auto v : mem_)
            k.append(reinterpret_cast<const char *>(&v), sizeof(v));
        return k;
    }

    bool
    allDone() const
    {
        for (ProcId p = 0; p < exec_.numProcs(); ++p)
            if (idx_[p] < exec_.procOps(p).size())
                return false;
        return true;
    }

    bool
    dfs(ScCheckResult &out)
    {
        if (cfg_.max_states && states_ >= cfg_.max_states) {
            exhausted_ = true;
            return false;
        }
        ++states_;
        if (allDone()) {
            if (cfg_.expected_final && mem_ != *cfg_.expected_final)
                return false;
            return true;
        }
        // Memoize only failing states; the first success unwinds the stack.
        std::string k = key();
        if (failed_.count(k))
            return false;

        for (ProcId p = 0; p < exec_.numProcs(); ++p) {
            const MemoryOp *op = nullptr;
            if (!enabled(p, op))
                continue;
            const Value saved = mem_[op->addr];
            if (op->isWrite())
                mem_[op->addr] = op->value_written;
            ++idx_[p];
            out.witness.push_back(op->id);
            if (dfs(out))
                return true;
            out.witness.pop_back();
            --idx_[p];
            mem_[op->addr] = saved;
        }
        failed_.insert(std::move(k));
        return false;
    }

    const Execution &exec_;
    const ScCheckerCfg &cfg_;
    std::vector<std::size_t> idx_;
    std::vector<Value> mem_;
    std::unordered_set<std::string> failed_;
    std::uint64_t states_ = 0;
    bool exhausted_ = false;
};

} // namespace

ScCheckResult
checkSequentialConsistency(const Execution &exec, const ScCheckerCfg &cfg)
{
    ScCheckResult result;
    // Cheap screen: reads of values nobody wrote can never be SC.
    std::string why;
    if (!exec.valuesPlausible(&why)) {
        result.sc = false;
        return result;
    }
    Search search(exec, cfg);
    result.sc = search.run(result);
    result.exhausted = search.exhausted();
    if (!result.sc)
        result.witness.clear();
    return result;
}

bool
isSequentiallyConsistent(const Execution &exec)
{
    return checkSequentialConsistency(exec).sc;
}

} // namespace wo

# Empty compiler generated dependencies file for sc_test.
# This may be replaced when dependencies are built.

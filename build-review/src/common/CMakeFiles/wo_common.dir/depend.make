# Empty dependencies file for wo_common.
# This may be replaced when dependencies are built.

#include "fig2.hh"

namespace wo {
namespace fig2 {

Execution
executionA()
{
    // Two independent synchronization chains, one through location a
    // ordering all accesses to x, one through location b ordering all
    // accesses to y.  Append order is the (idealized) completion order.
    Execution e(6, 5);
    // x chain: P0 writes x, hands off through S(a) to P1 which reads x and
    // hands off again to P2 which overwrites x.
    e.append(0, loc_x, AccessKind::data_write, 0, 1); // P0 W(x)
    e.append(0, loc_a, AccessKind::sync_rmw, 0, 1);   // P0 S(a)
    e.append(1, loc_a, AccessKind::sync_rmw, 1, 2);   // P1 S(a)
    e.append(1, loc_x, AccessKind::data_read, 1, 0);  // P1 R(x)
    e.append(1, loc_a, AccessKind::sync_rmw, 2, 3);   // P1 S(a)
    e.append(2, loc_a, AccessKind::sync_rmw, 3, 4);   // P2 S(a)
    e.append(2, loc_x, AccessKind::data_write, 0, 2); // P2 W(x)
    // y chain: symmetric through location b on processors P3, P4, P5.
    e.append(3, loc_y, AccessKind::data_write, 0, 1); // P3 W(y)
    e.append(3, loc_b, AccessKind::sync_rmw, 0, 1);   // P3 S(b)
    e.append(4, loc_b, AccessKind::sync_rmw, 1, 2);   // P4 S(b)
    e.append(4, loc_y, AccessKind::data_read, 1, 0);  // P4 R(y)
    e.append(4, loc_b, AccessKind::sync_rmw, 2, 3);   // P4 S(b)
    e.append(5, loc_b, AccessKind::sync_rmw, 3, 4);   // P5 S(b)
    e.append(5, loc_y, AccessKind::data_write, 0, 2); // P5 W(y)
    return e;
}

Execution
executionB()
{
    Execution e(5, 5);
    // P0 reads and writes y with no synchronization at all.
    e.append(0, loc_y, AccessKind::data_read, 0, 0);  // P0 R(y)
    e.append(0, loc_y, AccessKind::data_write, 0, 7); // P0 W(y)
    // P1 synchronizes on a -- but nobody else touches a, so its write of y
    // is unordered with P0's accesses: the first family of races.
    e.append(1, loc_a, AccessKind::sync_rmw, 0, 1);   // P1 S(a)
    e.append(1, loc_y, AccessKind::data_write, 0, 8); // P1 W(y)
    // P2 writes z and then synchronizes on b; P3 synchronizes on b and
    // reads z -- that pair IS ordered and is not a race.
    e.append(2, loc_z, AccessKind::data_write, 0, 5); // P2 W(z)
    e.append(2, loc_b, AccessKind::sync_rmw, 0, 1);   // P2 S(b)
    e.append(3, loc_b, AccessKind::sync_rmw, 1, 2);   // P3 S(b)
    e.append(3, loc_z, AccessKind::data_read, 5, 0);  // P3 R(z)
    // P4 writes z with no synchronization: unordered with P2's write of z,
    // the second family of races.
    e.append(4, loc_z, AccessKind::data_write, 0, 6); // P4 W(z)
    return e;
}

} // namespace fig2
} // namespace wo

#include "program.hh"

#include "common/logging.hh"

namespace wo {

const Instruction &
ThreadCode::at(Pc pc) const
{
    wo_assert(pc < code.size(), "pc %u out of range (%zu instructions)", pc,
              code.size());
    return code[pc];
}

Program::Program(std::string name, std::vector<ThreadCode> threads,
                 Addr num_locations, Value initial)
    : name_(std::move(name)), threads_(std::move(threads)),
      num_locations_(num_locations), initials_(num_locations, initial),
      loc_names_(num_locations)
{
    validate();
}

Value
Program::initialValue(Addr a) const
{
    wo_assert(a < num_locations_, "location %u out of range", a);
    return initials_[a];
}

void
Program::setInitial(Addr a, Value v)
{
    wo_assert(a < num_locations_, "location %u out of range", a);
    initials_[a] = v;
}

const ThreadCode &
Program::thread(ProcId p) const
{
    wo_assert(p < threads_.size(), "thread %u out of range", p);
    return threads_[p];
}

void
Program::nameLocation(Addr a, std::string name)
{
    wo_assert(a < num_locations_, "location %u out of range", a);
    loc_names_[a] = std::move(name);
}

std::string
Program::locationName(Addr a) const
{
    if (a < loc_names_.size() && !loc_names_[a].empty())
        return loc_names_[a];
    return strprintf("[%u]", a);
}

std::size_t
Program::staticSize() const
{
    std::size_t n = 0;
    for (const auto &t : threads_)
        n += t.code.size();
    return n;
}

std::string
Program::toString() const
{
    std::string out = strprintf("program %s: %u threads, %u locations\n",
                                name_.c_str(),
                                static_cast<unsigned>(threads_.size()),
                                num_locations_);
    for (ProcId p = 0; p < numThreads(); ++p) {
        out += strprintf("  P%u:\n", p);
        const ThreadCode &t = threads_[p];
        for (Pc pc = 0; pc < t.size(); ++pc)
            out += strprintf("    %3u: %s\n", pc, t.at(pc).toString().c_str());
    }
    return out;
}

void
Program::validate() const
{
    if (threads_.empty())
        wo_fatal("program '%s' has no threads", name_.c_str());
    for (std::size_t p = 0; p < threads_.size(); ++p) {
        const ThreadCode &t = threads_[p];
        if (t.code.empty() || t.code.back().op != Opcode::halt)
            wo_fatal("program '%s' thread %zu does not end in HALT",
                     name_.c_str(), p);
        for (Pc pc = 0; pc < t.size(); ++pc) {
            const Instruction &i = t.at(pc);
            if (i.accessesMemory() && i.addr >= num_locations_)
                wo_fatal("program '%s' P%zu@%u: address %u out of range",
                         name_.c_str(), p, pc, i.addr);
            if (i.dst >= num_regs || i.src >= num_regs || i.src2 >= num_regs)
                wo_fatal("program '%s' P%zu@%u: register out of range",
                         name_.c_str(), p, pc);
            if ((i.op == Opcode::branch_eq || i.op == Opcode::branch_ne ||
                 i.op == Opcode::jump) &&
                i.target >= t.size())
                wo_fatal("program '%s' P%zu@%u: branch target %u out of range",
                         name_.c_str(), p, pc, i.target);
            if (i.op == Opcode::delay && i.imm < 0)
                wo_fatal("program '%s' P%zu@%u: negative delay", name_.c_str(),
                         p, pc);
        }
    }
}

} // namespace wo

/**
 * @file
 * Structural validator for the Chrome trace-event JSON the trace sink
 * emits.  Used by the test suite to prove exported traces round-trip
 * (write -> parse -> check) and available to tooling that wants to
 * sanity-check a trace file before shipping it to Perfetto.
 */

#ifndef WO_OBS_VALIDATE_HH
#define WO_OBS_VALIDATE_HH

#include <cstdint>
#include <string>

namespace wo {

/** Outcome of validating a Chrome trace-event document. */
struct TraceValidation
{
    bool ok = false;
    std::string error;            //!< first problem found when !ok
    std::uint64_t events = 0;     //!< trace events examined
    std::uint64_t complete = 0;   //!< ph == "X" events
    std::uint64_t instants = 0;   //!< ph == "i" events
    std::uint64_t metadata = 0;   //!< ph == "M" events
    std::uint64_t counters = 0;   //!< ph == "C" events (counter tracks)
};

/**
 * Parse @p text and check the trace-event contract: a top-level object
 * with a "traceEvents" array whose members carry a string "ph", string
 * "name", and (for non-metadata phases) numeric "ts"/"pid"/"tid", with
 * a non-negative "dur" on complete events and a numeric-valued "args"
 * object on counter events.
 */
TraceValidation validateChromeTrace(const std::string &text);

} // namespace wo

#endif // WO_OBS_VALIDATE_HH

/**
 * @file
 * Experiment E13 -- scalability with processor count.  Figure 1's framing
 * is that "as potential for parallelism is increased, sequential
 * consistency imposes greater constraints on hardware, thereby limiting
 * performance": with more processors contending, the cost of SC's
 * serialization compounds, while the weak designs keep only the
 * synchronization-point costs.  Sweeps both a contended (one lock) and a
 * partitioned (one lock per region) workload.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/litmus.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    System sys(p, cfg);
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

Table
contended()
{
    std::printf("== E13a: one contended lock, 2 increments per processor "
                "==\n");
    Table t({"procs", "SC", "WO-Def1", "WO-DRF0", "WO-DRF0+RO",
             "DRF0+RO vs SC"});
    for (ProcId procs : {2, 4, 8, 12, 16}) {
        Program p = litmus::lockedCounter(procs, 2);
        Tick sc = run(p, OrderingPolicy::sc);
        Tick d1 = run(p, OrderingPolicy::wo_def1);
        Tick dn = run(p, OrderingPolicy::wo_drf0);
        Tick ro = run(p, OrderingPolicy::wo_drf0_ro);
        t.addRow({strprintf("%u", procs),
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  strprintf("%llu", (unsigned long long)ro),
                  ro ? strprintf("%.2fx", (double)sc / (double)ro) : "-"});
    }
    t.print();
    std::printf("\n");
    return t;
}

Table
partitioned()
{
    std::printf("== E13b: partitioned workload (one lock per region, one "
                "region per processor) ==\n");
    Table t({"procs", "SC", "WO-Def1", "WO-DRF0", "DRF0 vs SC"});
    for (ProcId procs : {2, 4, 8, 12}) {
        Drf0WorkloadCfg wl;
        wl.procs = procs;
        wl.regions = procs;
        wl.locs_per_region = 2;
        wl.private_locs = 2;
        wl.sections = 3;
        wl.ops_per_section = 4;
        wl.private_ops = 2;
        wl.seed = 7;
        Program p = randomDrf0Program(wl);
        Tick sc = run(p, OrderingPolicy::sc);
        Tick d1 = run(p, OrderingPolicy::wo_def1);
        Tick dn = run(p, OrderingPolicy::wo_drf0);
        t.addRow({strprintf("%u", procs),
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  dn ? strprintf("%.2fx", (double)sc / (double)dn) : "-"});
    }
    t.print();
    std::printf("Read: with little lock contention the weak designs' "
                "advantage persists as processors scale; under heavy "
                "contention the lock itself dominates every design.\n");
    return t;
}

} // namespace
} // namespace wo

int
main()
{
    wo::Json payload = wo::Json::object();
    payload.set("contended", wo::tableToJson(wo::contended()));
    payload.set("partitioned", wo::tableToJson(wo::partitioned()));
    wo::writeBenchArtifact("sweep_procs", std::move(payload));
    return 0;
}

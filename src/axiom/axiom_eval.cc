#include "axiom/axiom_eval.hh"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "program/instruction.hh"

namespace wo {
namespace {

/** One dynamic memory event of a candidate execution. */
struct Event
{
    bool is_read = false;
    bool is_write = false;
    bool is_sync = false;
    Addr addr = invalid_addr;
    Value value_read = 0;
    Value value_written = 0;
};

/** One symbolic unfolding of a thread: its events and final registers. */
struct Unfolding
{
    std::vector<Event> events;
    std::array<Value, num_regs> regs{};
};

/**
 * Enumerate every unfolding of one thread where each memory read is free
 * to return any value of @p universe.  The interpreter here is written
 * from the IR spec (program/instruction.hh) on purpose -- it must not
 * share code with the operational models' thread_ctx machinery, so the
 * two engines can act as independent witnesses.
 */
class Unfolder
{
  public:
    Unfolder(const ThreadCode &code, const std::vector<Value> &universe,
             const AxiomCfg &cfg, AxiomResult &res)
        : code_(code), universe_(universe), cfg_(cfg), res_(res)
    {
    }

    bool
    run(std::vector<Unfolding> &out)
    {
        out_ = &out;
        std::array<Value, num_regs> regs{};
        return walk(0, regs, {}, 0);
    }

  private:
    bool
    fail(const char *why)
    {
        res_.conclusive = false;
        if (res_.why_inconclusive.empty())
            res_.why_inconclusive = why;
        return false;
    }

    bool
    walk(Pc pc, std::array<Value, num_regs> regs, std::vector<Event> events,
         std::uint64_t steps)
    {
        for (;;) {
            if (++steps > cfg_.max_steps)
                return fail("unfolding exceeded max_steps (program loops?)");
            if (pc >= code_.size())
                return record(regs, events);
            const Instruction &in = code_.at(pc);
            switch (in.op) {
            case Opcode::mov_imm:
                regs[in.dst] = in.imm;
                ++pc;
                break;
            case Opcode::add:
                regs[in.dst] = regs[in.src] + regs[in.src2];
                ++pc;
                break;
            case Opcode::add_imm:
                regs[in.dst] = regs[in.src] + in.imm;
                ++pc;
                break;
            case Opcode::branch_eq:
                pc = (regs[in.src] == in.imm) ? in.target : pc + 1;
                break;
            case Opcode::branch_ne:
                pc = (regs[in.src] != in.imm) ? in.target : pc + 1;
                break;
            case Opcode::jump:
                pc = in.target;
                break;
            case Opcode::delay:
                ++pc;
                break;
            case Opcode::halt:
                return record(regs, events);
            case Opcode::store_data:
            case Opcode::sync_store: {
                Event e;
                e.is_write = true;
                e.is_sync = in.op == Opcode::sync_store;
                e.addr = in.addr;
                e.value_written = in.use_imm ? in.imm : regs[in.src];
                events.push_back(e);
                ++pc;
                break;
            }
            case Opcode::load_data:
            case Opcode::sync_load: {
                // Branch point: the read may return any universe value.
                for (Value v : universe_) {
                    auto r = regs;
                    r[in.dst] = v;
                    auto ev = events;
                    Event e;
                    e.is_read = true;
                    e.is_sync = in.op == Opcode::sync_load;
                    e.addr = in.addr;
                    e.value_read = v;
                    ev.push_back(e);
                    if (!walk(pc + 1, r, std::move(ev), steps))
                        return false;
                }
                return true;
            }
            case Opcode::test_and_set: {
                for (Value v : universe_) {
                    auto r = regs;
                    r[in.dst] = v;
                    auto ev = events;
                    Event e;
                    e.is_read = true;
                    e.is_write = true;
                    e.is_sync = true;
                    e.addr = in.addr;
                    e.value_read = v;
                    e.value_written = 1;
                    ev.push_back(e);
                    if (!walk(pc + 1, r, std::move(ev), steps))
                        return false;
                }
                return true;
            }
            }
        }
    }

    bool
    record(const std::array<Value, num_regs> &regs,
           std::vector<Event> &events)
    {
        if (out_->size() >= cfg_.max_unfoldings)
            return fail("thread exceeded max_unfoldings");
        Unfolding u;
        u.events = std::move(events);
        u.regs = regs;
        out_->push_back(std::move(u));
        return true;
    }

    const ThreadCode &code_;
    const std::vector<Value> &universe_;
    const AxiomCfg &cfg_;
    AxiomResult &res_;
    std::vector<Unfolding> *out_ = nullptr;
};

/** Judge one candidate execution (one unfolding per thread). */
class Judge
{
  public:
    Judge(const std::vector<const Unfolding *> &cand,
          const std::vector<Value> &init, const AxiomCfg &cfg,
          AxiomResult &res)
        : cand_(cand), init_(init), cfg_(cfg), res_(res)
    {
    }

    /** @return false iff the judgement budget tripped. */
    bool
    run()
    {
        // Flatten events into nodes; record program-order chains.
        for (std::size_t t = 0; t < cand_.size(); ++t)
            for (std::size_t i = 0; i < cand_[t]->events.size(); ++i) {
                nodes_.push_back(&cand_[t]->events[i]);
                node_thread_.push_back(t);
                node_index_.push_back(i);
            }
        const int n = static_cast<int>(nodes_.size());
        for (int v = 0; v < n; ++v) {
            const Event &e = *nodes_[v];
            if (e.is_write)
                writes_of_[e.addr].push_back(v);
            if (e.is_read)
                reads_.push_back(v);
        }
        // reads-from candidates: same location, matching value (or the
        // initial image, encoded as node -1).
        rf_choice_.resize(reads_.size());
        for (std::size_t i = 0; i < reads_.size(); ++i) {
            const Event &r = *nodes_[reads_[i]];
            if (r.value_read == initValue(r.addr))
                rf_choice_[i].push_back(-1);
            for (int w : writes_of_[r.addr])
                if (w != reads_[i] &&
                    nodes_[w]->value_written == r.value_read)
                    rf_choice_[i].push_back(w);
            if (rf_choice_[i].empty())
                return true; // value infeasible; candidate contributes nothing
        }
        // Per-location write orders: all permutations, budget-gated.
        for (auto &[addr, ws] : writes_of_) {
            std::vector<std::vector<int>> perms;
            std::vector<int> p = ws;
            std::sort(p.begin(), p.end());
            do {
                perms.push_back(p);
                if (perms.size() > 5'040) { // 7! -- far beyond litmus scale
                    res_.conclusive = false;
                    if (res_.why_inconclusive.empty())
                        res_.why_inconclusive =
                            "too many writes to one location";
                    return false;
                }
            } while (std::next_permutation(p.begin(), p.end()));
            ws_addrs_.push_back(addr);
            ws_perms_.push_back(std::move(perms));
        }
        return enumRf(0);
    }

  private:
    Value
    initValue(Addr a) const
    {
        return a < init_.size() ? init_[a] : 0;
    }

    bool
    enumRf(std::size_t i)
    {
        if (i == reads_.size())
            return enumWs(0);
        for (int w : rf_choice_[i]) {
            rf_.resize(reads_.size());
            rf_[i] = w;
            if (!enumRf(i + 1))
                return false;
        }
        return true;
    }

    bool
    enumWs(std::size_t a)
    {
        if (a == ws_addrs_.size())
            return judge();
        for (const auto &perm : ws_perms_[a]) {
            ws_order_.resize(ws_addrs_.size());
            ws_order_[a] = &perm;
            if (!enumWs(a + 1))
                return false;
        }
        return true;
    }

    bool
    judge()
    {
        if (++res_.judgements > cfg_.max_judgements) {
            res_.conclusive = false;
            if (res_.why_inconclusive.empty())
                res_.why_inconclusive = "judgement budget exceeded";
            return false;
        }
        const int n = static_cast<int>(nodes_.size());
        // Position of each write in its location's chosen order.
        std::vector<int> ws_pos(n, -1);
        for (std::size_t a = 0; a < ws_addrs_.size(); ++a)
            for (std::size_t k = 0; k < ws_order_[a]->size(); ++k)
                ws_pos[(*ws_order_[a])[k]] = static_cast<int>(k);
        // RMW atomicity: the rmw's own write must immediately follow the
        // write it read from in the coherence order.
        for (std::size_t i = 0; i < reads_.size(); ++i) {
            int r = reads_[i];
            if (!nodes_[r]->is_write)
                continue;
            int expect = rf_[i] < 0 ? 0 : ws_pos[rf_[i]] + 1;
            if (ws_pos[r] != expect)
                return true; // inconsistent assignment; try the next
        }
        // Build po U rf U ws U fr and check acyclicity.
        std::vector<std::vector<int>> adj(n);
        std::vector<int> indeg(n, 0);
        auto edge = [&](int u, int v) {
            if (u == v)
                return;
            adj[u].push_back(v);
            ++indeg[v];
        };
        int prev = -1;
        for (int v = 0; v < n; ++v) { // po: nodes are in (thread, index) order
            if (prev >= 0 && node_thread_[prev] == node_thread_[v])
                edge(prev, v);
            prev = v;
        }
        for (std::size_t a = 0; a < ws_addrs_.size(); ++a)
            for (std::size_t k = 1; k < ws_order_[a]->size(); ++k)
                edge((*ws_order_[a])[k - 1], (*ws_order_[a])[k]);
        for (std::size_t i = 0; i < reads_.size(); ++i) {
            int r = reads_[i];
            if (rf_[i] >= 0)
                edge(rf_[i], r);
            if (cfg_.inject_bug)
                continue; // test hook: drop fr, admitting non-SC outcomes
            // fr: the read precedes the write that overwrites its source.
            const auto &order = orderOf(nodes_[r]->addr);
            std::size_t next = rf_[i] < 0 ? 0 : ws_pos[rf_[i]] + 1;
            if (next < order.size())
                edge(r, order[next]);
        }
        // Kahn's algorithm: all nodes drain iff the graph is acyclic.
        std::vector<int> queue;
        for (int v = 0; v < n; ++v)
            if (indeg[v] == 0)
                queue.push_back(v);
        int drained = 0;
        while (!queue.empty()) {
            int v = queue.back();
            queue.pop_back();
            ++drained;
            for (int w : adj[v])
                if (--indeg[w] == 0)
                    queue.push_back(w);
        }
        if (drained != n)
            return true; // cyclic: not an SC execution
        ++res_.consistent;
        // Outcome: final registers per thread, final memory from the last
        // write in each location's coherence order.
        Outcome o;
        o.regs.reserve(cand_.size());
        for (const Unfolding *u : cand_)
            o.regs.emplace_back(u->regs.begin(), u->regs.end());
        o.memory.assign(init_.begin(), init_.end());
        for (std::size_t a = 0; a < ws_addrs_.size(); ++a)
            if (!ws_order_[a]->empty())
                o.memory[ws_addrs_[a]] =
                    nodes_[ws_order_[a]->back()]->value_written;
        res_.outcomes.insert(std::move(o));
        return true;
    }

    const std::vector<int> &
    orderOf(Addr a) const
    {
        for (std::size_t i = 0; i < ws_addrs_.size(); ++i)
            if (ws_addrs_[i] == a)
                return *ws_order_[i];
        static const std::vector<int> empty;
        return empty;
    }

    const std::vector<const Unfolding *> &cand_;
    const std::vector<Value> &init_;
    const AxiomCfg &cfg_;
    AxiomResult &res_;

    std::vector<const Event *> nodes_;
    std::vector<std::size_t> node_thread_;
    std::vector<std::size_t> node_index_;
    std::map<Addr, std::vector<int>> writes_of_;
    std::vector<int> reads_;
    std::vector<std::vector<int>> rf_choice_;
    std::vector<int> rf_;
    std::vector<Addr> ws_addrs_;
    std::vector<std::vector<std::vector<int>>> ws_perms_;
    std::vector<const std::vector<int> *> ws_order_;
};

} // namespace

AxiomResult
axiomScOutcomes(const Program &prog, const AxiomCfg &cfg)
{
    AxiomResult res;
    std::vector<Value> init = prog.initialMemory();
    init.resize(prog.numLocations(), 0);

    // Fixed-point value universe: seed with the initial image, then add
    // every value any unfolding can write until nothing new appears.
    std::vector<Value> universe(init.begin(), init.end());
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());

    std::vector<std::vector<Unfolding>> unfoldings;
    for (;;) {
        unfoldings.assign(prog.numThreads(), {});
        for (ProcId t = 0; t < prog.numThreads(); ++t) {
            Unfolder u(prog.thread(t), universe, cfg, res);
            if (!u.run(unfoldings[t]))
                return res;
        }
        std::vector<Value> next = universe;
        for (const auto &per_thread : unfoldings)
            for (const auto &u : per_thread)
                for (const auto &e : u.events)
                    if (e.is_write)
                        next.push_back(e.value_written);
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        if (next == universe)
            break;
        if (next.size() > cfg.max_universe) {
            res.conclusive = false;
            res.why_inconclusive = "value universe did not converge";
            return res;
        }
        universe = std::move(next);
    }

    // Odometer over one unfolding per thread.
    std::vector<std::size_t> pick(prog.numThreads(), 0);
    for (;;) {
        std::vector<const Unfolding *> cand;
        cand.reserve(prog.numThreads());
        for (ProcId t = 0; t < prog.numThreads(); ++t)
            cand.push_back(&unfoldings[t][pick[t]]);
        ++res.candidates;
        Judge judge(cand, init, cfg, res);
        if (!judge.run())
            return res;
        ProcId t = 0;
        for (; t < prog.numThreads(); ++t) {
            if (++pick[t] < unfoldings[t].size())
                break;
            pick[t] = 0;
        }
        if (t == prog.numThreads())
            break;
    }
    return res;
}

} // namespace wo

/**
 * @file
 * An in-order processor executing one thread of the program IR against its
 * private cache, under a pluggable ordering policy.
 *
 * Timing model: local instructions take one cycle; `delay k` takes k
 * cycles; loads block until their value commits (in-order use of the
 * destination register); stores are fire-and-forget under the weak
 * policies and fully blocking under SC; synchronization operations block
 * per policy (see policy.hh).  The processor retires operations in program
 * order into the shared Execution and records per-operation timing for the
 * Figure-3 analyses.
 */

#ifndef WO_SYS_CPU_HH
#define WO_SYS_CPU_HH

#include <map>
#include <vector>

#include "coherence/cache.hh"
#include "common/stats.hh"
#include "event/event_queue.hh"
#include "execution/execution.hh"
#include "program/program.hh"
#include "sys/policy.hh"

namespace wo {

/** Timing record of one dynamic memory operation. */
struct OpTiming
{
    ProcId proc;
    Pc pc;                 //!< static instruction
    AccessKind kind;
    Addr addr;
    Tick reached;          //!< processor arrived at the instruction
    Tick issued;           //!< request handed to the cache
    Tick committed;        //!< commit point (paper's definition)
    Tick performed;        //!< globally performed
};

/** Processor configuration. */
struct CpuCfg
{
    /**
     * Memory-level parallelism: maximum accesses outstanding (issued but
     * not globally performed) at once; 0 = unlimited.  Models the finite
     * miss-handling resources (lockup-free cache MSHRs, write buffer
     * depth) whose cost/benefit the paper's introduction discusses.
     */
    int max_outstanding = 0;
};

/** One processor. */
class Cpu : public CacheClient
{
  public:
    /**
     * @param id      processor id
     * @param prog    the program (must outlive the cpu)
     * @param eq      event queue
     * @param policy  ordering policy
     * @param exec    shared execution trace (retired ops appended here)
     * @param cfg     processor knobs
     */
    Cpu(ProcId id, const Program &prog, EventQueue &eq,
        OrderingPolicy policy, Execution *exec, const CpuCfg &cfg = {});

    /** Late-bind the cache (construction order). */
    void attachCache(Cache *cache) { cache_ = cache; }

    /** Schedule the first step. */
    void boot();

    /** Thread finished. */
    bool halted() const { return halted_; }

    /** Tick at which the thread halted. */
    Tick finishTick() const { return finish_tick_; }

    /** Current program counter (the instruction being waited on). */
    Pc pc() const { return pc_; }

    /** Register file (final values once halted). */
    const std::array<Value, num_regs> &regs() const { return regs_; }

    /** Per-operation timing records, in program order. */
    const std::vector<OpTiming> &timings() const { return timings_; }

    /** Statistics (stall cycles by cause, operation counts). */
    const StatGroup &stats() const { return stats_; }

    // CacheClient interface.
    void onCommit(std::uint64_t id, Value read_value) override;
    void onGloballyPerformed(std::uint64_t id) override;

  private:
    /** An issued request the processor still tracks. */
    struct Pending
    {
        Pc pc = 0;
        std::size_t timing_idx = 0;
        bool committed = false;
        bool performed = false;
        bool retired = false;
        bool blocks_pipeline = false; //!< cpu waits on this request
        bool wait_performed = false;  //!< wait extends to globally performed
        bool is_sync = false;
        RegId dst = 0;        //!< register receiving a read value
        bool has_read = false;
        AccessKind kind = AccessKind::data_read;
        Addr addr = invalid_addr;
        Value wvalue = 0;
        Value rvalue = 0;
    };

    /** Main sequencing step: try to execute the instruction at pc. */
    void step();

    /** Schedule step() if not already scheduled. */
    void wake(Tick delay);

    /** Policy: may the access at the current pc issue now? */
    bool canIssue(const Instruction &inst) const;

    /** Policy: must the cpu block until this access commits/performs? */
    bool blocksUntilCommit(const Instruction &inst) const;
    bool blocksUntilPerformed(const Instruction &inst) const;

    /** Any issued access not yet globally performed? */
    bool anyOutstanding() const;

    /** Number of accesses issued but not yet globally performed. */
    int countOutstanding() const;

    /** Retire committed requests in program order into the execution. */
    void retire();

    /** Drop a request once committed, performed and retired. */
    void cleanup(std::uint64_t id);

    ProcId id_;
    const Program &prog_;
    const ThreadCode &code_;
    EventQueue &eq_;
    OrderingPolicy policy_;
    Execution *exec_;
    CpuCfg cfg_;
    Cache *cache_ = nullptr;

    Pc pc_ = 0;
    std::array<Value, num_regs> regs_{};
    bool halted_ = false;
    Tick finish_tick_ = 0;
    bool step_scheduled_ = false;
    bool waiting_issue_ = false;   //!< blocked on a policy issue condition
    bool issue_wait_mlp_ = false;  //!< last failed gate was max_outstanding
    Tick wait_started_ = 0;
    std::uint64_t blocked_on_ = 0; //!< request id the pipeline waits on
    bool blocked_ = false;
    Tick block_started_ = 0;

    std::uint64_t next_req_ = 1;
    std::map<std::uint64_t, Pending> pending_;
    // Retirement: program-order list of request ids; retire_pos_ is the
    // first not-yet-retired entry.
    std::vector<std::uint64_t> retire_queue_;
    std::size_t retire_pos_ = 0;
    std::vector<OpTiming> timings_;
    StatGroup stats_;
};

} // namespace wo

#endif // WO_SYS_CPU_HH

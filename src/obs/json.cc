#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace wo {

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::object;
    return j;
}

double
Json::numberValue() const
{
    switch (kind_) {
      case Kind::unsigned_number:
        return static_cast<double>(u64_);
      case Kind::signed_number:
        return static_cast<double>(i64_);
      case Kind::double_number:
        return dbl_;
      default:
        return 0.0;
    }
}

std::uint64_t
Json::uintValue() const
{
    switch (kind_) {
      case Kind::unsigned_number:
        return u64_;
      case Kind::signed_number:
        return i64_ < 0 ? 0 : static_cast<std::uint64_t>(i64_);
      case Kind::double_number:
        return dbl_ < 0 ? 0 : static_cast<std::uint64_t>(dbl_);
      default:
        return 0;
    }
}

void
Json::push(Json v)
{
    wo_assert(kind_ == Kind::array, "push on non-array json value");
    items_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    wo_assert(kind_ == Kind::object, "set on non-object json value");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    for (auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

void
jsonEscape(std::string &out, const std::string &text)
{
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(indent > 0 ? indent * (depth + 1) : 0, ' ');
    const std::string close_pad(indent > 0 ? indent * depth : 0, ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::null:
        out += "null";
        return;
      case Kind::boolean:
        out += bool_ ? "true" : "false";
        return;
      case Kind::unsigned_number:
        out += strprintf("%llu", static_cast<unsigned long long>(u64_));
        return;
      case Kind::signed_number:
        out += strprintf("%lld", static_cast<long long>(i64_));
        return;
      case Kind::double_number:
        if (std::isfinite(dbl_)) {
            out += strprintf("%.17g", dbl_);
        } else {
            // JSON has no inf/nan; null is the conventional stand-in.
            out += "null";
        }
        return;
      case Kind::string:
        out += '"';
        jsonEscape(out, str_);
        out += '"';
        return;
      case Kind::array:
        if (items_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < items_.size(); ++i) {
            out += pad;
            items_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        return;
      case Kind::object:
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += pad;
            out += '"';
            jsonEscape(out, members_[i].first);
            out += indent > 0 ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        return;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/**
 * Strict recursive-descent JSON parser over an in-memory buffer.  The
 * input is a string_view so callers scanning a large buffer (the
 * campaign journal replays millions of lines) can parse each line in
 * place without copying it out first.
 */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonParseResult run()
    {
        JsonParseResult r;
        skipWs();
        if (!parseValue(r.value)) {
            r.error = error_;
            r.offset = pos_;
            return r;
        }
        skipWs();
        if (pos_ != text_.size()) {
            r.error = "trailing characters after document";
            r.offset = pos_;
            return r;
        }
        r.ok = true;
        return r;
    }

  private:
    bool fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word, Json v, Json &out)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail(strprintf("expected '%s'", word));
        pos_ += n;
        out = std::move(v);
        return true;
    }

    bool parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      return fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text_[pos_++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= h - '0';
                      else if (h >= 'a' && h <= 'f')
                          cp |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F')
                          cp |= h - 'A' + 10;
                      else
                          return fail("bad \\u escape digit");
                  }
                  // UTF-8 encode the basic-multilingual-plane code point;
                  // surrogate pairs are not needed by anything we emit.
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xc0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (cp >> 12));
                      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start + (negative ? 1 : 0))
            return fail("malformed number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        // Number literals are tiny (SSO): this copy exists only to get
        // a NUL terminator for strto*.
        const std::string lit(text_.substr(start, pos_ - start));
        if (integral && !negative) {
            out = Json(static_cast<std::uint64_t>(
                std::strtoull(lit.c_str(), nullptr, 10)));
        } else if (integral) {
            out = Json(static_cast<std::int64_t>(
                std::strtoll(lit.c_str(), nullptr, 10)));
        } else {
            out = Json(std::strtod(lit.c_str(), nullptr));
        }
        return true;
    }

    bool parseValue(Json &out)
    {
        if (++depth_ > max_depth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        bool ok = false;
        switch (text_[pos_]) {
          case 'n':
            ok = literal("null", Json(), out);
            break;
          case 't':
            ok = literal("true", Json(true), out);
            break;
          case 'f':
            ok = literal("false", Json(false), out);
            break;
          case '"': {
              std::string s;
              ok = parseString(s);
              if (ok)
                  out = Json(std::move(s));
              break;
          }
          case '[': {
              ++pos_;
              out = Json::array();
              skipWs();
              if (pos_ < text_.size() && text_[pos_] == ']') {
                  ++pos_;
                  ok = true;
                  break;
              }
              while (true) {
                  Json item;
                  if (!parseValue(item))
                      return false;
                  out.push(std::move(item));
                  skipWs();
                  if (pos_ < text_.size() && text_[pos_] == ',') {
                      ++pos_;
                      continue;
                  }
                  if (pos_ < text_.size() && text_[pos_] == ']') {
                      ++pos_;
                      ok = true;
                      break;
                  }
                  return fail("expected ',' or ']' in array");
              }
              break;
          }
          case '{': {
              ++pos_;
              out = Json::object();
              skipWs();
              if (pos_ < text_.size() && text_[pos_] == '}') {
                  ++pos_;
                  ok = true;
                  break;
              }
              while (true) {
                  skipWs();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipWs();
                  if (pos_ >= text_.size() || text_[pos_] != ':')
                      return fail("expected ':' in object");
                  ++pos_;
                  Json val;
                  if (!parseValue(val))
                      return false;
                  out.set(key, std::move(val));
                  skipWs();
                  if (pos_ < text_.size() && text_[pos_] == ',') {
                      ++pos_;
                      continue;
                  }
                  if (pos_ < text_.size() && text_[pos_] == '}') {
                      ++pos_;
                      ok = true;
                      break;
                  }
                  return fail("expected ',' or '}' in object");
              }
              break;
          }
          default:
            ok = parseNumber(out);
            break;
        }
        --depth_;
        return ok;
    }

    static constexpr int max_depth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
jsonParse(std::string_view text)
{
    return Parser(text).run();
}

} // namespace wo

/**
 * @file
 * Per-thread interpreter state shared by every abstract operational model.
 *
 * Local instructions (register moves, arithmetic, branches, delays) are
 * invisible to other processors, so the models execute them eagerly: after
 * every visible step a thread is advanced until it either halts or sits at
 * a memory access.  This canonicalizes states and shrinks the explored
 * state graph without losing any behaviour.
 */

#ifndef WO_MODELS_THREAD_CTX_HH
#define WO_MODELS_THREAD_CTX_HH

#include <array>

#include "execution/memory_op.hh"
#include "program/program.hh"

namespace wo {

/** Interpreter state of one thread. */
struct ThreadCtx
{
    Pc pc = 0;
    std::array<Value, num_regs> regs{};
    bool halted = false;

    bool operator==(const ThreadCtx &other) const = default;
};

/**
 * Execute local instructions of @p code until @p t halts or reaches a
 * memory access.  Abstract models treat `delay` as a no-op.
 */
void runLocal(const ThreadCode &code, ThreadCtx &t);

/**
 * The memory instruction @p t currently sits at, or nullptr if halted.
 * Requires runLocal to have been applied (panics on a local instruction).
 */
const Instruction *currentAccess(const ThreadCode &code, const ThreadCtx &t);

/** The value a store-class instruction writes given the register file. */
Value storeValue(const Instruction &inst, const ThreadCtx &t);

/** The dynamic access class of a memory instruction. */
AccessKind accessKindOf(Opcode op);

/**
 * Complete the memory access @p t sits at: for reads and rmw, latch
 * @p value_read into the destination register; advance the pc; then run
 * local instructions to the next access.
 */
void completeAccess(const ThreadCode &code, ThreadCtx &t, Value value_read);

/**
 * Render thread contexts and a memory image for model state dumps
 * (shared by every model's dump()).
 */
std::string dumpThreadsAndMem(const Program &prog,
                              const std::vector<ThreadCtx> &threads,
                              const std::vector<Value> &mem);

} // namespace wo

#endif // WO_MODELS_THREAD_CTX_HH

#include "stale_cache_model.hh"

#include "common/logging.hh"

namespace wo {

StaleCacheModel::StaleCacheModel(const Program &prog, std::size_t max_inbox)
    : prog_(prog), max_inbox_(max_inbox)
{
    wo_assert(max_inbox_ > 0, "need at least one inbox slot");
}

StaleCacheModel::State
StaleCacheModel::initial() const
{
    State s;
    s.threads.resize(prog_.numThreads());
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        runLocal(prog_.thread(p), s.threads[p]);
    s.mem = prog_.initialMemory();
    s.copy.assign(prog_.numThreads(), s.mem);
    s.inbox.resize(prog_.numThreads());
    return s;
}

bool
StaleCacheModel::isFinal(const State &s) const
{
    for (const auto &t : s.threads)
        if (!t.halted)
            return false;
    for (const auto &q : s.inbox)
        if (!q.empty())
            return false;
    return true;
}

namespace {

bool
allInboxesEmpty(const StaleCacheModel::State &s)
{
    for (const auto &q : s.inbox)
        if (!q.empty())
            return false;
    return true;
}

bool
inboxesHaveRoom(const StaleCacheModel::State &s, ProcId writer,
                std::size_t cap)
{
    for (ProcId q = 0; q < s.inbox.size(); ++q)
        if (q != writer && s.inbox[q].size() >= cap)
            return false;
    return true;
}

} // namespace

std::vector<StaleCacheModel::State>
StaleCacheModel::successors(const State &s) const
{
    std::vector<State> out;
    for (auto &ls : labeledSuccessors(s))
        out.push_back(std::move(ls.state));
    return out;
}

void
StaleCacheModel::instrSucc(const State &s, ProcId p,
                           std::vector<LabeledSucc<State>> &out) const
{
    const ThreadCtx &t = s.threads[p];
    if (t.halted)
        return;
    const Instruction *i = currentAccess(prog_.thread(p), t);
    switch (i->op) {
      case Opcode::load_data: {
        // Reads hit the local copy: no waiting, possibly stale.
        State next = s;
        completeAccess(prog_.thread(p), next.threads[p],
                       s.copy[p][i->addr]);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::store_data: {
        if (!inboxesHaveRoom(s, p, max_inbox_))
            break;
        State next = s;
        const Value v = storeValue(*i, t);
        next.mem[i->addr] = v;     // commit (write serialization point)
        next.copy[p][i->addr] = v; // own copy updated immediately
        for (ProcId q = 0; q < prog_.numThreads(); ++q)
            if (q != p)
                next.inbox[q].push_back(Update{i->addr, v});
        completeAccess(prog_.thread(p), next.threads[p], 0);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::sync_load:
      case Opcode::sync_store:
      case Opcode::test_and_set: {
        // Heavyweight synchronization: a full system barrier.
        if (!allInboxesEmpty(s))
            break;
        State next = s;
        const Value old = next.mem[i->addr];
        if (i->writesMemory()) {
            const Value v = storeValue(*i, t);
            next.mem[i->addr] = v;
            for (ProcId q = 0; q < prog_.numThreads(); ++q)
                next.copy[q][i->addr] = v;
        }
        completeAccess(prog_.thread(p), next.threads[p], old);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      default:
        wo_panic("unexpected opcode at access point: %s",
                 opcodeName(i->op));
    }
}

void
StaleCacheModel::drainSuccs(const State &s, ProcId q,
                            std::optional<Addr> only,
                            std::vector<LabeledSucc<State>> &out) const
{
    // Delivery steps: pop the front of the receiver's inbox.  The label
    // carries the *receiver* q (one front entry per inbox, so q alone is
    // unique); the delivered address refines it for readability.
    if (s.inbox[q].empty())
        return;
    const Update u = s.inbox[q].front();
    if (only && u.addr != *only)
        return;
    State next = s;
    next.inbox[q].erase(next.inbox[q].begin());
    next.copy[q][u.addr] = u.value;
    out.push_back({drainLabel(q, u.addr), std::move(next)});
}

std::vector<LabeledSucc<StaleCacheModel::State>>
StaleCacheModel::labeledSuccessors(const State &s) const
{
    std::vector<LabeledSucc<State>> out;
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        instrSucc(s, p, out);
    for (ProcId q = 0; q < prog_.numThreads(); ++q)
        drainSuccs(s, q, std::nullopt, out);
    return out;
}

std::optional<StaleCacheModel::State>
StaleCacheModel::stepLabel(const State &s, const TransLabel &l) const
{
    std::vector<LabeledSucc<State>> out;
    if (l.kind == TransKind::instr)
        instrSucc(s, l.proc, out);
    else
        drainSuccs(s, l.proc, l.addr, out);
    for (auto &ls : out)
        if (ls.label == l)
            return std::move(ls.state);
    return std::nullopt;
}

Outcome
StaleCacheModel::outcome(const State &s) const
{
    Outcome o;
    for (const auto &t : s.threads)
        o.regs.emplace_back(t.regs.begin(), t.regs.end());
    o.memory = s.mem;
    return o;
}

std::string
StaleCacheModel::encode(const State &s) const
{
    StateEnc enc;
    encodeInto(s, enc);
    return enc.take();
}


std::string
StaleCacheModel::dump(const State &s) const
{
    std::string out = dumpThreadsAndMem(prog_, s.threads, s.mem);
    for (ProcId p = 0; p < prog_.numThreads(); ++p) {
        out += strprintf("  P%u copies:", p);
        for (std::size_t a = 0; a < s.copy[p].size(); ++a)
            out += strprintf(" [%zu]=%lld", a,
                             static_cast<long long>(s.copy[p][a]));
        if (!s.inbox[p].empty()) {
            out += "  inbox:";
            for (const auto &u : s.inbox[p])
                out += strprintf(" [%u]<-%lld", u.addr,
                                 static_cast<long long>(u.value));
        }
        out += "\n";
    }
    return out;
}

} // namespace wo

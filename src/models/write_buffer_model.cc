#include "write_buffer_model.hh"

#include "common/logging.hh"

namespace wo {

WriteBufferModel::WriteBufferModel(const Program &prog, std::size_t capacity)
    : prog_(prog), capacity_(capacity)
{
    wo_assert(capacity_ > 0, "write buffer needs capacity >= 1");
}

WriteBufferModel::State
WriteBufferModel::initial() const
{
    State s;
    s.threads.resize(prog_.numThreads());
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        runLocal(prog_.thread(p), s.threads[p]);
    s.mem = prog_.initialMemory();
    s.buffers.resize(prog_.numThreads());
    return s;
}

bool
WriteBufferModel::isFinal(const State &s) const
{
    for (const auto &t : s.threads)
        if (!t.halted)
            return false;
    for (const auto &b : s.buffers)
        if (!b.empty())
            return false;
    return true;
}

std::vector<WriteBufferModel::State>
WriteBufferModel::successors(const State &s) const
{
    std::vector<State> out;
    for (auto &ls : labeledSuccessors(s))
        out.push_back(std::move(ls.state));
    return out;
}

void
WriteBufferModel::instrSucc(const State &s, ProcId p,
                            std::vector<LabeledSucc<State>> &out) const
{
    const ThreadCtx &t = s.threads[p];
    if (t.halted)
        return;
    const Instruction *i = currentAccess(prog_.thread(p), t);
    switch (i->op) {
      case Opcode::load_data: {
        // Forward from the youngest matching buffered store, else read
        // memory directly -- passing any older buffered stores.
        Value v = s.mem[i->addr];
        const auto &buf = s.buffers[p];
        for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
            if (it->addr == i->addr) {
                v = it->value;
                break;
            }
        }
        State next = s;
        completeAccess(prog_.thread(p), next.threads[p], v);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::store_data: {
        if (s.buffers[p].size() >= capacity_)
            break; // buffer full: wait for a drain
        State next = s;
        next.buffers[p].push_back(BufEntry{i->addr, storeValue(*i, t)});
        completeAccess(prog_.thread(p), next.threads[p], 0);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::sync_load:
      case Opcode::sync_store:
      case Opcode::test_and_set: {
        // Strongly ordered synchronization: requires an empty buffer,
        // then acts on memory atomically.
        if (!s.buffers[p].empty())
            break;
        State next = s;
        const Value old = next.mem[i->addr];
        if (i->writesMemory())
            next.mem[i->addr] = storeValue(*i, t);
        completeAccess(prog_.thread(p), next.threads[p], old);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      default:
        wo_panic("unexpected opcode at access point: %s",
                 opcodeName(i->op));
    }
}

void
WriteBufferModel::drainSuccs(const State &s, ProcId p,
                             std::optional<Addr> only,
                             std::vector<LabeledSucc<State>> &out) const
{
    // Only the oldest entry may drain.
    if (s.buffers[p].empty())
        return;
    const BufEntry e = s.buffers[p].front();
    if (only && e.addr != *only)
        return;
    State next = s;
    next.buffers[p].erase(next.buffers[p].begin());
    next.mem[e.addr] = e.value;
    out.push_back({drainLabel(p, e.addr), std::move(next)});
}

std::vector<LabeledSucc<WriteBufferModel::State>>
WriteBufferModel::labeledSuccessors(const State &s) const
{
    std::vector<LabeledSucc<State>> out;
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        instrSucc(s, p, out);
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        drainSuccs(s, p, std::nullopt, out);
    return out;
}

std::optional<WriteBufferModel::State>
WriteBufferModel::stepLabel(const State &s, const TransLabel &l) const
{
    std::vector<LabeledSucc<State>> out;
    if (l.kind == TransKind::instr)
        instrSucc(s, l.proc, out);
    else
        drainSuccs(s, l.proc, l.addr, out);
    for (auto &ls : out)
        if (ls.label == l)
            return std::move(ls.state);
    return std::nullopt;
}

Outcome
WriteBufferModel::outcome(const State &s) const
{
    Outcome o;
    for (const auto &t : s.threads)
        o.regs.emplace_back(t.regs.begin(), t.regs.end());
    o.memory = s.mem;
    return o;
}

std::string
WriteBufferModel::encode(const State &s) const
{
    StateEnc enc;
    encodeInto(s, enc);
    return enc.take();
}


std::string
WriteBufferModel::dump(const State &s) const
{
    std::string out = dumpThreadsAndMem(prog_, s.threads, s.mem);
    for (ProcId p = 0; p < prog_.numThreads(); ++p) {
        if (s.buffers[p].empty())
            continue;
        out += strprintf("  P%u buffer:", p);
        for (const auto &e : s.buffers[p])
            out += strprintf(" [%u]<-%lld", e.addr,
                             static_cast<long long>(e.value));
        out += "\n";
    }
    return out;
}

} // namespace wo

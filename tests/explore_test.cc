/**
 * @file
 * Golden equivalence suite for the exploration engines and the
 * axiomatic SC evaluator.
 *
 * The DPOR engine (sleep sets + hashed-state dedup) is only admissible
 * as the default explorer if it is *observationally identical* to the
 * naive visited-set BFS: bit-identical outcome sets on every program x
 * model pair, while visiting strictly fewer states on at least one
 * racy program (otherwise the reduction machinery is dead weight).
 * The axiomatic evaluator (src/axiom/, no shared code with the
 * operational simulators) must agree with the operational SC machine
 * wherever it is conclusive, and a seeded soundness bug in it must be
 * caught -- not absorbed -- by the dual-engine verify judge.
 *
 * Budget discipline: a truncated or stuck engine may legitimately see
 * a partial outcome set, so equivalence is only asserted for pairs
 * where BOTH engines ran to completion, and the suite asserts that
 * enough pairs did for the comparison to mean something.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "axiom/axiom_eval.hh"
#include "campaign/verify.hh"
#include "core/weak_ordering.hh"
#include "models/model_registry.hh"
#include "models/sc_model.hh"

using namespace wo;

namespace {

/** Every .wo file in the checked-in corpus, sorted for determinism. */
std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &e :
         std::filesystem::directory_iterator(WO_PROGRAMS_DIR))
        if (e.path().extension() == ".wo")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

Program
load(const std::string &path)
{
    AsmResult a = assembleFile(path);
    EXPECT_TRUE(a.ok()) << path;
    return *a.program;
}

Program
loadByName(const std::string &name)
{
    return load(std::string(WO_PROGRAMS_DIR) + "/" + name);
}

} // namespace

// ------------------------------------------------- DPOR == BFS, golden

TEST(Explore, DporMatchesBfsAcrossCorpusAndModels)
{
    // Outcome sets must be bit-identical wherever both engines are
    // conclusive; under truncation partial sets may differ and prove
    // nothing, so those pairs are skipped -- but the suite insists a
    // solid majority of the matrix completes, or the budget is wrong.
    ExploreCfg cfg;
    cfg.max_states = 20'000;
    std::size_t pairs = 0, conclusive_pairs = 0;
    std::uint64_t dpor_total = 0, bfs_total = 0;
    for (const std::string &file : corpusFiles()) {
        const Program prog = load(file);
        for (const std::string &model : modelNames()) {
            ++pairs;
            ExploreResult dpor, bfs;
            ASSERT_TRUE(withModelByName(prog, model, [&](auto &m) {
                dpor = exploreOutcomesDpor(m, cfg);
                bfs = exploreOutcomesBfs(m, cfg);
            })) << model;
            if (!dpor.conclusive() || !bfs.conclusive())
                continue;
            ++conclusive_pairs;
            EXPECT_EQ(dpor.outcomes, bfs.outcomes)
                << prog.name() << " on " << model;
            // DPOR counts search nodes -- (state, sleep set) pairs -- so
            // a tiny synchronized program may show a handful more nodes
            // than BFS has states.  The bound that must hold per pair is
            // node count vs the full interleaving space plus that
            // re-entry slack; the reduction itself is asserted in
            // aggregate below and strictly on the racy corpus.
            EXPECT_LE(dpor.states, bfs.states + dpor.revisit_pruned)
                << prog.name() << " on " << model;
            dpor_total += dpor.states;
            bfs_total += bfs.states;
        }
    }
    EXPECT_GE(pairs, 40u);
    EXPECT_GE(conclusive_pairs * 2, pairs)
        << "budget too small for the equivalence claim to have teeth";
    EXPECT_LT(dpor_total, bfs_total)
        << "the reduced engine must do less total work than BFS";
}

TEST(Explore, DporStrictlyReducesStatesOnARacyProgram)
{
    // The reduction must actually reduce: on a racy program with many
    // commuting interleavings DPOR has to visit strictly fewer states
    // than the full-interleaving BFS while computing the same set.
    const Program prog = loadByName("mixed.wo");
    ExploreCfg cfg;
    cfg.max_states = 100'000;
    ExploreResult dpor, bfs;
    ASSERT_TRUE(withModelByName(prog, "stale", [&](auto &m) {
        dpor = exploreOutcomesDpor(m, cfg);
        bfs = exploreOutcomesBfs(m, cfg);
    }));
    ASSERT_TRUE(dpor.conclusive());
    ASSERT_TRUE(bfs.conclusive());
    EXPECT_EQ(dpor.outcomes, bfs.outcomes);
    EXPECT_LT(dpor.states, bfs.states);
    EXPECT_GT(dpor.sleep_pruned, 0u);
}

// ------------------------------------------ parallel runs, bit-identical

TEST(Explore, ParallelJobsAreBitIdenticalAcrossCorpusAndModels)
{
    // The work-stealing engine dedups on exact (state, sleep-set) nodes,
    // which makes the explored fixpoint -- outcomes and every
    // schedule-independent counter -- a function of the model alone.
    // Anything less than bit-identity here would let --jobs change
    // verdicts.  A truncated run stops at a schedule-dependent frontier,
    // so only the (deterministic) truncated flag is compared there.
    ExploreCfg base;
    base.max_states = 20'000;
    for (const std::string &file : corpusFiles()) {
        const Program prog = load(file);
        for (const std::string &model : modelNames()) {
            ASSERT_TRUE(withModelByName(prog, model, [&](auto &m) {
                ExploreCfg cfg = base;
                cfg.jobs = 1;
                const ExploreResult one = exploreOutcomesDpor(m, cfg);
                for (int jobs : {2, 8}) {
                    cfg.jobs = jobs;
                    const ExploreResult par = exploreOutcomesDpor(m, cfg);
                    EXPECT_EQ(par.truncated, one.truncated)
                        << prog.name() << " on " << model << " with "
                        << jobs << " jobs";
                    if (one.truncated)
                        continue;
                    EXPECT_TRUE(par == one)
                        << prog.name() << " on " << model << " with "
                        << jobs << " jobs: outcomes/counters diverged "
                        << "from the single-threaded exploration";
                }
            })) << model;
        }
    }
}

TEST(Explore, ParallelExplorationIsDeterministicRunToRun)
{
    // Two parallel runs of the same exploration must agree field by
    // field even though worker interleavings differ -- ExploreResult's
    // operator== deliberately excludes the schedule-dependent
    // diagnostics (memo_hits, visited_bytes) and this test guards that
    // exact contract.
    const Program prog = loadByName("mixed.wo");
    ExploreCfg cfg;
    cfg.max_states = 100'000;
    cfg.jobs = 8;
    ASSERT_TRUE(withModelByName(prog, "stale", [&](auto &m) {
        const ExploreResult a = exploreOutcomesDpor(m, cfg);
        const ExploreResult b = exploreOutcomesDpor(m, cfg);
        ASSERT_TRUE(a.conclusive());
        EXPECT_TRUE(a == b);
        EXPECT_GT(a.commutation_probes, 0u);
    }));
}

// --------------------------------------- truncation is never a verdict

TEST(Explore, TruncatedExplorationIsNeverConclusive)
{
    const Program prog = loadByName("dekker.wo");
    ExploreCfg cfg;
    cfg.max_states = 10;
    ASSERT_TRUE(withModelByName(prog, "drf0", [&](auto &m) {
        const ExploreResult dpor = exploreOutcomesDpor(m, cfg);
        const ExploreResult bfs = exploreOutcomesBfs(m, cfg);
        EXPECT_TRUE(dpor.truncated);
        EXPECT_FALSE(dpor.conclusive());
        EXPECT_TRUE(bfs.truncated);
        EXPECT_FALSE(bfs.conclusive());
    }));
}

TEST(Explore, ConformanceUnderTinyBudgetIsUnreliable)
{
    // Satellite regression: a budget-tripped conformance query must
    // surface reliable=false so no caller can mint an "appears SC"
    // verdict out of a partial exploration.
    const Program prog = loadByName("dekker.wo");
    ExploreCfg cfg;
    cfg.max_states = 2;
    ScModel hw(prog);
    const ConformanceResult c = conformsForProgram(hw, prog, cfg);
    EXPECT_FALSE(c.reliable);

    // A contract check whose *relevant* (DRF0-obeying) entry is
    // starved must report the whole question open rather than claiming
    // the contract holds.  A racy program would not do: its entry is
    // irrelevant to the contract, starved or not.
    const std::vector<Program> suite = {loadByName("handoff.wo")};
    const ContractResult contract = checkContract(
        [](const Program &p) { return ScModel(p); }, suite, {}, cfg);
    EXPECT_FALSE(contract.conclusive);
    ASSERT_EQ(contract.entries.size(), 1u);
    EXPECT_FALSE(contract.entries[0].reliable);
}

// ------------------------------------- axiomatic vs operational engine

TEST(Axiom, AgreesWithOperationalScOnStraightLineCorpus)
{
    for (const char *name : {"fig1.wo", "iriw.wo", "mp.wo", "mixed.wo"}) {
        const Program prog = loadByName(name);
        const AxiomResult ax = axiomScOutcomes(prog);
        ASSERT_TRUE(ax.conclusive) << name << ": " << ax.why_inconclusive;
        ScModel sc(prog);
        const ExploreResult op = exploreOutcomes(sc);
        ASSERT_TRUE(op.conclusive()) << name;
        EXPECT_EQ(ax.outcomes, op.outcomes) << name;
        EXPECT_GT(ax.candidates, 0u) << name;
    }
}

TEST(Axiom, LoopProgramIsHonestlyInconclusive)
{
    // The unfolder cannot bound a spin loop's read values a priori;
    // the evaluator must say so instead of returning a partial set
    // that a caller could mistake for the outcome set.
    const Program prog = loadByName("spinlock.wo");
    AxiomCfg cfg;
    cfg.max_unfoldings = 64;
    const AxiomResult ax = axiomScOutcomes(prog, cfg);
    EXPECT_FALSE(ax.conclusive);
    EXPECT_FALSE(ax.why_inconclusive.empty());
}

TEST(Axiom, SeededSoundnessBugIsCaughtByTheVerifyJudge)
{
    // inject_bug drops from-read edges from the acyclicity check, so
    // the axiomatic engine admits executions no SC machine can
    // produce.  The dual-engine judge must catch the divergence on at
    // least one corpus program and classify it precisely.
    std::size_t caught = 0;
    for (const char *name : {"fig1.wo", "iriw.wo", "mp.wo", "mixed.wo"}) {
        const Program prog = loadByName(name);
        VerifyCfg cfg;
        cfg.axiom.inject_bug = true;
        const VerifyResult r = verifyProgramOnModel(prog, "sc", cfg);
        EXPECT_FALSE(r.inconclusive) << name << ": "
                                     << r.why_inconclusive;
        if (!r.has_violation)
            continue;
        ++caught;
        EXPECT_EQ(r.kind, ViolationKind::axiom_divergence) << name;
        EXPECT_EQ(r.verdict(), "hw:axiom_divergence") << name;
        EXPECT_FALSE(r.witness.empty()) << name;
        EXPECT_NE(r.detail().find("axiom"), std::string::npos) << name;
    }
    EXPECT_GT(caught, 0u)
        << "the seeded bug diverged on no corpus program";
}

// ------------------------------------------------ verify-cell verdicts

TEST(Verify, ConformingPairsReportOk)
{
    // The SC machine trivially appears SC to itself.
    {
        const VerifyResult r =
            verifyProgramOnModel(loadByName("mp.wo"), "sc");
        EXPECT_EQ(r.verdict(), "ok") << r.detail();
        EXPECT_FALSE(r.has_violation);
        EXPECT_FALSE(r.inconclusive) << r.why_inconclusive;
    }
    // A race-free straight-line program (disjoint footprints, so DRF0
    // holds with no sync and no loops) appears SC on the claiming
    // weakly-ordered machine: every check is conclusive and green.
    {
        AsmResult a = assembleString("program disjoint\n"
                                     "thread 0\n"
                                     "  st a 1\n"
                                     "  ld r0 a\n"
                                     "thread 1\n"
                                     "  st b 2\n"
                                     "  ld r1 b\n");
        ASSERT_TRUE(a.ok());
        const VerifyResult r = verifyProgramOnModel(*a.program, "drf0");
        EXPECT_EQ(r.verdict(), "ok") << r.detail();
        EXPECT_TRUE(r.drf0_obeys);
        EXPECT_FALSE(r.inconclusive) << r.why_inconclusive;
    }
}

TEST(Verify, CounterexampleHardwareEscapingScIsExpectedNotAFailure)
{
    // fig1 on the write-buffer machine is the paper's own
    // counterexample: the escape is the point, so the verdict is
    // "nonsc", never a hardware-blaming violation.
    const VerifyResult r =
        verifyProgramOnModel(loadByName("fig1.wo"), "wb");
    EXPECT_EQ(r.verdict(), "nonsc");
    EXPECT_TRUE(r.nonsc);
    EXPECT_FALSE(r.has_violation);
    EXPECT_FALSE(r.inconclusive) << r.why_inconclusive;
}

TEST(Verify, BudgetTripReportsInconclusiveNotAVerdict)
{
    VerifyCfg cfg;
    cfg.max_states = 10;
    const VerifyResult r =
        verifyProgramOnModel(loadByName("dekker.wo"), "drf0", cfg);
    EXPECT_TRUE(r.inconclusive);
    EXPECT_EQ(r.verdict(), "inconclusive");
    EXPECT_FALSE(r.has_violation);
    EXPECT_FALSE(r.why_inconclusive.empty());
}

TEST(Verify, UnknownModelIsInconclusiveNotACrash)
{
    const VerifyResult r =
        verifyProgramOnModel(loadByName("mp.wo"), "tso");
    EXPECT_TRUE(r.inconclusive);
    EXPECT_EQ(r.verdict(), "inconclusive");
}

TEST(Verify, ReproducesIsAFaithfulShrinkPredicate)
{
    // The shrinker keeps a candidate only while the *same* violation
    // kind reproduces; the predicate must hold on the original finding
    // and reject the kind that did not fire.
    const Program prog = loadByName("mixed.wo");
    VerifyCfg cfg;
    cfg.axiom.inject_bug = true;
    const VerifyResult r = verifyProgramOnModel(prog, "sc", cfg);
    ASSERT_TRUE(r.has_violation);
    ASSERT_EQ(r.kind, ViolationKind::axiom_divergence);
    EXPECT_TRUE(verifyReproduces(prog, "sc",
                                 ViolationKind::axiom_divergence, cfg));
    EXPECT_FALSE(verifyReproduces(prog, "sc",
                                  ViolationKind::dpor_divergence, cfg));
    // Without the seeded bug nothing reproduces: the engines agree.
    VerifyCfg clean;
    EXPECT_FALSE(verifyReproduces(prog, "sc",
                                  ViolationKind::axiom_divergence,
                                  clean));
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_drf0check.dir/bench_drf0check.cc.o"
  "CMakeFiles/bench_drf0check.dir/bench_drf0check.cc.o.d"
  "bench_drf0check"
  "bench_drf0check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drf0check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hb/closure.cc" "src/hb/CMakeFiles/wo_hb.dir/closure.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/closure.cc.o.d"
  "/root/repo/src/hb/dot.cc" "src/hb/CMakeFiles/wo_hb.dir/dot.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/dot.cc.o.d"
  "/root/repo/src/hb/fig2.cc" "src/hb/CMakeFiles/wo_hb.dir/fig2.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/fig2.cc.o.d"
  "/root/repo/src/hb/happens_before.cc" "src/hb/CMakeFiles/wo_hb.dir/happens_before.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/happens_before.cc.o.d"
  "/root/repo/src/hb/lemma1.cc" "src/hb/CMakeFiles/wo_hb.dir/lemma1.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/lemma1.cc.o.d"
  "/root/repo/src/hb/race.cc" "src/hb/CMakeFiles/wo_hb.dir/race.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/race.cc.o.d"
  "/root/repo/src/hb/vector_clock.cc" "src/hb/CMakeFiles/wo_hb.dir/vector_clock.cc.o" "gcc" "src/hb/CMakeFiles/wo_hb.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/execution/CMakeFiles/wo_execution.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

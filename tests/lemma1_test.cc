/**
 * @file
 * Tests for the executable Lemma 1 (hb-last-write) checker, including the
 * property that SC executions of DRF0 programs always satisfy it and that
 * it agrees with the full SC checker on machine traces.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hb/lemma1.hh"
#include "models/explorer.hh"
#include "models/sc_model.hh"
#include "program/workload.hh"
#include "sc/sc_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

TEST(Lemma1, ReleaseAcquireChainPasses)
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 7);
    e.append(0, 1, AccessKind::sync_write, 0, 1);
    e.append(1, 1, AccessKind::sync_rmw, 1, 2);
    e.append(1, 0, AccessKind::data_read, 7, 0);
    auto r = checkHbLastWrite(e);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.violations.empty());
}

TEST(Lemma1, StaleReadDetected)
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 7);
    e.append(0, 1, AccessKind::sync_write, 0, 1);
    e.append(1, 1, AccessKind::sync_rmw, 1, 2);
    e.append(1, 0, AccessKind::data_read, 0, 0); // stale! should be 7
    auto r = checkHbLastWrite(e);
    ASSERT_FALSE(r.ok);
    ASSERT_EQ(r.violations.size(), 1u);
    EXPECT_EQ(r.violations[0].kind, Lemma1Violation::Kind::wrong_value);
    EXPECT_EQ(r.violations[0].expected, 7);
    EXPECT_NE(r.violations[0].toString(e).find("should have returned 7"),
              std::string::npos);
}

TEST(Lemma1, InitialValueIsTheDefaultLastWrite)
{
    Execution e(1, 1, {5});
    e.append(0, 0, AccessKind::data_read, 5, 0);
    EXPECT_TRUE(checkHbLastWrite(e).ok);

    Execution bad(1, 1, {5});
    bad.append(0, 0, AccessKind::data_read, 3, 0);
    EXPECT_FALSE(checkHbLastWrite(bad).ok);
}

TEST(Lemma1, AmbiguousLastWriteIsARace)
{
    // Two unordered writes both hb-before the read via separate sync
    // chains on different locations.
    Execution e(3, 4);
    e.append(0, 0, AccessKind::data_write, 0, 1); // 0: P0 W(x)=1
    e.append(0, 2, AccessKind::sync_write, 0, 1); // 1: P0 S(a)
    e.append(1, 0, AccessKind::data_write, 0, 2); // 2: P1 W(x)=2
    e.append(1, 3, AccessKind::sync_write, 0, 1); // 3: P1 S(b)
    e.append(2, 2, AccessKind::sync_rmw, 1, 2);   // 4: P2 S(a)
    e.append(2, 3, AccessKind::sync_rmw, 1, 2);   // 5: P2 S(b)
    e.append(2, 0, AccessKind::data_read, 2, 0);  // 6: P2 R(x)
    auto r = checkHbLastWrite(e);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.violations[0].kind,
              Lemma1Violation::Kind::ambiguous_last);
}

TEST(Lemma1, OwnProgramOrderWriteWins)
{
    Execution e(1, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(0, 0, AccessKind::data_write, 0, 2);
    e.append(0, 0, AccessKind::data_read, 2, 0);
    EXPECT_TRUE(checkHbLastWrite(e).ok);

    Execution bad(1, 1);
    bad.append(0, 0, AccessKind::data_write, 0, 1);
    bad.append(0, 0, AccessKind::data_write, 0, 2);
    bad.append(0, 0, AccessKind::data_read, 1, 0); // must see 2
    EXPECT_FALSE(checkHbLastWrite(bad).ok);
}

TEST(Lemma1, RmwReadComponentChecked)
{
    Execution e(2, 1, {1});
    e.append(0, 0, AccessKind::sync_rmw, 1, 1); // reads initial 1
    e.append(1, 0, AccessKind::sync_rmw, 1, 1); // must read 1 (written 1)
    EXPECT_TRUE(checkHbLastWrite(e).ok);

    Execution bad(2, 1, {1});
    bad.append(0, 0, AccessKind::sync_rmw, 1, 0); // unset: writes 0
    bad.append(1, 0, AccessKind::sync_rmw, 1, 1); // claims 1: stale
    EXPECT_FALSE(checkHbLastWrite(bad).ok);
}

class Lemma1Property : public testing::TestWithParam<int>
{
};

TEST_P(Lemma1Property, HoldsOnIdealizedExecutionsOfDrf0Programs)
{
    Drf0WorkloadCfg cfg;
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    cfg.procs = 2;
    cfg.regions = 1;
    cfg.sections = 2;
    cfg.ops_per_section = 2;
    Program p = randomDrf0Program(cfg);
    // Drive the SC machine along a random schedule, recording the trace.
    ScModel m(p);
    auto s = m.initial();
    Execution trace(p.numThreads(), p.numLocations(), p.initialMemory());
    Rng rng(cfg.seed * 977 + 3);
    while (!m.isFinal(s)) {
        ProcId pick = static_cast<ProcId>(rng.below(p.numThreads()));
        if (!m.step(s, pick, &trace))
            continue;
    }
    auto r = checkHbLastWrite(trace);
    EXPECT_TRUE(r.ok) << (r.violations.empty()
                              ? std::string("?")
                              : r.violations[0].toString(trace));
}

TEST_P(Lemma1Property, HoldsOnTimedExecutionsOfDrf0Programs)
{
    Drf0WorkloadCfg cfg;
    cfg.seed = static_cast<std::uint64_t>(GetParam()) + 500;
    cfg.procs = 3;
    cfg.regions = 2;
    cfg.sections = 2;
    cfg.ops_per_section = 3;
    Program p = randomDrf0Program(cfg);
    SystemCfg sys_cfg;
    sys_cfg.net.jitter = 4;
    sys_cfg.net.seed = cfg.seed;
    System sys(p, sys_cfg);
    auto run = sys.run();
    ASSERT_TRUE(run.completed);
    auto lemma = checkHbLastWrite(run.execution);
    EXPECT_TRUE(lemma.ok);
    // And Lemma 1's sufficiency: the full SC check must agree.
    EXPECT_TRUE(isSequentiallyConsistent(run.execution));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property, testing::Range(0, 20));

} // namespace
} // namespace wo

#include "wo_drf0_model.hh"

#include "common/logging.hh"

namespace wo {

WoDrf0Model::WoDrf0Model(const Program &prog, std::size_t max_pool,
                         bool weak_sync_read)
    : prog_(prog), max_pool_(max_pool), weak_sync_read_(weak_sync_read)
{
    wo_assert(max_pool_ > 0, "need at least one pool slot");
}

WoDrf0Model::State
WoDrf0Model::initial() const
{
    State s;
    s.threads.resize(prog_.numThreads());
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        runLocal(prog_.thread(p), s.threads[p]);
    s.mem = prog_.initialMemory();
    s.pools.resize(prog_.numThreads());
    return s;
}

bool
WoDrf0Model::isFinal(const State &s) const
{
    for (const auto &t : s.threads)
        if (!t.halted)
            return false;
    for (const auto &pool : s.pools)
        if (!pool.empty())
            return false;
    return true;
}

std::vector<WoDrf0Model::State>
WoDrf0Model::successors(const State &s) const
{
    std::vector<State> out;
    for (auto &ls : labeledSuccessors(s))
        out.push_back(std::move(ls.state));
    return out;
}

void
WoDrf0Model::instrSucc(const State &s, ProcId p,
                       std::vector<LabeledSucc<State>> &out) const
{
    const ThreadCtx &t = s.threads[p];
    if (t.halted)
        return;
    const Instruction *i = currentAccess(prog_.thread(p), t);
    switch (i->op) {
      case Opcode::load_data: {
        auto fwd = poolForward(s.pools[p], i->addr);
        const Value v = fwd ? *fwd : s.mem[i->addr];
        State next = s;
        completeAccess(prog_.thread(p), next.threads[p], v);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::store_data: {
        if (s.pools[p].size() >= max_pool_)
            break;
        State next = s;
        next.pools[p].push_back(PendingWrite{i->addr, storeValue(*i, t)});
        completeAccess(prog_.thread(p), next.threads[p], 0);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::sync_load:
      case Opcode::sync_store:
      case Opcode::test_and_set: {
        // Condition 5: another processor's active reservation on this
        // location stalls the synchronization operation -- but NOT the
        // issuing processor's own pending accesses; it does not wait
        // for its own pool (the departure from Definition 1).
        auto res = s.reserved.find(i->addr);
        if (res != s.reserved.end() && res->second.owner != p)
            break;
        State next = s;
        const Value old = next.mem[i->addr];
        if (i->writesMemory())
            next.mem[i->addr] = storeValue(*i, t);
        // Reserve the location for the issuing processor if it still
        // has pending pre-synchronization writes.  Under the Section-6
        // refinement, a pure Test does not publish ordering and thus
        // sets no reservation.
        const bool publishes =
            !(weak_sync_read_ && i->op == Opcode::sync_load);
        // (If the pool is empty no reservation by p can be active:
        // prefix counts never exceed the pool size, and zero-prefix
        // reservations are erased at drain time.)
        if (publishes && !next.pools[p].empty()) {
            next.reserved[i->addr] = Reservation{
                p, static_cast<std::uint32_t>(next.pools[p].size())};
        }
        completeAccess(prog_.thread(p), next.threads[p], old);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      default:
        wo_panic("unexpected opcode at access point: %s",
                 opcodeName(i->op));
    }
}

void
WoDrf0Model::drainSuccs(const State &s, ProcId p, std::optional<Addr> only,
                        std::vector<LabeledSucc<State>> &out) const
{
    // Draining entry k of processor p shrinks every reservation prefix of
    // p that still covers k; prefixes hitting zero clear the reservation
    // ("all reserve bits are reset when the counter reads zero" -- here,
    // when the awaited prefix has drained).
    const auto &pool = s.pools[p];
    for (std::size_t k = 0; k < pool.size(); ++k) {
        if (only && pool[k].addr != *only)
            continue;
        if (!poolMayDrain(pool, k))
            continue;
        State next = s;
        PendingWrite w = next.pools[p][k];
        next.pools[p].erase(next.pools[p].begin() +
                            static_cast<std::ptrdiff_t>(k));
        next.mem[w.addr] = w.value;
        for (auto it = next.reserved.begin(); it != next.reserved.end();) {
            if (it->second.owner == p && it->second.prefix_count > k) {
                if (--it->second.prefix_count == 0) {
                    it = next.reserved.erase(it);
                    continue;
                }
            }
            ++it;
        }
        out.push_back({drainLabel(p, w.addr), std::move(next)});
    }
}

std::vector<LabeledSucc<WoDrf0Model::State>>
WoDrf0Model::labeledSuccessors(const State &s) const
{
    std::vector<LabeledSucc<State>> out;
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        instrSucc(s, p, out);
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        drainSuccs(s, p, std::nullopt, out);
    return out;
}

std::optional<WoDrf0Model::State>
WoDrf0Model::stepLabel(const State &s, const TransLabel &l) const
{
    std::vector<LabeledSucc<State>> out;
    if (l.kind == TransKind::instr)
        instrSucc(s, l.proc, out);
    else
        drainSuccs(s, l.proc, l.addr, out);
    for (auto &ls : out)
        if (ls.label == l)
            return std::move(ls.state);
    return std::nullopt;
}

Outcome
WoDrf0Model::outcome(const State &s) const
{
    Outcome o;
    for (const auto &t : s.threads)
        o.regs.emplace_back(t.regs.begin(), t.regs.end());
    o.memory = s.mem;
    return o;
}

std::string
WoDrf0Model::encode(const State &s) const
{
    StateEnc enc;
    encodeInto(s, enc);
    return enc.take();
}


std::string
WoDrf0Model::dump(const State &s) const
{
    std::string out = dumpThreadsAndMem(prog_, s.threads, s.mem);
    for (ProcId p = 0; p < prog_.numThreads(); ++p) {
        if (s.pools[p].empty())
            continue;
        out += strprintf("  P%u pending:", p);
        for (const auto &w : s.pools[p])
            out += strprintf(" [%u]<-%lld", w.addr,
                             static_cast<long long>(w.value));
        out += "\n";
    }
    for (const auto &[addr, r] : s.reserved)
        out += strprintf("  reserved [%u] by P%u awaiting %u write(s)\n",
                         addr, r.owner, r.prefix_count);
    return out;
}

} // namespace wo

#include "table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "logging.hh"

namespace wo {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    wo_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    wo_assert(cells.size() == headers_.size(),
              "row has %zu cells, table has %zu columns", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != '%' && c != 'x')
            return false;
    }
    return true;
}

} // namespace

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::string &cell = row[c];
            const std::size_t pad = width[c] - cell.size();
            line += "| ";
            if (looksNumeric(cell)) {
                line += std::string(pad, ' ') + cell;
            } else {
                line += cell + std::string(pad, ' ');
            }
            line += ' ';
        }
        line += "|\n";
        return line;
    };

    std::string sep = "";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        sep += "+" + std::string(width[c] + 2, '-');
    sep += "+\n";

    std::string out = sep + emit_row(headers_) + sep;
    for (const auto &row : rows_)
        out += emit_row(row);
    out += sep;
    return out;
}

void
Table::print() const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

} // namespace wo

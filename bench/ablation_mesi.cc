/**
 * @file
 * Experiment E11 -- MESI exclusive-clean ablation.
 *
 * The paper's protocol is MSI-shaped; granting a sole reader the line in
 * exclusive-clean state (MESI's E) lets the read-then-write pattern --
 * ubiquitous in the lock-protected critical sections DRF0 encourages --
 * upgrade silently instead of issuing a second (GetX) transaction.  This
 * bench quantifies the saving in time, misses and protocol messages, and
 * checks that the optimization composes with the counter/reserve-bit
 * machinery (results stay correct).
 */

#include <cstdio>

#include "common/table.hh"
#include "program/litmus.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

struct RunStats
{
    Tick time = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t silent = 0;
    std::uint64_t messages = 0;
    bool ok = false;
    Value counter = 0;
};

RunStats
run(const Program &p, bool mesi)
{
    SystemCfg cfg;
    cfg.policy = OrderingPolicy::wo_drf0;
    cfg.net.hop_latency = 10;
    cfg.dir.grant_exclusive_clean = mesi;
    System sys(p, cfg);
    auto r = sys.run();
    RunStats s;
    s.ok = r.completed;
    s.time = r.finish_tick;
    for (ProcId q = 0; q < p.numThreads(); ++q) {
        const auto &c = sys.cache(q).stats().counters();
        auto get = [&](const char *n) -> std::uint64_t {
            auto it = c.find(n);
            return it == c.end() ? 0 : it->second.value();
        };
        s.write_misses += get("write_misses");
        s.silent += get("silent_upgrades");
    }
    auto pos = r.stats.find("net.messages ");
    if (pos != std::string::npos)
        s.messages = std::strtoull(r.stats.c_str() + pos + 13, nullptr, 10);
    if (p.numLocations() > 1)
        s.counter = r.outcome.memory[1];
    return s;
}

void
ablation()
{
    std::printf("== E11: MESI exclusive-clean grant ablation (WO-DRF0) "
                "==\n");
    Table t({"workload", "variant", "time", "write misses",
             "silent upgrades", "messages"});
    struct Case
    {
        const char *label;
        Program prog;
    };
    std::vector<Case> cases;
    cases.push_back({"locked counter 4x3", litmus::lockedCounter(4, 3)});
    {
        // Private-heavy workload: read-then-write on private locations is
        // where E pays off most.
        Drf0WorkloadCfg wl;
        wl.procs = 4;
        wl.regions = 1;
        wl.locs_per_region = 2;
        wl.private_locs = 4;
        wl.sections = 2;
        wl.ops_per_section = 2;
        wl.private_ops = 6;
        wl.seed = 21;
        cases.push_back({"private-heavy DRF0", randomDrf0Program(wl)});
    }
    cases.push_back({"barrier 6", litmus::barrier(6)});
    for (const auto &c : cases) {
        for (bool mesi : {false, true}) {
            auto s = run(c.prog, mesi);
            t.addRow({c.label, mesi ? "MESI" : "MSI",
                      s.ok ? strprintf("%llu", (unsigned long long)s.time)
                           : "DNF",
                      strprintf("%llu", (unsigned long long)s.write_misses),
                      strprintf("%llu", (unsigned long long)s.silent),
                      strprintf("%llu", (unsigned long long)s.messages)});
        }
    }
    t.print();
    std::printf("Read: E converts read-then-write GetX upgrades into "
                "silent transitions; savings concentrate on private "
                "data.\n");
}

} // namespace
} // namespace wo

int
main()
{
    wo::ablation();
    return 0;
}

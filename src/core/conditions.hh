/**
 * @file
 * Runtime verification of the paper's Section-5.1 sufficient conditions
 * on a finished timed run.  Appendix B proves these conditions imply weak
 * ordering w.r.t. DRF0; this harness checks that the hardware actually
 * exhibits them, turning the proof's premises into assertions:
 *
 *   C2  all writes to a location are totally ordered by commit time and
 *       observed in that order: every read returns the value of the last
 *       write to its location committed before it, or forwards the value
 *       of a *later-performing* own write (store-to-load forwarding of a
 *       pending write), and the final memory image is the last commit;
 *   C3  synchronization operations on a location are totally ordered by
 *       commit time (no two commit at the same tick);
 *   C4  accesses issue only after the processor's previous
 *       synchronization operations have committed;
 *   C5  once synchronization operation S by Pi commits, no other
 *       processor's synchronization operation on the same location
 *       commits until Pi's reads before S have committed and Pi's writes
 *       before S are globally performed.
 *
 * (C1, intra-processor dependencies, is enforced structurally by the
 * in-order CPU and is visible as program-order issue in the timings.)
 *
 * The checks consume SystemResult::timings (program order per processor,
 * with commit/performed ticks) and the retired execution.
 */

#ifndef WO_CORE_CONDITIONS_HH
#define WO_CORE_CONDITIONS_HH

#include <string>
#include <vector>

#include "sys/system.hh"

namespace wo {

/** One violated premise. */
struct ConditionViolation
{
    int condition;       //!< 2..5
    std::string detail;

    std::string
    toString() const
    {
        return strprintf("condition %d: %s", condition, detail.c_str());
    }
};

/** Result of the sufficient-conditions audit. */
struct ConditionsResult
{
    bool ok = true;
    std::vector<ConditionViolation> violations;

    explicit operator bool() const { return ok; }
};

/**
 * Audit a completed run against conditions 2-5.
 * @param result  the run to audit (must have completed)
 */
ConditionsResult checkSufficientConditions(const SystemResult &result);

} // namespace wo

#endif // WO_CORE_CONDITIONS_HH

/**
 * @file
 * The per-processor pool of issued-but-not-globally-performed data writes
 * shared by the two abstract weak-ordering machines.  Pool entries drain to
 * memory in any order except that two writes by the same processor to the
 * same location keep their program order (per-location write serialization,
 * condition 2 of Section 5.1); loads forward from the youngest own pending
 * write to the same location.
 *
 * Pools are kept in issue order.  Because erasures preserve relative order,
 * the writes that were pending at any past instant always form a *prefix*
 * of the current pool -- which lets the DRF0 machine represent "the
 * accesses issued before synchronization operation S" as a plain count
 * (see WoDrf0Model), keeping states canonical and the explored graph
 * finite.
 */

#ifndef WO_MODELS_PENDING_POOL_HH
#define WO_MODELS_PENDING_POOL_HH

#include <optional>
#include <vector>

#include "common/types.hh"
#include "models/state_enc.hh"

namespace wo {

/** One issued-but-unperformed data write. */
struct PendingWrite
{
    Addr addr;
    Value value;

    bool operator==(const PendingWrite &other) const = default;
};

/** A processor's pending-write pool, in issue order. */
using PendingPool = std::vector<PendingWrite>;

/** Youngest pending value for @p addr, if any (store-to-load forwarding). */
inline std::optional<Value>
poolForward(const PendingPool &pool, Addr addr)
{
    for (auto it = pool.rbegin(); it != pool.rend(); ++it)
        if (it->addr == addr)
            return it->value;
    return std::nullopt;
}

/** May entry @p k drain now? Only the oldest pending write per location. */
inline bool
poolMayDrain(const PendingPool &pool, std::size_t k)
{
    for (std::size_t j = 0; j < k; ++j)
        if (pool[j].addr == pool[k].addr)
            return false;
    return true;
}

/** Serialize a pool into a state encoding (StateEnc or HashEnc). */
template <typename Enc>
void
encodePool(Enc &enc, const PendingPool &pool)
{
    for (const auto &w : pool) {
        enc.put(w.addr);
        enc.put(w.value);
    }
    enc.sep();
}

} // namespace wo

#endif // WO_MODELS_PENDING_POOL_HH

/**
 * @file
 * Experiment E3 -- Figure 3 of the paper: where the old (Definition 1) and
 * the new (Section 5.3) implementations stall.
 *
 *     P0: W(x); ...; Unset(s); ...      P1: TestAndSet(s) spin; ...; R(x)
 *
 * x is warm-shared in P1's cache, so P0's W(x) needs an invalidation round
 * trip and "takes a long time to be globally performed".
 *
 * Claims reproduced:
 *   - Definition 1 stalls P0 at the Unset until W(x) is globally
 *     performed; the new implementation lets P0 commit the Unset and run
 *     ahead (P0 "need never stall").
 *   - In BOTH implementations P1's TestAndSet succeeds only after W(x) is
 *     globally performed ("both stall P1"), and P1 then reads x == 1.
 *
 * The second table sweeps the network hop latency: P0's advantage under
 * the new definition grows with the invalidation latency, while P1's
 * acquisition time is essentially identical across the two designs.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/litmus.hh"
#include "sys/system.hh"

namespace wo {
namespace {

struct Fig3Numbers
{
    Tick w_issue = 0, w_perf = 0;      // P0's W(x)
    Tick s_reach = 0, s_issue = 0, s_commit = 0; // P0's Unset(s)
    Tick p0_done = 0;                  // P0 halts
    Tick tas_commit = 0;               // P1's successful TAS
    Tick p1_done = 0;
    Value p1_read = -1;
    bool ok = false;
    /** P0's stall attribution (bucket name -> cycles). */
    std::map<std::string, std::uint64_t> p0_stall;
};

Fig3Numbers
runOnce(OrderingPolicy pol, Tick hop, Value work)
{
    Program p = litmus::fig3Scenario(work);
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = hop;
    System sys(p, cfg);
    sys.warmShared(0, {1}); // x shared at P1: invalidation needed
    auto r = sys.run();
    Fig3Numbers n;
    n.ok = r.completed;
    if (!r.completed)
        return n;
    for (const auto &t : r.timings[0]) {
        if (t.kind == AccessKind::data_write && t.addr == 0) {
            n.w_issue = t.issued;
            n.w_perf = t.performed;
        }
        if (t.kind == AccessKind::sync_write) {
            n.s_reach = t.reached;
            n.s_issue = t.issued;
            n.s_commit = t.committed;
        }
    }
    for (const auto &t : r.timings[1])
        if (t.kind == AccessKind::sync_rmw)
            n.tas_commit = t.committed; // last == successful acquire
    n.p0_done = sys.cpu(0).finishTick();
    n.p1_done = sys.cpu(1).finishTick();
    n.p1_read = r.outcome.regs[1][0];
    n.p0_stall = r.stall_counters[0];
    return n;
}

Table
timeline()
{
    std::printf("== E3 / Figure 3: event timeline (hop latency 10, no "
                "extra work) ==\n");
    Table t({"implementation", "W(x) issue", "W(x) performed",
             "Unset reached", "Unset issued", "Unset committed",
             "P0 done", "P1 TAS commit", "P1 done", "P1 reads x"});
    for (OrderingPolicy pol :
         {OrderingPolicy::wo_def1, OrderingPolicy::wo_drf0}) {
        auto n = runOnce(pol, 10, 0);
        t.addRow({policyName(pol),
                  strprintf("%llu", (unsigned long long)n.w_issue),
                  strprintf("%llu", (unsigned long long)n.w_perf),
                  strprintf("%llu", (unsigned long long)n.s_reach),
                  strprintf("%llu", (unsigned long long)n.s_issue),
                  strprintf("%llu", (unsigned long long)n.s_commit),
                  strprintf("%llu", (unsigned long long)n.p0_done),
                  strprintf("%llu", (unsigned long long)n.tas_commit),
                  strprintf("%llu", (unsigned long long)n.p1_done),
                  strprintf("%lld", (long long)n.p1_read)});
    }
    t.print();
    std::printf("Read: under Def1 the Unset issues only after W(x) "
                "performs; under the new implementation it issues at once "
                "and P0 runs ahead.  P1 blocks until W(x) performs in "
                "both, and always reads x == 1.\n\n");
    return t;
}

Table
attribution()
{
    std::printf("== E3 stall attribution: where P0's cycles go (hop "
                "latency 10, no extra work) ==\n");
    Table t({"implementation", "release stall", "cache miss",
             "counter drain", "network", "total"});
    for (OrderingPolicy pol :
         {OrderingPolicy::wo_def1, OrderingPolicy::wo_drf0}) {
        auto n = runOnce(pol, 10, 0);
        auto at = [&](const char *k) {
            auto it = n.p0_stall.find(k);
            return strprintf("%llu", (unsigned long long)(
                                         it == n.p0_stall.end()
                                             ? 0
                                             : it->second));
        };
        t.addRow({policyName(pol), at("release"), at("cache_miss"),
                  at("counter_drain"), at("network"), at("total")});
    }
    t.print();
    std::printf("Read: Def1 charges extra release-side cycles to the "
                "outstanding-access-counter drain at the Unset; the new "
                "implementation's release stall is only the line "
                "procurement itself.\n\n");
    return t;
}

Table
sweep()
{
    std::printf("== E3 sweep: P0 completion time vs network hop latency "
                "(work = 50 cycles at each '...') ==\n");
    Table t({"hop latency", "P0 done (Def1)", "P0 done (new)",
             "P0 speedup", "P1 done (Def1)", "P1 done (new)"});
    for (Tick hop : {2, 5, 10, 20, 40, 80}) {
        auto d1 = runOnce(OrderingPolicy::wo_def1, hop, 50);
        auto nw = runOnce(OrderingPolicy::wo_drf0, hop, 50);
        t.addRow({strprintf("%llu", (unsigned long long)hop),
                  strprintf("%llu", (unsigned long long)d1.p0_done),
                  strprintf("%llu", (unsigned long long)nw.p0_done),
                  strprintf("%.2fx", d1.p0_done
                                         ? (double)d1.p0_done /
                                               (double)nw.p0_done
                                         : 0.0),
                  strprintf("%llu", (unsigned long long)d1.p1_done),
                  strprintf("%llu", (unsigned long long)nw.p1_done)});
    }
    t.print();
    std::printf("Read: P0's advantage grows with invalidation latency; "
                "P1's time is set by W(x)'s global perform in both "
                "designs.\n");
    return t;
}

} // namespace
} // namespace wo

int
main()
{
    wo::Json payload = wo::Json::object();
    payload.set("timeline", wo::tableToJson(wo::timeline()));
    payload.set("stall_attribution", wo::tableToJson(wo::attribution()));
    payload.set("hop_sweep", wo::tableToJson(wo::sweep()));
    wo::writeBenchArtifact("fig3_stall", std::move(payload));
    return 0;
}

file(REMOVE_RECURSE
  "libwo_obs.a"
)

#include "httpd.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace wo {

namespace {

/** The reason phrase of the status codes this server emits. */
const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 431: return "Request Header Fields Too Large";
      default:  return "Unknown";
    }
}

constexpr std::size_t max_request_bytes = 8 * 1024;

} // namespace

void
HttpServer::handle(const std::string &path, Handler fn)
{
    std::lock_guard<std::mutex> lock(routes_mu_);
    for (auto &r : routes_)
        if (r.first == path) {
            r.second = std::move(fn);
            return;
        }
    routes_.emplace_back(path, std::move(fn));
}

void
HttpServer::stream(const std::string &path, StreamGen gen)
{
    std::lock_guard<std::mutex> lock(routes_mu_);
    for (auto &s : streams_)
        if (s.first == path) {
            s.second = std::move(gen);
            return;
        }
    streams_.emplace_back(path, std::move(gen));
}

bool
HttpServer::start()
{
    if (started_) {
        error_ = "already started";
        return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error_ = strprintf("socket: %s", std::strerror(errno));
        return false;
    }
    // REUSEADDR skips the TIME_WAIT bind dance across quick restarts;
    // a *live* listener on the same port still fails with EADDRINUSE,
    // which is exactly the collision callers must surface.
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in sa = {};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.addr.c_str(), &sa.sin_addr) != 1) {
        error_ = strprintf("bad address '%s'", cfg_.addr.c_str());
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&sa),
               sizeof sa) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        error_ = strprintf("%s:%u: %s", cfg_.addr.c_str(),
                           static_cast<unsigned>(cfg_.port),
                           std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof sa;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&sa), &len);
    bound_port_ = ntohs(sa.sin_port);

    started_ = true;
    stopping_ = false;
    const int n = cfg_.handler_threads > 0 ? cfg_.handler_threads : 1;
    handlers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!started_)
        return;
    if (stopping_.exchange(true))
        return;
    // Unblock accept(): shutdown() forces an in-progress accept to
    // return on Linux; close() frees the port.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    {
        // Notify under the monitors: a waiter that just checked its
        // predicate must not sleep through the only wake-up.
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_cv_.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(stop_mu_);
        stop_cv_.notify_all();
    }
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    // Anything accepted but never picked up: refuse politely by close.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
}

std::uint64_t
HttpServer::requestsServed() const
{
    return served_.load(std::memory_order_relaxed);
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        {
            std::lock_guard<std::mutex> lock(queue_mu_);
            if (stopping_) {
                if (fd >= 0)
                    ::close(fd);
                return;
            }
            if (fd < 0)
                continue; // transient (EINTR, aborted connection)
            pending_.push_back(fd);
        }
        queue_cv_.notify_one();
    }
}

void
HttpServer::handlerLoop()
{
    // One preallocated request buffer per handler thread: the hot loop
    // reuses it for every connection.
    std::string buf;
    buf.reserve(max_request_bytes);
    for (;;) {
        int fd;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !pending_.empty(); });
            if (stopping_)
                return;
            fd = pending_.front();
            pending_.pop_front();
        }
        serveConnection(fd, buf);
        ::close(fd);
    }
}

bool
HttpServer::writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        // MSG_NOSIGNAL: a vanished client must not SIGPIPE the engine.
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

void
HttpServer::serveConnection(int fd, std::string &buf)
{
    served_.fetch_add(1, std::memory_order_relaxed);
    buf.clear();
    // Read until the blank line that ends the header block (bodies are
    // not served; GETs do not carry one).
    char chunk[1024];
    while (buf.find("\r\n\r\n") == std::string::npos &&
           buf.find("\n\n") == std::string::npos) {
        if (buf.size() >= max_request_bytes) {
            const char *msg = "HTTP/1.1 431 Request Header Fields Too "
                              "Large\r\nConnection: close\r\n\r\n";
            writeAll(fd, msg, std::strlen(msg));
            return;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return; // client went away mid-request
        buf.append(chunk, static_cast<std::size_t>(n));
    }

    // Request line: METHOD SP target SP version.
    HttpRequest req;
    const std::size_t eol = buf.find_first_of("\r\n");
    const std::string line = buf.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    int status = 200;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        status = 400;
    } else {
        req.method = line.substr(0, sp1);
        std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t q = target.find('?');
        req.path = target.substr(0, q);
        if (q != std::string::npos)
            req.query = target.substr(q + 1);
    }

    HttpResponse resp;
    if (status == 400) {
        resp.status = 400;
        resp.body = "malformed request\n";
    } else if (req.method != "GET") {
        resp.status = 405;
        resp.body = "only GET is served\n";
    } else {
        Handler handler;
        StreamGen gen;
        {
            std::lock_guard<std::mutex> lock(routes_mu_);
            for (const auto &s : streams_)
                if (s.first == req.path)
                    gen = s.second;
            if (!gen)
                for (const auto &r : routes_)
                    if (r.first == req.path)
                        handler = r.second;
        }
        if (gen) {
            serveStream(fd, gen);
            return;
        }
        if (handler) {
            resp = handler(req);
        } else {
            resp.status = 404;
            resp.body = "no route for " + req.path + "\n";
        }
    }

    std::string head = strprintf(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        resp.status, reasonPhrase(resp.status),
        resp.content_type.c_str(), resp.body.size());
    if (writeAll(fd, head.data(), head.size()))
        writeAll(fd, resp.body.data(), resp.body.size());
}

void
HttpServer::serveStream(int fd, const StreamGen &gen)
{
    const char *head = "HTTP/1.1 200 OK\r\n"
                       "Content-Type: text/event-stream\r\n"
                       "Cache-Control: no-store\r\n"
                       "Connection: close\r\n\r\n";
    if (!writeAll(fd, head, std::strlen(head)))
        return;
    const auto interval = std::chrono::milliseconds(
        cfg_.stream_interval_ms > 0 ? cfg_.stream_interval_ms : 100);
    std::string chunk;
    for (;;) {
        chunk.clear();
        const bool more = gen(chunk);
        if (!chunk.empty() && !writeAll(fd, chunk.data(), chunk.size()))
            return; // client disconnected
        if (!more)
            return;
        // Sleep stop()-aware so shutdown stays prompt; dedicated
        // monitor, so a doze never swallows a new-connection wake.
        std::unique_lock<std::mutex> lock(stop_mu_);
        if (stop_cv_.wait_for(lock, interval,
                              [this] { return stopping_.load(); }))
            return;
    }
}

} // namespace wo

/**
 * @file
 * Experiment E8b -- execution time as a function of the synchronization
 * mix.  The paper's bet: "slow synchronization operations coupled with
 * fast reads and writes will yield better performance than the
 * alternative, where hardware must assume all accesses could be used for
 * synchronization."
 *
 * The SC policy is exactly that alternative (every access is treated as
 * potentially ordering); the weak policies only pay at the declared
 * synchronization points.  As the fraction of synchronization accesses
 * grows, the weak machines' advantage shrinks -- the crossover shape the
 * argument predicts.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    System sys(p, cfg);
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

void
sweep()
{
    std::printf("== E8b: execution time vs synchronization percentage "
                "(2 procs, 40 accesses each, hop latency 10) ==\n");
    Table t({"sync %", "SC", "WO-Def1", "WO-DRF0", "speedup DRF0 vs SC"});
    for (int pct : {0, 5, 10, 25, 50, 75, 100}) {
        // Distinct sync locations per processor pair keep the workload
        // from serializing on one hot line.
        Program p = syntheticMix(2, 8, 4, 40, pct, 2, 7);
        Tick sc = run(p, OrderingPolicy::sc);
        Tick d1 = run(p, OrderingPolicy::wo_def1);
        Tick dn = run(p, OrderingPolicy::wo_drf0);
        t.addRow({strprintf("%d", pct),
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  dn ? strprintf("%.2fx", (double)sc / (double)dn) : "-"});
    }
    t.print();
    std::printf("Read: at 0%% sync the weak machines overlap everything; "
                "at 100%% every access synchronizes and the designs "
                "converge.\n");

    Json payload = Json::object();
    payload.set("sync_ratio_sweep", tableToJson(t));
    writeBenchArtifact("sweep_syncratio", std::move(payload));
}

} // namespace
} // namespace wo

int
main()
{
    wo::sweep();
    return 0;
}

# Empty compiler generated dependencies file for wo_sc.
# This may be replaced when dependencies are built.

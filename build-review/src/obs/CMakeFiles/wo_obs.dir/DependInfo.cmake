
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/artifact.cc" "src/obs/CMakeFiles/wo_obs.dir/artifact.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/artifact.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/obs/CMakeFiles/wo_obs.dir/json.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/wo_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/monitor.cc" "src/obs/CMakeFiles/wo_obs.dir/monitor.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/monitor.cc.o.d"
  "/root/repo/src/obs/obs.cc" "src/obs/CMakeFiles/wo_obs.dir/obs.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/obs.cc.o.d"
  "/root/repo/src/obs/recorder.cc" "src/obs/CMakeFiles/wo_obs.dir/recorder.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/recorder.cc.o.d"
  "/root/repo/src/obs/sampler.cc" "src/obs/CMakeFiles/wo_obs.dir/sampler.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/sampler.cc.o.d"
  "/root/repo/src/obs/validate.cc" "src/obs/CMakeFiles/wo_obs.dir/validate.cc.o" "gcc" "src/obs/CMakeFiles/wo_obs.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/execution/CMakeFiles/wo_execution.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hb/CMakeFiles/wo_hb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/event/CMakeFiles/wo_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "vector_clock.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wo {

void
VectorClock::join(const VectorClock &other)
{
    wo_assert(c_.size() == other.c_.size(), "joining clocks of unequal size");
    for (std::size_t i = 0; i < c_.size(); ++i)
        c_[i] = std::max(c_[i], other.c_[i]);
}

bool
VectorClock::leq(const VectorClock &other) const
{
    wo_assert(c_.size() == other.c_.size(),
              "comparing clocks of unequal size");
    for (std::size_t i = 0; i < c_.size(); ++i)
        if (c_[i] > other.c_[i])
            return false;
    return true;
}

std::string
VectorClock::toString() const
{
    std::string out = "<";
    for (std::size_t i = 0; i < c_.size(); ++i) {
        if (i)
            out += ",";
        out += strprintf("%u", c_[i]);
    }
    out += ">";
    return out;
}

} // namespace wo

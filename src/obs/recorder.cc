#include "obs/recorder.hh"

#include "common/logging.hh"
#include "obs/json.hh"

namespace wo {

const char *flightKindName(FlightKind k)
{
    switch (k) {
    case FlightKind::msg: return "msg";
    case FlightKind::issue: return "issue";
    case FlightKind::commit: return "commit";
    case FlightKind::perform: return "perform";
    case FlightKind::retire: return "retire";
    case FlightKind::stall: return "stall";
    case FlightKind::counter: return "counter";
    case FlightKind::reserve: return "reserve";
    case FlightKind::violation: return "violation";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1)
{
}

std::vector<FlightEvent> FlightRecorder::window() const
{
    std::vector<FlightEvent> out;
    out.reserve(size());
    const std::size_t n = size();
    // Oldest record: where the next overwrite would land, once wrapped.
    const std::size_t start = recorded_ > ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string FlightRecorder::chromeTraceJson(ProcId nprocs) const
{
    Json root = Json::object();
    Json events = Json::array();

    auto thread_name = [](std::uint64_t tid, const std::string &name) {
        Json ev = Json::object();
        ev.set("name", "thread_name");
        ev.set("ph", "M");
        ev.set("pid", std::uint64_t{0});
        ev.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        ev.set("args", std::move(args));
        return ev;
    };
    for (ProcId p = 0; p < nprocs; ++p) {
        events.push(thread_name(2u * p, strprintf("cpu%u ops", p)));
        events.push(thread_name(2u * p + 1, strprintf("cpu%u stalls", p)));
    }
    events.push(thread_name(2u * nprocs, "network"));
    events.push(thread_name(2u * nprocs + 1, "monitor"));

    auto span = [](const std::string &name, std::uint64_t tid, Tick from,
                   Tick to) {
        Json ev = Json::object();
        ev.set("name", name);
        ev.set("ph", "X");
        ev.set("ts", from);
        ev.set("dur", to >= from ? to - from : 0);
        ev.set("pid", std::uint64_t{0});
        ev.set("tid", tid);
        return ev;
    };
    auto instant = [](const std::string &name, std::uint64_t tid, Tick at) {
        Json ev = Json::object();
        ev.set("name", name);
        ev.set("ph", "i");
        ev.set("ts", at);
        ev.set("pid", std::uint64_t{0});
        ev.set("tid", tid);
        ev.set("s", "t");
        return ev;
    };

    for (const FlightEvent &e : window()) {
        const char *label = e.label ? e.label : flightKindName(e.kind);
        switch (e.kind) {
        case FlightKind::msg: {
            Json ev = span(strprintf("%s %u>%lld", label, e.proc,
                                     static_cast<long long>(e.a)),
                           2u * nprocs, e.t, e.t2);
            Json args = Json::object();
            args.set("addr", std::uint64_t{e.addr});
            ev.set("args", std::move(args));
            events.push(std::move(ev));
            break;
        }
        case FlightKind::stall: {
            Json ev = span(strprintf("stall:%s", label), 2u * e.proc + 1,
                           e.t, e.t2);
            Json args = Json::object();
            args.set("req", e.req);
            ev.set("args", std::move(args));
            events.push(std::move(ev));
            break;
        }
        case FlightKind::counter: {
            // A Perfetto counter track sample.
            Json ev = Json::object();
            ev.set("name", strprintf("cpu%u outstanding", e.proc));
            ev.set("ph", "C");
            ev.set("ts", e.t);
            ev.set("pid", std::uint64_t{0});
            ev.set("tid", std::uint64_t{2u * e.proc});
            Json args = Json::object();
            args.set("value", std::int64_t{e.a});
            ev.set("args", std::move(args));
            events.push(std::move(ev));
            break;
        }
        case FlightKind::violation:
            events.push(instant(strprintf("violation:%s", label),
                                2u * nprocs + 1, e.t));
            break;
        case FlightKind::issue:
        case FlightKind::commit:
        case FlightKind::perform:
        case FlightKind::retire:
        case FlightKind::reserve: {
            Json ev = instant(
                e.label ? strprintf("%s:%s", flightKindName(e.kind), e.label)
                        : std::string(flightKindName(e.kind)),
                2u * e.proc, e.t);
            Json args = Json::object();
            args.set("req", e.req);
            if (e.addr != invalid_addr)
                args.set("addr", std::uint64_t{e.addr});
            ev.set("args", std::move(args));
            events.push(std::move(ev));
            break;
        }
        }
    }

    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", "ns");
    Json other = Json::object();
    other.set("source", "wotool flight recorder");
    other.set("window", std::uint64_t{size()});
    other.set("recorded", recorded_);
    other.set("dropped", dropped());
    root.set("otherData", std::move(other));
    return root.dump(1);
}

} // namespace wo

#include "obs/sampler.hh"

#include "common/logging.hh"
#include "event/event_queue.hh"

namespace wo {

Sampler::Sampler(Tick interval) : interval_(interval > 0 ? interval : 1) {}

void Sampler::addProbe(std::string name, std::function<std::uint64_t()> read)
{
    wo_assert(ticks_.empty(), "probes must be added before sampling starts");
    names_.push_back(std::move(name));
    probes_.push_back(std::move(read));
}

void Sampler::sampleNow(Tick now)
{
    ticks_.push_back(now);
    for (const auto &read : probes_)
        values_.push_back(read());
}

void Sampler::scheduleNext(EventQueue &eq)
{
    eq.schedule(interval_, "sampler", [this, &eq] {
        sampleNow(eq.now());
        // Reschedule only while other work is pending, so the sampler
        // never keeps an otherwise-drained queue spinning forever.
        if (eq.pending() > 0)
            scheduleNext(eq);
    });
}

void Sampler::start(EventQueue &eq)
{
    sampleNow(eq.now());
    scheduleNext(eq);
}

std::string Sampler::csv() const
{
    std::string out = "tick";
    for (const std::string &n : names_) {
        out += ',';
        out += n;
    }
    out += '\n';
    const std::size_t w = probes_.size();
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        out += strprintf("%llu",
                         static_cast<unsigned long long>(ticks_[row]));
        for (std::size_t c = 0; c < w; ++c)
            out += strprintf(",%llu", static_cast<unsigned long long>(
                                          values_[row * w + c]));
        out += '\n';
    }
    return out;
}

void Sampler::appendCounterEvents(Json &events) const
{
    const std::size_t w = probes_.size();
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        for (std::size_t c = 0; c < w; ++c) {
            Json ev = Json::object();
            ev.set("name", names_[c]);
            ev.set("ph", "C");
            ev.set("ts", ticks_[row]);
            ev.set("pid", std::uint64_t{0});
            ev.set("tid", std::uint64_t{0});
            Json args = Json::object();
            args.set("value", values_[row * w + c]);
            ev.set("args", std::move(args));
            events.push(std::move(ev));
        }
    }
}

} // namespace wo

# Empty dependencies file for lockset_test.
# This may be replaced when dependencies are built.

/**
 * @file
 * Dynamic memory operations: the records out of which executions, outcomes,
 * happens-before relations and SC-explainability queries are built.
 *
 * Following the paper's conventions (Section 5.1), "reads" cover data reads,
 * read-only synchronization operations and the read component of read-write
 * synchronization operations; symmetrically for writes.  A read-write
 * synchronization operation (TestAndSet) is kept as a single record with
 * both a value-read and a value-written.
 */

#ifndef WO_EXECUTION_MEMORY_OP_HH
#define WO_EXECUTION_MEMORY_OP_HH

#include <string>

#include "common/types.hh"

namespace wo {

/** The five dynamic access classes. */
enum class AccessKind : std::uint8_t
{
    data_read,  //!< ordinary load
    data_write, //!< ordinary store
    sync_read,  //!< read-only synchronization ("Test")
    sync_write, //!< write-only synchronization ("Unset"/"Set")
    sync_rmw,   //!< read-write synchronization ("TestAndSet")
};

/** Printable name of an access kind. */
const char *accessKindName(AccessKind k);

/** One dynamic memory operation of an execution. */
struct MemoryOp
{
    OpId id = invalid_op;   //!< unique per execution
    ProcId proc = 0;        //!< issuing processor
    Addr addr = invalid_addr; //!< accessed location
    AccessKind kind = AccessKind::data_read;
    Value value_read = 0;    //!< value returned (reads and rmw)
    Value value_written = 0; //!< value stored (writes and rmw)
    std::uint32_t po_index = 0; //!< position in the processor's program order
    Tick commit_tick = 0;    //!< commit time in timed runs (0 otherwise)

    /** Has a read component. */
    bool isRead() const
    {
        return kind == AccessKind::data_read ||
               kind == AccessKind::sync_read || kind == AccessKind::sync_rmw;
    }

    /** Has a write component. */
    bool isWrite() const
    {
        return kind == AccessKind::data_write ||
               kind == AccessKind::sync_write || kind == AccessKind::sync_rmw;
    }

    /** Is a synchronization operation. */
    bool isSync() const
    {
        return kind == AccessKind::sync_read ||
               kind == AccessKind::sync_write || kind == AccessKind::sync_rmw;
    }

    /**
     * Two accesses conflict if they access the same location and they are
     * not both reads (paper, Definition 3).
     */
    bool conflictsWith(const MemoryOp &other) const
    {
        return addr == other.addr && (isWrite() || other.isWrite());
    }

    /** e.g. "P1 W(x)=3 @5". */
    std::string toString() const;
};

} // namespace wo

#endif // WO_EXECUTION_MEMORY_OP_HH

file(REMOVE_RECURSE
  "CMakeFiles/verify_drf0impl.dir/verify_drf0impl.cc.o"
  "CMakeFiles/verify_drf0impl.dir/verify_drf0impl.cc.o.d"
  "verify_drf0impl"
  "verify_drf0impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_drf0impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hb_test.dir/hb_test.cc.o"
  "CMakeFiles/hb_test.dir/hb_test.cc.o.d"
  "hb_test"
  "hb_test.pdb"
  "hb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Random program synthesis for property tests and benchmark sweeps.
 *
 * randomDrf0Program builds programs that obey DRF0 *by construction*: every
 * shared region is protected by its own Test-and-Set lock, all data accesses
 * to a region happen inside a critical section of that region's lock, and
 * all remaining accesses go to processor-private locations.  Conflicting
 * accesses are therefore always ordered by happens-before in every
 * idealized execution.  The property tests then assert the paper's central
 * theorem: such programs appear sequentially consistent on every conforming
 * weakly ordered implementation.
 *
 * randomRacyProgram deliberately breaks the discipline, producing non-DRF0
 * programs that expose the weakness of the relaxed machines.
 */

#ifndef WO_PROGRAM_WORKLOAD_HH
#define WO_PROGRAM_WORKLOAD_HH

#include <cstdint>

#include "program/program.hh"

namespace wo {

class Rng;

/** Shape parameters for randomDrf0Program. */
struct Drf0WorkloadCfg
{
    ProcId procs = 2;           //!< processor count
    Addr regions = 1;           //!< lock-protected shared regions
    Addr locs_per_region = 2;   //!< data locations per region
    Addr private_locs = 1;      //!< private locations per processor
    int sections = 2;           //!< critical sections per thread
    int ops_per_section = 2;    //!< data accesses inside each section
    int private_ops = 1;        //!< private accesses between sections
    bool test_and_tas = true;   //!< spin idiom: Test-and-TAS vs bare TAS
    Value work_cycles = 0;      //!< local work inserted between accesses
    std::uint64_t seed = 1;     //!< RNG seed (same seed, same program)
};

/**
 * Generate a lock-disciplined (hence DRF0-obeying) random program.
 * The address map is: [0, regions) are locks, then region data, then
 * per-processor private locations.
 */
Program randomDrf0Program(const Drf0WorkloadCfg &cfg);

/** Shape parameters for randomRacyProgram. */
struct RacyWorkloadCfg
{
    ProcId procs = 2;        //!< processor count
    Addr locs = 2;           //!< shared locations, accessed with no locks
    int ops_per_thread = 3;  //!< loads/stores per thread
    std::uint64_t seed = 1;  //!< RNG seed
};

/**
 * Generate an unsynchronized random program (straight-line loads/stores of
 * distinct immediates).  Almost surely violates DRF0; used to demonstrate
 * that the relaxed machines really produce non-SC results for such code.
 */
Program randomRacyProgram(const RacyWorkloadCfg &cfg);

/**
 * Fuzzing hook: derive a neighboring DRF0 workload shape from @p base
 * by nudging one randomly chosen field within small campaign-friendly
 * bounds (procs 2-4, regions 1-3, sections 1-3, ...) and drawing a
 * fresh generator seed.  The result always describes a valid,
 * DRF0-by-construction program; equal Rng streams derive equal
 * neighbors, so campaign cells stay reproducible from their keys.
 */
Drf0WorkloadCfg mutateDrf0Cfg(const Drf0WorkloadCfg &base, Rng &rng);

/** Fuzzing hook: neighboring racy workload shape (see mutateDrf0Cfg). */
RacyWorkloadCfg mutateRacyCfg(const RacyWorkloadCfg &base, Rng &rng);

/**
 * Generate a straight-line program mixing data accesses with @p sync_ratio
 * percent synchronization accesses on dedicated sync locations.  Used by
 * the timed-throughput sweeps (experiment E8), where exhaustive exploration
 * is not needed and the access mix is the independent variable.
 *
 * @param procs        processor count
 * @param data_locs    ordinary shared locations
 * @param sync_locs    synchronization locations
 * @param ops          memory accesses per thread
 * @param sync_pct     percentage of accesses that are synchronization ops
 * @param work_cycles  local work between consecutive accesses
 * @param seed         RNG seed
 */
Program syntheticMix(ProcId procs, Addr data_locs, Addr sync_locs, int ops,
                     int sync_pct, Value work_cycles, std::uint64_t seed);

} // namespace wo

#endif // WO_PROGRAM_WORKLOAD_HH

file(REMOVE_RECURSE
  "CMakeFiles/wo_event.dir/event_queue.cc.o"
  "CMakeFiles/wo_event.dir/event_queue.cc.o.d"
  "libwo_event.a"
  "libwo_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

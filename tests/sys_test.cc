/**
 * @file
 * Full-system integration tests: programs running on the timed machine
 * under every ordering policy, the Figure-3 stall behaviour, the
 * stall-mode/deadlock design space, and SC-explainability of the traces
 * DRF0 programs produce (the timed half of the central theorem).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "program/builder.hh"
#include "program/litmus.hh"
#include "program/workload.hh"
#include "models/explorer.hh"
#include "models/wo_drf0_model.hh"
#include "sc/sc_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

SystemCfg
cfgFor(OrderingPolicy pol)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    return cfg;
}

const OrderingPolicy all_policies[] = {
    OrderingPolicy::sc, OrderingPolicy::wo_def1, OrderingPolicy::wo_drf0,
    OrderingPolicy::wo_drf0_ro};

class EveryPolicy : public testing::TestWithParam<OrderingPolicy>
{
};

TEST_P(EveryPolicy, MessagePassingSyncDeliversData)
{
    Program p = litmus::messagePassingSync();
    System sys(p, cfgFor(GetParam()));
    auto r = sys.run();
    ASSERT_TRUE(r.completed) << policyName(GetParam());
    EXPECT_EQ(r.outcome.regs[1][1], 1);
}

TEST_P(EveryPolicy, Fig3ReadsOne)
{
    Program p = litmus::fig3Scenario(20);
    System sys(p, cfgFor(GetParam()));
    sys.warmShared(0, {1}); // x shared: the write takes long to perform
    auto r = sys.run();
    ASSERT_TRUE(r.completed) << policyName(GetParam());
    EXPECT_EQ(r.outcome.regs[1][0], 1) << policyName(GetParam());
}

TEST_P(EveryPolicy, LockedCounterExact)
{
    Program p = litmus::lockedCounter(4, 3);
    System sys(p, cfgFor(GetParam()));
    auto r = sys.run();
    ASSERT_TRUE(r.completed) << policyName(GetParam());
    EXPECT_EQ(r.outcome.memory[1], 12) << policyName(GetParam());
}

TEST_P(EveryPolicy, BarrierPublishesPreBarrierWrite)
{
    Program p = litmus::barrier(4);
    System sys(p, cfgFor(GetParam()));
    auto r = sys.run();
    ASSERT_TRUE(r.completed) << policyName(GetParam());
    for (ProcId q = 0; q < 4; ++q)
        EXPECT_EQ(r.outcome.regs[q][3], 42) << policyName(GetParam());
}

TEST_P(EveryPolicy, PingPongCompletes)
{
    Program p = litmus::pingPong(3);
    System sys(p, cfgFor(GetParam()));
    auto r = sys.run();
    ASSERT_TRUE(r.completed) << policyName(GetParam());
    EXPECT_EQ(r.outcome.memory[0], 6) << "2 threads x 3 rounds";
}

TEST_P(EveryPolicy, TimedExecutionOfDrf0ProgramIsSC)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Drf0WorkloadCfg wl;
        wl.seed = seed;
        wl.procs = 3;
        wl.regions = 2;
        wl.sections = 2;
        wl.ops_per_section = 3;
        wl.private_ops = 2;
        Program p = randomDrf0Program(wl);
        System sys(p, cfgFor(GetParam()));
        auto r = sys.run();
        ASSERT_TRUE(r.completed)
            << policyName(GetParam()) << " seed " << seed;
        ScCheckerCfg sc_cfg;
        sc_cfg.expected_final = r.outcome.memory;
        auto sc = checkSequentialConsistency(r.execution, sc_cfg);
        EXPECT_TRUE(sc.sc) << policyName(GetParam()) << " seed " << seed
                           << "\n" << r.execution.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, EveryPolicy,
                         testing::ValuesIn(all_policies),
                         [](const auto &info) {
                             std::string n = policyName(info.param);
                             for (auto &c : n)
                                 if (c == '-' || c == '+')
                                     c = '_';
                             return n;
                         });

TEST(Fig3Timing, Def1StallsReleaserNewImplementationDoesNot)
{
    Program p = litmus::fig3Scenario(0);
    auto run = [&](OrderingPolicy pol) {
        System sys(p, cfgFor(pol));
        sys.warmShared(0, {1});
        auto r = sys.run();
        EXPECT_TRUE(r.completed);
        return r;
    };
    auto def1 = run(OrderingPolicy::wo_def1);
    auto drf0 = run(OrderingPolicy::wo_drf0);

    // Locate P0's W(x) and Unset(s) timing records.
    auto find_op = [](const std::vector<OpTiming> &v, AccessKind k) {
        for (const auto &t : v)
            if (t.kind == k)
                return t;
        ADD_FAILURE() << "op not found";
        return OpTiming{};
    };
    auto d1_w = find_op(def1.timings[0], AccessKind::data_write);
    auto d1_s = find_op(def1.timings[0], AccessKind::sync_write);
    auto n_w = find_op(drf0.timings[0], AccessKind::data_write);
    auto n_s = find_op(drf0.timings[0], AccessKind::sync_write);

    // Definition 1: the Unset may not issue before W(x) globally performs.
    EXPECT_GE(d1_s.issued, d1_w.performed);
    // The new implementation issues the Unset immediately.
    EXPECT_LT(n_s.issued, n_w.performed);
    // And P0 finishes earlier under the new implementation.
    EXPECT_LT(drf0.timings[0].back().committed,
              def1.timings[0].back().committed);
    // Both implementations hold P1's read of x until after W(x) performs;
    // the data value must be correct in both.
    EXPECT_EQ(def1.outcome.regs[1][0], 1);
    EXPECT_EQ(drf0.outcome.regs[1][0], 1);
}

TEST(Fig3Timing, ReservationBlocksP1UntilWritePerformed)
{
    Program p = litmus::fig3Scenario(0);
    System sys(p, cfgFor(OrderingPolicy::wo_drf0));
    sys.warmShared(0, {1});
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    // P0's W(x) perform time bounds P1's successful TAS commit from below.
    Tick w_performed = 0;
    for (const auto &t : r.timings[0])
        if (t.kind == AccessKind::data_write)
            w_performed = t.performed;
    // The *last* TAS of P1 is the successful acquisition.
    Tick tas_commit = 0;
    for (const auto &t : r.timings[1])
        if (t.kind == AccessKind::sync_rmw)
            tas_commit = t.committed;
    ASSERT_GT(w_performed, 0u);
    ASSERT_GT(tas_commit, 0u);
    EXPECT_GE(tas_commit, w_performed)
        << "P1 may not acquire s before P0's W(x) is globally performed";
}

TEST(StallModes, CrossedReleaseAcquireDeadlocksInPureQueueMode)
{
    // P0: W(d0); release A; acquire B.   P1: W(d1); release B; acquire A.
    // With queue-mode reserve stalls and no miss throttle, the letter of
    // Section 5.3 deadlocks here; the paper's NACK-retry and bounded-miss
    // options both resolve it.  (See DESIGN.md.)
    const Addr d0 = 0, d1 = 1, A = 2, B = 3;
    auto make = [&] {
        ProgramBuilder b("crossed", 2);
        b.thread(0).store(d0, 1).release(A).acquireTasOnly(B).halt();
        b.thread(1).store(d1, 1).release(B).acquireTasOnly(A).halt();
        b.initLocation(A, 0).initLocation(B, 0);
        return b.build();
    };
    Program p = make();

    {
        SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
        cfg.cache.stall_mode = ReserveStallMode::queue;
        System sys(p, cfg);
        sys.warmShared(d0, {1});
        sys.warmShared(d1, {0});
        auto r = sys.run();
        EXPECT_TRUE(r.deadlocked) << "pure queue mode should deadlock";
    }
    {
        SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
        cfg.cache.stall_mode = ReserveStallMode::nack;
        System sys(p, cfg);
        sys.warmShared(d0, {1});
        sys.warmShared(d1, {0});
        auto r = sys.run();
        EXPECT_TRUE(r.completed) << "nack-retry must complete";
    }
    {
        SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
        cfg.cache.stall_mode = ReserveStallMode::queue;
        cfg.cache.reserved_miss_limit = 0;
        System sys(p, cfg);
        sys.warmShared(d0, {1});
        sys.warmShared(d1, {0});
        auto r = sys.run();
        EXPECT_TRUE(r.completed)
            << "queue mode with the bounded-miss refinement must complete";
    }
}

TEST(StallModes, QueueModeWorksForPlainLocking)
{
    SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
    cfg.cache.stall_mode = ReserveStallMode::queue;
    Program p = litmus::lockedCounter(3, 2);
    System sys(p, cfg);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.outcome.memory[1], 6);
}

TEST(Policies, ScPolicySerializesEverything)
{
    // Under SC every access waits for the previous one: the data issue
    // stalls must be nonzero for a two-miss program.
    ProgramBuilder b("two-misses", 1);
    b.thread(0).store(0, 1).store(1, 2).halt();
    Program p = b.build();
    System sys(p, cfgFor(OrderingPolicy::sc));
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.cpu_stat_total("perform_stall_cycles"), 0u)
        << "SC must block on each store until globally performed";

    System sys2(p, cfgFor(OrderingPolicy::wo_drf0));
    auto r2 = sys2.run();
    ASSERT_TRUE(r2.completed);
    EXPECT_EQ(r2.cpu_stat_total("perform_stall_cycles"), 0u);
    EXPECT_LT(r2.finish_tick, r.finish_tick)
        << "overlapping stores must beat SC";
}

TEST(Policies, ReadOnlySyncAvoidsExclusiveSerialization)
{
    // Spinning on a flag with read-only sync loads: under wo_drf0 every
    // Test is a GetX (serialized through exclusive ownership); under
    // wo_drf0_ro the spins are shared-line hits after the first fill.
    Program p = litmus::messagePassingSync();
    auto write_misses = [](const Cache &c) -> std::uint64_t {
        auto it = c.stats().counters().find("write_misses");
        return it == c.stats().counters().end() ? 0 : it->second.value();
    };
    SystemCfg base = cfgFor(OrderingPolicy::wo_drf0);
    System s1(p, base);
    auto r1 = s1.run();
    ASSERT_TRUE(r1.completed);
    const auto wm1 = write_misses(s1.cache(1));

    SystemCfg ro = cfgFor(OrderingPolicy::wo_drf0_ro);
    System s2(p, ro);
    auto r2 = s2.run();
    ASSERT_TRUE(r2.completed);
    const auto wm2 = write_misses(s2.cache(1));
    EXPECT_LT(wm2, wm1)
        << "read-only syncs must stop being exclusive (write) misses";
    EXPECT_EQ(r2.outcome.regs[1][1], 1) << "and stay correct";
}

TEST(Policies, RacyProgramCanGoNonScOnWeakMachine)
{
    // Figure 1 on the timed weak machine with warm caches can produce the
    // both-killed outcome for *some* timing; rather than rely on one
    // timing, check that the machine at least completes and that any
    // outcome it produces would be flagged correctly by the SC checker
    // when it is non-SC.  With zero jitter and symmetric latencies the
    // writes overlap the reads, which does produce (0,0).
    Program p = litmus::fig1StoreBuffer();
    SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
    System sys(p, cfg);
    sys.warmShared(litmus::loc_x, {0, 1});
    sys.warmShared(litmus::loc_y, {0, 1});
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.outcome.regs[0][0], 0);
    EXPECT_EQ(r.outcome.regs[1][0], 0);
    EXPECT_FALSE(isSequentiallyConsistent(r.execution))
        << "both-killed must be flagged non-SC";
}

TEST(Policies, ScPolicyKeepsFig1Sc)
{
    Program p = litmus::fig1StoreBuffer();
    System sys(p, cfgFor(OrderingPolicy::sc));
    sys.warmShared(litmus::loc_x, {0, 1});
    sys.warmShared(litmus::loc_y, {0, 1});
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(isSequentiallyConsistent(r.execution));
    EXPECT_FALSE(r.outcome.regs[0][0] == 0 && r.outcome.regs[1][0] == 0);
}

TEST(CrossValidation, TimedOutcomesWithinAbstractModel)
{
    // The timed Section-5.3 machine should be an instance of the abstract
    // Section-5 machine: every outcome the protocol produces (across
    // jitter seeds) must appear in the abstract model's exhaustive
    // outcome set.
    for (Program p :
         {litmus::fig1StoreBuffer(), litmus::messagePassingSync(),
          litmus::twoPlusTwoW(), litmus::sShape(), litmus::wrc()}) {
        WoDrf0Model abstract(p, /*max_pool=*/8);
        auto reference = exploreOutcomes(abstract);
        ASSERT_FALSE(reference.truncated);
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
            cfg.net.jitter = 7;
            cfg.net.seed = seed;
            System sys(p, cfg);
            if (p.name() == "fig1-store-buffer") {
                sys.warmShared(litmus::loc_x, {0, 1});
                sys.warmShared(litmus::loc_y, {0, 1});
            }
            auto r = sys.run();
            ASSERT_TRUE(r.completed) << p.name();
            EXPECT_TRUE(reference.outcomes.count(r.outcome))
                << p.name() << " seed " << seed << ": timed outcome "
                << r.outcome.toString()
                << " not reachable on the abstract machine";
        }
    }
}

TEST(Mlp, SingleMshrRestoresSequentialConsistency)
{
    // max_outstanding == 1 is exactly the Scheurich/Dubois SC issue rule,
    // so even the weak policy must stay SC on the racy Figure-1 program.
    Program p = litmus::fig1StoreBuffer();
    SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
    cfg.cpu.max_outstanding = 1;
    System sys(p, cfg);
    sys.warmShared(litmus::loc_x, {0, 1});
    sys.warmShared(litmus::loc_y, {0, 1});
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(isSequentiallyConsistent(r.execution));
    EXPECT_FALSE(r.outcome.regs[0][0] == 0 && r.outcome.regs[1][0] == 0);
}

TEST(Mlp, LimitIsRespectedAndCorrect)
{
    Program p = litmus::lockedCounter(3, 2);
    for (int mlp : {1, 2, 3}) {
        SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
        cfg.cpu.max_outstanding = mlp;
        System sys(p, cfg);
        auto r = sys.run();
        ASSERT_TRUE(r.completed) << "mlp " << mlp;
        EXPECT_EQ(r.outcome.memory[1], 6) << "mlp " << mlp;
    }
}

TEST(Determinism, SameSeedSameResult)
{
    Program p = litmus::lockedCounter(3, 2);
    SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
    cfg.net.jitter = 9;
    cfg.net.seed = 77;
    System a(p, cfg), b(p, cfg);
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_EQ(ra.finish_tick, rb.finish_tick);
    EXPECT_TRUE(ra.outcome == rb.outcome);
}

TEST(EventKernel, UntracedRunRendersNoLabels)
{
    // Every scheduling site in the simulator hands the queue a lazy
    // label; a full-system run with no trace and non-verbose logging
    // must never pay to render one.
    Program p = litmus::lockedCounter(4, 3);
    SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
    cfg.net.jitter = 3;
    const std::uint64_t before = EventLabel::lazyMaterializations();
    System sys(p, cfg);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(sys.eventQueue().executed(), 500u);
    EXPECT_EQ(EventLabel::lazyMaterializations() - before, 0u);
}

#ifdef WO_HAVE_LEGACY_EVENT_QUEUE
TEST(EventKernel, SeededLivelockDetectsIdenticallyOnBothKernels)
{
    // The drain loop's livelock detector (event budget + NACK spin) must
    // survive the kernel swap: a machine wedged by the dropped
    // reserve-clear fault has to be flagged at the same point in
    // simulated time by the calendar queue and the legacy heap.
    const char *const leak = R"(program leak
thread 0
  tas r7 lock
  st data 1
  syncst lock 0
thread 1
  work 300
  tas r7 lock
  syncst lock 0
)";
    AsmResult a = assembleString(leak);
    ASSERT_TRUE(a.ok());

    auto wedge = [&](EventQueueKind kind) {
        SystemCfg cfg = cfgFor(OrderingPolicy::wo_drf0);
        cfg.queue = kind;
        cfg.cache.bug_drop_reserve_clear = true;
        cfg.max_events = 50'000; // the stuck machine would spin forever
        cfg.quiet = true;
        System sys(*a.program, cfg);
        SystemResult r = sys.run();
        EXPECT_FALSE(r.completed);
        EXPECT_TRUE(r.livelocked);
        return std::make_pair(r.drain_tick, sys.eventQueue().now());
    };
    const auto calendar = wedge(EventQueueKind::calendar);
    const auto legacy = wedge(EventQueueKind::legacy_heap);
    EXPECT_EQ(calendar, legacy);
}
#endif // WO_HAVE_LEGACY_EVENT_QUEUE

} // namespace
} // namespace wo

/**
 * @file
 * A point-to-point interconnection network with configurable latency and
 * optional per-message jitter.  Delivery between a given (source,
 * destination) pair is FIFO -- the protocol relies on it -- but messages on
 * different pairs race freely, which is the "general interconnection
 * network" of the paper's implementation model: no global ordering and no
 * atomicity of transactions.
 */

#ifndef WO_COHERENCE_NETWORK_HH
#define WO_COHERENCE_NETWORK_HH

#include <functional>
#include <map>
#include <vector>

#include "coherence/message.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "event/event_queue.hh"

namespace wo {

/** Anything that can receive protocol messages. */
class MsgHandler
{
  public:
    virtual ~MsgHandler() = default;

    /** Deliver @p msg to this node. */
    virtual void receive(const Message &msg) = 0;
};

/** Network configuration. */
struct NetworkCfg
{
    Tick hop_latency = 10;  //!< base one-way latency
    Tick jitter = 0;        //!< uniform extra delay in [0, jitter]
    std::uint64_t seed = 1; //!< jitter RNG seed
};

/** The interconnect. */
class Network
{
  public:
    /**
     * @param eq   the event queue driving the simulation
     * @param cfg  latency parameters
     */
    Network(EventQueue &eq, const NetworkCfg &cfg);

    /** Register the handler for node @p id (must outlive the network). */
    void attach(NodeId id, MsgHandler *handler);

    /** Send @p msg from msg.src to msg.dst after the configured latency. */
    void send(Message msg);

    /** Messages currently on the wire (sent, not yet delivered). */
    std::uint64_t inFlight() const { return in_flight_; }

    /** Messages sent so far. */
    const StatGroup &stats() const { return stats_; }

    /** Mutable statistics access. */
    StatGroup &stats() { return stats_; }

  private:
    /** FIFO delivery within a pair despite jitter. */
    Tick nextDepartureSlot(NodeId src, NodeId dst, Tick earliest);

    EventQueue &eq_;
    NetworkCfg cfg_;
    Rng rng_;
    std::vector<MsgHandler *> handlers_;
    // Last scheduled delivery tick per (src,dst) pair, to keep FIFO order.
    std::map<std::pair<NodeId, NodeId>, Tick> last_delivery_;
    std::uint64_t in_flight_ = 0; //!< sent, not yet delivered
    StatGroup stats_;
};

} // namespace wo

#endif // WO_COHERENCE_NETWORK_HH

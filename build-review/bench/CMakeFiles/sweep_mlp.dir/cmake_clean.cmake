file(REMOVE_RECURSE
  "CMakeFiles/sweep_mlp.dir/sweep_mlp.cc.o"
  "CMakeFiles/sweep_mlp.dir/sweep_mlp.cc.o.d"
  "sweep_mlp"
  "sweep_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for litmus_lab.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/event_test[1]_include.cmake")
include("/root/repo/build-review/tests/event_alloc_test[1]_include.cmake")
include("/root/repo/build-review/tests/kernel_equiv_test[1]_include.cmake")
include("/root/repo/build-review/tests/program_test[1]_include.cmake")
include("/root/repo/build-review/tests/execution_test[1]_include.cmake")
include("/root/repo/build-review/tests/hb_test[1]_include.cmake")
include("/root/repo/build-review/tests/sc_test[1]_include.cmake")
include("/root/repo/build-review/tests/models_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/coherence_test[1]_include.cmake")
include("/root/repo/build-review/tests/sys_test[1]_include.cmake")
include("/root/repo/build-review/tests/lemma1_test[1]_include.cmake")
include("/root/repo/build-review/tests/asm_test[1]_include.cmake")
include("/root/repo/build-review/tests/lockset_test[1]_include.cmake")
include("/root/repo/build-review/tests/litmus_matrix_test[1]_include.cmake")
include("/root/repo/build-review/tests/directory_test[1]_include.cmake")
include("/root/repo/build-review/tests/dot_test[1]_include.cmake")
include("/root/repo/build-review/tests/conditions_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/doall_test[1]_include.cmake")
include("/root/repo/build-review/tests/cpu_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/soak_test[1]_include.cmake")
include("/root/repo/build-review/tests/obs_test[1]_include.cmake")
include("/root/repo/build-review/tests/monitor_test[1]_include.cmake")
include("/root/repo/build-review/tests/campaign_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/lemma1_test.dir/lemma1_test.cc.o"
  "CMakeFiles/lemma1_test.dir/lemma1_test.cc.o.d"
  "lemma1_test"
  "lemma1_test.pdb"
  "lemma1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

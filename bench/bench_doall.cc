/**
 * @file
 * Experiment E14 -- the do-all paradigm (the paper's conclusion:
 * synchronization models "optimized for particular software paradigms,
 * such as ... parallelism only from do-all loops").
 *
 * Phased data-parallel workloads with barrier separation: within a phase
 * every access is ordinary (no locks at all), so the weak machines
 * overlap the whole phase body and pay only at the barrier.  This is the
 * software shape for which weak ordering was designed; the table shows
 * the gap to SC at its widest, plus the structural-vs-semantic checking
 * cost comparison (the paradigm's payoff: DRF0 certification in
 * microseconds instead of exponential search).
 */

#include <chrono>
#include <cstdio>

#include "common/table.hh"
#include "core/doall.hh"
#include "core/drf0_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    System sys(p, cfg);
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

void
perfTable()
{
    std::printf("== E14: phased do-all workloads ==\n");
    Table t({"threads", "phases", "ops/phase", "SC", "WO-Def1", "WO-DRF0",
             "DRF0 vs SC"});
    struct Shape
    {
        ProcId threads;
        std::size_t phases;
        int ops;
    };
    for (Shape s : {Shape{2, 2, 4}, Shape{4, 3, 4}, Shape{8, 3, 6},
                    Shape{8, 5, 8}}) {
        DoallPlan plan =
            randomDoallPlan(s.threads, s.phases,
                            static_cast<Addr>(s.threads * 4), s.ops, 42);
        Program p = buildPhased(plan);
        Tick sc = run(p, OrderingPolicy::sc);
        Tick d1 = run(p, OrderingPolicy::wo_def1);
        Tick dn = run(p, OrderingPolicy::wo_drf0);
        t.addRow({strprintf("%u", s.threads),
                  strprintf("%zu", s.phases), strprintf("%d", s.ops),
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  dn ? strprintf("%.2fx", (double)sc / (double)dn) : "-"});
    }
    t.print();
    std::printf("\n");
}

void
checkCostTable()
{
    std::printf("== E14b: paradigm-specialized checking vs general DRF0 "
                "checking ==\n");
    Table t({"plan", "structural check", "exhaustive DRF0 check",
             "verdicts agree"});
    for (std::uint64_t seed : {1, 2, 3}) {
        DoallPlan plan = randomDoallPlan(2, 1, 4, 2, seed);
        Program p = buildPhased(plan);

        auto t0 = std::chrono::steady_clock::now();
        auto structural = checkDoallDiscipline(plan);
        auto t1 = std::chrono::steady_clock::now();
        auto semantic = checkDrf0(p);
        auto t2 = std::chrono::steady_clock::now();

        auto us = [](auto a, auto b) {
            return std::chrono::duration_cast<std::chrono::microseconds>(
                       b - a)
                .count();
        };
        t.addRow({plan.name, strprintf("%lld us", (long long)us(t0, t1)),
                  strprintf("%lld us", (long long)us(t1, t2)),
                  structural.valid == semantic.obeys ? "yes" : "NO"});
    }
    t.print();
    std::printf("Read: declaring the paradigm turns race-freedom into a "
                "per-phase set-disjointness check.\n");
}

} // namespace
} // namespace wo

int
main()
{
    wo::perfTable();
    wo::checkCostTable();
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/wo_hb.dir/closure.cc.o"
  "CMakeFiles/wo_hb.dir/closure.cc.o.d"
  "CMakeFiles/wo_hb.dir/dot.cc.o"
  "CMakeFiles/wo_hb.dir/dot.cc.o.d"
  "CMakeFiles/wo_hb.dir/fig2.cc.o"
  "CMakeFiles/wo_hb.dir/fig2.cc.o.d"
  "CMakeFiles/wo_hb.dir/happens_before.cc.o"
  "CMakeFiles/wo_hb.dir/happens_before.cc.o.d"
  "CMakeFiles/wo_hb.dir/lemma1.cc.o"
  "CMakeFiles/wo_hb.dir/lemma1.cc.o.d"
  "CMakeFiles/wo_hb.dir/race.cc.o"
  "CMakeFiles/wo_hb.dir/race.cc.o.d"
  "CMakeFiles/wo_hb.dir/vector_clock.cc.o"
  "CMakeFiles/wo_hb.dir/vector_clock.cc.o.d"
  "libwo_hb.a"
  "libwo_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

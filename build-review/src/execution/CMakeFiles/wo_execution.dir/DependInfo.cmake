
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/execution/execution.cc" "src/execution/CMakeFiles/wo_execution.dir/execution.cc.o" "gcc" "src/execution/CMakeFiles/wo_execution.dir/execution.cc.o.d"
  "/root/repo/src/execution/memory_op.cc" "src/execution/CMakeFiles/wo_execution.dir/memory_op.cc.o" "gcc" "src/execution/CMakeFiles/wo_execution.dir/memory_op.cc.o.d"
  "/root/repo/src/execution/trace_io.cc" "src/execution/CMakeFiles/wo_execution.dir/trace_io.cc.o" "gcc" "src/execution/CMakeFiles/wo_execution.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_doall.
# This may be replaced when dependencies are built.

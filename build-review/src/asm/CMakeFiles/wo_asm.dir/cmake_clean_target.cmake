file(REMOVE_RECURSE
  "libwo_asm.a"
)

/**
 * @file
 * A miniature bank on the weakly ordered multiprocessor: accounts are
 * lock-protected (one lock per account, two-phase, address-ordered to
 * avoid deadlock) and tellers transfer money concurrently.  Money must be
 * conserved under every ordering policy -- the application-level face of
 * the Definition-2 contract: the program is data-race-free by lock
 * discipline, so the weak machine owes it sequential consistency, and
 * sequentially consistent transfers conserve the total.
 *
 * The static lockset certifier checks the discipline before the runs.
 */

#include <cstdio>

#include "common/random.hh"
#include "common/table.hh"
#include "core/lockset.hh"
#include "program/builder.hh"
#include "sys/system.hh"

namespace wo {
namespace {

struct BankShape
{
    ProcId tellers = 4;
    int accounts = 4;
    int transfers = 3; //!< per teller
    Value opening = 100;
    std::uint64_t seed = 2024;
};

/**
 * Address map: locks at [0, accounts), balances at [accounts, 2*accounts).
 */
Program
bankProgram(const BankShape &shape)
{
    Rng rng(shape.seed);
    ProgramBuilder b("bank", shape.tellers);
    const Addr lock_base = 0;
    const Addr bal_base = static_cast<Addr>(shape.accounts);
    for (ProcId teller = 0; teller < shape.tellers; ++teller) {
        auto &t = b.thread(teller);
        for (int k = 0; k < shape.transfers; ++k) {
            int from = static_cast<int>(rng.below(shape.accounts));
            int to = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(shape.accounts - 1)));
            if (to >= from)
                ++to;
            const Value amount = rng.range(1, 10);
            // Two-phase, address-ordered locking.
            const int lo = std::min(from, to), hi = std::max(from, to);
            t.acquire(lock_base + static_cast<Addr>(lo));
            t.acquire(lock_base + static_cast<Addr>(hi));
            // from -= amount; to += amount.
            t.load(0, bal_base + static_cast<Addr>(from));
            t.addi(0, 0, -amount);
            t.storeReg(bal_base + static_cast<Addr>(from), 0);
            t.load(1, bal_base + static_cast<Addr>(to));
            t.addi(1, 1, amount);
            t.storeReg(bal_base + static_cast<Addr>(to), 1);
            t.release(lock_base + static_cast<Addr>(hi));
            t.release(lock_base + static_cast<Addr>(lo));
            t.work(rng.range(1, 8)); // think time
        }
        t.halt();
    }
    for (int a = 0; a < shape.accounts; ++a) {
        b.nameLocation(lock_base + static_cast<Addr>(a),
                       strprintf("L%d", a));
        b.nameLocation(bal_base + static_cast<Addr>(a),
                       strprintf("acct%d", a));
        b.initLocation(bal_base + static_cast<Addr>(a), shape.opening);
    }
    return b.build();
}

void
runBank()
{
    BankShape shape;
    Program prog = bankProgram(shape);
    const Value expected_total =
        shape.opening * static_cast<Value>(shape.accounts);

    std::printf("bank: %u tellers x %d transfers over %d accounts "
                "(opening balance %lld each)\n\n",
                shape.tellers, shape.transfers, shape.accounts,
                static_cast<long long>(shape.opening));

    auto cert = checkLockDiscipline(prog);
    std::printf("static lock discipline: %s\n",
                cert.certified ? "CERTIFIED (program is data-race-free)"
                               : "NOT certified");
    if (!cert.certified)
        for (const auto &i : cert.issues)
            std::printf("  %s\n", i.toString(prog).c_str());
    std::printf("\n");

    Table t({"policy", "exec time", "total money", "conserved?"});
    for (OrderingPolicy pol :
         {OrderingPolicy::sc, OrderingPolicy::wo_def1,
          OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro}) {
        SystemCfg cfg;
        cfg.policy = pol;
        cfg.net.hop_latency = 10;
        System sys(prog, cfg);
        auto r = sys.run();
        Value total = 0;
        for (int a = 0; a < shape.accounts; ++a)
            total += r.outcome.memory[static_cast<Addr>(shape.accounts) +
                                      static_cast<Addr>(a)];
        t.addRow({policyName(pol),
                  r.completed
                      ? strprintf("%llu",
                                  (unsigned long long)r.finish_tick)
                      : "DNF",
                  strprintf("%lld", static_cast<long long>(total)),
                  total == expected_total ? "yes" : "NO -- BUG"});
    }
    t.print();
    std::printf("\nBecause the tellers are lock-disciplined (DRF0), the "
                "weakly ordered machines must conserve money exactly as "
                "SC does -- while finishing sooner.\n");
}

} // namespace
} // namespace wo

int
main()
{
    wo::runBank();
    return 0;
}

/**
 * @file
 * An explicit-transitive-closure implementation of happens-before, used as
 * an independent oracle against the vector-clock HbRelation in property
 * tests, and to expose the raw po/so edge lists for visualisation.
 *
 * Complexity is O(V * E / 64) via bitset reachability -- fine for the
 * execution sizes the laboratory handles, and kept deliberately simple so
 * it can serve as ground truth.
 */

#ifndef WO_HB_CLOSURE_HH
#define WO_HB_CLOSURE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "execution/execution.hh"
#include "hb/happens_before.hh"

namespace wo {

/** Ground-truth hb via explicit edges + bitset reachability. */
class HbClosure
{
  public:
    /** Build for @p exec with the given synchronization flavor. */
    explicit HbClosure(const Execution &exec,
                       HbRelation::SyncFlavor flavor =
                           HbRelation::SyncFlavor::drf0);

    /** True iff op a happens-before op b. */
    bool ordered(OpId a, OpId b) const;

    /** The direct program-order edges (successive ops of one processor). */
    const std::vector<std::pair<OpId, OpId>> &poEdges() const
    {
        return po_edges_;
    }

    /** The direct synchronization-order edges. */
    const std::vector<std::pair<OpId, OpId>> &soEdges() const
    {
        return so_edges_;
    }

  private:
    std::size_t words_;
    // reach_[a] bitset: which ops are reachable (strictly after) from a.
    std::vector<std::vector<std::uint64_t>> reach_;
    std::vector<std::pair<OpId, OpId>> po_edges_;
    std::vector<std::pair<OpId, OpId>> so_edges_;
};

} // namespace wo

#endif // WO_HB_CLOSURE_HH

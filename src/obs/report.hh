/**
 * @file
 * The static campaign dashboard: `wotool report <out-dir>` merges the
 * journal, the summary JSON, the failure evidence bundles and any
 * BENCH_*.json artifacts into one self-contained report.html.
 *
 * Self-contained means exactly that: inline CSS and JS, no CDN, no
 * external images -- the happens-before witnesses embed as the SVG the
 * evidence dump already rendered (see hb/dot.hh), so the file mails,
 * attaches to CI, and opens offline.  Sections:
 *
 *  - headline stat tiles (cells, verdict split, throughput, tails)
 *  - the outcome matrix: program family x ordering policy, each cell
 *    the verdict census of every journal cell that crossed the two
 *  - the per-cell latency histogram (from journaled wall times)
 *  - the per-lane span decomposition (from campaign.summary.json)
 *  - the violation browser: every deduplicated failure with its
 *    shrunk .wo reproducer and embedded hb witness SVG
 *  - bench artifact tables (BENCH_*.json found in the out dir or
 *    passed explicitly)
 */

#ifndef WO_OBS_REPORT_HH
#define WO_OBS_REPORT_HH

#include <string>
#include <vector>

namespace wo {

/** Report configuration (the `wotool report` surface). */
struct ReportCfg
{
    std::string out_dir;   //!< campaign output directory (required)
    std::string html_path; //!< default: <out_dir>/report.html
    /** Extra bench artifacts; BENCH_*.json inside out_dir are found
     *  automatically. */
    std::vector<std::string> bench_files;
    std::string title = "campaign report";
};

/**
 * Build the dashboard HTML from whatever the out dir holds.  Returns
 * empty and sets @p error when there is nothing to report (no journal
 * and no summary).
 */
std::string buildCampaignReportHtml(const ReportCfg &cfg,
                                    std::string *error = nullptr);

/** Build and write; returns the path written, or "" with @p error. */
std::string writeCampaignReport(const ReportCfg &cfg,
                                std::string *error = nullptr);

} // namespace wo

#endif // WO_OBS_REPORT_HH

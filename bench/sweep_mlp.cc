/**
 * @file
 * Experiment E12 -- memory-level parallelism: how many outstanding
 * accesses does weak ordering actually need?
 *
 * The paper's opening motivation is that sequential consistency forbids
 * "write buffers, instruction execution overlap, out-of-order memory
 * accesses and lockup-free caches [Kro81]".  This sweep bounds the number
 * of simultaneously outstanding accesses per processor (the lockup-free
 * cache's MSHR count) and shows: SC is insensitive (it never overlaps
 * anyway -- max_outstanding = 1 IS sequential consistency's issue rule),
 * while the weak policies' gains saturate after a few entries.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol, int mlp)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 15;
    cfg.cpu.max_outstanding = mlp;
    System sys(p, cfg);
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

void
sweep()
{
    // Write-heavy, lock-light workload: lots of overlap opportunity.
    Program p = syntheticMix(4, 12, 2, 30, 8, 1, 99);
    std::printf("== E12: execution time vs outstanding-access limit "
                "(4 procs, 30 accesses each, 8%% sync) ==\n");
    Table t({"MSHRs", "SC", "WO-Def1", "WO-DRF0", "DRF0 gain vs 1"});
    Tick base_drf0 = 0;
    for (int mlp : {1, 2, 4, 8, 16, 0}) {
        Tick sc = run(p, OrderingPolicy::sc, mlp);
        Tick d1 = run(p, OrderingPolicy::wo_def1, mlp);
        Tick dn = run(p, OrderingPolicy::wo_drf0, mlp);
        if (mlp == 1)
            base_drf0 = dn;
        t.addRow({mlp ? strprintf("%d", mlp) : "unlimited",
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  (base_drf0 && dn)
                      ? strprintf("%.2fx",
                                  (double)base_drf0 / (double)dn)
                      : "-"});
    }
    t.print();
    std::printf("Read: with one MSHR all policies serialize misses "
                "identically; the weak policies convert extra MSHRs into "
                "overlap, SC cannot.\n");

    Json payload = Json::object();
    payload.set("mshr_sweep", tableToJson(t));
    writeBenchArtifact("sweep_mlp", std::move(payload));
}

} // namespace
} // namespace wo

int
main()
{
    wo::sweep();
    return 0;
}

file(REMOVE_RECURSE
  "libwo_common.a"
)

/**
 * @file
 * Experiment E6 -- Section 6's performance discussion of repeated
 * synchronization testing:
 *
 *   "One very important case where the example implementation is likely
 *    to be slower ... occurs when software performs repeated testing of a
 *    synchronization variable (e.g., the Test from a Test-and-TestAndSet
 *    ...).  The example implementation serializes all these
 *    synchronization operations, treating them as writes. ... the
 *    unnecessary serialization can be avoided by improving on DRF0 ...
 *    the read-only synchronization operations need not be serialized."
 *
 * Tables: contended lock-based counters under every policy, with bare-TAS
 * vs Test-and-TAS spinning, base vs read-only-sync-refined machines.  The
 * refined machine turns spin Tests into shared-line hits, cutting write
 * misses and execution time.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/litmus.hh"
#include "sys/system.hh"

namespace wo {
namespace {

struct RunStats
{
    Tick time = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t messages = 0;
    bool ok = false;
};

RunStats
run(const Program &p, OrderingPolicy pol)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = 10;
    System sys(p, cfg);
    auto r = sys.run();
    RunStats s;
    s.ok = r.completed;
    s.time = r.finish_tick;
    for (ProcId q = 0; q < p.numThreads(); ++q) {
        const auto &c = sys.cache(q).stats().counters();
        auto get = [&](const char *n) -> std::uint64_t {
            auto it = c.find(n);
            return it == c.end() ? 0 : it->second.value();
        };
        s.write_misses += get("write_misses");
        s.read_misses += get("read_misses");
    }
    return s;
}

Table
spinTable(ProcId procs, int iters)
{
    std::printf("== E6: %u processors x %d lock-protected increments ==\n",
                procs, iters);
    Table t({"spin idiom", "policy", "exec time", "write misses",
             "read misses"});
    struct Variant
    {
        const char *label;
        bool tas_only;
        OrderingPolicy pol;
    };
    const Variant variants[] = {
        {"bare TAS", true, OrderingPolicy::wo_def1},
        {"bare TAS", true, OrderingPolicy::wo_drf0},
        {"Test-and-TAS", false, OrderingPolicy::wo_def1},
        {"Test-and-TAS", false, OrderingPolicy::wo_drf0},
        {"Test-and-TAS", false, OrderingPolicy::wo_drf0_ro},
        {"Test-and-TAS", false, OrderingPolicy::sc},
    };
    for (const auto &v : variants) {
        Program p = litmus::lockedCounter(procs, iters, v.tas_only);
        auto s = run(p, v.pol);
        t.addRow({v.label, policyName(v.pol),
                  s.ok ? strprintf("%llu", (unsigned long long)s.time)
                       : "DNF",
                  strprintf("%llu", (unsigned long long)s.write_misses),
                  strprintf("%llu", (unsigned long long)s.read_misses)});
    }
    t.print();
    std::printf("Read: under WO-DRF0 every spin Test is an exclusive "
                "(write) miss -- the serialization the paper worries "
                "about; WO-DRF0+RO turns them into read misses/hits and "
                "recovers the time.\n\n");
    return t;
}

Table
barrierTable()
{
    std::printf("== E6b: barrier spinning (paper: 'spinning on a barrier "
                "count') ==\n");
    Table t({"processors", "WO-DRF0", "WO-DRF0+RO", "speedup"});
    for (ProcId procs : {2, 4, 6, 8}) {
        Program p = litmus::barrier(procs);
        auto base = run(p, OrderingPolicy::wo_drf0);
        auto ro = run(p, OrderingPolicy::wo_drf0_ro);
        t.addRow({strprintf("%u", procs),
                  base.ok ? strprintf("%llu", (unsigned long long)base.time)
                          : "DNF",
                  ro.ok ? strprintf("%llu", (unsigned long long)ro.time)
                        : "DNF",
                  (base.ok && ro.ok && ro.time)
                      ? strprintf("%.2fx",
                                  (double)base.time / (double)ro.time)
                      : "-"});
    }
    t.print();
    std::printf("Read: the release flag's spin-read traffic dominates as "
                "processor count grows; the refinement removes it.\n");
    return t;
}

} // namespace
} // namespace wo

int
main()
{
    wo::Json payload = wo::Json::object();
    payload.set("spin_4procs_2iters", wo::tableToJson(wo::spinTable(4, 2)));
    payload.set("spin_8procs_1iter", wo::tableToJson(wo::spinTable(8, 1)));
    payload.set("barrier", wo::tableToJson(wo::barrierTable()));
    wo::writeBenchArtifact("bench_spinning", std::move(payload));
    return 0;
}

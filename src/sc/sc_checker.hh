/**
 * @file
 * Sequential-consistency explainability: given the observable record of a
 * run -- per-processor program-order operation sequences with the values
 * their reads returned -- decide whether there exists a single total order
 * of all operations that
 *
 *   (1) is consistent with every processor's program order, and
 *   (2) has every read return the value of the most recent preceding write
 *       to the same location (or the initial value when none precedes), and
 *   (3) executes read-write synchronization operations atomically.
 *
 * This is exactly Lamport's definition as specialized in the paper's
 * introduction, and the tool with which we verify hardware's side of the
 * Definition-2 contract ("appears sequentially consistent").
 *
 * The problem is NP-hard in general; the checker is a memoized backtracking
 * search over states (per-processor progress, current memory image), which
 * is exact and fast for the execution sizes this laboratory produces.
 */

#ifndef WO_SC_SC_CHECKER_HH
#define WO_SC_SC_CHECKER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "execution/execution.hh"

namespace wo {

/** Result of an SC-explainability query. */
struct ScCheckResult
{
    bool sc = false;            //!< a witness total order exists
    std::vector<OpId> witness;  //!< one witness order when sc
    std::uint64_t states = 0;   //!< search states visited
    bool exhausted = false;     //!< state budget hit (result unreliable)

    explicit operator bool() const { return sc; }
};

/** Options for the SC checker. */
struct ScCheckerCfg
{
    /**
     * Additionally require the witness order to end with this final memory
     * image (Lamport's "result" includes the final state of memory).
     */
    std::optional<std::vector<Value>> expected_final;

    /** Search-state budget; 0 means unlimited. */
    std::uint64_t max_states = 0;
};

/**
 * Decide SC-explainability of @p exec.
 */
ScCheckResult checkSequentialConsistency(const Execution &exec,
                                         const ScCheckerCfg &cfg = {});

/**
 * Convenience wrapper returning just the verdict.
 */
bool isSequentiallyConsistent(const Execution &exec);

} // namespace wo

#endif // WO_SC_SC_CHECKER_HH

file(REMOVE_RECURSE
  "CMakeFiles/event_alloc_test.dir/event_alloc_test.cc.o"
  "CMakeFiles/event_alloc_test.dir/event_alloc_test.cc.o.d"
  "event_alloc_test"
  "event_alloc_test.pdb"
  "event_alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The self-profiler: a sampling wall-clock profiler built into the
 * binary, so every performance claim the repo makes ships with its own
 * evidence (ROADMAP item 5: explain the campaign scaling curve, don't
 * infer it).
 *
 * Design: engine threads register themselves in a process-wide thread
 * registry (Profiler::ThreadGuard).  When a Profiler is started, a
 * pacer thread wakes `hz` times per second and delivers SIGPROF to
 * every registered thread with pthread_kill; the async-signal-safe
 * handler captures a raw backtrace (glibc backtrace()) into a
 * preallocated lock-free sample ring.  stop() symbolizes the unique
 * program counters once (dladdr + __cxa_demangle; executables are
 * built with CMAKE_ENABLE_EXPORTS so their own symbols resolve) and
 * aggregates:
 *
 *  - **collapsed stacks** (`folded()`): one `lane;frame;...;leaf N`
 *    line per unique stack -- the input format of flamegraph.pl and
 *    speedscope (see scripts/flame.sh and docs/OBSERVABILITY.md);
 *  - **top-N self/total tables** (`toJson()`): per-frame sample counts
 *    mounted into the metrics tree / `--stats-json` / the campaign
 *    summary.
 *
 * Sampling is cooperative with nothing: no ptrace, no perf_event fds,
 * no external tools -- it works in any container the simulator runs
 * in.  Overhead at the default 97 Hz is gated below 1.10x by
 * bench/bench_profiler.cc in CI.
 *
 * Threading contract: register/unregister and the pacer's signal round
 * share one mutex, so a thread still present in the registry is
 * guaranteed alive when signalled (ThreadGuard's destructor runs
 * before the thread exits).  At most one Profiler is active at a time;
 * start() fails (returns false) when another instance holds the
 * handler.
 */

#ifndef WO_OBS_PROFILER_HH
#define WO_OBS_PROFILER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace wo {

/** Sampling configuration (the `--profile-hz` surface). */
struct ProfilerCfg
{
    /**
     * Samples per second delivered to *each* registered thread.  A
     * prime default so the sampler cannot phase-lock with millisecond-
     * periodic work (the classic 97/997 trick).
     */
    double hz = 97;
    /**
     * Sample ring capacity (per profiler run, all threads together).
     * When full, further samples bump dropped() instead of recording;
     * the folded output stays honest about the truncation.
     */
    std::size_t max_samples = 1 << 16;
    /** Entries in the self/total top tables. */
    int top_n = 20;
};

/** The sampling self-profiler.  One active instance per process. */
class Profiler
{
  public:
    /** Frames recorded per sample (backtrace depth cap). */
    static constexpr int max_frames = 32;

    explicit Profiler(ProfilerCfg cfg = {});
    ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Install the SIGPROF handler and start the pacer.  False when
     * another Profiler is already active (this one stays inert).
     */
    bool start();

    /**
     * Stop the pacer, restore the handler, symbolize and aggregate.
     * Idempotent; the destructor calls it.  Results are valid after.
     */
    void stop();

    bool running() const { return running_; }

    // ---- results (valid after stop()) --------------------------------

    /**
     * Collapsed-stack output: `lane;root;...;leaf count\n` per unique
     * stack, lines sorted, flamegraph.pl/speedscope-compatible.
     */
    std::string folded() const;

    /**
     * Aggregate tables: {"samples","dropped","signals","hz","threads",
     * "top":[{"frame","self","total"}...]} -- mounted under "profiler"
     * in the metrics tree and the campaign summary JSON.
     */
    Json toJson() const;

    /** Samples recorded (post-stop: ready samples aggregated). */
    std::uint64_t samples() const;

    /** Samples lost to a full ring. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** SIGPROFs delivered by the pacer (overhead accounting). */
    std::uint64_t signalsSent() const
    {
        return signals_.load(std::memory_order_relaxed);
    }

    // ---- thread registry ---------------------------------------------

    /**
     * RAII registration of the calling thread under @p name.  The
     * registry is process-wide and always available: registering is
     * cheap and does nothing unless a profiler is running, so engine
     * threads (campaign workers, the journal writer, wotool's main
     * thread) register unconditionally.
     */
    class ThreadGuard
    {
      public:
        explicit ThreadGuard(const std::string &name);
        ~ThreadGuard();

        ThreadGuard(const ThreadGuard &) = delete;
        ThreadGuard &operator=(const ThreadGuard &) = delete;

      private:
        int slot_ = -1;      //!< registry slot claimed by this guard
        int prev_slot_ = -1; //!< restored on destruction (nesting)
    };

    /** Currently registered (alive) threads. */
    static std::size_t registeredThreads();

    // ---- pure aggregation (the testable core) ------------------------

    /** One symbolized stack: lane name + frames, root first. */
    struct SymStack
    {
        std::string thread;
        std::vector<std::string> frames; //!< root -> leaf
    };

    /** Render counted stacks as collapsed-stack text (lines sorted). */
    static std::string
    foldStacks(const std::vector<std::pair<SymStack, std::uint64_t>> &stacks);

    /**
     * The self/total top tables over counted stacks: self counts the
     * leaf frame of each sample, total counts a frame once per sample
     * it appears in.  Rows sorted by self desc, then total desc, then
     * name; ties stable.
     */
    static Json
    topTables(const std::vector<std::pair<SymStack, std::uint64_t>> &stacks,
              int top_n);

    // ---- internal (signal handler plumbing; do not call) -------------

    /** The active instance as seen from the signal handler. */
    static Profiler *activeForSignal();

    /** Record one sample for thread-registry slot @p slot. */
    void recordSample(int slot);

  private:
    struct RawSample
    {
        void *pcs[max_frames];
        int depth = 0;
        int slot = -1;
        std::atomic<bool> ready{false};
    };

    void pacerLoop();
    void aggregate();

    ProfilerCfg cfg_;
    bool running_ = false;
    bool aggregated_ = false;

    std::unique_ptr<RawSample[]> ring_;
    std::size_t cap_ = 0;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> signals_{0};
    std::atomic<bool> stopping_{false};
    std::mutex stop_mu_;
    std::condition_variable stop_cv_;
    std::thread pacer_;

    std::vector<std::pair<SymStack, std::uint64_t>> stacks_; //!< post-stop
    std::uint64_t aggregated_samples_ = 0;
    std::vector<std::string> thread_names_; //!< lanes seen in samples
};

} // namespace wo

#endif // WO_OBS_PROFILER_HH

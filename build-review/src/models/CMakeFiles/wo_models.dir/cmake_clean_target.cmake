file(REMOVE_RECURSE
  "libwo_models.a"
)

/**
 * @file
 * Axiomatic sequential-consistency evaluator.
 *
 * This is a second, *independent* implementation of "which outcomes can a
 * sequentially consistent machine produce for this program?".  It shares
 * no code with the operational simulators in src/models/: instead of
 * stepping an abstract machine it enumerates *candidate executions* --
 * one symbolic unfolding per thread, every memory read free to return any
 * value in a fixed-point value universe -- and then judges each candidate
 * against the SC axioms over its event graph:
 *
 *   - reads-from (rf): every read takes its value from one same-location
 *     write with a matching value, or from the initial memory image;
 *   - write serialization (ws): a total order of the writes to each
 *     location, the per-location coherence order;
 *   - from-read (fr): a read ordered before every write that overwrites
 *     the one it read from;
 *   - acyclic(po U rf U ws U fr): there is a single interleaving -- a
 *     total order witnessing Lamport's definition -- consistent with
 *     program order in which every read returns the latest write;
 *   - RMW atomicity: a test_and_set's write immediately follows the
 *     write it read from in the coherence order.
 *
 * Being enumeration-based, the evaluator cannot handle unbounded
 * unfoldings: programs with loops (spinlocks, bounded counters) trip a
 * step or candidate budget and the result is reported *inconclusive*
 * rather than wrong.  The cross-check driver (campaign/verify.hh)
 * compares a conclusive axiomatic outcome set against the operational SC
 * explorer's and treats any difference as a bug in one of the two
 * engines.
 */

#ifndef WO_AXIOM_AXIOM_EVAL_HH
#define WO_AXIOM_AXIOM_EVAL_HH

#include <cstdint>
#include <set>
#include <string>

#include "execution/execution.hh"
#include "program/program.hh"

namespace wo {

/** Budgets and test hooks for the axiomatic evaluator. */
struct AxiomCfg
{
    /** Interpreter steps per unfolding path before giving up. */
    std::uint64_t max_steps = 4'096;

    /** Symbolic unfoldings per thread before giving up. */
    std::uint64_t max_unfoldings = 4'096;

    /** rf x ws assignments judged before giving up. */
    std::uint64_t max_judgements = 4'000'000;

    /** Distinct values the free-read universe may grow to. */
    std::size_t max_universe = 64;

    /**
     * Test hook: deliberately omit the from-read edges from the
     * acyclicity check, admitting outcomes no SC machine can produce.
     * Used to exercise the cross-check disagreement path end to end
     * (campaign verify cells must catch and shrink the divergence).
     */
    bool inject_bug = false;
};

/** Result of an axiomatic evaluation. */
struct AxiomResult
{
    /** Outcomes judged SC-consistent. */
    std::set<Outcome> outcomes;

    /**
     * True when every budget held, i.e. the outcome set is exact.  A
     * false value means some unfolding or judgement was abandoned; the
     * outcome set is a subset of the truth and MUST NOT be compared
     * against another engine's.
     */
    bool conclusive = true;

    /** Why the evaluation is inconclusive (empty when conclusive). */
    std::string why_inconclusive;

    std::uint64_t candidates = 0; //!< candidate executions enumerated
    std::uint64_t judgements = 0; //!< rf x ws assignments examined
    std::uint64_t consistent = 0; //!< judged SC-consistent
};

/**
 * Enumerate the outcome set a sequentially consistent machine can
 * produce for @p prog, judged axiomatically.
 */
AxiomResult axiomScOutcomes(const Program &prog, const AxiomCfg &cfg = {});

} // namespace wo

#endif // WO_AXIOM_AXIOM_EVAL_HH

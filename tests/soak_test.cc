/**
 * @file
 * Randomized configuration soak: random DRF0 workloads x random system
 * configurations (policy, stall mode, MESI, acks-first directory, miss
 * throttle, MLP limit, network jitter) must always complete, satisfy the
 * Section-5.1 conditions, and produce SC-explainable executions.
 *
 * The default run is sized for CI; set WO_SOAK_RUNS to soak longer, e.g.
 *     WO_SOAK_RUNS=2000 ./soak_test
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/random.hh"
#include "core/conditions.hh"
#include "program/workload.hh"
#include "sc/sc_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

TEST(Soak, RandomConfigurationsStayCorrect)
{
    int runs = 60;
    if (const char *env = std::getenv("WO_SOAK_RUNS"))
        runs = std::atoi(env);
    Rng rng(20260704);
    int checked_sc = 0;
    for (int run = 0; run < runs; ++run) {
        Drf0WorkloadCfg wl;
        wl.seed = rng.next();
        wl.procs = static_cast<ProcId>(2 + rng.below(4));
        wl.regions = static_cast<Addr>(1 + rng.below(3));
        wl.locs_per_region = static_cast<Addr>(1 + rng.below(3));
        wl.private_locs = static_cast<Addr>(rng.below(3));
        wl.sections = static_cast<int>(1 + rng.below(4));
        wl.ops_per_section = static_cast<int>(1 + rng.below(4));
        wl.private_ops = static_cast<int>(rng.below(3));
        wl.test_and_tas = rng.chance(1, 2);
        Program p = randomDrf0Program(wl);

        SystemCfg cfg;
        const OrderingPolicy pols[] = {
            OrderingPolicy::sc, OrderingPolicy::wo_def1,
            OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro};
        cfg.policy = pols[rng.below(4)];
        cfg.net.hop_latency = 1 + rng.below(30);
        cfg.net.jitter = rng.below(12);
        cfg.net.seed = rng.next();
        cfg.cache.stall_mode = rng.chance(1, 2)
                                   ? ReserveStallMode::nack
                                   : ReserveStallMode::queue;
        if (cfg.cache.stall_mode == ReserveStallMode::queue)
            cfg.cache.reserved_miss_limit = 0; // the safe queue variant
        cfg.cache.retry_delay = 5 + rng.below(40);
        cfg.dir.grant_exclusive_clean = rng.chance(1, 2);
        cfg.dir.forward_line_with_invs = rng.chance(3, 4);
        cfg.cpu.max_outstanding = static_cast<int>(rng.below(5)); // 0..4

        System sys(p, cfg);
        auto r = sys.run();
        std::string ctx = strprintf(
            "run %d: %s policy=%s hop=%llu jitter=%llu stall=%s mesi=%d "
            "acksfirst=%d mlp=%d",
            run, p.name().c_str(), policyName(cfg.policy),
            (unsigned long long)cfg.net.hop_latency,
            (unsigned long long)cfg.net.jitter,
            cfg.cache.stall_mode == ReserveStallMode::nack ? "nack"
                                                           : "queue",
            cfg.dir.grant_exclusive_clean,
            !cfg.dir.forward_line_with_invs, cfg.cpu.max_outstanding);
        ASSERT_TRUE(r.completed) << ctx;
        auto audit = checkSufficientConditions(r);
        EXPECT_TRUE(audit.ok)
            << ctx << "\n"
            << (audit.violations.empty()
                    ? "?"
                    : audit.violations[0].toString());
        // SC-explainability checking is exponential; bound it and only
        // count fully checked runs.
        ScCheckerCfg sc_cfg;
        sc_cfg.expected_final = r.outcome.memory;
        sc_cfg.max_states = 2'000'000;
        auto sc = checkSequentialConsistency(r.execution, sc_cfg);
        if (!sc.exhausted) {
            EXPECT_TRUE(sc.sc) << ctx << "\n" << r.execution.toString();
            ++checked_sc;
        }
    }
    EXPECT_GT(checked_sc, runs / 2)
        << "most runs should be small enough to fully SC-check";
}

} // namespace
} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/wo_sys.dir/cpu.cc.o"
  "CMakeFiles/wo_sys.dir/cpu.cc.o.d"
  "CMakeFiles/wo_sys.dir/system.cc.o"
  "CMakeFiles/wo_sys.dir/system.cc.o.d"
  "libwo_sys.a"
  "libwo_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Kernel-equivalence golden cross-check.
 *
 * The calendar-queue overhaul must not change observable semantics: for
 * every program in programs/ under every ordering policy (and more than
 * one timing configuration), the new kernel and the legacy binary-heap
 * kernel must produce bit-identical runs -- same Monitor summary, same
 * final outcome and statistics, and the same Chrome-trace event
 * sequence including per-firing queue events.  The legacy kernel stays
 * behind the WO_LEGACY_EVENT_QUEUE build option until this test has
 * earned its retirement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "sys/system.hh"

#ifndef WO_PROGRAMS_DIR
#define WO_PROGRAMS_DIR "programs"
#endif

#ifdef WO_HAVE_LEGACY_EVENT_QUEUE

namespace wo {
namespace {

std::vector<std::string>
programFiles()
{
    std::vector<std::string> files;
    for (const auto &e :
         std::filesystem::directory_iterator(WO_PROGRAMS_DIR))
        if (e.path().extension() == ".wo")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

/** Everything observable about one run, rendered to strings. */
struct RunImage
{
    std::string verdict;
    std::string outcome;
    std::string monitor_report;
    std::string stats_json;
    std::string chrome_trace;
    std::string jsonl;
    Tick finish = 0;
    Tick drain = 0;
    std::uint64_t events = 0;
};

RunImage
runOn(const AsmResult &a, OrderingPolicy policy, std::uint64_t seed,
      Tick jitter, EventQueueKind kind)
{
    SystemCfg cfg;
    cfg.policy = policy;
    cfg.queue = kind;
    cfg.monitor = true;
    cfg.trace = true; // queue events included: labels compared too
    cfg.quiet = true;
    cfg.net.seed = seed;
    cfg.net.jitter = jitter;
    cfg.max_events = 2'000'000;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    SystemResult r = sys.run();

    RunImage img;
    img.verdict = r.completed ? "completed"
                              : (r.deadlocked ? "deadlock" : "livelock");
    img.outcome = r.outcome.toString();
    img.monitor_report = r.monitor_report;
    img.stats_json = r.stats_json;
    img.chrome_trace = sys.obs().chromeTraceJson();
    img.jsonl = sys.obs().traceJsonl();
    img.finish = r.finish_tick;
    img.drain = r.drain_tick;
    img.events = sys.eventQueue().executed();
    return img;
}

TEST(KernelEquivalence, GoldenCrossCheckOverAllProgramsAndPolicies)
{
    const auto files = programFiles();
    ASSERT_FALSE(files.empty()) << "no programs under " WO_PROGRAMS_DIR;

    const OrderingPolicy policies[] = {
        OrderingPolicy::sc, OrderingPolicy::wo_def1,
        OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro};
    // Two timing points: the quiet default and a jittery interconnect,
    // so the cross-check covers overflow migration and retry storms.
    const struct { std::uint64_t seed; Tick jitter; } timings[] = {
        {1, 0}, {42, 3}};

    for (const std::string &file : files) {
        AsmResult a = assembleFile(file);
        ASSERT_TRUE(a.ok()) << file;
        for (OrderingPolicy policy : policies) {
            for (const auto &t : timings) {
                SCOPED_TRACE(file + " / " + policyName(policy) +
                             strprintf(" / seed=%llu jitter=%llu",
                                       static_cast<unsigned long long>(
                                           t.seed),
                                       static_cast<unsigned long long>(
                                           t.jitter)));
                const RunImage neu = runOn(a, policy, t.seed, t.jitter,
                                           EventQueueKind::calendar);
                const RunImage old = runOn(a, policy, t.seed, t.jitter,
                                           EventQueueKind::legacy_heap);
                EXPECT_EQ(neu.verdict, old.verdict);
                EXPECT_EQ(neu.outcome, old.outcome);
                EXPECT_EQ(neu.monitor_report, old.monitor_report);
                EXPECT_EQ(neu.stats_json, old.stats_json);
                EXPECT_EQ(neu.finish, old.finish);
                EXPECT_EQ(neu.drain, old.drain);
                EXPECT_EQ(neu.events, old.events);
                EXPECT_EQ(neu.jsonl, old.jsonl);
                // The heavyweight check last: the full Chrome trace,
                // event by event, label by label.
                EXPECT_EQ(neu.chrome_trace, old.chrome_trace);
            }
        }
    }
}

} // namespace
} // namespace wo

#else // !WO_HAVE_LEGACY_EVENT_QUEUE

TEST(KernelEquivalence, DISABLED_LegacyKernelCompiledOut) {}

#endif

# Empty dependencies file for wotool.
# This may be replaced when dependencies are built.

#include "wo_def1_model.hh"

#include "common/logging.hh"

namespace wo {

WoDef1Model::WoDef1Model(const Program &prog, std::size_t max_pool)
    : prog_(prog), max_pool_(max_pool)
{
    wo_assert(max_pool_ > 0, "need at least one pool slot");
}

WoDef1Model::State
WoDef1Model::initial() const
{
    State s;
    s.threads.resize(prog_.numThreads());
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        runLocal(prog_.thread(p), s.threads[p]);
    s.mem = prog_.initialMemory();
    s.pools.resize(prog_.numThreads());
    return s;
}

bool
WoDef1Model::isFinal(const State &s) const
{
    for (const auto &t : s.threads)
        if (!t.halted)
            return false;
    for (const auto &pool : s.pools)
        if (!pool.empty())
            return false;
    return true;
}

std::vector<WoDef1Model::State>
WoDef1Model::successors(const State &s) const
{
    std::vector<State> out;
    for (auto &ls : labeledSuccessors(s))
        out.push_back(std::move(ls.state));
    return out;
}

void
WoDef1Model::instrSucc(const State &s, ProcId p,
                       std::vector<LabeledSucc<State>> &out) const
{
    const ThreadCtx &t = s.threads[p];
    if (t.halted)
        return;
    const Instruction *i = currentAccess(prog_.thread(p), t);
    switch (i->op) {
      case Opcode::load_data: {
        auto fwd = poolForward(s.pools[p], i->addr);
        const Value v = fwd ? *fwd : s.mem[i->addr];
        State next = s;
        completeAccess(prog_.thread(p), next.threads[p], v);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::store_data: {
        if (s.pools[p].size() >= max_pool_)
            break;
        State next = s;
        next.pools[p].push_back(PendingWrite{i->addr, storeValue(*i, t)});
        completeAccess(prog_.thread(p), next.threads[p], 0);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      case Opcode::sync_load:
      case Opcode::sync_store:
      case Opcode::test_and_set: {
        // Definition 1, condition 2: the issuing processor stalls here
        // until all its previous data accesses are globally performed.
        if (!s.pools[p].empty())
            break;
        State next = s;
        const Value old = next.mem[i->addr];
        if (i->writesMemory())
            next.mem[i->addr] = storeValue(*i, t);
        completeAccess(prog_.thread(p), next.threads[p], old);
        out.push_back({instrLabel(p), std::move(next)});
        break;
      }
      default:
        wo_panic("unexpected opcode at access point: %s",
                 opcodeName(i->op));
    }
}

void
WoDef1Model::drainSuccs(const State &s, ProcId p, std::optional<Addr> only,
                        std::vector<LabeledSucc<State>> &out) const
{
    // poolMayDrain admits only the oldest pending write per location, so
    // (p, addr) uniquely names each drain edge.
    const auto &pool = s.pools[p];
    for (std::size_t k = 0; k < pool.size(); ++k) {
        if (only && pool[k].addr != *only)
            continue;
        if (!poolMayDrain(pool, k))
            continue;
        State next = s;
        PendingWrite w = next.pools[p][k];
        next.pools[p].erase(next.pools[p].begin() +
                            static_cast<std::ptrdiff_t>(k));
        next.mem[w.addr] = w.value;
        out.push_back({drainLabel(p, w.addr), std::move(next)});
    }
}

std::vector<LabeledSucc<WoDef1Model::State>>
WoDef1Model::labeledSuccessors(const State &s) const
{
    std::vector<LabeledSucc<State>> out;
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        instrSucc(s, p, out);
    for (ProcId p = 0; p < prog_.numThreads(); ++p)
        drainSuccs(s, p, std::nullopt, out);
    return out;
}

std::optional<WoDef1Model::State>
WoDef1Model::stepLabel(const State &s, const TransLabel &l) const
{
    std::vector<LabeledSucc<State>> out;
    if (l.kind == TransKind::instr)
        instrSucc(s, l.proc, out);
    else
        drainSuccs(s, l.proc, l.addr, out);
    for (auto &ls : out)
        if (ls.label == l)
            return std::move(ls.state);
    return std::nullopt;
}

Outcome
WoDef1Model::outcome(const State &s) const
{
    Outcome o;
    for (const auto &t : s.threads)
        o.regs.emplace_back(t.regs.begin(), t.regs.end());
    o.memory = s.mem;
    return o;
}

std::string
WoDef1Model::encode(const State &s) const
{
    StateEnc enc;
    encodeInto(s, enc);
    return enc.take();
}


std::string
WoDef1Model::dump(const State &s) const
{
    std::string out = dumpThreadsAndMem(prog_, s.threads, s.mem);
    for (ProcId p = 0; p < prog_.numThreads(); ++p) {
        if (s.pools[p].empty())
            continue;
        out += strprintf("  P%u pending:", p);
        for (const auto &w : s.pools[p])
            out += strprintf(" [%u]<-%lld", w.addr,
                             static_cast<long long>(w.value));
        out += "\n";
    }
    return out;
}

} // namespace wo

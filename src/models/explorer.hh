/**
 * @file
 * Exhaustive state-space exploration over any abstract operational model.
 *
 * The explorer collects the set of observable Outcomes of the model's
 * final states.  The outcome *set* is the object the new definition of
 * weak ordering talks about: hardware "appears sequentially consistent"
 * to a program exactly when its outcome set is a subset of the SC
 * machine's outcome set for that program.
 *
 * Two engines share that contract:
 *
 *  - exploreOutcomesBfs: the naive visited-set BFS over the full state
 *    graph.  Simple, obviously correct, and the golden reference the
 *    equivalence suite holds the reduced engine to.
 *
 *  - exploreOutcomesDpor (the default): depth-first search with *sleep
 *    sets* [Godefroid] and hashed-state deduplication.  Two transitions
 *    enabled in the same state are independent when executing them in
 *    either order is (a) possible and (b) lands in the identical state;
 *    a sleep set carries transitions whose subtrees are already covered
 *    by an equivalent interleaving, and exploring them again is skipped.
 *    Independence is decided by *concretely commuting* the two
 *    transitions and comparing the encoded results -- never by a static
 *    footprint approximation.  That matters: in the stale-cache model
 *    two stores to different locations broadcast inbox updates whose
 *    arrival orders differ, so an addr-disjointness rule would wrongly
 *    commute them.  Concrete commutation is sound for any model by
 *    construction.
 *
 *    Hashed-state dedup: visited states are keyed by a 128-bit FNV pair
 *    over the StateEnc bytes rather than the bytes themselves, and each
 *    key stores the antichain of sleep sets it was explored with.  A
 *    revisit is pruned only when a previous visit's sleep set is a
 *    subset of the current one (the previous visit explored at least
 *    everything this visit would).
 *
 * Model concept:
 *     struct State;                         // copyable machine state
 *     State initial() const;
 *     bool isFinal(const State&) const;     // halted and quiescent
 *     std::vector<State> successors(const State&) const;
 *     std::vector<LabeledSucc<State>> labeledSuccessors(const State&) const;
 *     Outcome outcome(const State&) const;  // defined for final states
 *     std::string encode(const State&) const; // injective
 *     static const char *name();
 */

#ifndef WO_MODELS_EXPLORER_HH
#define WO_MODELS_EXPLORER_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "execution/execution.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** Which exploration engine to run. */
enum class ExploreAlgo {
    dpor, ///< sleep-set DPOR with hashed-state dedup (default)
    bfs,  ///< naive visited-set BFS (golden reference)
};

/** Exploration limits. */
struct ExploreCfg
{
    /** Abort after visiting this many states (0 = unlimited). */
    std::uint64_t max_states = 5'000'000;

    /** Engine selection. */
    ExploreAlgo algo = ExploreAlgo::dpor;
};

/** What exploration found. */
struct ExploreResult
{
    std::set<Outcome> outcomes;   //!< outcomes of all reachable final states
    std::uint64_t states = 0;     //!< states visited (expansions)
    bool truncated = false;       //!< state budget hit: outcomes incomplete
    bool stuck = false;           //!< some non-final state had no successors

    std::uint64_t transitions = 0;    //!< edges executed
    std::uint64_t sleep_pruned = 0;   //!< edges skipped by sleep sets
    std::uint64_t revisit_pruned = 0; //!< re-entries pruned by subsumption

    /** Outcome set conclusively computed (neither truncated nor stuck)? */
    bool conclusive() const { return !truncated && !stuck; }

    /** True iff every outcome also appears in @p reference. */
    bool
    subsetOf(const ExploreResult &reference) const
    {
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                return false;
        return true;
    }

    /** Outcomes in this result but not in @p reference. */
    std::set<Outcome>
    minus(const ExploreResult &reference) const
    {
        std::set<Outcome> extra;
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                extra.insert(o);
        return extra;
    }
};

/**
 * Search for a shortest transition chain from the initial state to a
 * final state whose outcome equals @p target (BFS with parent pointers).
 * Returns the state chain, initial first; empty if unreachable within the
 * budget.  Use Model::dump to render the chain -- this is the "why is
 * this outcome possible" explanation a litmus investigation wants.
 */
template <typename Model>
std::vector<typename Model::State>
witnessChain(const Model &model, const Outcome &target,
             const ExploreCfg &cfg = {})
{
    struct Node
    {
        typename Model::State state;
        std::size_t parent; // index into nodes; SIZE_MAX for the root
    };
    std::vector<Node> nodes;
    std::unordered_set<std::string> visited;
    std::deque<std::size_t> frontier;

    auto push = [&](typename Model::State s, std::size_t parent) {
        std::string key = model.encode(s);
        if (!visited.insert(std::move(key)).second)
            return;
        nodes.push_back(Node{std::move(s), parent});
        frontier.push_back(nodes.size() - 1);
    };

    push(model.initial(), static_cast<std::size_t>(-1));
    std::uint64_t seen = 0;
    while (!frontier.empty()) {
        if (cfg.max_states && ++seen > cfg.max_states)
            break;
        const std::size_t at = frontier.front();
        frontier.pop_front();
        if (model.isFinal(nodes[at].state) &&
            model.outcome(nodes[at].state) == target) {
            std::vector<typename Model::State> chain;
            for (std::size_t n = at; n != static_cast<std::size_t>(-1);
                 n = nodes[n].parent)
                chain.push_back(nodes[n].state);
            std::reverse(chain.begin(), chain.end());
            return chain;
        }
        for (auto &succ : model.successors(nodes[at].state))
            push(std::move(succ), at);
    }
    return {};
}

/** Naive visited-set BFS: the golden reference engine. */
template <typename Model>
ExploreResult
exploreOutcomesBfs(const Model &model, const ExploreCfg &cfg = {})
{
    ExploreResult result;
    std::unordered_set<std::string> visited;
    std::deque<typename Model::State> frontier;

    auto push = [&](typename Model::State s) {
        std::string key = model.encode(s);
        if (visited.insert(std::move(key)).second)
            frontier.push_back(std::move(s));
    };

    push(model.initial());
    while (!frontier.empty()) {
        if (cfg.max_states && result.states >= cfg.max_states) {
            result.truncated = true;
            warn("%s: exploration truncated at %llu states", Model::name(),
                 static_cast<unsigned long long>(result.states));
            break;
        }
        typename Model::State s = std::move(frontier.front());
        frontier.pop_front();
        ++result.states;

        if (model.isFinal(s)) {
            result.outcomes.insert(model.outcome(s));
            continue;
        }
        auto succs = model.successors(s);
        if (succs.empty()) {
            // A non-final state with nothing enabled: the machine is stuck
            // (e.g. a deadlock in a blocking implementation model).
            result.stuck = true;
            continue;
        }
        result.transitions += succs.size();
        for (auto &n : succs)
            push(std::move(n));
    }
    return result;
}

namespace explorer_detail {

/** 128-bit key over the StateEnc bytes: two FNV-1a variants. */
struct StateKey
{
    std::uint64_t lo, hi;
    bool operator==(const StateKey &other) const = default;
};

struct StateKeyHash
{
    std::size_t
    operator()(const StateKey &k) const
    {
        return static_cast<std::size_t>(k.lo ^
                                        (k.hi * 0x9e3779b97f4a7c15ULL));
    }
};

inline StateKey
hashEncoding(const std::string &enc)
{
    std::uint64_t a = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    std::uint64_t b = 0x6c62272e07bb0142ULL; // second basis (FNV-0 of seed)
    for (unsigned char c : enc) {
        a = (a ^ c) * 0x100000001b3ULL;
        b = (b ^ c) * 0x00000100000001b3ULL ^ (b >> 47);
    }
    return StateKey{a, b};
}

/** Is sorted label set @p a a subset of sorted label set @p b? */
inline bool
labelSubset(const std::vector<TransLabel> &a, const std::vector<TransLabel> &b)
{
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/**
 * Conservative over-approximation of everything one processor may still
 * do: the locations reachable code from its current pc may read/write
 * (plus locations its queued effects will write), and whether it may
 * still store or synchronize.  Used to split processors into conflict
 * components: two processors whose footprints are disjoint can never
 * influence each other again, so their transitions commute forever and
 * only one component needs expanding per state.
 */
struct ProcFoot
{
    std::uint64_t reads = 0;  //!< bit per Addr < 64
    std::uint64_t writes = 0; //!< bit per Addr < 64
    bool overflow = false;    //!< an Addr >= 64 appeared: conflict with all
    bool may_sync = false;    //!< a synchronization op is reachable
    bool writes_any = false;  //!< a store (or queued write) is reachable
};

inline void
footAddRead(ProcFoot &f, Addr a)
{
    if (a < 64)
        f.reads |= std::uint64_t{1} << a;
    else
        f.overflow = true;
}

inline void
footAddWrite(ProcFoot &f, Addr a)
{
    if (a < 64)
        f.writes |= std::uint64_t{1} << a;
    else
        f.overflow = true;
}

/**
 * Accumulate the footprint of all code reachable from @p pc.  A
 * *publishing* synchronization read reserves its location in the DRF0
 * machine, so every synchronization op counts as a write to its
 * location (harmless over-approximation elsewhere).
 */
inline void
codeFootprint(const ThreadCode &code, Pc pc, ProcFoot &f)
{
    std::vector<bool> seen(code.size(), false);
    std::vector<Pc> work{pc};
    while (!work.empty()) {
        const Pc at = work.back();
        work.pop_back();
        if (at >= code.size() || seen[at])
            continue;
        seen[at] = true;
        const Instruction &i = code.at(at);
        switch (i.op) {
          case Opcode::halt:
            break;
          case Opcode::jump:
            work.push_back(i.target);
            break;
          case Opcode::branch_eq:
          case Opcode::branch_ne:
            work.push_back(i.target);
            work.push_back(at + 1);
            break;
          case Opcode::load_data:
            footAddRead(f, i.addr);
            work.push_back(at + 1);
            break;
          case Opcode::store_data:
            footAddWrite(f, i.addr);
            f.writes_any = true;
            work.push_back(at + 1);
            break;
          case Opcode::sync_load:
            f.may_sync = true;
            footAddWrite(f, i.addr);
            work.push_back(at + 1);
            break;
          case Opcode::sync_store:
          case Opcode::test_and_set:
            f.may_sync = true;
            f.writes_any = true;
            footAddWrite(f, i.addr);
            work.push_back(at + 1);
            break;
          default:
            work.push_back(at + 1);
            break;
        }
    }
}

/**
 * May processors with footprints @p a and @p b still influence each
 * other?  In a broadcast model (stale-cache: stores update every inbox,
 * barriers wait on every inbox) any writer or synchronizer conflicts
 * with everyone; elsewhere a conflict needs a shared location with at
 * least one writer.
 */
inline bool
footsConflict(const ProcFoot &a, const ProcFoot &b, bool broadcast)
{
    if (broadcast)
        return a.writes_any || a.may_sync || b.writes_any || b.may_sync;
    if (a.overflow || b.overflow)
        return true;
    return ((a.writes & (b.reads | b.writes)) | (b.writes & a.reads)) != 0;
}

template <typename Model>
constexpr bool
modelBroadcasts()
{
    if constexpr (requires { Model::stores_broadcast; })
        return Model::stores_broadcast;
    else
        return false;
}

} // namespace explorer_detail

/**
 * Sleep-set DPOR with hashed-state deduplication.  Explores a sound
 * subset of the BFS transition graph that still reaches every final
 * state (the equivalence suite asserts outcome sets are bit-identical to
 * exploreOutcomesBfs across programs x models).
 */
template <typename Model>
ExploreResult
exploreOutcomesDpor(const Model &model, const ExploreCfg &cfg = {})
{
    using State = typename Model::State;
    using Succs = std::vector<LabeledSucc<State>>;
    using Sleep = std::vector<TransLabel>; // sorted, unique
    using namespace explorer_detail;

    ExploreResult result;

    // visited: state-hash -> antichain of sleep sets it was entered with.
    std::unordered_map<StateKey, std::vector<Sleep>, StateKeyHash> visited;

    struct Frame
    {
        State state;
        Succs succs;
        Sleep sleep;                  // asleep on entry
        std::vector<TransLabel> done; // explored from here, in order
        std::size_t next = 0;         // cursor into succs
        // Successor lists of this frame's children, keyed by the label
        // that reaches them; memoizes the commutation probes.
        std::map<TransLabel, Succs> child_succs;
    };
    std::vector<Frame> stack;

    // Footprints of reachable code, memoized per (proc, pc).
    std::map<std::pair<ProcId, Pc>, ProcFoot> code_cache;
    constexpr bool broadcast = modelBroadcasts<Model>();

    // Persistent-set reduction: split the processors into components that
    // may still influence each other (conservative future footprints) and
    // keep only the cheapest component's transitions.  Processors in other
    // components commute with everything the chosen component will ever
    // do, so delaying them to a canonical later point loses no final
    // state.
    auto persistentFilter = [&](const State &s, Succs &succs) {
        const Program &prog = model.program();
        const ProcId n = prog.numThreads();
        if (n <= 1 || succs.size() <= 1)
            return;
        std::vector<ProcFoot> foot(n);
        std::vector<bool> active(n, false);
        std::vector<Addr> queued;
        for (ProcId p = 0; p < n; ++p) {
            const auto &t = s.threads[p];
            if (!t.halted) {
                active[p] = true;
                const auto key = std::make_pair(p, t.pc);
                auto it = code_cache.find(key);
                if (it == code_cache.end()) {
                    ProcFoot cf;
                    codeFootprint(prog.thread(p), t.pc, cf);
                    it = code_cache.emplace(key, cf).first;
                }
                foot[p] = it->second;
            }
            queued.clear();
            model.pendingAddrs(s, p, queued);
            for (Addr a : queued) {
                footAddWrite(foot[p], a);
                foot[p].writes_any = true;
                active[p] = true;
            }
        }
        for (const auto &ls : succs)
            active[ls.label.proc] = true; // e.g. pending inbox deliveries
        // Union-find over conflicting active processors.
        std::vector<ProcId> parent(n);
        for (ProcId p = 0; p < n; ++p)
            parent[p] = p;
        auto find = [&](ProcId p) {
            while (parent[p] != p)
                p = parent[p] = parent[parent[p]];
            return p;
        };
        for (ProcId p = 0; p < n; ++p) {
            if (!active[p])
                continue;
            for (ProcId q = p + 1; q < n; ++q) {
                if (!active[q] || !footsConflict(foot[p], foot[q],
                                                 broadcast))
                    continue;
                parent[find(p)] = find(q);
            }
        }
        // Cheapest component with at least one enabled transition wins.
        std::vector<std::uint32_t> count(n, 0);
        for (const auto &ls : succs)
            ++count[find(ls.label.proc)];
        ProcId best = invalid_proc;
        for (ProcId p = 0; p < n; ++p) {
            const ProcId r = find(p);
            if (r == p && count[r] > 0 &&
                (best == invalid_proc || count[r] < count[best]))
                best = r;
        }
        if (best == invalid_proc || count[best] == succs.size())
            return;
        std::erase_if(succs, [&](const LabeledSucc<State> &ls) {
            return find(ls.label.proc) != best;
        });
    };

    // Enter state s with sleep set `sleep`: dedup, classify, maybe push.
    auto tryEnter = [&](State s, Sleep sleep) {
        const bool is_final = model.isFinal(s);
        if (is_final)
            sleep.clear(); // final states carry no transitions to skip

        const StateKey key = hashEncoding(model.encode(s));
        auto &entries = visited[key];
        for (const auto &prev : entries) {
            if (labelSubset(prev, sleep)) {
                // A previous entry explored a superset of what this entry
                // would; nothing new here.
                ++result.revisit_pruned;
                return;
            }
        }
        if (cfg.max_states && result.states >= cfg.max_states) {
            result.truncated = true;
            return;
        }
        // Keep the antichain minimal: this sleep set replaces any stored
        // superset of it.
        std::erase_if(entries, [&](const Sleep &prev) {
            return labelSubset(sleep, prev);
        });
        entries.push_back(sleep);
        ++result.states;

        if (is_final) {
            result.outcomes.insert(model.outcome(s));
            return;
        }
        Succs succs = model.labeledSuccessors(s);
        if (succs.empty()) {
            result.stuck = true;
            return;
        }
        persistentFilter(s, succs);
        stack.push_back(Frame{std::move(s), std::move(succs),
                              std::move(sleep), {}, 0, {}});
    };

    tryEnter(model.initial(), {});

    while (!stack.empty() && !result.truncated) {
        Frame &f = stack.back();
        if (f.next >= f.succs.size()) {
            stack.pop_back();
            continue;
        }
        const std::size_t at = f.next++;
        const TransLabel label = f.succs[at].label;
        if (std::binary_search(f.sleep.begin(), f.sleep.end(), label)) {
            // Asleep: an equivalent interleaving already covers this
            // subtree.
            ++result.sleep_pruned;
            continue;
        }
        ++result.transitions;

        // Successor list of the chosen child, computed once and shared by
        // every commutation probe below (and implicitly by the child's
        // own frame if it survives dedup).
        const State &child = f.succs[at].state;
        auto childSuccsOf = [&](const TransLabel &l,
                                const State &st) -> const Succs & {
            auto it = f.child_succs.find(l);
            if (it == f.child_succs.end())
                it = f.child_succs.emplace(l, model.labeledSuccessors(st))
                         .first;
            return it->second;
        };
        auto findLabel = [](const Succs &succs,
                            const TransLabel &l) -> const State * {
            for (const auto &ls : succs)
                if (ls.label == l)
                    return &ls.state;
            return nullptr;
        };

        // Transitions that stay asleep in the child: everything asleep
        // here (or already explored from here) that concretely commutes
        // with the chosen label.
        Sleep child_sleep;
        auto considerSleeper = [&](const TransLabel &t) {
            if (t == label)
                return;
            // t is enabled in f.state: find both one-step states.
            const State *s_t = findLabel(f.succs, t);
            if (!s_t)
                return; // defensive: treat as dependent
            // t must stay enabled after the chosen label...
            const State *s_lt = findLabel(childSuccsOf(label, child), t);
            if (!s_lt)
                return;
            // ...and the chosen label after t...
            const State *s_tl = findLabel(childSuccsOf(t, *s_t), label);
            if (!s_tl)
                return;
            // ...and both orders must land in the identical state.
            if (model.encode(*s_lt) == model.encode(*s_tl))
                child_sleep.push_back(t);
        };
        for (const TransLabel &t : f.sleep)
            considerSleeper(t);
        for (const TransLabel &t : f.done)
            considerSleeper(t);
        std::sort(child_sleep.begin(), child_sleep.end());
        child_sleep.erase(
            std::unique(child_sleep.begin(), child_sleep.end()),
            child_sleep.end());

        f.done.push_back(label);
        // Note: tryEnter may push onto `stack`, invalidating `f`; it is
        // the last use of this frame in the iteration.
        State child_copy = f.succs[at].state;
        tryEnter(std::move(child_copy), std::move(child_sleep));
    }

    if (result.truncated)
        warn("%s: DPOR exploration truncated at %llu states", Model::name(),
             static_cast<unsigned long long>(result.states));
    return result;
}

/** Exhaustively explore @p model and collect final-state outcomes. */
template <typename Model>
ExploreResult
exploreOutcomes(const Model &model, const ExploreCfg &cfg = {})
{
    return cfg.algo == ExploreAlgo::bfs ? exploreOutcomesBfs(model, cfg)
                                        : exploreOutcomesDpor(model, cfg);
}

} // namespace wo

#endif // WO_MODELS_EXPLORER_HH

/**
 * @file
 * An Execution is the observable record of one run of a parallel program:
 * the dynamic memory operations of every processor in program order, plus
 * (optionally) a global completion order.  Executions come from three
 * sources -- the abstract model explorer, the timed full-system simulator,
 * and hand-encoded traces (the paper's Figure 2) -- and feed the
 * happens-before machinery and the SC-explainability checker.
 */

#ifndef WO_EXECUTION_EXECUTION_HH
#define WO_EXECUTION_EXECUTION_HH

#include <string>
#include <vector>

#include "execution/memory_op.hh"

namespace wo {

/** The observable record of one run. */
class Execution
{
  public:
    /**
     * @param num_procs      processor count
     * @param num_locations  shared-location count
     * @param initial        initial memory image (size num_locations); an
     *                       empty vector means all-zero
     */
    Execution(ProcId num_procs, Addr num_locations,
              std::vector<Value> initial = {});

    /**
     * Append an operation.  Ops must be appended in the global completion
     * order if one is meaningful for the producing machine; per-processor
     * subsequences must always be in program order.  The op's id and
     * po_index are assigned here.
     * @return the assigned OpId
     */
    OpId append(ProcId proc, Addr addr, AccessKind kind, Value value_read,
                Value value_written, Tick commit_tick = 0);

    /** Number of processors. */
    ProcId numProcs() const { return static_cast<ProcId>(per_proc_.size()); }

    /** Number of shared locations. */
    Addr numLocations() const
    {
        return static_cast<Addr>(initial_.size());
    }

    /** All operations, in append (completion) order. */
    const std::vector<MemoryOp> &ops() const { return ops_; }

    /** Op ids of processor @p p in program order. */
    const std::vector<OpId> &procOps(ProcId p) const;

    /** The operation with id @p id. */
    const MemoryOp &op(OpId id) const;

    /** Initial value of location @p a. */
    Value initialValue(Addr a) const;

    /** The initial memory image. */
    const std::vector<Value> &initialMemory() const { return initial_; }

    /**
     * Check that each read returns either the initial value or a value that
     * some write to the same location wrote; reports the first offender.
     * (A cheap sanity gate before running the expensive checkers.)
     */
    bool valuesPlausible(std::string *why = nullptr) const;

    /** Multi-line rendering in completion order. */
    std::string toString() const;

  private:
    std::vector<MemoryOp> ops_;
    std::vector<std::vector<OpId>> per_proc_;
    std::vector<Value> initial_;
};

/**
 * The result of an execution in Lamport's sense: the values returned by all
 * reads plus the final state of memory.  Two executions of a program are
 * indistinguishable to software iff their Results are equal.  Register files
 * are carried as well because litmus outcomes are conventionally stated
 * over registers.
 */
struct Outcome
{
    std::vector<std::vector<Value>> regs; //!< per-processor register files
    std::vector<Value> memory;            //!< final memory image

    bool operator==(const Outcome &other) const = default;

    /** Lexicographic order so outcome sets can live in std::set. */
    bool operator<(const Outcome &other) const;

    /** e.g. "P0:r0=1 P1:r0=0 | mem: x=1 y=1" (zero registers elided). */
    std::string toString() const;
};

} // namespace wo

#endif // WO_EXECUTION_EXECUTION_HH

add_test([=[EventAllocation.SteadyStateSchedulesWithoutAllocating]=]  /root/repo/build-review/tests/event_alloc_test [==[--gtest_filter=EventAllocation.SteadyStateSchedulesWithoutAllocating]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EventAllocation.SteadyStateSchedulesWithoutAllocating]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  event_alloc_test_TESTS EventAllocation.SteadyStateSchedulesWithoutAllocating)

file(REMOVE_RECURSE
  "CMakeFiles/ablation_mesi.dir/ablation_mesi.cc.o"
  "CMakeFiles/ablation_mesi.dir/ablation_mesi.cc.o.d"
  "ablation_mesi"
  "ablation_mesi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

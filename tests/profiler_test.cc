/**
 * @file
 * The self-profiler and the span timelines (src/obs/profiler.hh,
 * src/obs/timeline.hh): the pure aggregation core against golden
 * outputs, the end-to-end sampling path against real threads, and the
 * timeline bookkeeping the campaign summary is built from.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "obs/profiler.hh"
#include "obs/timeline.hh"
#include "program/litmus.hh"
#include "sys/system.hh"

namespace wo {
namespace {

using Stack = Profiler::SymStack;
using Counted = std::vector<std::pair<Stack, std::uint64_t>>;

// ------------------------------------------------- folded-format golden

TEST(FoldStacks, GoldenFormat)
{
    const Counted stacks = {
        {{"worker0", {"main", "runCell", "simulate"}}, 3},
        {{"worker0", {"main", "runCell"}}, 1},
        {{"worker1", {"main", "steal"}}, 2},
    };
    EXPECT_EQ(Profiler::foldStacks(stacks),
              "worker0;main;runCell 1\n"
              "worker0;main;runCell;simulate 3\n"
              "worker1;main;steal 2\n");
}

TEST(FoldStacks, MergesIdenticalStacksAndSortsLines)
{
    const Counted stacks = {
        {{"b", {"f"}}, 1},
        {{"a", {"g"}}, 4},
        {{"b", {"f"}}, 2}, // same lane+stack: counts add
    };
    EXPECT_EQ(Profiler::foldStacks(stacks), "a;g 4\nb;f 3\n");
}

TEST(FoldStacks, EmptyInputFoldsToEmpty)
{
    EXPECT_EQ(Profiler::foldStacks({}), "");
}

// ------------------------------------------------------- top-N tables

TEST(TopTables, SelfCountsLeafTotalCountsOncePerSample)
{
    const Counted stacks = {
        {{"w", {"main", "hot"}}, 5},
        {{"w", {"main", "hot", "inner"}}, 2},
        // Recursive: "rec" appears twice but totals once per sample.
        {{"w", {"main", "rec", "rec"}}, 3},
    };
    const Json top = Profiler::topTables(stacks, 10);
    ASSERT_TRUE(top.isArray());

    auto row = [&](const std::string &frame) -> const Json * {
        for (const Json &r : top.items())
            if (r.find("frame")->stringValue() == frame)
                return &r;
        return nullptr;
    };

    const Json *hot = row("hot");
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(hot->find("self")->uintValue(), 5u);
    EXPECT_EQ(hot->find("total")->uintValue(), 7u); // 5 leaf + 2 inner

    const Json *rec = row("rec");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->find("self")->uintValue(), 3u);
    EXPECT_EQ(rec->find("total")->uintValue(), 3u); // once per sample

    const Json *main_row = row("main");
    ASSERT_NE(main_row, nullptr);
    EXPECT_EQ(main_row->find("self")->uintValue(), 0u);
    EXPECT_EQ(main_row->find("total")->uintValue(), 10u);

    // Rows sort by self desc: "hot" leads.
    EXPECT_EQ(top.items()[0].find("frame")->stringValue(), "hot");
}

TEST(TopTables, TopNCapsRows)
{
    Counted stacks;
    for (int i = 0; i < 8; ++i)
        stacks.push_back({{"w", {strprintf("f%d", i)}}, 1});
    EXPECT_EQ(Profiler::topTables(stacks, 3).items().size(), 3u);
    EXPECT_EQ(Profiler::topTables(stacks, 0).items().size(),
              8u); // 0 = uncapped
}

// --------------------------------------------------- sampling end to end

TEST(Profiler, SamplesAllEngineThreads)
{
    ProfilerCfg cfg;
    cfg.hz = 250;
    Profiler prof(cfg);
    ASSERT_TRUE(prof.start());

    std::atomic<bool> stop{false};
    auto spin = [&stop](const char *name) {
        Profiler::ThreadGuard guard(name);
        volatile std::uint64_t x = 0;
        while (!stop.load(std::memory_order_relaxed))
            ++x;
    };
    std::thread a(spin, "prof-alpha");
    std::thread b(spin, "prof-beta");
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stop = true;
    a.join();
    b.join();
    prof.stop();

    EXPECT_GT(prof.samples(), 0u);
    EXPECT_GT(prof.signalsSent(), 0u);
    EXPECT_EQ(prof.dropped(), 0u);

    // Every registered engine thread shows up as a folded lane.
    const std::string folded = prof.folded();
    EXPECT_NE(folded.find("prof-alpha;"), std::string::npos) << folded;
    EXPECT_NE(folded.find("prof-beta;"), std::string::npos) << folded;
    // Every folded line carries a positive trailing count.
    for (std::size_t pos = 0; pos < folded.size();) {
        const std::size_t eol = folded.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        const std::string line = folded.substr(pos, eol - pos);
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u)
            << line;
        pos = eol + 1;
    }

    const Json j = prof.toJson();
    EXPECT_EQ(j.find("samples")->uintValue(), prof.samples());
    const Json *threads = j.find("threads");
    ASSERT_NE(threads, nullptr);
    std::vector<std::string> lanes;
    for (const Json &t : threads->items())
        lanes.push_back(t.stringValue());
    EXPECT_NE(std::find(lanes.begin(), lanes.end(), "prof-alpha"),
              lanes.end());
    EXPECT_NE(std::find(lanes.begin(), lanes.end(), "prof-beta"),
              lanes.end());
    ASSERT_NE(j.find("top"), nullptr);
    EXPECT_GT(j.find("top")->items().size(), 0u);
}

TEST(Profiler, SecondInstanceCannotStartWhileFirstRuns)
{
    Profiler first;
    ASSERT_TRUE(first.start());
    Profiler second;
    EXPECT_FALSE(second.start());
    first.stop();
    // The handler slot frees on stop.
    Profiler third;
    EXPECT_TRUE(third.start());
    third.stop();
}

TEST(Profiler, NeverStartedRecordsNothing)
{
    Profiler prof;
    prof.stop();
    EXPECT_EQ(prof.samples(), 0u);
    EXPECT_EQ(prof.signalsSent(), 0u);
    EXPECT_EQ(prof.folded(), "");
}

TEST(Profiler, FullRingCountsDrops)
{
    ProfilerCfg cfg;
    cfg.max_samples = 16; // the floor
    Profiler prof(cfg);
    // Drive the sample path directly (outside a signal): 20 into 16.
    for (int i = 0; i < 20; ++i)
        prof.recordSample(-1);
    prof.stop();
    EXPECT_EQ(prof.samples(), 16u);
    EXPECT_EQ(prof.dropped(), 4u);
    // Unregistered slots still fold, under an honest lane name.
    EXPECT_NE(prof.folded().find("unregistered"), std::string::npos);
}

TEST(Profiler, ThreadGuardUnregistersOnExit)
{
    const std::size_t before = Profiler::registeredThreads();
    {
        Profiler::ThreadGuard guard("transient");
        EXPECT_EQ(Profiler::registeredThreads(), before + 1);
    }
    EXPECT_EQ(Profiler::registeredThreads(), before);
}

// ------------------------------------------- System::run() integration

TEST(Profiler, SystemRunOffByDefaultLeavesNoProfilerMetrics)
{
    Program prog = litmus::messagePassingSync();
    SystemCfg cfg;
    ASSERT_FALSE(cfg.profile);
    System sys(prog, cfg);
    const SystemResult r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stats_json.find("\"profiler\""), std::string::npos);
}

TEST(Profiler, SystemRunWithProfileMountsProfilerMetrics)
{
    Program prog = litmus::messagePassingSync();
    SystemCfg cfg;
    cfg.profile = true;
    cfg.profile_hz = 500;
    System sys(prog, cfg);
    const SystemResult r = sys.run();
    ASSERT_TRUE(r.completed);
    // The run may be too short for a sample, but the metrics mount
    // either way -- zero samples is a result, not an absence.
    EXPECT_NE(r.stats_json.find("\"profiler\""), std::string::npos);
    EXPECT_NE(r.stats_json.find("\"samples\""), std::string::npos);
}

// ------------------------------------------------------------ Timeline

TEST(Timeline, AggregatesTotalsCountsAndMax)
{
    Timeline tl;
    tl.configure("worker0", Timeline::Clock::now(), false);
    const auto t0 = Timeline::Clock::now();
    tl.add(SpanKind::run, t0, t0 + std::chrono::milliseconds(10));
    tl.add(SpanKind::run, t0, t0 + std::chrono::milliseconds(30));
    tl.add(SpanKind::idle, t0, t0 + std::chrono::milliseconds(5));

    const SpanAgg run = tl.agg(SpanKind::run);
    EXPECT_NEAR(run.total_ms, 40.0, 0.01);
    EXPECT_EQ(run.count, 2u);
    EXPECT_NEAR(run.max_ms, 30.0, 0.01);
    EXPECT_NEAR(tl.agg(SpanKind::idle).total_ms, 5.0, 0.01);
    EXPECT_EQ(tl.agg(SpanKind::shrink).count, 0u);
    EXPECT_NEAR(tl.spanSumMs(), 45.0, 0.01);
    EXPECT_EQ(tl.liveNs(SpanKind::idle), 5'000'000u);
    // Events off: nothing recorded for the trace.
    EXPECT_TRUE(tl.events().empty());
}

TEST(Timeline, ScopeIsNullSafeAndNests)
{
    {
        Timeline::Scope nothing(nullptr, SpanKind::run); // must not crash
    }

    Timeline tl;
    tl.configure("w", Timeline::Clock::now(), true);
    {
        Timeline::Scope outer(&tl, SpanKind::run);
        {
            Timeline::Scope inner(&tl, SpanKind::journal_push);
        }
    }
    EXPECT_EQ(tl.agg(SpanKind::run).count, 1u);
    EXPECT_EQ(tl.agg(SpanKind::journal_push).count, 1u);
    ASSERT_EQ(tl.events().size(), 2u);
    // Inner closed first; spans nest (outer brackets inner).
    const SpanEvent &inner = tl.events()[0];
    const SpanEvent &outer = tl.events()[1];
    EXPECT_EQ(inner.kind, SpanKind::journal_push);
    EXPECT_EQ(outer.kind, SpanKind::run);
    EXPECT_LE(outer.t0_us, inner.t0_us);
    EXPECT_GE(outer.t1_us, inner.t1_us);

    // close() is idempotent.
    Timeline::Scope s(&tl, SpanKind::idle);
    s.close();
    s.close();
    EXPECT_EQ(tl.agg(SpanKind::idle).count, 1u);
}

TEST(Timeline, CurrentIsPerThread)
{
    Timeline tl;
    Timeline::setCurrent(&tl);
    EXPECT_EQ(Timeline::current(), &tl);
    std::thread([&] { EXPECT_EQ(Timeline::current(), nullptr); }).join();
    Timeline::setCurrent(nullptr);
    EXPECT_EQ(Timeline::current(), nullptr);
}

TEST(Timeline, ChromeJsonHasOneLanePerTimelineWithStableTids)
{
    const auto epoch = Timeline::Clock::now();
    Timeline w0, w1;
    w0.configure("worker0", epoch, true);
    w1.configure("journal-writer", epoch, true);
    const auto t0 = epoch + std::chrono::milliseconds(1);
    w0.add(SpanKind::run, t0, t0 + std::chrono::milliseconds(2));
    w1.add(SpanKind::writer_flush, t0,
           t0 + std::chrono::milliseconds(1));

    const std::string json = timelinesChromeJson({&w0, &w1});
    JsonParseResult p = jsonParse(json);
    ASSERT_TRUE(p.ok) << p.error;
    const Json *events = p.value.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Lane metadata: tid equals the lane's index, named for its thread.
    std::map<std::uint64_t, std::string> lane_names;
    for (const Json &e : events->items()) {
        if (e.find("ph")->stringValue() == "M")
            lane_names[e.find("tid")->uintValue()] =
                e.find("args")->find("name")->stringValue();
    }
    ASSERT_EQ(lane_names.size(), 2u);
    EXPECT_EQ(lane_names[0], "worker0");
    EXPECT_EQ(lane_names[1], "journal-writer");

    // Span events carry their lane's tid and a positive duration.
    bool saw_run = false, saw_flush = false;
    for (const Json &e : events->items()) {
        if (e.find("ph")->stringValue() != "X")
            continue;
        if (e.find("name")->stringValue() == "run") {
            saw_run = true;
            EXPECT_EQ(e.find("tid")->uintValue(), 0u);
            EXPECT_EQ(e.find("dur")->uintValue(), 2000u);
        }
        if (e.find("name")->stringValue() == "writer_flush") {
            saw_flush = true;
            EXPECT_EQ(e.find("tid")->uintValue(), 1u);
        }
    }
    EXPECT_TRUE(saw_run);
    EXPECT_TRUE(saw_flush);
}

TEST(Timeline, WallClockBracketsSpans)
{
    Timeline tl;
    tl.configure("w", Timeline::Clock::now(), false);
    EXPECT_EQ(tl.liveElapsedNs(), 0u); // not started yet
    tl.markStart();
    const auto t0 = Timeline::Clock::now();
    tl.add(SpanKind::run, t0, t0 + std::chrono::microseconds(100));
    EXPECT_GT(tl.liveElapsedNs(), 0u);
    tl.markEnd();
    EXPECT_GT(tl.wallMs(), 0.0);
}

} // namespace
} // namespace wo

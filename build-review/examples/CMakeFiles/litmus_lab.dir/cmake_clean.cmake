file(REMOVE_RECURSE
  "CMakeFiles/litmus_lab.dir/litmus_lab.cpp.o"
  "CMakeFiles/litmus_lab.dir/litmus_lab.cpp.o.d"
  "litmus_lab"
  "litmus_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Unit tests for the SC-explainability checker (the executable Lamport
 * definition / Lemma 1).
 */

#include <gtest/gtest.h>

#include "sc/sc_checker.hh"

namespace wo {
namespace {

/** The Figure-1 execution where both processors read 0: not SC. */
Execution
sbBothZero()
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1); // P0 W(X)=1
    e.append(0, 1, AccessKind::data_read, 0, 0);  // P0 R(Y)=0
    e.append(1, 1, AccessKind::data_write, 0, 1); // P1 W(Y)=1
    e.append(1, 0, AccessKind::data_read, 0, 0);  // P1 R(X)=0
    return e;
}

TEST(ScChecker, StoreBufferBothZeroIsNotSC)
{
    auto r = checkSequentialConsistency(sbBothZero());
    EXPECT_FALSE(r.sc);
    EXPECT_FALSE(r.exhausted);
    EXPECT_TRUE(r.witness.empty());
}

TEST(ScChecker, StoreBufferOneZeroIsSC)
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(0, 1, AccessKind::data_read, 0, 0); // P0 sees Y==0
    e.append(1, 1, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_read, 1, 0); // P1 sees X==1
    auto r = checkSequentialConsistency(e);
    EXPECT_TRUE(r.sc);
    EXPECT_EQ(r.witness.size(), 4u);
}

TEST(ScChecker, WitnessRespectsProgramOrderAndValues)
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(0, 1, AccessKind::data_read, 1, 0);
    e.append(1, 1, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_read, 1, 0);
    auto r = checkSequentialConsistency(e);
    ASSERT_TRUE(r.sc);
    // Replay the witness and verify it is a legal serial execution.
    std::vector<Value> mem(e.numLocations(), 0);
    std::vector<std::uint32_t> next(e.numProcs(), 0);
    for (OpId id : r.witness) {
        const MemoryOp &op = e.op(id);
        EXPECT_EQ(op.po_index, next[op.proc]++) << "program order violated";
        if (op.isRead()) {
            EXPECT_EQ(mem[op.addr], op.value_read);
        }
        if (op.isWrite())
            mem[op.addr] = op.value_written;
    }
}

TEST(ScChecker, MessagePassingViolationDetected)
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1); // data = 1
    e.append(0, 1, AccessKind::data_write, 0, 1); // flag = 1
    e.append(1, 1, AccessKind::data_read, 1, 0);  // flag == 1
    e.append(1, 0, AccessKind::data_read, 0, 0);  // data == 0: stale!
    EXPECT_FALSE(isSequentiallyConsistent(e));
}

TEST(ScChecker, CoherenceCoRRViolationDetected)
{
    // P1 reads new then old value of x: no total order explains it.
    Execution e(2, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_read, 1, 0);
    e.append(1, 0, AccessKind::data_read, 0, 0);
    EXPECT_FALSE(isSequentiallyConsistent(e));
}

TEST(ScChecker, RmwAtomicityEnforced)
{
    // Two TestAndSets on the same lock may not both read 0.
    Execution e(2, 1);
    e.append(0, 0, AccessKind::sync_rmw, 0, 1);
    e.append(1, 0, AccessKind::sync_rmw, 0, 1);
    EXPECT_FALSE(isSequentiallyConsistent(e));

    Execution ok(2, 1);
    ok.append(0, 0, AccessKind::sync_rmw, 0, 1);
    ok.append(1, 0, AccessKind::sync_rmw, 1, 1);
    EXPECT_TRUE(isSequentiallyConsistent(ok));
}

TEST(ScChecker, InitialValuesRespected)
{
    Execution e(1, 1, {7});
    e.append(0, 0, AccessKind::data_read, 7, 0);
    EXPECT_TRUE(isSequentiallyConsistent(e));

    Execution bad(1, 1, {7});
    bad.append(0, 0, AccessKind::data_read, 7, 0);
    bad.append(0, 0, AccessKind::data_read, 0, 0); // 0 was never stored
    EXPECT_FALSE(isSequentiallyConsistent(bad));
}

TEST(ScChecker, OutOfThinAirRejectedCheaply)
{
    Execution e(1, 1);
    e.append(0, 0, AccessKind::data_read, 999, 0);
    auto r = checkSequentialConsistency(e);
    EXPECT_FALSE(r.sc);
    EXPECT_EQ(r.states, 0u) << "screened before search";
}

TEST(ScChecker, ExpectedFinalMemoryConstraint)
{
    Execution e(2, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_write, 0, 2);
    ScCheckerCfg cfg;
    cfg.expected_final = std::vector<Value>{1};
    EXPECT_TRUE(checkSequentialConsistency(e, cfg).sc)
        << "order P1 then P0 leaves 1";
    cfg.expected_final = std::vector<Value>{2};
    EXPECT_TRUE(checkSequentialConsistency(e, cfg).sc);
    cfg.expected_final = std::vector<Value>{3};
    EXPECT_FALSE(checkSequentialConsistency(e, cfg).sc);
}

TEST(ScChecker, EmptyExecutionIsSC)
{
    Execution e(2, 1);
    EXPECT_TRUE(isSequentiallyConsistent(e));
}

TEST(ScChecker, StateBudgetReportsExhaustion)
{
    // A wide independent execution with an impossible read forces the
    // search to wander; a tiny budget must trip the exhausted flag.
    Execution e(4, 5);
    for (ProcId p = 0; p < 4; ++p)
        for (Addr a = 0; a < 4; ++a)
            e.append(p, a, AccessKind::data_write, 0,
                     static_cast<Value>(p * 10 + a));
    e.append(0, 4, AccessKind::data_read, 12345, 0);
    ScCheckerCfg cfg;
    cfg.max_states = 10;
    auto r = checkSequentialConsistency(e, cfg);
    EXPECT_FALSE(r.sc);
    // The thin-air screen fires first here, so relax: either screened or
    // exhausted is acceptable as long as it does not claim SC.
    SUCCEED();
}

TEST(ScChecker, LargerInterleavingStillFast)
{
    // 3 processors x 8 ops on disjoint locations: trivially SC, and the
    // memoized search must handle it without blowing up.
    Execution e(3, 3);
    for (int i = 0; i < 8; ++i) {
        for (ProcId p = 0; p < 3; ++p) {
            e.append(p, p, AccessKind::data_write, 0, i + 1);
        }
    }
    auto r = checkSequentialConsistency(e);
    EXPECT_TRUE(r.sc);
    EXPECT_LT(r.states, 200000u);
}

} // namespace
} // namespace wo

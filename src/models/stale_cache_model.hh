/**
 * @file
 * Figure 1, configurations 3 and 4: cache-based machines whose invalidation
 * (here: update) traffic is not atomic.  Every processor holds a copy of
 * every location.  A write commits to the writer's copy and to memory
 * immediately, and an update message is enqueued, in commit order, towards
 * every other processor; until that message is delivered the other
 * processor keeps reading its stale copy.  This realizes exactly the
 * figure's scenario: "both processors initially have X and Y in their
 * caches, and a processor issues its read before its write is propagated
 * to the cache of the other processor".
 *
 * Each receiving processor consumes its incoming updates in commit order
 * (one queue per receiver), so per-location write serialization is
 * preserved -- the machine is "coherent but not sequentially consistent".
 *
 * Synchronization operations are modelled as heavyweight barriers: they
 * require every update queue in the system to be empty and then act on all
 * copies atomically.  Figure 1 uses none.
 */

#ifndef WO_MODELS_STALE_CACHE_MODEL_HH
#define WO_MODELS_STALE_CACHE_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "execution/execution.hh"
#include "models/state_enc.hh"
#include "models/thread_ctx.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** Cache-based machine with delayed update propagation. */
class StaleCacheModel
{
  public:
    /** An update travelling towards one processor's cache. */
    struct Update
    {
        Addr addr;
        Value value;
        bool operator==(const Update &other) const = default;
    };

    /** Machine state. */
    struct State
    {
        std::vector<ThreadCtx> threads;
        std::vector<Value> mem;                  // commit-order memory image
        std::vector<std::vector<Value>> copy;    // copy[proc][addr]
        std::vector<std::vector<Update>> inbox;  // per receiving processor

        bool operator==(const State &other) const = default;
    };

    /**
     * @param prog       the program (must outlive the model)
     * @param max_inbox  pending updates per receiver before writers stall
     */
    explicit StaleCacheModel(const Program &prog, std::size_t max_inbox = 4);

    static const char *name() { return "caches+delayed-inval"; }

    State initial() const;
    bool isFinal(const State &s) const;
    std::vector<State> successors(const State &s) const;
    std::vector<LabeledSucc<State>> labeledSuccessors(const State &s) const;

    /**
     * The successor reached from @p s by the single transition @p l, or
     * nullopt if @p l is not enabled.  Materializes exactly one state:
     * the explorer's commutation probes chase individual labels and
     * must not pay for a full successor list.
     */
    std::optional<State> stepLabel(const State &s, const TransLabel &l) const;

    Outcome outcome(const State &s) const;

    /**
     * Injective state layout, written into either encoder: threads,
     * memory, every processor's private copies, then each inbox
     * (separator-delimited).
     */
    template <typename Enc>
    void
    encodeInto(const State &s, Enc &enc) const
    {
        for (const auto &t : s.threads)
            enc.putThread(t);
        enc.sep();
        for (Value v : s.mem)
            enc.put(v);
        enc.sep();
        for (const auto &c : s.copy)
            for (Value v : c)
                enc.put(v);
        enc.sep();
        for (const auto &q : s.inbox) {
            for (const auto &u : q) {
                enc.put(u.addr);
                enc.put(u.value);
            }
            enc.sep();
        }
    }

    /** Injective byte encoding for the visited set (cold paths). */
    std::string encode(const State &s) const;

    /** Allocation-free 128-bit key over the encoded bytes (hot path). */
    StateHash
    hashState(const State &s) const
    {
        HashEnc enc;
        encodeInto(s, enc);
        return enc.take();
    }

    /** Human-readable state rendering (for witness chains/debugging). */
    std::string dump(const State &s) const;

    /** The bound program. */
    const Program &program() const { return prog_; }

    /**
     * Stores broadcast updates into every other processor's inbox and
     * synchronization barriers wait on every inbox, so any processor that
     * may still write or synchronize conflicts with everyone (the
     * explorer's footprint reduction must not treat its accesses as
     * per-location).
     */
    static constexpr bool stores_broadcast = true;

    /**
     * Pending deliveries update only the receiving processor's private
     * copy, so they expose no cross-processor location footprint.
     */
    void pendingAddrs(const State &, ProcId, std::vector<Addr> &) const {}

  private:
    /** Append @p p's instruction-step successor (if enabled) to @p out. */
    void instrSucc(const State &s, ProcId p,
                   std::vector<LabeledSucc<State>> &out) const;

    /**
     * Append @p p's delivery successor to @p out; @p only restricts the
     * enumeration to deliveries of one location.
     */
    void drainSuccs(const State &s, ProcId p, std::optional<Addr> only,
                    std::vector<LabeledSucc<State>> &out) const;

    const Program &prog_;
    std::size_t max_inbox_;
};

} // namespace wo

#endif // WO_MODELS_STALE_CACHE_MODEL_HH

#include "cell.hh"

#include <chrono>

#include "campaign/verify.hh"
#include "common/logging.hh"
#include "obs/timeline.hh"
#include "program/litmus.hh"

namespace wo {

std::string
fnv1aHex(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return strprintf("%016llx", static_cast<unsigned long long>(h));
}

bool
parsePolicyName(const std::string &name, OrderingPolicy &out)
{
    if (name == "sc")
        out = OrderingPolicy::sc;
    else if (name == "def1")
        out = OrderingPolicy::wo_def1;
    else if (name == "drf0")
        out = OrderingPolicy::wo_drf0;
    else if (name == "drf0ro")
        out = OrderingPolicy::wo_drf0_ro;
    else
        return false;
    return true;
}

const char *
policyFlagName(OrderingPolicy p)
{
    switch (p) {
      case OrderingPolicy::sc: return "sc";
      case OrderingPolicy::wo_def1: return "def1";
      case OrderingPolicy::wo_drf0: return "drf0";
      case OrderingPolicy::wo_drf0_ro: return "drf0ro";
    }
    return "?";
}

namespace {

/** Keys are embedded in JSONL unescaped: keep them to a safe charset. */
std::string
sanitizeSpec(const std::string &spec)
{
    std::string out;
    out.reserve(spec.size());
    for (char c : spec) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '/' ||
                          c == '-' || c == '_' || c == '+';
        out += safe ? c : '_';
    }
    return out;
}

std::string
sourceTag(const Cell &c)
{
    switch (c.source) {
      case CellSource::file:
        return "file:" + sanitizeSpec(c.spec);
      case CellSource::litmus:
        return "litmus:" + sanitizeSpec(c.spec);
      case CellSource::drf0_rand:
        return strprintf(
            "drf0:p%ur%ul%uv%us%do%dq%dt%dw%lldg%llu", c.drf0.procs,
            c.drf0.regions, c.drf0.locs_per_region, c.drf0.private_locs,
            c.drf0.sections, c.drf0.ops_per_section, c.drf0.private_ops,
            c.drf0.test_and_tas ? 1 : 0,
            static_cast<long long>(c.drf0.work_cycles),
            static_cast<unsigned long long>(c.drf0.seed));
      case CellSource::racy_rand:
        return strprintf("racy:p%ul%uo%dg%llu", c.racy.procs, c.racy.locs,
                         c.racy.ops_per_thread,
                         static_cast<unsigned long long>(c.racy.seed));
    }
    return "?";
}

} // namespace

std::string
Cell::key() const
{
    // Verify cells are untimed: program x model identifies the work,
    // so the timing coordinates stay out of the key and a resumed (or
    // over-long) stream skips repeats instead of re-checking them.
    if (kind == CellKind::verify) {
        std::string k = programId();
        if (inject_axiom_bug)
            k += "|ABUG";
        return k;
    }
    std::string k = programId() +
                    strprintf("|n%llu|h%llu|j%llu",
                              static_cast<unsigned long long>(net_seed),
                              static_cast<unsigned long long>(hop),
                              static_cast<unsigned long long>(jitter));
    if (inject_reserve_bug)
        k += "|BUG";
    return k;
}

std::string
Cell::programId() const
{
    if (kind == CellKind::verify)
        return "verify:" + sourceTag(*this) + "|" + sanitizeSpec(model);
    return sourceTag(*this) + "|" + policyFlagName(policy);
}

std::string
Cell::familyId() const
{
    switch (source) {
      case CellSource::file: return "file:" + sanitizeSpec(spec);
      case CellSource::litmus: return "litmus:" + sanitizeSpec(spec);
      case CellSource::drf0_rand: return "drf0-rand";
      case CellSource::racy_rand: return "racy-rand";
    }
    return "?";
}

SystemCfg
Cell::systemCfg(std::uint64_t max_events, EventQueueKind queue) const
{
    SystemCfg cfg;
    cfg.policy = policy;
    cfg.queue = queue;
    cfg.net.seed = net_seed;
    cfg.net.hop_latency = hop;
    cfg.net.jitter = jitter;
    cfg.cache.bug_drop_reserve_clear = inject_reserve_bug;
    cfg.monitor = true;
    cfg.quiet = true;
    // Cells read only the verdict, outcome and monitor summary; the
    // stats/JSON renders would dominate thousands of tiny runs.
    cfg.collect_stats = false;
    cfg.max_events = max_events;
    return cfg;
}

const std::vector<LitmusCorpusEntry> &
litmusCorpus()
{
    static const std::vector<LitmusCorpusEntry> corpus = {
        {"fig1", &litmus::fig1StoreBuffer},
        {"mp", &litmus::messagePassing},
        {"mp_sync", &litmus::messagePassingSync},
        {"corr", &litmus::coherenceCoRR},
        {"iriw", &litmus::iriw},
        {"lb", &litmus::loadBuffering},
        {"wrc", &litmus::wrc},
        {"2+2w", &litmus::twoPlusTwoW},
        {"s", &litmus::sShape},
        {"coww", &litmus::coWW},
        {"fig3", []() { return litmus::fig3Scenario(2); }},
        {"fig3_tt", []() { return litmus::fig3ScenarioTestAndTas(2); }},
        {"counter2x2", []() { return litmus::lockedCounter(2, 2); }},
        {"counter_tas", []() { return litmus::lockedCounter(2, 2, true); }},
        {"racy_counter", []() { return litmus::racyCounter(2, 2); }},
        {"barrier3", []() { return litmus::barrier(3); }},
        {"pingpong", []() { return litmus::pingPong(3); }},
    };
    return corpus;
}

const MaterializedCell *
MaterializeCache::find(const std::string &family_id) const
{
    auto it = map_.find(family_id);
    if (it == map_.end())
        return nullptr;
    ++hits_;
    return &it->second;
}

const MaterializedCell &
MaterializeCache::put(std::string family_id, MaterializedCell m)
{
    ++misses_;
    return map_.insert_or_assign(std::move(family_id), std::move(m))
        .first->second;
}

MaterializedCell
materializeCell(const Cell &cell, MaterializeCache *cache)
{
    // Only deterministic repeated sources are cacheable; random draws
    // embed a per-cell generator seed and never repeat.
    const bool cacheable = cache && (cell.source == CellSource::file ||
                                     cell.source == CellSource::litmus);
    if (cacheable) {
        const std::string id = cell.familyId();
        if (const MaterializedCell *hit = cache->find(id))
            return *hit;
        return cache->put(id, materializeCell(cell, nullptr));
    }

    MaterializedCell m;
    switch (cell.source) {
      case CellSource::file: {
          AsmResult a = assembleFile(cell.spec);
          if (!a.ok()) {
              m.error = cell.spec + ": ";
              m.error += a.errors.empty() ? "unreadable"
                                          : a.errors[0].toString();
              return m;
          }
          m.program = std::move(a.program);
          m.warm = std::move(a.warm);
          return m;
      }
      case CellSource::litmus: {
          for (const auto &e : litmusCorpus())
              if (cell.spec == e.name) {
                  m.program = e.make();
                  return m;
              }
          m.error = "unknown litmus corpus entry '" + cell.spec + "'";
          return m;
      }
      case CellSource::drf0_rand:
        m.program = randomDrf0Program(cell.drf0);
        return m;
      case CellSource::racy_rand:
        m.program = randomRacyProgram(cell.racy);
        return m;
    }
    m.error = "corrupt cell source";
    return m;
}

std::string
CellResult::verdict() const
{
    if (hw > 0)
        return "hw:" + (primary_kind.empty() ? std::string("?")
                                             : primary_kind);
    if (!completed && primary_kind == "materialize_error")
        return "error";
    if (inconclusive)
        return "inconclusive";
    if (nonsc)
        return "nonsc";
    if (deadlocked)
        return "deadlock";
    if (livelocked)
        return "livelock";
    if (races > 0)
        return "race";
    return "clean";
}

Json
cellResultToJson(const CellResult &r)
{
    Json j = Json::object();
    j.set("key", Json(r.key));
    j.set("verdict", Json(r.verdict()));
    j.set("hw", Json(r.hw));
    j.set("races", Json(r.races));
    j.set("sig", Json(r.outcome_sig));
    j.set("tick", Json(r.finish_tick));
    j.set("ms", Json(r.wall_ms));
    j.set("mat_us", Json(r.mat_us));
    j.set("run_us", Json(r.run_us));
    if (r.shrink_us > 0)
        j.set("shrink_us", Json(r.shrink_us));
    if (!r.primary_kind.empty())
        j.set("kind", Json(r.primary_kind));
    if (r.inconclusive)
        j.set("inconclusive", Json(true));
    if (r.nonsc)
        j.set("nonsc", Json(true));
    if (r.dpor_states > 0 || r.bfs_states > 0) {
        j.set("dpor_states", Json(r.dpor_states));
        j.set("bfs_states", Json(r.bfs_states));
        j.set("dpor_probes", Json(r.dpor_probes));
        j.set("dpor_memo_hits", Json(r.dpor_memo_hits));
    }
    return j;
}

CellRun
runCell(const Cell &cell, std::uint64_t max_events, EventQueueKind queue,
        MaterializeCache *cache)
{
    CellRun run;
    CellResult &r = run.result;
    r.key = cell.key();

    // Timeline spans accrue to whatever lane the calling thread owns
    // (a campaign worker's, or none when run standalone).
    Timeline *tl = Timeline::current();
    MaterializedCell m;
    {
        Timeline::Scope mat_span(tl, SpanKind::materialize);
        const auto m0 = std::chrono::steady_clock::now();
        m = materializeCell(cell, cache);
        r.mat_us = static_cast<std::uint64_t>(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - m0)
                .count());
    }
    if (!m.ok()) {
        r.primary_kind = "materialize_error";
        return run;
    }
    run.program = std::move(m.program);
    run.warm = std::move(m.warm);

    if (cell.kind == CellKind::verify) {
        // The dual-engine judge replaces the timed simulation.  Warm
        // directives are a timed-system concern; exploration always
        // starts from the zeroed initial image.
        Timeline::Scope verify_span(tl, SpanKind::run);
        const auto t0 = std::chrono::steady_clock::now();
        VerifyCfg vcfg;
        vcfg.max_states = cell.max_states;
        vcfg.jobs = cell.explore_jobs;
        vcfg.axiom.inject_bug = cell.inject_axiom_bug;
        VerifyResult v =
            verifyProgramOnModel(*run.program, cell.model, vcfg);
        r.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.run_us = static_cast<std::uint64_t>(r.wall_ms * 1000.0);

        r.completed = true;
        r.inconclusive = v.inconclusive;
        r.nonsc = v.nonsc;
        r.dpor_states = v.dpor.states;
        r.bfs_states = v.bfs.states;
        r.dpor_probes = v.dpor.commutation_probes;
        r.dpor_memo_hits = v.dpor.memo_hits;
        if (v.has_violation) {
            r.hw = 1;
            r.total = 1;
            r.by_kind[static_cast<int>(v.kind)] = 1;
            r.primary_kind = violationKindName(v.kind);
        }
        // The outcome signature hashes the hardware outcome set, so
        // the frontier's novelty tracking sees outcome-set changes
        // across program shapes exactly like it does for run cells.
        std::string sig_src;
        for (const auto &o : v.dpor.outcomes)
            sig_src += o.toString() + "\n";
        r.outcome_sig = fnv1aHex(sig_src);
        run.verify_detail = v.detail();
        return run;
    }

    Timeline::Scope run_span(tl, SpanKind::run);
    const auto t0 = std::chrono::steady_clock::now();
    System sys(*run.program, cell.systemCfg(max_events, queue));
    for (const auto &w : run.warm)
        sys.warmShared(w.addr, w.procs);
    SystemResult sr = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.run_us = static_cast<std::uint64_t>(r.wall_ms * 1000.0);

    r.completed = sr.completed;
    r.deadlocked = sr.deadlocked;
    r.livelocked = sr.livelocked;
    r.finish_tick = sr.finish_tick;
    r.outcome_sig = fnv1aHex(sr.outcome.toString());

    const Monitor *mon = sys.monitor();
    MonitorSummary s = mon->summary();
    r.hw = s.hardware;
    r.races = s.races;
    r.total = s.total;
    for (int k = 0; k < num_violation_kinds; ++k)
        r.by_kind[k] = s.by_kind[k];
    // First *recorded* hardware-blaming violation names the failure.
    for (const auto &v : mon->violations())
        if (violationBlamesHardware(v.kind)) {
            r.primary_kind = violationKindName(v.kind);
            break;
        }
    return run;
}

} // namespace wo

/**
 * @file
 * The instruction set of the laboratory's parallel-program IR.
 *
 * Programs are small register machines, one code sequence per processor.
 * Memory accesses come in the three synchronization classes the paper's
 * Section 6 distinguishes -- ordinary (data), read-only synchronization
 * (e.g. Test), write-only synchronization (e.g. Unset/Set) -- plus the
 * read-write TestAndSet primitive.  Every synchronization operation accesses
 * exactly one memory location, as DRF0's Definition 3 requires.
 */

#ifndef WO_PROGRAM_INSTRUCTION_HH
#define WO_PROGRAM_INSTRUCTION_HH

#include <string>

#include "common/types.hh"

namespace wo {

/** Number of general-purpose registers per thread. */
inline constexpr RegId num_regs = 16;

/** Opcodes of the program IR. */
enum class Opcode : std::uint8_t
{
    load_data,   //!< r[dst] = M[addr]                       (ordinary read)
    store_data,  //!< M[addr] = value-operand                (ordinary write)
    sync_load,   //!< r[dst] = M[addr]              (read-only sync, "Test")
    sync_store,  //!< M[addr] = value-operand      (write-only sync, "Unset")
    test_and_set,//!< r[dst] = M[addr]; M[addr] = 1  (read-write sync, "TAS")
    mov_imm,     //!< r[dst] = imm
    add,         //!< r[dst] = r[src] + r[src2]
    add_imm,     //!< r[dst] = r[src] + imm
    branch_eq,   //!< if (r[src] == imm) goto target
    branch_ne,   //!< if (r[src] != imm) goto target
    jump,        //!< goto target
    delay,       //!< consume imm cycles of local work (timed models only)
    halt,        //!< thread terminates
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::halt;
    RegId dst = 0;     //!< destination register
    RegId src = 0;     //!< first source register
    RegId src2 = 0;    //!< second source register
    Addr addr = invalid_addr; //!< memory location for accesses
    Value imm = 0;     //!< immediate operand
    bool use_imm = false; //!< stores: value comes from imm, else r[src]
    Pc target = 0;     //!< branch destination

    /** True for the three memory-reading opcodes. */
    bool readsMemory() const;

    /** True for the three memory-writing opcodes. */
    bool writesMemory() const;

    /** True for any of the three synchronization opcodes. */
    bool isSync() const;

    /** True for sync_load (a read-only synchronization operation). */
    bool isReadOnlySync() const { return op == Opcode::sync_load; }

    /** True for any memory access. */
    bool accessesMemory() const { return readsMemory() || writesMemory(); }

    /** Human-readable rendering, e.g. "ST  [3] <- 1". */
    std::string toString() const;
};

/** Name of an opcode for diagnostics. */
const char *opcodeName(Opcode op);

} // namespace wo

#endif // WO_PROGRAM_INSTRUCTION_HH

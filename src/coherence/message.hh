/**
 * @file
 * Protocol messages of the directory-based write-back invalidation
 * protocol of Section 5.2.  One memory word per line; the directory is
 * co-located with memory.  The protocol deliberately allows the requested
 * line to be forwarded to a writer in parallel with the sending of
 * invalidations; the directory's ack for "all invalidations acknowledged"
 * (MemAck) arrives later and marks the write globally performed.
 */

#ifndef WO_COHERENCE_MESSAGE_HH
#define WO_COHERENCE_MESSAGE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace wo {

/** Network node id: caches are [0, procs), the directory is procs. */
using NodeId = std::uint16_t;

/** Message types. */
enum class MsgType : std::uint8_t
{
    get_s,        //!< cache -> dir: read request (shared)
    get_x,        //!< cache -> dir: write/upgrade request (exclusive)
    data_s,       //!< dir -> cache: line data, shared grant
    data_e,       //!< dir -> cache: exclusive-clean grant (MESI option)
    data_x,       //!< dir or owner -> cache: line data, exclusive grant
    fwd_get_s,    //!< dir -> owner: forward a read request
    fwd_get_x,    //!< dir -> owner: forward a write request
    inv,          //!< dir -> sharer: invalidate
    inv_ack,      //!< sharer -> dir: invalidation done
    mem_ack,      //!< dir -> writer: all invalidations acknowledged
    wb_data,      //!< owner -> dir: downgrade data (response to fwd_get_s)
    transfer_ack, //!< old owner -> dir: exclusive ownership handed over
    nack,         //!< owner -> requester: reserved line, retry later
};

/** Printable message-type name. */
const char *msgTypeName(MsgType t);

/** One protocol message. */
struct Message
{
    MsgType type = MsgType::get_s;
    NodeId src = 0;
    NodeId dst = 0;
    Addr addr = invalid_addr;
    Value value = 0;      //!< line data where applicable
    int ack_count = 0;    //!< data_x: invalidations the writer must await
    NodeId requester = 0; //!< original requester on forwarded messages
    bool is_sync = false; //!< request belongs to a synchronization op
    bool from_exclusive = false; //!< data_x sourced from an exclusive owner

    /** Short rendering for traces. */
    std::string toString() const;
};

} // namespace wo

#endif // WO_COHERENCE_MESSAGE_HH

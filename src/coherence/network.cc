#include "network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace wo {

Network::Network(EventQueue &eq, const NetworkCfg &cfg)
    : eq_(eq), cfg_(cfg), rng_(cfg.seed), stats_("net")
{
}

void
Network::attach(NodeId id, MsgHandler *handler)
{
    if (handlers_.size() <= id)
        handlers_.resize(id + 1, nullptr);
    wo_assert(handlers_[id] == nullptr, "node %u attached twice", id);
    handlers_[id] = handler;
}

Tick
Network::nextDepartureSlot(NodeId src, NodeId dst, Tick earliest)
{
    Tick &last = last_delivery_[{src, dst}];
    Tick slot = std::max(earliest, last + 1);
    last = slot;
    return slot;
}

void
Network::send(Message msg)
{
    wo_assert(msg.dst < handlers_.size() && handlers_[msg.dst],
              "message to unattached node %u: %s", msg.dst,
              msg.toString().c_str());
    stats_.counter("messages").inc();
    stats_.counter(std::string("msg.") + msgTypeName(msg.type)).inc();
    Tick delay = cfg_.hop_latency;
    if (cfg_.jitter > 0)
        delay += rng_.below(cfg_.jitter + 1);
    const Tick when =
        nextDepartureSlot(msg.src, msg.dst, eq_.now() + delay);
    if (Obs *obs = eq_.obs())
        obs->message(eq_.now(), when, msg.src, msg.dst,
                     msgTypeName(msg.type), msg.addr, msg.is_sync);
    MsgHandler *handler = handlers_[msg.dst];
    ++in_flight_;
    eq_.scheduleAt(when, [msg] { return msg.toString(); },
                   [this, handler, msg] {
        --in_flight_;
        handler->receive(msg);
    });
}

} // namespace wo

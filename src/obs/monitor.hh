/**
 * @file
 * The always-on runtime verifier of the Definition-2 contract.
 *
 * The post-hoc pipeline (run, then `checkSequentialConsistency`,
 * `findRaces`, `checkHbLastWrite` over the finished Execution) answers
 * "was that run correct?" only after the system has drained.  The
 * Monitor answers it *while the system runs*: it is fed every retired
 * memory operation plus the coherence substrate's counter and
 * reserve-bit transitions, maintains the happens-before vector clocks
 * incrementally (the same construction as HbRelation, reusing
 * hb/vector_clock), and raises a violation at the cycle the invariant
 * breaks:
 *
 *  - **drf0_race** -- two conflicting accesses unordered by hb.  A
 *    *software* finding: under Definition 2 a racy program voids the
 *    SC-appearance contract, so races never count against the
 *    hardware, but they are reported with the witness pair.
 *  - **stale_read** -- in a race-free history, a read returned a value
 *    other than its unique hb-last write (Lemma 1 clause 1).  This is
 *    the online SC-appearance check: hardware broke the contract.
 *  - **coherence_order** -- writes to one location retired against
 *    their commit-time order in a race-free history (per-location
 *    serialization broken).
 *  - **counter_negative / counter_undrained** -- the Section-5.3
 *    outstanding-access counter went below zero, or was nonzero when a
 *    completed run quiesced.
 *  - **reserve_leak** -- a reserve bit observed while its processor's
 *    counter read zero ("all reserve bits are reset when the counter
 *    reads zero"), or still set at quiesce.
 *  - **unperformed_op** -- a completed run ended with operations never
 *    globally performed.
 *
 * The monitor keeps its own copy of the execution (ops arrive with
 * full detail), so every violation can be rendered with op witnesses
 * and the surrounding happens-before structure exported as DOT.
 */

#ifndef WO_OBS_MONITOR_HH
#define WO_OBS_MONITOR_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "execution/execution.hh"
#include "hb/dot.hh"
#include "hb/happens_before.hh"
#include "hb/vector_clock.hh"
#include "obs/json.hh"

namespace wo {

/**
 * What broke.  Everything except drf0_race blames the hardware.  The
 * last three kinds are raised by the campaign's dual-engine verify
 * cells (src/campaign/verify.hh), not by the online monitor: they name
 * a disagreement between two independent checking engines (or a broken
 * Definition-2 subset claim), and ride the same shrink / dedup /
 * reproducer pipeline as the monitor's runtime findings.
 */
enum class ViolationKind : std::uint8_t
{
    drf0_race,         //!< conflicting accesses unordered by hb (software)
    stale_read,        //!< read differs from unique hb-last write
    coherence_order,   //!< same-location writes retired out of commit order
    counter_negative,  //!< outstanding-access counter below zero
    counter_undrained, //!< counter nonzero after a completed run
    reserve_leak,      //!< reserve bit held while the counter reads zero
    unperformed_op,    //!< completed run left operations unperformed
    dpor_divergence,   //!< DPOR and BFS explorers disagree on an outcome set
    axiom_divergence,  //!< axiomatic SC set != operational SC explorer set
    def2_subset,       //!< DRF0 program saw non-SC outcomes on a claiming model
};

/** Stable printable kind name (stats key / report label). */
const char *violationKindName(ViolationKind k);

/**
 * Reverse lookup: true and @p out set when @p name is a kind name.
 * Journals, fleet messages and shrink requests all carry kinds by
 * their stable names, so the reverse edge lives next to the forward
 * one.
 */
bool violationKindFromName(const std::string &name, ViolationKind &out);

/** Number of ViolationKind values (for iteration). */
inline constexpr int num_violation_kinds = 10;

/**
 * Does this kind indict the hardware?  Races are the software breaking
 * DRF0; everything else is the machine breaking Definition 2 or its
 * Section-5.3 implementation invariants.
 */
bool violationBlamesHardware(ViolationKind k);

/** One detected violation, with its witness. */
struct MonitorViolation
{
    ViolationKind kind;
    Tick tick = 0;             //!< cycle the invariant broke
    ProcId proc = invalid_proc; //!< processor involved (when meaningful)
    Addr addr = invalid_addr;  //!< location involved (when meaningful)
    OpId op_a = invalid_op;    //!< first witness op (when meaningful)
    OpId op_b = invalid_op;    //!< second witness op (when meaningful)
    Value expected = 0;        //!< stale_read: value the read should return
    Value got = 0;             //!< stale_read: value it returned
    std::string detail;        //!< human-readable witness, built at raise

    /** e.g. "[stale_read] tick 117: P1 R(x)=0 expected 1 from P0 W(x)=1". */
    std::string toString() const;
};

/** Monitor configuration. */
struct MonitorCfg
{
    /** Synchronization-order flavor (match the policy under test). */
    HbRelation::SyncFlavor flavor = HbRelation::SyncFlavor::drf0;

    /**
     * Violations recorded with full witness detail; further ones only
     * count.  Bounds evidence memory when a broken machine livelocks
     * through the same breach every retry cycle.
     */
    std::size_t max_recorded = 64;
};

/**
 * Compact value-type snapshot of a monitor's verdict.  The campaign
 * engine runs many Systems concurrently and must capture each cell's
 * verdict without touching shared or global state; everything a worker
 * needs to classify a run is copied out here before the System (and
 * its monitor) is destroyed.
 */
struct MonitorSummary
{
    std::uint64_t total = 0;    //!< all findings ever raised
    std::uint64_t hardware = 0; //!< hardware-blaming findings
    std::uint64_t races = 0;    //!< software races
    std::uint64_t by_kind[num_violation_kinds] = {};
    Tick first_tick = max_tick; //!< first violation (max_tick when none)

    /** No hardware violations. */
    bool clean() const { return hardware == 0; }
};

/** The online invariant monitor.  Fed by Obs; one per System. */
class Monitor
{
  public:
    /**
     * @param nprocs  processor count
     * @param nlocs   shared-location count
     * @param initial initial memory image (empty = all zero)
     * @param cfg     behaviour knobs
     */
    Monitor(ProcId nprocs, Addr nlocs, std::vector<Value> initial,
            const MonitorCfg &cfg = {});

    // ---- hooks (via Obs) ---------------------------------------------

    /** One memory operation retired, with full detail. */
    void opRetired(ProcId p, Addr addr, AccessKind kind, Value value_read,
                   Value value_written, Tick commit_tick, Tick now);

    /** Processor @p p's outstanding-access counter changed to @p value. */
    void counterChanged(ProcId p, int value, Tick now);

    /** Processor @p p's cache set the reserve bit on @p addr. */
    void reserveSet(ProcId p, Addr addr, Tick now);

    /** Processor @p p's cache cleared all its reserve bits. */
    void reserveCleared(ProcId p, Tick now);

    /**
     * End of run.  @p completed runs must have drained: counters zero,
     * no reserve bits, no unperformed operations.  Deadlocked and
     * livelocked runs skip those checks (the termination itself is
     * reported by the system; evidence is dumped either way).
     */
    void finalize(Tick now, bool completed, std::uint64_t unperformed_ops);

    // ---- results -----------------------------------------------------

    /** Recorded violations (first max_recorded, in raise order). */
    const std::vector<MonitorViolation> &violations() const
    {
        return violations_;
    }

    /** All violations ever raised (recorded or only counted). */
    std::uint64_t totalViolations() const { return total_; }

    /** Violations that blame the hardware (excludes drf0_race). */
    std::uint64_t hardwareViolations() const { return hardware_; }

    /** Data races detected (software findings). */
    std::uint64_t races() const { return races_; }

    /** Raised count per kind, indexed by ViolationKind. */
    std::uint64_t countOf(ViolationKind k) const
    {
        return by_kind_[static_cast<int>(k)];
    }

    /** No hardware violations so far. */
    bool clean() const { return hardware_ == 0; }

    /** Tick of the first violation (max_tick when none). */
    Tick firstViolationTick() const { return first_tick_; }

    /** The monitored execution so far (append order = retire order). */
    const Execution &execution() const { return exec_; }

    /** Multi-line human-readable report: verdict plus every witness. */
    std::string report() const;

    /**
     * The happens-before structure of the monitored execution as DOT
     * (Figure-2 style, races in red) -- the violation's hb witness,
     * written next to the flight-recorder window on a failure dump.
     */
    std::string witnessDot() const;

    /** The same hb witness rendered directly as self-contained SVG
     *  (no graphviz round-trip) -- the `.hb.svg` evidence artifact
     *  `wotool report` embeds per failure. */
    std::string witnessSvg() const;

    /** Machine-readable summary for the metrics tree. */
    Json toJson() const;

    /** Copy-out verdict snapshot (outlives the monitor; see above). */
    MonitorSummary summary() const;

  private:
    /** Flavor + witness title shared by the DOT and SVG renderings. */
    DotCfg witnessDotCfg() const;

    /** Last write/read of one processor on one location. */
    struct LastOp
    {
        std::uint32_t tick = 0;  //!< issuing proc's clock component
        OpId id = invalid_op;
    };

    /** A write not (yet) hb-dominated by a later write to the location. */
    struct WriteRec
    {
        OpId id;
        ProcId proc;
        Value value;
        VectorClock clock;
    };

    /** Per-location incremental state. */
    struct LocState
    {
        std::vector<LastOp> lastw, lastr; //!< per processor
        std::vector<WriteRec> frontier;   //!< non-dominated writes
        std::set<Value> written_values;   //!< every value retired here
        Tick last_write_commit = 0;
        bool raced = false; //!< a race touched this location: the DRF0
                            //!< contract is void here, hardware checks off

        /**
         * Suspected stale reads whose returned value matches no write
         * retired so far.  Such a value can come from an *in-flight*
         * write that has not reached the monitor yet; if that write
         * races with the read, the contract is void and blaming the
         * hardware would be wrong.  Judgment is deferred: a later race
         * on the location drops the suspicion, finalize() of a
         * completed race-free run raises it (every write has retired
         * by then, so the value really came from nowhere or from an
         * hb-ordered *future* write -- hardware either way).
         */
        std::vector<MonitorViolation> pending_stale;
    };

    LocState &loc(Addr a);
    void raise(MonitorViolation v);

    ProcId nprocs_;
    MonitorCfg cfg_;
    Execution exec_;
    std::vector<VectorClock> proc_clock_;
    std::map<Addr, VectorClock> chan_; //!< per-location sync channels
    std::vector<LocState> locs_;
    std::vector<int> counter_;               //!< last seen, per proc
    std::vector<std::uint32_t> reserve_bits_; //!< held bits, per proc

    std::vector<MonitorViolation> violations_;
    std::uint64_t total_ = 0;
    std::uint64_t hardware_ = 0;
    std::uint64_t races_ = 0;
    std::uint64_t by_kind_[num_violation_kinds] = {};
    Tick first_tick_ = max_tick;
    bool finalized_ = false;
};

} // namespace wo

#endif // WO_OBS_MONITOR_HH

/**
 * @file
 * Experiment E8a -- the quantitative SC / WO-Def1 / WO-DRF0 comparison
 * the paper lists as future work ("A quantitative performance analysis
 * comparing implementations for the old and new definitions of weak
 * ordering would provide useful insight").
 *
 * Sweeps the network hop latency on a fixed lock-disciplined workload and
 * reports execution time per policy.  Expected shape: SC degrades
 * linearly with the full access latency; both weak designs overlap data
 * misses; the new implementation additionally overlaps the release with
 * pending writes, pulling ahead of Definition 1 as latency grows.
 */

#include <cstdio>

#include "common/table.hh"
#include "obs/artifact.hh"
#include "program/workload.hh"
#include "sys/system.hh"

namespace wo {
namespace {

Tick
run(const Program &p, OrderingPolicy pol, Tick hop)
{
    SystemCfg cfg;
    cfg.policy = pol;
    cfg.net.hop_latency = hop;
    System sys(p, cfg);
    auto r = sys.run();
    return r.completed ? r.finish_tick : 0;
}

void
sweep()
{
    Drf0WorkloadCfg wl;
    wl.procs = 4;
    wl.regions = 4;
    wl.locs_per_region = 2;
    wl.private_locs = 2;
    wl.sections = 4;
    wl.ops_per_section = 4;
    wl.private_ops = 3;
    wl.seed = 42;
    Program p = randomDrf0Program(wl);

    std::printf("== E8a: execution time vs network hop latency "
                "(4 procs, lock-disciplined workload, seed 42) ==\n");
    Table t({"hop latency", "SC", "WO-Def1", "WO-DRF0", "WO-DRF0+RO",
             "Def1/SC", "DRF0/SC", "DRF0 vs Def1"});
    for (Tick hop : {1, 2, 5, 10, 20, 40, 80}) {
        Tick sc = run(p, OrderingPolicy::sc, hop);
        Tick d1 = run(p, OrderingPolicy::wo_def1, hop);
        Tick dn = run(p, OrderingPolicy::wo_drf0, hop);
        Tick ro = run(p, OrderingPolicy::wo_drf0_ro, hop);
        t.addRow({strprintf("%llu", (unsigned long long)hop),
                  strprintf("%llu", (unsigned long long)sc),
                  strprintf("%llu", (unsigned long long)d1),
                  strprintf("%llu", (unsigned long long)dn),
                  strprintf("%llu", (unsigned long long)ro),
                  sc ? strprintf("%.2f", (double)d1 / (double)sc) : "-",
                  sc ? strprintf("%.2f", (double)dn / (double)sc) : "-",
                  dn ? strprintf("%.2fx", (double)d1 / (double)dn) : "-"});
    }
    t.print();
    std::printf("Read: ratios below 1.0 mean faster than SC; the last "
                "column is Definition 1's time over the new "
                "implementation's (>1.0 means the new implementation "
                "wins).\n");

    Json payload = Json::object();
    payload.set("hop_sweep", tableToJson(t));
    writeBenchArtifact("sweep_latency", std::move(payload));
}

} // namespace
} // namespace wo

int
main()
{
    wo::sweep();
    return 0;
}

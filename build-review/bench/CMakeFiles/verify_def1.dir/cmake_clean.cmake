file(REMOVE_RECURSE
  "CMakeFiles/verify_def1.dir/verify_def1.cc.o"
  "CMakeFiles/verify_def1.dir/verify_def1.cc.o.d"
  "verify_def1"
  "verify_def1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_def1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Throughput of the distributed fleet against the in-process campaign
 * on the same lattice: the identical (seed, cells) base stream run
 * single-process (the zero-overhead baseline), then through a
 * coordinator with 1, 2 and 4 in-process workers.  The 1-worker fleet
 * column prices the coordination tax -- protocol framing, the lease
 * round-trips and the journal merge -- and the multi-worker columns
 * price its scaling.  On a single-core host extra workers only
 * interleave, so the artifact stamps hw_threads and a
 * workersN_oversubscribed flag per row; downstream gates skip
 * oversubscribed rows the same way they do for the campaign bench.
 */

#include <cstdio>
#include <chrono>
#include <thread>
#include <vector>

#include "campaign/scheduler.hh"
#include "common/table.hh"
#include "fleet/coordinator.hh"
#include "fleet/worker.hh"
#include "obs/artifact.hh"

namespace wo {
namespace {

constexpr std::uint64_t cells = 2000;
constexpr int worker_counts[] = {1, 2, 4};

struct FleetRun
{
    double wall_s = 0;
    double cells_per_sec = 0;
};

FleetCampaignSpec
benchSpec()
{
    FleetCampaignSpec spec;
    spec.seed = 7;
    spec.cells = cells;
    spec.max_events = 200'000;
    spec.shrink = false; // conforming hardware: nothing to shrink
    return spec;
}

FleetRun
runFleetAt(int workers, const std::string &tag)
{
    CoordinatorCfg ccfg;
    ccfg.out_dir = "bench-fleet-out/" + tag;
    Coordinator coord(ccfg);
    if (!coord.start())
        wo_panic("bench_fleet: %s", coord.lastError().c_str());

    std::vector<std::unique_ptr<FleetWorker>> fleet;
    std::vector<std::thread> threads;
    for (int i = 0; i < workers; ++i) {
        WorkerCfg wcfg;
        wcfg.connect = {"127.0.0.1", coord.port()};
        fleet.push_back(std::make_unique<FleetWorker>(wcfg));
        threads.emplace_back(
            [w = fleet.back().get()] { w->connectAndRun(); });
    }
    if (!coord.waitForWorkers(workers, 10'000))
        wo_panic("bench_fleet: workers never connected");

    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t id = coord.submitLocal(benchSpec());
    Json summary;
    if (!coord.waitCampaign(id, 0, &summary))
        wo_panic("bench_fleet: campaign never completed");
    FleetRun run;
    run.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    run.cells_per_sec =
        run.wall_s > 0 ? static_cast<double>(cells) / run.wall_s : 0;

    const Json *hc = summary.find("hardware_clean");
    if (!hc || !hc->isBool() || !hc->boolValue())
        wo_panic("bench_fleet: conforming hardware reported a "
                 "violation");
    coord.stop();
    for (auto &t : threads)
        t.join();
    return run;
}

FleetRun
runLocal()
{
    CampaignCfg cfg;
    cfg.jobs = 1;
    cfg.cells = cells;
    cfg.out_dir = "bench-fleet-out/local";
    cfg.seed = 7;
    cfg.max_events = 200'000;
    cfg.shrink = false;
    cfg.frontier = false; // the fleet's exact cell set
    const CampaignSummary sum = runCampaign(cfg);
    if (!sum.hardwareClean())
        wo_panic("bench_fleet: conforming hardware reported a "
                 "violation");
    return {sum.wall_s, sum.cells_per_sec};
}

} // namespace
} // namespace wo

int
main()
{
    using namespace wo;

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("== fleet throughput: %llu cells, in-process baseline "
                "vs 1/2/4 fleet workers (%u hardware threads) ==\n",
                static_cast<unsigned long long>(cells), hw);

    const FleetRun local = runLocal();
    std::vector<FleetRun> runs;
    for (int n : worker_counts)
        runs.push_back(runFleetAt(n, strprintf("w%d", n)));

    const auto oversub = [&](int workers) {
        // The coordinator's pump thread is near-idle, so only the
        // worker count itself competes for cores.
        return hw != 0 && static_cast<unsigned>(workers) > hw;
    };
    const auto speedup = [&](const FleetRun &r) {
        return r.wall_s > 0 ? runs[0].wall_s / r.wall_s : 0.0;
    };

    Table t({"setup", "wall s", "cells/s", "speedup vs w1", "oversub"});
    t.addRow({"in-process", strprintf("%.2f", local.wall_s),
              strprintf("%.1f", local.cells_per_sec), "-", "-"});
    for (std::size_t i = 0; i < runs.size(); ++i)
        t.addRow({strprintf("%d worker(s)", worker_counts[i]),
                  strprintf("%.2f", runs[i].wall_s),
                  strprintf("%.1f", runs[i].cells_per_sec),
                  strprintf("%.2fx", speedup(runs[i])),
                  oversub(worker_counts[i]) ? "yes" : "-"});
    t.print();
    std::printf("Read: the 1-worker column vs the in-process row is "
                "the coordination tax (framing, lease round-trips, "
                "journal merge); multi-worker columns are its scaling. "
                "Rows marked oversub ran more workers than hardware "
                "threads and measure time-slicing, not scaling.\n");

    Json payload = Json::object();
    payload.set("cells", Json(cells));
    payload.set("hw_threads", Json(static_cast<std::uint64_t>(hw)));
    payload.set("local_wall_s", Json(local.wall_s));
    payload.set("local_cells_per_sec", Json(local.cells_per_sec));
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const std::string p =
            strprintf("workers%d_", worker_counts[i]);
        payload.set(p + "wall_s", Json(runs[i].wall_s));
        payload.set(p + "cells_per_sec", Json(runs[i].cells_per_sec));
        payload.set(p + "oversubscribed",
                    Json(oversub(worker_counts[i])));
    }
    // Coordination tax as a ratio: 1.0 = the fleet path is free.
    payload.set("overhead_vs_local",
                Json(runs[0].cells_per_sec > 0
                         ? local.cells_per_sec / runs[0].cells_per_sec
                         : 0.0));
    payload.set("speedup_2", Json(speedup(runs[1])));
    payload.set("speedup_4", Json(speedup(runs[2])));
    payload.set("table", tableToJson(t));
    writeBenchArtifact("fleet", std::move(payload));
    return 0;
}

#include "lemma1.hh"

#include <map>

#include "common/logging.hh"

namespace wo {

std::string
Lemma1Violation::toString(const Execution &exec) const
{
    if (kind == Kind::ambiguous_last) {
        return strprintf("ambiguous hb-last write before %s (race): "
                         "e.g. %s",
                         exec.op(read).toString().c_str(),
                         last_write == invalid_op
                             ? "<none>"
                             : exec.op(last_write).toString().c_str());
    }
    return strprintf("%s should have returned %lld from %s",
                     exec.op(read).toString().c_str(),
                     static_cast<long long>(expected),
                     last_write == invalid_op
                         ? "<initial value>"
                         : exec.op(last_write).toString().c_str());
}

Lemma1Result
checkHbLastWrite(const Execution &exec, HbRelation::SyncFlavor flavor)
{
    HbRelation hb(exec, flavor);
    Lemma1Result result;

    // Writes per location, in completion order.
    std::map<Addr, std::vector<OpId>> writes;
    for (const MemoryOp &op : exec.ops())
        if (op.isWrite())
            writes[op.addr].push_back(op.id);

    for (const MemoryOp &op : exec.ops()) {
        if (!op.isRead())
            continue;
        // Collect the hb-maximal writes ordered before the read.
        std::vector<OpId> maximal;
        auto it = writes.find(op.addr);
        if (it != writes.end()) {
            for (OpId w : it->second) {
                if (!hb.ordered(w, op.id))
                    continue;
                bool dominated = false;
                for (OpId w2 : it->second) {
                    if (w2 != w && hb.ordered(w, w2) &&
                        hb.ordered(w2, op.id)) {
                        dominated = true;
                        break;
                    }
                }
                if (!dominated)
                    maximal.push_back(w);
            }
        }
        if (maximal.size() > 1) {
            result.ok = false;
            result.violations.push_back(
                Lemma1Violation{Lemma1Violation::Kind::ambiguous_last,
                                op.id, maximal.front(), 0});
            continue;
        }
        const Value expected = maximal.empty()
                                   ? exec.initialValue(op.addr)
                                   : exec.op(maximal.front()).value_written;
        if (op.value_read != expected) {
            result.ok = false;
            result.violations.push_back(Lemma1Violation{
                Lemma1Violation::Kind::wrong_value, op.id,
                maximal.empty() ? invalid_op : maximal.front(), expected});
        }
    }
    return result;
}

} // namespace wo

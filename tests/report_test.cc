/**
 * @file
 * Tests for the static campaign dashboard (obs/report.hh): a seeded
 * fault-injection campaign must render into a self-contained
 * report.html carrying the outcome matrix and at least one embedded
 * happens-before witness SVG, and the builder must refuse an empty
 * directory rather than emit a hollow page.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "campaign/scheduler.hh"
#include "obs/report.hh"

namespace wo {
namespace {

std::string
slurp(const std::string &path)
{
    std::string out;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

// The reserve-bit leak witness from campaign_test: under WO-DRF0 with
// the injected fault the lock line's reserve bit survives the release
// and the monitor flags it, giving the report a deterministic failure
// to render.
const char *const leak_source = R"(program fatleak
thread 0
  ld r1 pad0
  st pad1 7
  tas r7 lock
  st data 1
  st data2 2
  syncst lock 0
  ld r2 pad0
  st pad1 9
thread 1
  work 300
  ld r3 pad2
  tas r7 lock
  syncst lock 0
  st pad2 5
thread 2
  ld r4 pad3
  st pad3 1
  ld r5 pad3
)";

TEST(Report, RendersMatrixAndEmbeddedWitnessForSeededFault)
{
    const std::string wo_path = testing::TempDir() + "report_leak.wo";
    FILE *f = std::fopen(wo_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(leak_source, f);
    std::fclose(f);

    CampaignCfg cfg;
    cfg.jobs = 2;
    cfg.cells = 30;
    cfg.out_dir = testing::TempDir() + "report_camp";
    cfg.max_events = 60'000;
    cfg.shrink_max_runs = 200;
    cfg.inject_reserve_bug = true;
    cfg.policies = {OrderingPolicy::wo_drf0};
    cfg.program_files = {wo_path};
    cfg.seed = 31;
    auto sum = runCampaign(cfg);
    ASSERT_GE(sum.failures.size(), 1u); // the hunt must land

    ReportCfg rcfg;
    rcfg.out_dir = cfg.out_dir;
    std::string error;
    const std::string path = writeCampaignReport(rcfg, &error);
    ASSERT_FALSE(path.empty()) << error;
    const std::string html = slurp(path);
    ASSERT_FALSE(html.empty());

    // Self-contained document with every section present.
    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("outcome matrix"), std::string::npos);
    EXPECT_NE(html.find("per-cell latency"), std::string::npos);
    EXPECT_NE(html.find("violations"), std::string::npos);

    // The outcome matrix has program rows, the pinned policy column,
    // and hardware-failing cells.
    EXPECT_NE(html.find("class=prog"), std::string::npos);
    EXPECT_NE(html.find("<th>drf0</th>"), std::string::npos);
    EXPECT_NE(html.find("c-hw"), std::string::npos);

    // At least one failure card embeds its hb witness as inline SVG
    // (the marker defs only exist in the witness renderer's output)
    // and its shrunk reproducer text.
    EXPECT_NE(html.find("happens-before witness"), std::string::npos);
    EXPECT_NE(html.find("id=\"m-po\""), std::string::npos);
    EXPECT_NE(html.find("reserve_leak"), std::string::npos);
    EXPECT_NE(html.find("shrunk reproducer"), std::string::npos);

    // Self-contained means no external fetches (the SVG xmlns is the
    // only URL-shaped string allowed).
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<script src"), std::string::npos);
    EXPECT_EQ(html.find("<link "), std::string::npos);
}

TEST(Report, RefusesADirectoryWithNoCampaignArtifacts)
{
    const std::string empty = testing::TempDir() + "report_empty";
    std::remove((empty + "/campaign.journal.jsonl").c_str());
    ReportCfg cfg;
    cfg.out_dir = empty;
    std::string error;
    EXPECT_TRUE(writeCampaignReport(cfg, &error).empty());
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace wo

# Empty compiler generated dependencies file for wo_core.
# This may be replaced when dependencies are built.

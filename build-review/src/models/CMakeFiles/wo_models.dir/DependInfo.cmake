
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/network_model.cc" "src/models/CMakeFiles/wo_models.dir/network_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/network_model.cc.o.d"
  "/root/repo/src/models/sc_model.cc" "src/models/CMakeFiles/wo_models.dir/sc_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/sc_model.cc.o.d"
  "/root/repo/src/models/stale_cache_model.cc" "src/models/CMakeFiles/wo_models.dir/stale_cache_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/stale_cache_model.cc.o.d"
  "/root/repo/src/models/thread_ctx.cc" "src/models/CMakeFiles/wo_models.dir/thread_ctx.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/thread_ctx.cc.o.d"
  "/root/repo/src/models/wo_def1_model.cc" "src/models/CMakeFiles/wo_models.dir/wo_def1_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/wo_def1_model.cc.o.d"
  "/root/repo/src/models/wo_drf0_model.cc" "src/models/CMakeFiles/wo_models.dir/wo_drf0_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/wo_drf0_model.cc.o.d"
  "/root/repo/src/models/write_buffer_model.cc" "src/models/CMakeFiles/wo_models.dir/write_buffer_model.cc.o" "gcc" "src/models/CMakeFiles/wo_models.dir/write_buffer_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/wo_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/execution/CMakeFiles/wo_execution.dir/DependInfo.cmake"
  "/root/repo/build-review/src/program/CMakeFiles/wo_program.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

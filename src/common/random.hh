/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the laboratory (workload generators,
 * jittered network delivery, property-test program synthesis) draws from a
 * Rng seeded explicitly, so any run can be reproduced from its seed.  The
 * generator is xoshiro256** seeded through SplitMix64, which is both fast
 * and of adequate statistical quality for simulation use.
 */

#ifndef WO_COMMON_RANDOM_HH
#define WO_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

#include "logging.hh"

namespace wo {

/** A small, fast, explicitly-seeded PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be positive. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw: true with probability num/den. */
    bool chance(std::uint64_t num, std::uint64_t den);

    /** Uniform real in [0,1). */
    double real();

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        wo_assert(!v.empty(), "pick() from empty vector");
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel structures). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace wo

#endif // WO_COMMON_RANDOM_HH

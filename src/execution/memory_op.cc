#include "memory_op.hh"

#include "common/logging.hh"

namespace wo {

const char *
accessKindName(AccessKind k)
{
    switch (k) {
      case AccessKind::data_read: return "R";
      case AccessKind::data_write: return "W";
      case AccessKind::sync_read: return "SR";
      case AccessKind::sync_write: return "SW";
      case AccessKind::sync_rmw: return "SRW";
    }
    return "?";
}

std::string
MemoryOp::toString() const
{
    switch (kind) {
      case AccessKind::data_read:
      case AccessKind::sync_read:
        return strprintf("P%u %s([%u])=%lld #%u", proc, accessKindName(kind),
                         addr, static_cast<long long>(value_read), id);
      case AccessKind::data_write:
      case AccessKind::sync_write:
        return strprintf("P%u %s([%u])<-%lld #%u", proc, accessKindName(kind),
                         addr, static_cast<long long>(value_written), id);
      case AccessKind::sync_rmw:
        return strprintf("P%u %s([%u])=%lld<-%lld #%u", proc,
                         accessKindName(kind), addr,
                         static_cast<long long>(value_read),
                         static_cast<long long>(value_written), id);
    }
    return "?";
}

} // namespace wo

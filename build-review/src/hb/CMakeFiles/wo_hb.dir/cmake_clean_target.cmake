file(REMOVE_RECURSE
  "libwo_hb.a"
)

#include "race.hh"

#include <map>

#include "common/logging.hh"

namespace wo {

std::string
Race::toString(const Execution &exec) const
{
    return strprintf("race: %s  unordered-with  %s",
                     exec.op(first).toString().c_str(),
                     exec.op(second).toString().c_str());
}

std::vector<Race>
findRaces(const Execution &exec, const RaceDetectorCfg &cfg)
{
    HbRelation hb(exec, cfg.flavor);
    std::vector<Race> races;

    // Group ops by location; only same-location pairs can conflict.
    std::map<Addr, std::vector<OpId>> by_loc;
    for (const MemoryOp &op : exec.ops())
        by_loc[op.addr].push_back(op.id);

    for (const auto &[addr, ids] : by_loc) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const MemoryOp &a = exec.op(ids[i]);
            for (std::size_t j = i + 1; j < ids.size(); ++j) {
                const MemoryOp &b = exec.op(ids[j]);
                if (a.proc == b.proc)
                    continue; // po-ordered by construction
                if (!a.conflictsWith(b))
                    continue;
                if (cfg.ignore_sync_pairs && a.isSync() && b.isSync())
                    continue;
                if (!hb.orderedEitherWay(a.id, b.id)) {
                    races.push_back(Race{a.id, b.id});
                    if (cfg.max_races && races.size() >= cfg.max_races)
                        return races;
                }
            }
        }
    }
    return races;
}

bool
isRaceFree(const Execution &exec, const RaceDetectorCfg &cfg)
{
    RaceDetectorCfg one = cfg;
    one.max_races = 1;
    return findRaces(exec, one).empty();
}

} // namespace wo

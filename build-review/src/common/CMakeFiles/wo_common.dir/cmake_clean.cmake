file(REMOVE_RECURSE
  "CMakeFiles/wo_common.dir/logging.cc.o"
  "CMakeFiles/wo_common.dir/logging.cc.o.d"
  "CMakeFiles/wo_common.dir/random.cc.o"
  "CMakeFiles/wo_common.dir/random.cc.o.d"
  "CMakeFiles/wo_common.dir/stats.cc.o"
  "CMakeFiles/wo_common.dir/stats.cc.o.d"
  "CMakeFiles/wo_common.dir/table.cc.o"
  "CMakeFiles/wo_common.dir/table.cc.o.d"
  "libwo_common.a"
  "libwo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wo_sc.dir/sc_checker.cc.o"
  "CMakeFiles/wo_sc.dir/sc_checker.cc.o.d"
  "libwo_sc.a"
  "libwo_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The abstract machine of Dubois/Scheurich/Briggs weak ordering
 * (Definition 1):
 *
 *   (1) accesses to synchronizing variables are strongly ordered -- here,
 *       synchronization operations execute atomically on memory, so all
 *       processors observe them identically;
 *   (2) no access to a synchronizing variable is issued before all previous
 *       global data accesses are globally performed -- a synchronization
 *       operation is enabled only when the processor's pending-write pool
 *       is empty (data reads perform at issue);
 *   (3) no global data access is issued before a previous access to a
 *       synchronizing variable is globally performed -- synchronization
 *       operations perform at issue, so this holds by construction.
 *
 * Between synchronization operations, data writes sit in the pool and
 * drain to memory in any order (per-location program order preserved);
 * data reads forward from the pool or read memory instantly.  That is the
 * weakness Figure 1 exploits and the stall Figure 3 charges to P0.
 */

#ifndef WO_MODELS_WO_DEF1_MODEL_HH
#define WO_MODELS_WO_DEF1_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "execution/execution.hh"
#include "models/pending_pool.hh"
#include "models/thread_ctx.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** Weakly ordered machine per the old (Definition 1) rules. */
class WoDef1Model
{
  public:
    /** Machine state. */
    struct State
    {
        std::vector<ThreadCtx> threads;
        std::vector<Value> mem;
        std::vector<PendingPool> pools; // per processor

        bool operator==(const State &other) const = default;
    };

    /**
     * @param prog      the program (must outlive the model)
     * @param max_pool  pending writes allowed per processor
     */
    explicit WoDef1Model(const Program &prog, std::size_t max_pool = 4);

    static const char *name() { return "weak-ordering-def1"; }

    State initial() const;
    bool isFinal(const State &s) const;
    std::vector<State> successors(const State &s) const;
    std::vector<LabeledSucc<State>> labeledSuccessors(const State &s) const;

    /**
     * The successor reached from @p s by the single transition @p l, or
     * nullopt if @p l is not enabled.  Materializes exactly one state:
     * the explorer's commutation probes chase individual labels and
     * must not pay for a full successor list.
     */
    std::optional<State> stepLabel(const State &s, const TransLabel &l) const;

    Outcome outcome(const State &s) const;

    /**
     * Injective state layout, written into either encoder: threads,
     * memory, then each processor's pending-write pool.
     */
    template <typename Enc>
    void
    encodeInto(const State &s, Enc &enc) const
    {
        for (const auto &t : s.threads)
            enc.putThread(t);
        enc.sep();
        for (Value v : s.mem)
            enc.put(v);
        enc.sep();
        for (const auto &pool : s.pools)
            encodePool(enc, pool);
    }

    /** Injective byte encoding for the visited set (cold paths). */
    std::string encode(const State &s) const;

    /** Allocation-free 128-bit key over the encoded bytes (hot path). */
    StateHash
    hashState(const State &s) const
    {
        HashEnc enc;
        encodeInto(s, enc);
        return enc.take();
    }

    /** Human-readable state rendering (for witness chains/debugging). */
    std::string dump(const State &s) const;

    /** The bound program. */
    const Program &program() const { return prog_; }

    /** Locations @p p's pending writes will still write to memory. */
    void
    pendingAddrs(const State &s, ProcId p, std::vector<Addr> &out) const
    {
        for (const auto &w : s.pools[p])
            out.push_back(w.addr);
    }

  private:
    /** Append @p p's instruction-step successor (if enabled) to @p out. */
    void instrSucc(const State &s, ProcId p,
                   std::vector<LabeledSucc<State>> &out) const;

    /**
     * Append @p p's drain successors to @p out; @p only restricts the
     * enumeration to drains of one location.
     */
    void drainSuccs(const State &s, ProcId p, std::optional<Addr> only,
                    std::vector<LabeledSucc<State>> &out) const;

    const Program &prog_;
    std::size_t max_pool_;
};

} // namespace wo

#endif // WO_MODELS_WO_DEF1_MODEL_HH

#include "dot.hh"

#include "common/logging.hh"
#include "hb/closure.hh"
#include "hb/race.hh"

namespace wo {

namespace {

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
executionToDot(const Execution &exec, const DotCfg &cfg)
{
    HbClosure closure(exec, cfg.flavor);
    std::string out = "digraph execution {\n"
                      "  rankdir=TB;\n"
                      "  node [shape=box, fontname=\"monospace\"];\n";
    if (!cfg.title.empty())
        out += strprintf("  label=\"%s\";\n  labelloc=t;\n",
                         escape(cfg.title).c_str());

    for (ProcId p = 0; p < exec.numProcs(); ++p) {
        out += strprintf("  subgraph cluster_p%u {\n    label=\"P%u\";\n",
                         p, p);
        for (OpId id : exec.procOps(p)) {
            const MemoryOp &op = exec.op(id);
            const char *fill = op.isSync() ? "lightblue" : "white";
            out += strprintf(
                "    n%u [label=\"%s\", style=filled, fillcolor=%s];\n",
                id, escape(op.toString()).c_str(), fill);
        }
        out += "  }\n";
    }
    for (const auto &[a, b] : closure.poEdges())
        out += strprintf("  n%u -> n%u;\n", a, b);
    for (const auto &[a, b] : closure.soEdges())
        out += strprintf(
            "  n%u -> n%u [style=dashed, color=blue, label=\"so\"];\n", a,
            b);
    if (cfg.mark_races) {
        RaceDetectorCfg rcfg;
        rcfg.flavor = cfg.flavor;
        for (const Race &r : findRaces(exec, rcfg))
            out += strprintf("  n%u -> n%u [dir=none, color=red, "
                             "penwidth=2, label=\"race\"];\n",
                             r.first, r.second);
    }
    out += "}\n";
    return out;
}

} // namespace wo

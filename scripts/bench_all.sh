#!/usr/bin/env bash
# Build Release and run every artifact-producing bench binary from the
# repository root, so each drops its BENCH_<name>.json next to the
# sources.  Commit the refreshed artifacts to extend the perf
# trajectory; scripts/perf_gate.py holds fresh runs to the committed
# baseline.
#
# Usage:  scripts/bench_all.sh [bench ...]
#   With no arguments every artifact bench runs; otherwise only the
#   named ones (e.g. `scripts/bench_all.sh bench_kernel bench_campaign`).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-release"

# Every bench that calls writeBenchArtifact(), cheapest first.
all_benches=(
    fig1_configs fig2_drf0 fig3_stall sweep_latency sweep_syncratio
    sweep_mlp sweep_procs bench_spinning bench_monitor bench_kernel
    bench_explore bench_campaign bench_profiler
)
benches=("${@:-${all_benches[@]}}")

cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)" --target "${benches[@]}"

cd "$root"
for b in "${benches[@]}"; do
    echo "== $b =="
    "$build/bench/$b"
done

echo
echo "Artifacts at the repo root:"
ls -l "$root"/BENCH_*.json

/**
 * @file
 * Unit and property tests for the happens-before machinery: vector clocks,
 * the HbRelation, the HbClosure oracle, race detection, and the paper's
 * Figure 2 example/counter-example.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hb/closure.hh"
#include "hb/fig2.hh"
#include "hb/happens_before.hh"
#include "hb/race.hh"
#include "hb/vector_clock.hh"

namespace wo {
namespace {

TEST(VectorClock, JoinAndLeq)
{
    VectorClock a(3), b(3);
    a[0] = 2;
    b[1] = 5;
    EXPECT_FALSE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    VectorClock j = a;
    j.join(b);
    EXPECT_TRUE(a.leq(j));
    EXPECT_TRUE(b.leq(j));
    EXPECT_EQ(j[0], 2u);
    EXPECT_EQ(j[1], 5u);
    EXPECT_EQ(j[2], 0u);
}

TEST(VectorClock, ToString)
{
    VectorClock a(2);
    a[1] = 3;
    EXPECT_EQ(a.toString(), "<0,3>");
}

/** P0: W(x) S(a) | P1: S(a) R(x) -- the canonical release/acquire chain. */
Execution
releaseAcquireChain()
{
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1); // 0: P0 W(x)
    e.append(0, 1, AccessKind::sync_write, 0, 1); // 1: P0 S(a)
    e.append(1, 1, AccessKind::sync_rmw, 1, 2);   // 2: P1 S(a)
    e.append(1, 0, AccessKind::data_read, 1, 0);  // 3: P1 R(x)
    return e;
}

TEST(HbRelation, ProgramOrderIsOrdered)
{
    Execution e = releaseAcquireChain();
    HbRelation hb(e);
    EXPECT_TRUE(hb.ordered(0, 1));
    EXPECT_FALSE(hb.ordered(1, 0));
    EXPECT_TRUE(hb.ordered(2, 3));
}

TEST(HbRelation, SyncChainOrdersAcrossProcessors)
{
    Execution e = releaseAcquireChain();
    HbRelation hb(e);
    EXPECT_TRUE(hb.ordered(1, 2)) << "so edge";
    EXPECT_TRUE(hb.ordered(0, 3)) << "transitive po.so.po";
    EXPECT_FALSE(hb.ordered(3, 0));
}

TEST(HbRelation, NoSyncMeansUnordered)
{
    Execution e(2, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_read, 1, 0);
    HbRelation hb(e);
    EXPECT_FALSE(hb.ordered(0, 1));
    EXPECT_FALSE(hb.ordered(1, 0));
}

TEST(HbRelation, SyncOnDifferentLocationsDoesNotOrder)
{
    Execution e(2, 3);
    e.append(0, 0, AccessKind::data_write, 0, 1); // P0 W(x)
    e.append(0, 1, AccessKind::sync_write, 0, 1); // P0 S(a)
    e.append(1, 2, AccessKind::sync_rmw, 0, 1);   // P1 S(b)  (different!)
    e.append(1, 0, AccessKind::data_read, 0, 0);  // P1 R(x)
    HbRelation hb(e);
    EXPECT_FALSE(hb.ordered(0, 3));
}

TEST(HbRelation, IrreflexiveAndAntisymmetric)
{
    Execution e = releaseAcquireChain();
    HbRelation hb(e);
    for (OpId a = 0; a < 4; ++a) {
        EXPECT_FALSE(hb.ordered(a, a));
        for (OpId b = 0; b < 4; ++b) {
            if (a != b)
                EXPECT_FALSE(hb.ordered(a, b) && hb.ordered(b, a));
        }
    }
}

TEST(HbRelation, WeakSyncReadDoesNotPublish)
{
    // P0: W(x), Test(a) [sync read]; P1: S(a), R(x).
    // Under DRF0 the Test publishes and orders W(x) before R(x); under the
    // refinement it does not.
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1); // 0
    e.append(0, 1, AccessKind::sync_read, 0, 0);  // 1: Test(a)
    e.append(1, 1, AccessKind::sync_rmw, 0, 1);   // 2: S(a)
    e.append(1, 0, AccessKind::data_read, 0, 0);  // 3
    HbRelation strict(e, HbRelation::SyncFlavor::drf0);
    EXPECT_TRUE(strict.ordered(0, 3));
    HbRelation weak(e, HbRelation::SyncFlavor::weak_sync_read);
    EXPECT_FALSE(weak.ordered(0, 3));
}

TEST(HbRelation, WeakSyncReadStillReceives)
{
    // Release -> sync read (acquire) still orders under the refinement.
    Execution e(2, 2);
    e.append(0, 0, AccessKind::data_write, 0, 1);  // 0: P0 W(x)
    e.append(0, 1, AccessKind::sync_write, 0, 1);  // 1: P0 S(a) release
    e.append(1, 1, AccessKind::sync_read, 1, 0);   // 2: P1 Test(a)
    e.append(1, 0, AccessKind::data_read, 1, 0);   // 3: P1 R(x)
    HbRelation weak(e, HbRelation::SyncFlavor::weak_sync_read);
    EXPECT_TRUE(weak.ordered(0, 3));
}

/** Build a random execution with plausible structure. */
Execution
randomExecution(Rng &rng, ProcId procs, Addr locs, int ops)
{
    Execution e(procs, locs);
    for (int i = 0; i < ops; ++i) {
        auto p = static_cast<ProcId>(rng.below(procs));
        auto a = static_cast<Addr>(rng.below(locs));
        switch (rng.below(5)) {
          case 0:
            e.append(p, a, AccessKind::data_read, 0, 0);
            break;
          case 1:
            e.append(p, a, AccessKind::data_write, 0, 1);
            break;
          case 2:
            e.append(p, a, AccessKind::sync_read, 0, 0);
            break;
          case 3:
            e.append(p, a, AccessKind::sync_write, 0, 1);
            break;
          default:
            e.append(p, a, AccessKind::sync_rmw, 0, 1);
            break;
        }
    }
    return e;
}

class HbAgreement : public testing::TestWithParam<int>
{
};

TEST_P(HbAgreement, VectorClocksMatchClosureOracle)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const ProcId procs = static_cast<ProcId>(2 + rng.below(3));
    const Addr locs = static_cast<Addr>(1 + rng.below(4));
    const int ops = 3 + static_cast<int>(rng.below(28));
    Execution e = randomExecution(rng, procs, locs, ops);
    for (auto flavor : {HbRelation::SyncFlavor::drf0,
                        HbRelation::SyncFlavor::weak_sync_read}) {
        HbRelation fast(e, flavor);
        HbClosure oracle(e, flavor);
        for (OpId a = 0; a < e.ops().size(); ++a)
            for (OpId b = 0; b < e.ops().size(); ++b)
                EXPECT_EQ(fast.ordered(a, b), oracle.ordered(a, b))
                    << "ops " << a << "," << b << " flavor "
                    << (flavor == HbRelation::SyncFlavor::drf0 ? "drf0"
                                                               : "weak");
    }
}

INSTANTIATE_TEST_SUITE_P(RandomExecutions, HbAgreement,
                         testing::Range(0, 40));

TEST(RaceDetector, FindsSimpleRace)
{
    Execution e(2, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_read, 1, 0);
    auto races = findRaces(e);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].first, 0u);
    EXPECT_EQ(races[0].second, 1u);
    EXPECT_NE(races[0].toString(e).find("race"), std::string::npos);
}

TEST(RaceDetector, ReadsDoNotRace)
{
    Execution e(2, 1);
    e.append(0, 0, AccessKind::data_read, 0, 0);
    e.append(1, 0, AccessKind::data_read, 0, 0);
    EXPECT_TRUE(isRaceFree(e));
}

TEST(RaceDetector, SynchronizedAccessesDoNotRace)
{
    EXPECT_TRUE(isRaceFree(releaseAcquireChain()));
}

TEST(RaceDetector, SamProcessorNeverRaces)
{
    Execution e(1, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(0, 0, AccessKind::data_write, 0, 2);
    EXPECT_TRUE(isRaceFree(e));
}

TEST(RaceDetector, MaxRacesLimits)
{
    Execution e(3, 1);
    e.append(0, 0, AccessKind::data_write, 0, 1);
    e.append(1, 0, AccessKind::data_write, 0, 2);
    e.append(2, 0, AccessKind::data_write, 0, 3);
    RaceDetectorCfg cfg;
    cfg.max_races = 1;
    EXPECT_EQ(findRaces(e, cfg).size(), 1u);
    EXPECT_EQ(findRaces(e).size(), 3u);
}

TEST(RaceDetector, IgnoreSyncPairsFlag)
{
    // Two sync writes to the same location, unordered under the weak
    // flavor (neither reads the channel before... actually sync writes
    // always publish and receive, so order them; use sync read vs write).
    Execution e(2, 1);
    e.append(0, 0, AccessKind::sync_read, 0, 0);
    e.append(1, 0, AccessKind::sync_write, 0, 1);
    RaceDetectorCfg weak;
    weak.flavor = HbRelation::SyncFlavor::weak_sync_read;
    EXPECT_FALSE(findRaces(e, weak).empty())
        << "sync read does not publish: pair is unordered";
    weak.ignore_sync_pairs = true;
    EXPECT_TRUE(findRaces(e, weak).empty());
}

TEST(Fig2, ExecutionAObeysDrf0)
{
    Execution e = fig2::executionA();
    auto races = findRaces(e);
    EXPECT_TRUE(races.empty())
        << "figure 2(a) must be race-free; got " << races.size();
}

TEST(Fig2, ExecutionAOrdersTheConflictChains)
{
    Execution e = fig2::executionA();
    HbRelation hb(e);
    // P0's W(x) happens-before P1's R(x) and P2's W(x).
    EXPECT_TRUE(hb.ordered(0, 3));
    EXPECT_TRUE(hb.ordered(0, 6));
    EXPECT_TRUE(hb.ordered(3, 6));
    // The y chain likewise.
    EXPECT_TRUE(hb.ordered(7, 10));
    EXPECT_TRUE(hb.ordered(7, 13));
}

TEST(Fig2, ExecutionBViolatesDrf0WithTheCaptionsRaces)
{
    Execution e = fig2::executionB();
    auto races = findRaces(e);
    ASSERT_FALSE(races.empty());
    // Expect both families: P0 vs P1-on-y, and P2 vs P4-on-z.
    bool p0_vs_p1 = false, p2_vs_p4 = false, ordered_pair_flagged = false;
    for (const auto &r : races) {
        const auto &a = e.op(r.first);
        const auto &b = e.op(r.second);
        auto pair = std::minmax(a.proc, b.proc);
        if (a.addr == fig2::loc_y && pair == std::minmax<ProcId>(0, 1))
            p0_vs_p1 = true;
        if (a.addr == fig2::loc_z && pair == std::minmax<ProcId>(2, 4))
            p2_vs_p4 = true;
        if (a.addr == fig2::loc_z && pair == std::minmax<ProcId>(2, 3))
            ordered_pair_flagged = true;
    }
    EXPECT_TRUE(p0_vs_p1) << "P0's accesses race with P1's write of y";
    EXPECT_TRUE(p2_vs_p4) << "P2's and P4's writes of z race";
    EXPECT_FALSE(ordered_pair_flagged)
        << "P2->P3 is synchronized through b and must not be flagged";
}

} // namespace
} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/stress_deadlock.dir/stress_deadlock.cc.o"
  "CMakeFiles/stress_deadlock.dir/stress_deadlock.cc.o.d"
  "stress_deadlock"
  "stress_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

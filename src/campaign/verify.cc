#include "verify.hh"

#include "common/logging.hh"
#include "core/drf0_checker.hh"
#include "models/model_registry.hh"
#include "models/sc_model.hh"

namespace wo {

namespace {

std::set<Outcome>
symmetricDiff(const std::set<Outcome> &a, const std::set<Outcome> &b)
{
    std::set<Outcome> d;
    for (const auto &o : a)
        if (!b.count(o))
            d.insert(o);
    for (const auto &o : b)
        if (!a.count(o))
            d.insert(o);
    return d;
}

std::string
renderOutcomes(const std::set<Outcome> &outcomes, std::size_t limit = 8)
{
    std::string s;
    std::size_t shown = 0;
    for (const auto &o : outcomes) {
        if (shown++ >= limit) {
            s += strprintf("  ... and %zu more\n", outcomes.size() - limit);
            break;
        }
        s += "  " + o.toString() + "\n";
    }
    return s;
}

std::string
engineLine(const char *name, const ExploreResult &r)
{
    std::string s = strprintf(
        "%s: %zu outcomes, %llu states, %llu transitions", name,
        r.outcomes.size(), static_cast<unsigned long long>(r.states),
        static_cast<unsigned long long>(r.transitions));
    if (r.truncated)
        s += " [truncated]";
    if (r.stuck)
        s += " [stuck]";
    return s;
}

} // namespace

std::string
VerifyResult::verdict() const
{
    if (has_violation)
        return std::string("hw:") + violationKindName(kind);
    if (inconclusive)
        return "inconclusive";
    if (nonsc)
        return "nonsc";
    return "ok";
}

std::string
VerifyResult::detail() const
{
    std::string s = "verify model=" + model + " verdict=" + verdict() + "\n";
    s += engineLine("hw dpor", dpor) + "\n";
    s += engineLine("hw bfs ", bfs) + "\n";
    s += engineLine("sc dpor", sc) + "\n";
    s += strprintf("axiom:   %zu outcomes, %llu candidates, %llu judgements%s\n",
                   axiom.outcomes.size(),
                   static_cast<unsigned long long>(axiom.candidates),
                   static_cast<unsigned long long>(axiom.judgements),
                   axiom.conclusive ? "" : " [inconclusive]");
    if (!axiom.conclusive && !axiom.why_inconclusive.empty())
        s += "axiom inconclusive: " + axiom.why_inconclusive + "\n";
    s += strprintf("drf0: %s%s\n", drf0_obeys ? "obeys" : "violates",
                   drf0_exhausted ? " (exhausted)" : "");
    if (inconclusive)
        s += "inconclusive: " + why_inconclusive + "\n";
    if (has_violation) {
        switch (kind) {
          case ViolationKind::dpor_divergence:
            s += "DPOR and BFS disagree; outcome-set difference:\n";
            break;
          case ViolationKind::axiom_divergence:
            s += "axiomatic and operational SC disagree; "
                 "outcome-set difference:\n";
            break;
          case ViolationKind::def2_subset:
            s += "DRF0-obeying program saw non-SC outcomes on a "
                 "conformance-claiming model; extra outcomes:\n";
            break;
          default:
            break;
        }
        s += renderOutcomes(witness);
    }
    if (nonsc) {
        s += "hardware outcomes beyond SC (expected on a counterexample "
             "machine or racy program):\n";
        s += renderOutcomes(dpor.minus(sc));
    }
    return s;
}

VerifyResult
verifyProgramOnModel(const Program &prog, const std::string &model_name,
                     const VerifyCfg &cfg)
{
    VerifyResult r;
    r.model = model_name;

    ExploreCfg dpor_cfg;
    dpor_cfg.max_states = cfg.max_states;
    dpor_cfg.algo = ExploreAlgo::dpor;
    dpor_cfg.jobs = cfg.jobs;
    ExploreCfg bfs_cfg;
    bfs_cfg.max_states = cfg.max_states;
    bfs_cfg.algo = ExploreAlgo::bfs;

    const bool known = withModelByName(prog, model_name, [&](auto &m) {
        r.dpor = exploreOutcomes(m, dpor_cfg);
        r.bfs = exploreOutcomes(m, bfs_cfg);
    });
    if (!known) {
        r.inconclusive = true;
        r.why_inconclusive = "unknown model '" + model_name + "'";
        return r;
    }

    auto noteInconclusive = [&](std::string why) {
        if (!r.inconclusive) {
            r.inconclusive = true;
            r.why_inconclusive = std::move(why);
        }
    };

    // Check 1: the reduced engine against the golden reference.  A
    // truncated or stuck engine explored a prefix only; comparing
    // prefixes would manufacture false divergences, so both sides must
    // be conclusive.
    if (r.dpor.conclusive() && r.bfs.conclusive()) {
        if (r.dpor.outcomes != r.bfs.outcomes) {
            r.has_violation = true;
            r.kind = ViolationKind::dpor_divergence;
            r.witness = symmetricDiff(r.dpor.outcomes, r.bfs.outcomes);
            return r;
        }
    } else {
        noteInconclusive("hardware exploration hit the state budget");
    }

    // The operational SC reference set, shared by checks 2 and 3.
    ScModel sc_model(prog);
    r.sc = exploreOutcomes(sc_model, dpor_cfg);
    if (!r.sc.conclusive())
        noteInconclusive("SC exploration hit the state budget");

    // Check 2: the axiomatic evaluator against the operational SC
    // machine.  Loop-bearing programs trip the unfolding budget and
    // honestly fall to inconclusive here.
    r.axiom = axiomScOutcomes(prog, cfg.axiom);
    if (r.axiom.conclusive && r.sc.conclusive()) {
        if (r.axiom.outcomes != r.sc.outcomes) {
            r.has_violation = true;
            r.kind = ViolationKind::axiom_divergence;
            r.witness = symmetricDiff(r.axiom.outcomes, r.sc.outcomes);
            return r;
        }
    } else if (!r.axiom.conclusive) {
        noteInconclusive("axiomatic evaluation inconclusive: " +
                         r.axiom.why_inconclusive);
    }

    // Check 3: the Definition-2 subset claim.
    SyncModelVerdict v = checkDrf0(prog);
    r.drf0_obeys = v.obeys;
    r.drf0_exhausted = v.exhausted;
    if (r.dpor.conclusive() && r.sc.conclusive()) {
        std::set<Outcome> extra = r.dpor.minus(r.sc);
        if (!extra.empty()) {
            if (modelClaimsConformance(model_name)) {
                if (v.obeys && !v.exhausted) {
                    r.has_violation = true;
                    r.kind = ViolationKind::def2_subset;
                    r.witness = std::move(extra);
                    return r;
                }
                if (v.exhausted) {
                    // Non-SC outcomes on a claiming model, but the
                    // program's DRF0 status is unknown: cannot call it
                    // either way.
                    noteInconclusive("non-SC outcomes with exhausted "
                                     "DRF0 classification");
                    return r;
                }
            }
            // Counterexample machine, or a racy program whose behavior
            // the contract leaves unconstrained.
            r.nonsc = true;
        }
    }
    return r;
}

bool
verifyReproduces(const Program &prog, const std::string &model_name,
                 ViolationKind kind, const VerifyCfg &cfg)
{
    VerifyResult r = verifyProgramOnModel(prog, model_name, cfg);
    return r.has_violation && r.kind == kind;
}

} // namespace wo

/**
 * @file
 * The fleet client: `wotool submit`.
 *
 * A client is the short-lived end of the protocol: connect to a warm
 * fleet, hand the coordinator one campaign spec, relay the progress
 * lines it pushes, and exit with the campaign's verdict -- the same
 * contract as running `wotool campaign` locally, except the cells run
 * wherever the fleet's workers are.
 */

#ifndef WO_FLEET_CLIENT_HH
#define WO_FLEET_CLIENT_HH

#include <string>

#include "fleet/proto.hh"
#include "obs/json.hh"

namespace wo {

/** Submission configuration (the `wotool submit` surface). */
struct SubmitCfg
{
    HostPort connect;        //!< the coordinator's endpoint
    FleetCampaignSpec spec;  //!< what to run
    bool quiet = false;      //!< suppress the progress lines
    /** Give up when the fleet is silent this long (0 = wait forever);
     *  a coordinator pushes progress every ~500ms, so silence means
     *  the fleet died. */
    int idle_timeout_ms = 0;
};

/** What a submission came back with. */
struct SubmitResult
{
    bool ok = false;            //!< the campaign ran to completion
    std::string error;          //!< why not, when !ok
    std::uint64_t campaign = 0; //!< coordinator-assigned id
    bool hardware_clean = false;
    Json summary;               //!< the coordinator's campaign summary
};

/** Submit @p cfg.spec and block until the campaign's done line. */
SubmitResult submitCampaign(const SubmitCfg &cfg);

} // namespace wo

#endif // WO_FLEET_CLIENT_HH

#include "drf0_checker.hh"

#include <map>

#include "common/logging.hh"
#include "models/sc_model.hh"
#include "models/thread_ctx.hh"

namespace wo {

std::string
SyncModelVerdict::toString() const
{
    if (obeys)
        return strprintf("obeys (%llu idealized executions, %llu steps%s)",
                         static_cast<unsigned long long>(paths),
                         static_cast<unsigned long long>(steps),
                         exhausted ? ", budget exhausted" : "");
    std::string s = strprintf("violates: %zu race(s) found after %llu steps",
                              races.size(),
                              static_cast<unsigned long long>(steps));
    if (witness && !races.empty())
        s += "; first " + races.front().toString(*witness);
    return s;
}

namespace {

/** A recorded access in the current path. */
struct TraceOp
{
    ProcId proc;
    Addr addr;
    AccessKind kind;
    Value vread;
    Value vwritten;
};

/** Tick and trace position of the last access of one class. */
struct LastAccess
{
    std::uint32_t tick = 0; // 0 = none (ticks start at 1)
    std::uint32_t idx = 0;  // trace index of that access
};

/** Everything that varies along one scheduling path. */
struct PathState
{
    ScModel::State m;
    std::vector<VectorClock> pclock;     // per processor
    std::map<Addr, VectorClock> chan;    // per sync location
    // last data read/write and sync read/write: [addr][proc]
    std::vector<std::vector<LastAccess>> lrd, lwd, lrs, lws;
};

enum class StepVerdict { ok, race, budget };

/** Bitsets over locations, one per program point. */
class ResidualSets
{
  public:
    ResidualSets(const Program &prog, bool writes_only)
    {
        words_ = (prog.numLocations() + 63) / 64;
        sets_.resize(prog.numThreads());
        for (ProcId p = 0; p < prog.numThreads(); ++p) {
            const ThreadCode &code = prog.thread(p);
            auto &rows = sets_[p];
            rows.assign(code.size(),
                        std::vector<std::uint64_t>(words_, 0));
            // Reverse fixpoint: may[pc] = own ∪ may[successors].
            bool changed = true;
            while (changed) {
                changed = false;
                for (Pc pc = code.size(); pc-- > 0;) {
                    auto row = rows[pc];
                    const Instruction &i = code.at(pc);
                    const bool counts =
                        writes_only ? i.writesMemory() : i.readsMemory();
                    if (i.accessesMemory() && counts)
                        row[i.addr / 64] |= std::uint64_t{1}
                                            << (i.addr % 64);
                    auto absorb = [&](Pc succ) {
                        for (std::size_t w = 0; w < words_; ++w)
                            row[w] |= rows[succ][w];
                    };
                    switch (i.op) {
                      case Opcode::halt:
                        break;
                      case Opcode::jump:
                        absorb(i.target);
                        break;
                      case Opcode::branch_eq:
                      case Opcode::branch_ne:
                        absorb(i.target);
                        absorb(pc + 1);
                        break;
                      default:
                        absorb(pc + 1);
                        break;
                    }
                    if (row != rows[pc]) {
                        rows[pc] = std::move(row);
                        changed = true;
                    }
                }
            }
        }
    }

    /** May thread @p p still access @p a from program point @p pc? */
    bool
    may(ProcId p, Pc pc, Addr a) const
    {
        return (sets_[p][pc][a / 64] >> (a % 64)) & 1;
    }

  private:
    std::size_t words_;
    std::vector<std::vector<std::vector<std::uint64_t>>> sets_;
};

class Checker
{
  public:
    Checker(const Program &prog, const Drf0CheckerCfg &cfg)
        : prog_(prog), cfg_(cfg), model_(prog),
          may_read_(prog, /*writes_only=*/false),
          may_write_(prog, /*writes_only=*/true)
    {
    }

    SyncModelVerdict
    run()
    {
        PathState init;
        init.m = model_.initial();
        init.pclock.assign(prog_.numThreads(),
                           VectorClock(prog_.numThreads()));
        auto table = std::vector<std::vector<LastAccess>>(
            prog_.numLocations(),
            std::vector<LastAccess>(prog_.numThreads()));
        init.lrd = table;
        init.lwd = table;
        init.lrs = table;
        init.lws = std::move(table);
        dfs(std::move(init));
        verdict_.obeys = !race_found_;
        verdict_.exhausted = budget_hit_;
        if (budget_hit_ && !race_found_)
            warn("DRF0 check of '%s' exhausted its step budget; 'obeys' "
                 "covers only the explored prefix", prog_.name().c_str());
        return std::move(verdict_);
    }

  private:
    /** Execute the access thread @p p sits at; full bookkeeping. */
    StepVerdict
    step(PathState &s, ProcId p, bool check_races)
    {
        if (++verdict_.steps > cfg_.max_steps && cfg_.max_steps) {
            budget_hit_ = true;
            return StepVerdict::budget;
        }
        const Instruction *i = currentAccess(prog_.thread(p),
                                             s.m.threads[p]);
        const Addr a = i->addr;
        const AccessKind kind = accessKindOf(i->op);
        const bool is_sync = i->isSync();
        const bool weak =
            cfg_.flavor == HbRelation::SyncFlavor::weak_sync_read;

        VectorClock vc = s.pclock[p];
        vc[p] += 1;
        if (is_sync) {
            auto it = s.chan.find(a);
            if (it == s.chan.end())
                it = s.chan.emplace(a, VectorClock(prog_.numThreads()))
                         .first;
            vc.join(it->second);
            const bool publishes =
                !(weak && kind == AccessKind::sync_read);
            if (publishes)
                it->second.join(vc);
        }

        const std::uint32_t my_idx =
            static_cast<std::uint32_t>(trace_.size());
        if (check_races) {
            auto unseen = [&](const LastAccess &la, ProcId q) {
                return la.tick != 0 && la.tick > vc[q];
            };
            auto report = [&](const LastAccess &la) {
                recordWitness(la.idx, my_idx, p, a, kind, i, s);
            };
            for (ProcId q = 0; q < prog_.numThreads(); ++q) {
                if (q == p)
                    continue;
                // My read component vs their writes.  Sync-sync pairs are
                // exempt under the weak-sync-read refinement only.
                if (i->readsMemory()) {
                    if (unseen(s.lwd[a][q], q)) {
                        report(s.lwd[a][q]);
                        return StepVerdict::race;
                    }
                    if (!(weak && is_sync) && unseen(s.lws[a][q], q)) {
                        report(s.lws[a][q]);
                        return StepVerdict::race;
                    }
                }
                // My write component vs their reads and writes.
                if (i->writesMemory()) {
                    if (unseen(s.lrd[a][q], q)) {
                        report(s.lrd[a][q]);
                        return StepVerdict::race;
                    }
                    if (unseen(s.lwd[a][q], q)) {
                        report(s.lwd[a][q]);
                        return StepVerdict::race;
                    }
                    if (!(weak && is_sync)) {
                        if (unseen(s.lrs[a][q], q)) {
                            report(s.lrs[a][q]);
                            return StepVerdict::race;
                        }
                        if (unseen(s.lws[a][q], q)) {
                            report(s.lws[a][q]);
                            return StepVerdict::race;
                        }
                    }
                }
            }
        }

        // Update last-access tables.
        const LastAccess me{vc[p], my_idx};
        if (i->readsMemory())
            (is_sync ? s.lrs : s.lrd)[a][p] = me;
        if (i->writesMemory())
            (is_sync ? s.lws : s.lwd)[a][p] = me;

        // Machine step + trace.
        const Value old = s.m.mem[a];
        Value written = 0;
        if (i->writesMemory()) {
            written = storeValue(*i, s.m.threads[p]);
            s.m.mem[a] = written;
        }
        trace_.push_back(
            TraceOp{p, a, kind, i->readsMemory() ? old : 0, written});
        completeAccess(prog_.thread(p), s.m.threads[p], old);
        s.pclock[p] = vc;
        return StepVerdict::ok;
    }

    /** Would stepping thread @p p change neither its context nor memory? */
    bool
    isStutter(const PathState &s, ProcId p) const
    {
        const ThreadCtx &t = s.m.threads[p];
        const Instruction *i = currentAccess(prog_.thread(p), t);
        const Value old = s.m.mem[i->addr];
        if (i->writesMemory() &&
            storeValue(*i, t) != old)
            return false; // memory would change
        // Simulate the local continuation.
        ThreadCtx copy = t;
        completeAccess(prog_.thread(p), copy, old);
        return copy == t;
    }

    /**
     * Can the access thread @p p sits at ever conflict with what any
     * other thread may still do?  Residual sets only shrink as control
     * advances, so "no" is a permanent verdict and the access commutes
     * with every current and future transition of other threads.
     */
    bool
    conflictPossible(const PathState &s, ProcId p,
                     const Instruction &i) const
    {
        for (ProcId q = 0; q < prog_.numThreads(); ++q) {
            if (q == p || s.m.threads[q].halted)
                continue;
            const Pc qpc = s.m.threads[q].pc;
            if (may_write_.may(q, qpc, i.addr))
                return true;
            if (i.writesMemory() && may_read_.may(q, qpc, i.addr))
                return true;
        }
        return false;
    }

    /** Run all conflict-free accesses eagerly (no scheduling branch). */
    StepVerdict
    normalize(PathState &s)
    {
        bool progress = true;
        while (progress) {
            progress = false;
            for (ProcId p = 0; p < prog_.numThreads(); ++p) {
                const ThreadCtx &t = s.m.threads[p];
                if (t.halted)
                    continue;
                const Instruction *i = currentAccess(prog_.thread(p), t);
                if (conflictPossible(s, p, *i))
                    continue;
                // Still race-check: the access may conflict with PAST
                // accesses of threads whose residuals have since shrunk.
                StepVerdict v = step(s, p, /*check_races=*/true);
                if (v != StepVerdict::ok)
                    return v;
                progress = true;
            }
        }
        return StepVerdict::ok;
    }

    /** @return true to abort the whole search (race or budget). */
    bool
    dfs(PathState s)
    {
        if (normalize(s) != StepVerdict::ok)
            return true;
        bool any_enabled = false;
        const std::size_t trace_mark = trace_.size();
        for (ProcId p = 0; p < prog_.numThreads(); ++p) {
            if (s.m.threads[p].halted)
                continue;
            if (isStutter(s, p))
                continue; // pruned: re-enabled once the state changes
            any_enabled = true;
            PathState next = s;
            StepVerdict v = step(next, p, /*check_races=*/true);
            if (v != StepVerdict::ok)
                return true;
            if (dfs(std::move(next)))
                return true;
            trace_.resize(trace_mark);
        }
        if (!any_enabled)
            ++verdict_.paths; // completed (or livelocked-spinning) path
        return false;
    }

    void
    recordWitness(std::uint32_t first_idx, std::uint32_t second_idx,
                  ProcId p, Addr a, AccessKind kind, const Instruction *i,
                  PathState &s)
    {
        race_found_ = true;
        // Materialize the current trace plus the offending access into an
        // Execution for reporting.
        Execution e(prog_.numThreads(), prog_.numLocations(),
                    prog_.initialMemory());
        for (const TraceOp &t : trace_)
            e.append(t.proc, t.addr, t.kind, t.vread, t.vwritten);
        const Value old = s.m.mem[a];
        e.append(p, a, kind, i->readsMemory() ? old : 0,
                 i->writesMemory() ? storeValue(*i, s.m.threads[p]) : 0);
        verdict_.races.push_back(Race{first_idx, second_idx});
        verdict_.witness = std::move(e);
    }

    const Program &prog_;
    Drf0CheckerCfg cfg_;
    ScModel model_;
    ResidualSets may_read_;
    ResidualSets may_write_;
    std::vector<TraceOp> trace_;
    SyncModelVerdict verdict_;
    bool race_found_ = false;
    bool budget_hit_ = false;
};

} // namespace

SyncModelVerdict
checkDrf0(const Program &prog, const Drf0CheckerCfg &cfg)
{
    Checker checker(prog, cfg);
    return checker.run();
}

} // namespace wo

/**
 * @file
 * Per-thread campaign timelines: where did each worker's wall clock go?
 *
 * A Timeline is owned by exactly one engine thread (a campaign worker
 * or the journal writer) and records *spans* -- host-time intervals
 * classified by what the thread was doing (waiting for work, building
 * a program, simulating, shrinking, pushing journal lines, flushing
 * batches).  Three views come out of the same hooks:
 *
 *  1. Aggregates per span kind (total time, count, max) merged into
 *     CampaignSummary at join, so a scaling regression decomposes into
 *     wait-for-work vs journal backpressure vs cell runtime instead of
 *     a bare p99.
 *  2. A live owner-written idle counter (relaxed atomic) the progress
 *     reporter reads mid-run -- a stalled fleet is visible *before*
 *     the campaign ends.
 *  3. With event recording on (`--profile`), the raw span list, which
 *     timelinesChromeJson() renders as one Chrome-trace lane per
 *     thread -- the same Perfetto-loadable format the simulator's own
 *     trace sink uses (docs/OBSERVABILITY.md).
 *
 * The instrumented code never references a concrete Timeline: spans
 * open against Timeline::current(), a thread-local pointer each engine
 * thread installs at startup, and every hook is a no-op when it is
 * null.  So cell.cc and journal.cc carry hooks without knowing whether
 * a campaign, a test, or nothing at all is listening.
 */

#ifndef WO_OBS_TIMELINE_HH
#define WO_OBS_TIMELINE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace wo {

/** What an engine thread was doing during a span. */
enum class SpanKind : std::uint8_t
{
    idle,         //!< acquiring work: tickets, deque pop, stealing, skips
    materialize,  //!< building the cell's program (parse/factory/random)
    run,          //!< the timed simulation itself
    shrink,       //!< ddmin shrinking + evidence bundle of a failure
    journal_push, //!< formatting and enqueueing a journal line
    writer_flush, //!< journal writer: fwrite+fflush of a commit batch
};

/** Number of SpanKind values (for iteration). */
inline constexpr int num_span_kinds = 6;

/** Stable printable span-kind name (used as JSON keys / lane labels). */
const char *spanKindName(SpanKind k);

/** One recorded span (microseconds since the timeline epoch). */
struct SpanEvent
{
    SpanKind kind;
    std::uint64_t t0_us;
    std::uint64_t t1_us;
};

/** Aggregate of one span kind on one timeline. */
struct SpanAgg
{
    double total_ms = 0;
    std::uint64_t count = 0;
    double max_ms = 0;
};

/**
 * One engine thread's span timeline.  Owner-written; the only
 * cross-thread reads are the relaxed atomic span totals (live progress)
 * -- everything else is read after the owning thread joined.
 * Cache-line aligned so per-worker arrays never share a line.
 */
class alignas(64) Timeline
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * Name the lane and set the shared epoch (one epoch per campaign,
     * so lanes line up in the trace).  @p record_events keeps the raw
     * span list for the Chrome trace; aggregates are always on.
     * Call before the owning thread starts.
     */
    void configure(std::string lane, Clock::time_point epoch,
                   bool record_events);

    const std::string &lane() const { return lane_; }

    /** Mark the owning thread's loop entry (starts the wall clock). */
    void markStart();

    /** Mark the owning thread's loop exit (stops the wall clock). */
    void markEnd();

    /** Wall time between markStart() and markEnd(), in ms. */
    double wallMs() const;

    /** Record one closed span.  Owner thread only. */
    void add(SpanKind k, Clock::time_point t0, Clock::time_point t1);

    /** Live total of @p k in ns (relaxed; any thread may read). */
    std::uint64_t liveNs(SpanKind k) const
    {
        return total_ns_[static_cast<int>(k)].load(
            std::memory_order_relaxed);
    }

    /**
     * Live ns since markStart() (relaxed; any thread).  0 before the
     * owner marked its start.
     */
    std::uint64_t liveElapsedNs() const;

    /** Aggregate of @p k (read after the owner joined). */
    SpanAgg agg(SpanKind k) const;

    /** Sum of all span aggregates, in ms. */
    double spanSumMs() const;

    /** Raw spans (empty unless record_events was set). */
    const std::vector<SpanEvent> &events() const { return events_; }

    /**
     * The owning thread's current timeline, or nullptr.  Installed by
     * the engine thread itself; every span hook checks it, so
     * instrumented code costs one thread-local load when no campaign
     * is listening.
     */
    static Timeline *current();
    static void setCurrent(Timeline *tl);

    /**
     * RAII span: opens @p k on @p tl at construction, closes at
     * destruction.  A null @p tl makes both ends no-ops.
     */
    class Scope
    {
      public:
        Scope(Timeline *tl, SpanKind k) : tl_(tl), kind_(k)
        {
            if (tl_)
                t0_ = Clock::now();
        }
        ~Scope() { close(); }

        /** Close early (idempotent). */
        void close()
        {
            if (!tl_)
                return;
            tl_->add(kind_, t0_, Clock::now());
            tl_ = nullptr;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Timeline *tl_;
        SpanKind kind_;
        Clock::time_point t0_;
    };

  private:
    std::string lane_;
    Clock::time_point epoch_{};
    bool record_events_ = false;

    std::atomic<std::uint64_t> total_ns_[num_span_kinds] = {};
    std::uint64_t count_[num_span_kinds] = {};
    std::uint64_t max_ns_[num_span_kinds] = {};
    std::atomic<std::uint64_t> start_ns_{0}; //!< vs epoch; 0 = not started
    std::atomic<std::uint64_t> end_ns_{0};
    std::vector<SpanEvent> events_;
};

/**
 * Render @p lanes as Chrome trace-event JSON: one lane (tid) per
 * timeline in order, named by `M` thread_name metadata, one complete
 * (`X`) event per recorded span.  Loads in Perfetto next to the
 * simulator's own traces; timestamps are microseconds of real host
 * time since the shared epoch.
 */
std::string timelinesChromeJson(const std::vector<const Timeline *> &lanes);

} // namespace wo

#endif // WO_OBS_TIMELINE_HH

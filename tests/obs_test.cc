/**
 * @file
 * Tests for the observability layer: the JSON model and parser, the
 * Chrome trace-event exporter and its validator, the stall-attribution
 * profiler's accounting invariants, and the Figure-3 golden property
 * that DRF0 stalls the release side strictly less than Definition 1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "asm/assembler.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/validate.hh"
#include "sys/system.hh"

namespace wo {
namespace {

// ---------------------------------------------------------------- Json

TEST(Json, RoundTripsDocument)
{
    Json doc = Json::object();
    doc.set("name", Json("fig3"));
    doc.set("ticks", Json(std::uint64_t{117}));
    doc.set("ratio", Json(0.5));
    doc.set("ok", Json(true));
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    arr.push(Json());
    doc.set("items", arr);

    auto r = jsonParse(doc.dump(2));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.find("name")->stringValue(), "fig3");
    EXPECT_EQ(r.value.find("ticks")->uintValue(), 117u);
    EXPECT_DOUBLE_EQ(r.value.find("ratio")->numberValue(), 0.5);
    EXPECT_TRUE(r.value.find("ok")->boolValue());
    ASSERT_EQ(r.value.find("items")->items().size(), 3u);
    EXPECT_TRUE(r.value.find("items")->items()[2].isNull());
}

TEST(Json, EscapesStrings)
{
    Json s(std::string("a\"b\\c\n\t\x01"));
    auto r = jsonParse(s.dump());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.stringValue(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParserRejectsGarbage)
{
    EXPECT_FALSE(jsonParse("").ok);
    EXPECT_FALSE(jsonParse("{").ok);
    EXPECT_FALSE(jsonParse("[1,]").ok);
    EXPECT_FALSE(jsonParse("{\"a\":1} trailing").ok);
    EXPECT_FALSE(jsonParse("{'a':1}").ok);
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zeta", Json(1));
    doc.set("alpha", Json(2));
    const std::string text = doc.dump();
    EXPECT_LT(text.find("zeta"), text.find("alpha"));
}

// ----------------------------------------------------------- validator

TEST(TraceValidator, RejectsNonTraces)
{
    EXPECT_FALSE(validateChromeTrace("not json").ok);
    EXPECT_FALSE(validateChromeTrace("{}").ok);
    EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": 3}").ok);
    // An event missing its phase.
    EXPECT_FALSE(
        validateChromeTrace("{\"traceEvents\":[{\"name\":\"x\"}]}").ok);
}

// ------------------------------------------------------ system harness

AsmResult
loadFig3()
{
    AsmResult a = assembleFile(std::string(WO_PROGRAMS_DIR) + "/fig3.wo");
    EXPECT_TRUE(a.ok());
    return a;
}

struct Fig3Run
{
    SystemResult result;
    std::string chrome;
    std::string jsonl;
    std::string stats_json;
};

Fig3Run
runFig3(OrderingPolicy policy, bool trace)
{
    AsmResult a = loadFig3();
    SystemCfg cfg;
    cfg.policy = policy;
    cfg.trace = trace;
    System sys(*a.program, cfg);
    for (const auto &w : a.warm)
        sys.warmShared(w.addr, w.procs);
    Fig3Run run;
    run.result = sys.run();
    run.stats_json = run.result.stats_json;
    if (trace) {
        run.chrome = sys.obs().chromeTraceJson();
        run.jsonl = sys.obs().traceJsonl();
    }
    return run;
}

TEST(Fig3Warm, AssemblerCarriesWarmDirective)
{
    AsmResult a = loadFig3();
    ASSERT_EQ(a.warm.size(), 1u);
    EXPECT_EQ(a.warm[0].procs, std::vector<ProcId>{1});
}

// The paper's Figure-3 claim, as a golden property: under Definition 1
// the releasing processor stalls the synchronization write until every
// prior access performs; the new DRF0 implementation lets it run ahead,
// so its release-side stall cycles drop strictly.
TEST(Fig3Golden, Drf0ReleaseStallsStrictlyBelowDef1)
{
    auto def1 = runFig3(OrderingPolicy::wo_def1, false);
    auto drf0 = runFig3(OrderingPolicy::wo_drf0, false);
    ASSERT_TRUE(def1.result.completed);
    ASSERT_TRUE(drf0.result.completed);
    const std::uint64_t rel_def1 = def1.result.stall_stat_total("release");
    const std::uint64_t rel_drf0 = drf0.result.stall_stat_total("release");
    EXPECT_LT(rel_drf0, rel_def1)
        << "DRF0 must stall the release side less than Definition 1";
}

TEST(StallProfiler, BucketsSumToTotalPerCpu)
{
    for (auto policy :
         {OrderingPolicy::sc, OrderingPolicy::wo_def1,
          OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro}) {
        auto run = runFig3(policy, false);
        for (const auto &cpu : run.result.stall_counters) {
            std::uint64_t buckets = 0;
            for (int b = 0; b < num_stall_buckets; ++b)
                buckets += cpu.at(
                    stallBucketName(static_cast<StallBucket>(b)));
            EXPECT_EQ(buckets, cpu.at("total"))
                << "policy " << policyName(policy);
            // The side split is a second partition of the same cycles.
            EXPECT_EQ(cpu.at("data") + cpu.at("release") +
                          cpu.at("acquire"),
                      cpu.at("total"))
                << "policy " << policyName(policy);
        }
    }
}

TEST(TraceSink, ChromeTraceValidates)
{
    auto run = runFig3(OrderingPolicy::wo_drf0, true);
    TraceValidation v = validateChromeTrace(run.chrome);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_GT(v.complete, 0u) << "expected op/stall complete events";
    EXPECT_GT(v.metadata, 0u) << "expected thread_name metadata";
}

TEST(TraceSink, JsonlLinesParse)
{
    auto run = runFig3(OrderingPolicy::wo_drf0, true);
    std::istringstream in(run.jsonl);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        auto r = jsonParse(line);
        ASSERT_TRUE(r.ok) << r.error << " in: " << line;
        ASSERT_TRUE(r.value.isObject());
        EXPECT_NE(r.value.find("ev"), nullptr) << line;
        ++lines;
    }
    EXPECT_GT(lines, 0u);
}

TEST(Metrics, StatsJsonParsesAndSumsMatch)
{
    auto run = runFig3(OrderingPolicy::wo_drf0, false);
    auto r = jsonParse(run.stats_json);
    ASSERT_TRUE(r.ok) << r.error;
    const Json *meta = r.value.find("run");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("policy")->stringValue(), "WO-DRF0");
    EXPECT_TRUE(meta->find("completed")->boolValue());
    // The stall subtree mirrors the counters the result carries.
    for (std::size_t p = 0; p < run.result.stall_counters.size(); ++p) {
        const Json *cpu = r.value.find("cpu" + std::to_string(p));
        ASSERT_NE(cpu, nullptr);
        const Json *stall = cpu->find("stall");
        ASSERT_NE(stall, nullptr);
        std::uint64_t buckets = 0;
        for (int b = 0; b < num_stall_buckets; ++b)
            buckets += stall->find(stallBucketName(
                                       static_cast<StallBucket>(b)))
                           ->uintValue();
        EXPECT_EQ(buckets, stall->find("total")->uintValue());
        EXPECT_EQ(stall->find("total")->uintValue(),
                  run.result.stall_counters[p].at("total"));
    }
}

TEST(Metrics, RegistryNestsDottedPaths)
{
    MetricsRegistry reg;
    reg.set("run.policy", Json("SC"));
    StatGroup g("g");
    g.counter("hits").inc(3);
    reg.addGroup("cache0", g);
    auto r = jsonParse(reg.dump());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.find("run")->find("policy")->stringValue(), "SC");
    EXPECT_EQ(r.value.find("cache0")->find("hits")->uintValue(), 3u);
}

TEST(Metrics, PrometheusTextGoldenForSeededRegistry)
{
    // The control plane's /metrics contract, pinned byte-for-byte:
    // dotted paths flatten with '_', a `part{label="x"}` component
    // passes its labels through, histograms render cumulative buckets
    // plus the implicit +Inf, and every base gets one # TYPE line.
    MetricsRegistry reg;
    reg.set("cells.completed", Json(std::uint64_t{7}));
    reg.set("done", Json(false));
    reg.set("worker{worker=\"0\"}.ran", Json(std::uint64_t{4}));
    Json h = Json::object();
    h.set("count", Json(std::uint64_t{3}));
    h.set("sum", Json(std::uint64_t{112}));
    Json buckets = Json::array();
    Json b16 = Json::object();
    b16.set("le", Json(std::uint64_t{16}));
    b16.set("n", Json(std::uint64_t{1}));
    buckets.push(std::move(b16));
    Json b64 = Json::object();
    b64.set("le", Json(std::uint64_t{64}));
    b64.set("n", Json(std::uint64_t{3}));
    buckets.push(std::move(b64));
    h.set("buckets", std::move(buckets));
    reg.set("cell_latency_us", std::move(h));

    const char *golden =
        "# TYPE wo_campaign_cells_completed gauge\n"
        "wo_campaign_cells_completed 7\n"
        "# TYPE wo_campaign_done gauge\n"
        "wo_campaign_done 0\n"
        "# TYPE wo_campaign_worker_ran gauge\n"
        "wo_campaign_worker_ran{worker=\"0\"} 4\n"
        "# TYPE wo_campaign_cell_latency_us histogram\n"
        "wo_campaign_cell_latency_us_bucket{le=\"16\"} 1\n"
        "wo_campaign_cell_latency_us_bucket{le=\"64\"} 3\n"
        "wo_campaign_cell_latency_us_bucket{le=\"+Inf\"} 3\n"
        "wo_campaign_cell_latency_us_sum 112\n"
        "wo_campaign_cell_latency_us_count 3\n";
    EXPECT_EQ(prometheusText(reg.json(), "wo_campaign"), golden);
}

TEST(Metrics, PrometheusHistogramBucketsAreCumulative)
{
    // Render a real Histogram through the same path the run metrics
    // take; whatever the bucket layout, the exported counts must be
    // monotone and the last explicit bucket must absorb every sample.
    Histogram h;
    for (std::uint64_t v : {1, 2, 2, 4, 100})
        h.sample(v);
    Json tree = Json::object();
    tree.set("lat", histogramToJson(h));
    const std::string text = prometheusText(tree, "wo");

    std::uint64_t prev = 0, buckets = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const auto at = line.find("_bucket{le=\"");
        if (at == std::string::npos)
            continue;
        ++buckets;
        const std::uint64_t n =
            std::strtoull(line.substr(line.find("} ") + 2).c_str(),
                          nullptr, 10);
        EXPECT_GE(n, prev) << text;
        prev = n;
    }
    EXPECT_GE(buckets, 2u) << text;
    EXPECT_EQ(prev, h.count()) << text; // +Inf line comes last
}

} // namespace
} // namespace wo

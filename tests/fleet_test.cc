/**
 * @file
 * Tests for the fleet subsystem: the wire protocol (framing, spec
 * round-trips, endpoint parsing), verdict parity between a two-worker
 * fleet and the single-process campaign on the same seeds, and the
 * fault paths -- a SIGKILLed worker's leases are reassigned with zero
 * lost cells, a silent worker times out, and a killed coordinator
 * resumes from its merged journal re-leasing only uncommitted cells.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/journal.hh"
#include "campaign/scheduler.hh"
#include "fleet/client.hh"
#include "fleet/coordinator.hh"
#include "fleet/proto.hh"
#include "fleet/worker.hh"
#include "obs/json.hh"

namespace wo {
namespace {

std::string
slurp(const std::string &path)
{
    std::string out;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/** key -> (verdict, outcome signature) for a journal's cell lines. */
std::map<std::string, std::pair<std::string, std::string>>
journalVerdicts(const std::string &path)
{
    std::map<std::string, std::pair<std::string, std::string>> out;
    const std::string text = slurp(path);
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break;
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue;
        const Json *type = p.value.find("type");
        if (!type || !type->isString() ||
            type->stringValue() != "cell")
            continue;
        const Json *key = p.value.find("key");
        const Json *verdict = p.value.find("verdict");
        const Json *sig = p.value.find("sig");
        if (!key || !key->isString())
            continue;
        out[key->stringValue()] = {
            verdict && verdict->isString() ? verdict->stringValue()
                                           : "",
            sig && sig->isString() ? sig->stringValue() : ""};
    }
    return out;
}

/** The base-stream indices a fleet journal's cell lines carry. */
std::set<std::uint64_t>
journalIndices(const std::string &path)
{
    std::set<std::uint64_t> out;
    const std::string text = slurp(path);
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break;
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue;
        const Json *idx = p.value.find("idx");
        if (idx && idx->isNumber())
            out.insert(idx->uintValue());
    }
    return out;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

/** An in-process worker on its own thread (joined on destruction). */
struct WorkerThread
{
    FleetWorker worker;
    std::thread thread;

    explicit WorkerThread(WorkerCfg cfg) : worker(std::move(cfg))
    {
        thread = std::thread([this] { worker.connectAndRun(); });
    }

    ~WorkerThread()
    {
        worker.kill();
        if (thread.joinable())
            thread.join();
    }
};

// --- protocol --------------------------------------------------------

TEST(FleetProto, ParseHostPortIsStrict)
{
    HostPort hp;
    EXPECT_TRUE(parseHostPort("127.0.0.1:9000", hp));
    EXPECT_EQ(hp.host, "127.0.0.1");
    EXPECT_EQ(hp.port, 9000);
    EXPECT_TRUE(parseHostPort("example.test:1", hp));
    EXPECT_EQ(hp.port, 1);
    EXPECT_TRUE(parseHostPort("host:65535", hp));

    for (const char *bad :
         {"", "host", "host:", ":9000", "host:0", "host:65536",
          "host:12x4", "host:-1", "host: 80"}) {
        HostPort out{"untouched", 42};
        EXPECT_FALSE(parseHostPort(bad, out)) << bad;
        EXPECT_EQ(out.host, "untouched") << bad;
        EXPECT_EQ(out.port, 42) << bad;
    }
}

TEST(FleetProto, SpecRoundTrips)
{
    FleetCampaignSpec spec;
    spec.seed = 42;
    spec.cells = 123;
    spec.policies = {OrderingPolicy::sc, OrderingPolicy::wo_drf0};
    spec.program_files = {"a.wo", "b.wo"};
    spec.max_events = 77'000;
    spec.shrink = false;
    spec.shrink_max_runs = 9;
    spec.inject_reserve_bug = true;
    spec.verify = true;
    spec.verify_models = {"sc", "stale"};
    spec.max_states = 5'000;
    spec.explore_jobs = 4;
    spec.inject_axiom_bug = true;

    FleetCampaignSpec back;
    std::string err;
    ASSERT_TRUE(fleetSpecFromJson(fleetSpecToJson(spec), back, &err))
        << err;
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.cells, spec.cells);
    EXPECT_EQ(back.policies, spec.policies);
    EXPECT_EQ(back.program_files, spec.program_files);
    EXPECT_EQ(back.max_events, spec.max_events);
    EXPECT_EQ(back.shrink, spec.shrink);
    EXPECT_EQ(back.shrink_max_runs, spec.shrink_max_runs);
    EXPECT_EQ(back.inject_reserve_bug, spec.inject_reserve_bug);
    EXPECT_EQ(back.verify, spec.verify);
    EXPECT_EQ(back.verify_models, spec.verify_models);
    EXPECT_EQ(back.max_states, spec.max_states);
    EXPECT_EQ(back.explore_jobs, spec.explore_jobs);
    EXPECT_EQ(back.inject_axiom_bug, spec.inject_axiom_bug);
}

TEST(FleetProto, SpecRejectsUnknownVerifyModel)
{
    // Model names travel verbatim in the spec; the codec must reject
    // a name the registry does not know before any worker burns a
    // lease discovering it.
    FleetCampaignSpec spec;
    std::string err;
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"verify": true, "verify_models": "sc,tso"})")
            .value,
        spec, &err));
    EXPECT_NE(err.find("tso"), std::string::npos);
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"max_states": 0})").value, spec, &err));
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"explore_jobs": 0})").value, spec, &err));
}

TEST(FleetProto, SpecDefaultsEmptyPoliciesToCampaignTrio)
{
    // A spec without policies must never produce an empty vector (the
    // base stream crosses every cell with a policy).
    FleetCampaignSpec spec;
    std::string err;
    ASSERT_TRUE(
        fleetSpecFromJson(jsonParse(R"({"cells": 10})").value, spec,
                          &err))
        << err;
    const std::vector<OrderingPolicy> trio = {OrderingPolicy::sc,
                                              OrderingPolicy::wo_def1,
                                              OrderingPolicy::wo_drf0};
    EXPECT_EQ(spec.policies, trio);
}

TEST(FleetProto, SpecRejectsMalformedMembers)
{
    FleetCampaignSpec spec;
    std::string err;
    EXPECT_FALSE(fleetSpecFromJson(Json(), spec, &err));
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"cells": 0})").value, spec, &err));
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"policies": "sc,bogus"})").value, spec, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(fleetSpecFromJson(
        jsonParse(R"({"max_events": 0})").value, spec, &err));
}

TEST(FleetProto, MsgHelpers)
{
    const Json msg = fleetMsg("heartbeat");
    EXPECT_EQ(fleetMsgType(msg), "heartbeat");
    EXPECT_EQ(fleetMsgType(Json()), "");
    EXPECT_EQ(fleetMsgType(jsonParse(R"({"type": 7})").value), "");
}

TEST(FleetProto, LineConnFramesAndSevers)
{
    std::string err;
    std::uint16_t port = 0;
    const int lfd = fleetListen("127.0.0.1", 0, &port, &err);
    ASSERT_GE(lfd, 0) << err;
    ASSERT_NE(port, 0);

    const int cfd = fleetConnect({"127.0.0.1", port}, &err);
    ASSERT_GE(cfd, 0) << err;
    const int afd = ::accept(lfd, nullptr, nullptr);
    ASSERT_GE(afd, 0);
    LineConn client(cfd), server(afd);

    // Two lines written back to back arrive as two framed messages.
    Json a = fleetMsg("heartbeat");
    Json b = fleetMsg("lease_done");
    b.set("lease", Json(std::uint64_t{7}));
    ASSERT_TRUE(client.writeLine(a));
    ASSERT_TRUE(client.writeLine(b));
    std::string line;
    ASSERT_EQ(server.readLine(line, 5'000), LineConn::Read::line);
    EXPECT_EQ(fleetMsgType(jsonParse(line).value), "heartbeat");
    ASSERT_EQ(server.readLine(line, 5'000), LineConn::Read::line);
    const Json second = jsonParse(line).value;
    EXPECT_EQ(fleetMsgType(second), "lease_done");
    EXPECT_EQ(second.find("lease")->uintValue(), 7u);

    // Nothing pending: a bounded read times out rather than blocking.
    EXPECT_EQ(server.readLine(line, 50), LineConn::Read::timeout);

    // Severing one end unblocks the peer with `closed`.
    client.shutdownNow();
    EXPECT_EQ(server.readLine(line, 5'000), LineConn::Read::closed);
    ::close(lfd);
}

// --- fleet end to end ------------------------------------------------

/**
 * The acceptance bar: a two-worker fleet on a fixed seed produces the
 * same per-cell verdicts, outcome signatures and deduplicated failure
 * set as the single-process campaign.  `frontier = false` makes the
 * executed cell set a pure function of (seed, cells) on both sides.
 */
TEST(Fleet, VerdictParityWithSingleProcess)
{
    const std::uint64_t seed = 7, cells = 60;

    CampaignCfg sp;
    sp.jobs = 2;
    sp.cells = cells;
    sp.seed = seed;
    sp.frontier = false;
    sp.inject_reserve_bug = true;
    sp.shrink_max_runs = 200;
    sp.out_dir = freshDir("fleet_parity_sp");
    const CampaignSummary local = runCampaign(sp);
    ASSERT_EQ(local.ran, cells);

    CoordinatorCfg ccfg;
    ccfg.out_dir = freshDir("fleet_parity_fl");
    ccfg.shard_size = 8;
    ccfg.sync_every = 1;
    Coordinator coord(ccfg);
    ASSERT_TRUE(coord.start()) << coord.lastError();
    WorkerCfg wcfg;
    wcfg.connect = {"127.0.0.1", coord.port()};
    wcfg.heartbeat_ms = 100;
    WorkerThread w0(wcfg), w1(wcfg);
    ASSERT_TRUE(coord.waitForWorkers(2, 10'000));

    FleetCampaignSpec spec;
    spec.seed = seed;
    spec.cells = cells;
    spec.inject_reserve_bug = true;
    spec.shrink_max_runs = 200;
    const std::uint64_t id = coord.submitLocal(spec);
    Json summary;
    ASSERT_TRUE(coord.waitCampaign(id, 180'000, &summary));
    coord.stop();

    // Both workers did real work (the lattice was actually sharded).
    EXPECT_GT(w0.worker.cellsRun(), 0u);
    EXPECT_GT(w1.worker.cellsRun(), 0u);

    const auto sp_cells =
        journalVerdicts(sp.out_dir + "/campaign.journal.jsonl");
    const auto fl_cells = journalVerdicts(
        ccfg.out_dir + "/c1/campaign.journal.jsonl");
    ASSERT_EQ(sp_cells.size(), cells);
    // Same key set, same verdict and same outcome signature per key.
    EXPECT_EQ(fl_cells, sp_cells);

    // Verdict tallies agree with the single-process summary.
    EXPECT_EQ(summary.find("clean")->uintValue(), local.clean);
    EXPECT_EQ(summary.find("racy")->uintValue(), local.racy);
    EXPECT_EQ(summary.find("hw")->uintValue(), local.hw);
    ASSERT_GT(local.hw, 0u) << "seeded fault never fired; the parity "
                               "test lost its teeth";
    EXPECT_FALSE(summary.find("hardware_clean")->boolValue());

    // Deduplicated failure identity (kind + shrunk-program hash)
    // matches, so fleet shrinking reproduced the same minima.
    std::set<std::string> sp_dedup, fl_dedup;
    for (const FailureRecord &f : local.failures)
        sp_dedup.insert(f.dedup);
    for (const Json &f : summary.find("failures")->items())
        fl_dedup.insert(f.find("dedup")->stringValue());
    EXPECT_EQ(fl_dedup, sp_dedup);

    // The coordinator wrote a repro beside the merged journal.
    for (const Json &f : summary.find("failures")->items()) {
        const std::string path =
            ccfg.out_dir + "/c1/repro-" +
            f.find("kind")->stringValue() + "-" +
            f.find("dedup")->stringValue().substr(
                f.find("dedup")->stringValue().find(':') + 1) +
            ".wo";
        EXPECT_FALSE(slurp(path).empty()) << path;
    }
}

/**
 * Kill one of two workers mid-campaign: its leases are reassigned and
 * the lattice still completes with every base index merged exactly
 * once (the idempotent-merge half of the crash contract).
 */
TEST(Fleet, WorkerKillReassignsLeases)
{
    const std::uint64_t cells = 4000;

    CoordinatorCfg ccfg;
    ccfg.out_dir = freshDir("fleet_kill_worker");
    ccfg.shard_size = 16;
    ccfg.sync_every = 1;
    Coordinator coord(ccfg);
    ASSERT_TRUE(coord.start()) << coord.lastError();
    WorkerCfg wcfg;
    wcfg.connect = {"127.0.0.1", coord.port()};
    wcfg.heartbeat_ms = 100;
    WorkerThread w0(wcfg), w1(wcfg);
    ASSERT_TRUE(coord.waitForWorkers(2, 10'000));

    FleetCampaignSpec spec;
    spec.seed = 3;
    spec.cells = cells;
    spec.shrink = false;
    const std::uint64_t id = coord.submitLocal(spec);

    // SIGKILL stand-in: sever w0's socket once it is demonstrably
    // mid-lease (it has completed cells, the campaign has not).
    for (int i = 0; i < 20'000 && w0.worker.cellsRun() < 64; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(w0.worker.cellsRun(), 64u)
        << "w0 never ran; cannot exercise reassignment";
    w0.worker.kill();

    Json summary;
    ASSERT_TRUE(coord.waitCampaign(id, 180'000, &summary));
    coord.stop();

    // Zero lost cells: every base index merged, exactly once each
    // (stale duplicates from the dead worker's lease are dropped, not
    // journaled twice).
    const auto idx = journalIndices(
        ccfg.out_dir + "/c1/campaign.journal.jsonl");
    EXPECT_EQ(idx.size(), cells);
    EXPECT_EQ(*idx.begin(), 0u);
    EXPECT_EQ(*idx.rbegin(), cells - 1);
    EXPECT_EQ(summary.find("ran")->uintValue(), cells);
    EXPECT_GE(summary.find("reassigned_leases")->uintValue(), 1u);
    EXPECT_TRUE(summary.find("hardware_clean")->boolValue());
}

/**
 * A worker that stops heartbeating without closing its socket (a hung
 * host, a dropped route) forfeits its leases after lease_timeout_ms
 * and the surviving worker finishes the campaign.
 */
TEST(Fleet, SilentWorkerForfeitsLeases)
{
    CoordinatorCfg ccfg;
    ccfg.out_dir = freshDir("fleet_silent_worker");
    ccfg.shard_size = 8;
    ccfg.lease_timeout_ms = 600;
    Coordinator coord(ccfg);
    ASSERT_TRUE(coord.start()) << coord.lastError();

    // A hand-rolled worker that handshakes, accepts leases, and then
    // never says another word.
    std::string err;
    const int fd = fleetConnect({"127.0.0.1", coord.port()}, &err);
    ASSERT_GE(fd, 0) << err;
    LineConn mute(fd);
    Json hello = fleetMsg("hello");
    hello.set("proto", Json(fleet_proto_version));
    hello.set("role", Json("worker"));
    hello.set("name", Json("mute"));
    hello.set("jobs", Json(std::uint64_t{1}));
    ASSERT_TRUE(mute.writeLine(hello));
    std::string line;
    ASSERT_EQ(mute.readLine(line, 10'000), LineConn::Read::line);
    ASSERT_EQ(fleetMsgType(jsonParse(line).value), "hello_ok");

    WorkerCfg wcfg;
    wcfg.connect = {"127.0.0.1", coord.port()};
    wcfg.heartbeat_ms = 100;
    WorkerThread live(wcfg);
    ASSERT_TRUE(coord.waitForWorkers(2, 10'000));

    FleetCampaignSpec spec;
    spec.seed = 11;
    spec.cells = 96;
    spec.shrink = false;
    const std::uint64_t id = coord.submitLocal(spec);

    Json summary;
    ASSERT_TRUE(coord.waitCampaign(id, 60'000, &summary));
    coord.stop();

    EXPECT_EQ(summary.find("ran")->uintValue(), 96u);
    EXPECT_GE(summary.find("reassigned_leases")->uintValue(), 1u);
    EXPECT_EQ(journalIndices(
                  ccfg.out_dir + "/c1/campaign.journal.jsonl")
                  .size(),
              96u);
}

/**
 * Kill the coordinator mid-campaign, then start a fresh one with
 * --resume on the same out-dir: the merged journal's header rebuilds
 * the spec, its cell lines rebuild the done set, and exactly the
 * uncommitted indices run -- resumed + ran == cells with no rerun.
 */
TEST(Fleet, CoordinatorRestartResumes)
{
    const std::uint64_t cells = 3000;
    const std::string out_dir = freshDir("fleet_resume");

    FleetCampaignSpec spec;
    spec.seed = 5;
    spec.cells = cells;
    spec.shrink = false;

    std::uint64_t committed = 0;
    {
        CoordinatorCfg ccfg;
        ccfg.out_dir = out_dir;
        ccfg.shard_size = 16;
        ccfg.sync_every = 1; // commit point == applied record
        Coordinator first(ccfg);
        ASSERT_TRUE(first.start()) << first.lastError();
        WorkerCfg wcfg;
        wcfg.connect = {"127.0.0.1", first.port()};
        wcfg.heartbeat_ms = 100;
        WorkerThread w(wcfg);
        ASSERT_TRUE(first.waitForWorkers(1, 10'000));
        first.submitLocal(spec);

        for (int i = 0; i < 20'000 && w.worker.cellsRun() < 64; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_GE(w.worker.cellsRun(), 64u);
        first.kill(); // SIGKILL stand-in: no drain, no graceful close
        ASSERT_EQ(first.campaignsCompleted(), 0)
            << "campaign finished before the kill; nothing to resume";
        w.worker.kill();

        committed = journalIndices(
                        out_dir + "/c1/campaign.journal.jsonl")
                        .size();
        ASSERT_GT(committed, 0u);
        ASSERT_LT(committed, cells);
    }

    CoordinatorCfg rcfg;
    rcfg.out_dir = out_dir;
    rcfg.shard_size = 16;
    rcfg.sync_every = 1;
    rcfg.resume = true;
    Coordinator second(rcfg);
    ASSERT_TRUE(second.start()) << second.lastError();
    WorkerCfg wcfg;
    wcfg.connect = {"127.0.0.1", second.port()};
    wcfg.heartbeat_ms = 100;
    WorkerThread w(wcfg);

    Json summary;
    ASSERT_TRUE(second.waitCampaign(1, 180'000, &summary));
    second.stop();

    // Only the complement re-ran; the journaled prefix was honored.
    EXPECT_EQ(summary.find("resumed")->uintValue(), committed);
    EXPECT_EQ(summary.find("ran")->uintValue(), cells - committed);
    EXPECT_LE(w.worker.cellsRun(), cells - committed);
    EXPECT_EQ(journalIndices(out_dir + "/c1/campaign.journal.jsonl")
                  .size(),
              cells);
    EXPECT_TRUE(summary.find("hardware_clean")->boolValue());
}

/**
 * A fully-journaled campaign resumes to completion without any
 * workers at all: resume alone reconstructs the verdict.
 */
TEST(Fleet, ResumeOfCompleteJournalNeedsNoWorkers)
{
    const std::string out_dir = freshDir("fleet_resume_complete");

    FleetCampaignSpec spec;
    spec.seed = 13;
    spec.cells = 48;
    spec.shrink = false;

    {
        CoordinatorCfg ccfg;
        ccfg.out_dir = out_dir;
        ccfg.sync_every = 1;
        Coordinator coord(ccfg);
        ASSERT_TRUE(coord.start()) << coord.lastError();
        WorkerCfg wcfg;
        wcfg.connect = {"127.0.0.1", coord.port()};
        WorkerThread w(wcfg);
        const std::uint64_t id = coord.submitLocal(spec);
        ASSERT_TRUE(coord.waitCampaign(id, 120'000));
        coord.kill(); // die *after* completion; summary file exists
    }

    CoordinatorCfg rcfg;
    rcfg.out_dir = out_dir;
    rcfg.resume = true;
    Coordinator second(rcfg);
    ASSERT_TRUE(second.start()) << second.lastError();
    Json summary;
    ASSERT_TRUE(second.waitCampaign(1, 10'000, &summary));
    second.stop();
    EXPECT_EQ(summary.find("resumed")->uintValue(), 48u);
    EXPECT_EQ(summary.find("ran")->uintValue(), 0u);
}

} // namespace
} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/reduction.dir/reduction.cpp.o"
  "CMakeFiles/reduction.dir/reduction.cpp.o.d"
  "reduction"
  "reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

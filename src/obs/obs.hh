/**
 * @file
 * The unified observability hub of the timed simulator.
 *
 * One Obs instance per System collects three kinds of signal from the
 * timed components (event kernel, network, caches, CPUs):
 *
 *  1. A structured trace: every event-queue firing, every coherence
 *     message, and every memory-operation lifecycle transition
 *     (issue -> commit -> globally-performed -> retire).  Exported as
 *     Chrome trace-event JSON (load `chrome://tracing` or
 *     https://ui.perfetto.dev) and as a compact JSONL stream.  Tracing
 *     is off by default; when off, the hooks cost one branch.
 *
 *  2. Stall attribution: every cycle a CPU pipeline spends not
 *     executing is classified into exactly one paper-meaningful bucket
 *     (see StallBucket).  The buckets always sum to the total, so the
 *     Figure-3 "run-ahead" benefit of the new implementation is a
 *     reported number, not an inference.  Attribution is always on;
 *     it only touches counters at stall-interval boundaries.
 *
 *  3. Side-channel facts needed for (2): which requests missed, which
 *     were NACKed or held at a remote reserved line.
 *
 * The hub also fans the same hooks out to two optional attachments:
 * the online invariant Monitor (fed every retired operation and every
 * counter/reserve-bit transition) and the always-on FlightRecorder
 * ring (fed every hook, cheaply, even with tracing off).  See
 * monitor.hh and recorder.hh.
 *
 * Components reach the hub through EventQueue::obs(), which every timed
 * component already holds; a null hub disables everything.  The hub
 * depends only on common/ and the execution record so any layer may
 * call into it.
 */

#ifndef WO_OBS_OBS_HH
#define WO_OBS_OBS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "execution/memory_op.hh"
#include "obs/json.hh"

namespace wo {

class Monitor;
class FlightRecorder;
class Sampler;

/**
 * Where a stalled CPU cycle went.  Every blocked or issue-gated cycle
 * lands in exactly one bucket; `stall.total` is maintained as the sum.
 */
enum class StallBucket : std::uint8_t
{
    reserve_wait,  //!< sync access held off by a remote reserve bit
    counter_drain, //!< waiting for own outstanding accesses to perform
                   //!< (SC issue rule, Definition-1 conditions 2 and 3)
    mlp_limit,     //!< CpuCfg::max_outstanding miss-resource limit
    cache_miss,    //!< waiting for line data of an ordinary miss
    network,       //!< committed but not globally performed: invalidation
                   //!< and acknowledgement traffic in flight
    hit_latency,   //!< local cache hit access time
};

/** Number of StallBucket values (for iteration). */
inline constexpr int num_stall_buckets = 6;

/** Stable printable bucket name (used as the stats key). */
const char *stallBucketName(StallBucket b);

/** Which wait of the in-order pipeline a stall interval belongs to. */
enum class StallPhase : std::uint8_t
{
    issue_counter, //!< gated before issue by an ordering condition
    issue_mlp,     //!< gated before issue by max_outstanding
    commit_wait,   //!< issued, waiting for the local commit
    perform_wait,  //!< committed, waiting for globally-performed
};

/**
 * Which side of a synchronization protocol the stalled operation is on.
 * Figure 3's claim is specifically about the *release* side: the new
 * implementation never stalls the releasing processor.
 */
enum class OpSide : std::uint8_t
{
    data,    //!< ordinary load/store
    release, //!< write-only synchronization (Unset/Set)
    acquire, //!< read or read-modify-write synchronization (Test/TAS)
};

/** Stable printable side name. */
const char *opSideName(OpSide s);

/** The hub.  Created by System; components receive it via EventQueue. */
class Obs
{
  public:
    /** @param nprocs processor count (sizes the per-CPU stall groups) */
    explicit Obs(ProcId nprocs);

    /**
     * Turn the structured trace on.
     * @param queue_events also record every event-queue firing (noisy;
     *        useful for kernel-level debugging, off for plain runs)
     */
    void enableTrace(bool queue_events);

    /** Is the structured trace recording? */
    bool tracing() const { return trace_enabled_; }

    /**
     * Does the trace want per-firing queue events?  The kernel asks
     * before materializing an event label, so a run that never looks at
     * labels never pays for building them.
     */
    bool wantsQueueEvents() const
    {
        return trace_enabled_ && trace_queue_events_;
    }

    /**
     * Attach the online invariant monitor.  Retired operations and
     * counter/reserve transitions are forwarded to it; violations it
     * raises are mirrored into the flight recorder (when attached).
     * Must outlive the run.
     */
    void attachMonitor(Monitor *m) { monitor_ = m; }

    /** The attached monitor, or nullptr. */
    Monitor *monitor() const { return monitor_; }

    /** Attach the flight recorder.  Must outlive the run. */
    void attachRecorder(FlightRecorder *r) { recorder_ = r; }

    /** The attached flight recorder, or nullptr. */
    FlightRecorder *recorder() const { return recorder_; }

    /**
     * Attach the periodic sampler; its counter-track samples are merged
     * into chromeTraceJson().  Must outlive the export.
     */
    void attachSampler(const Sampler *s) { sampler_ = s; }

    /** The attached sampler, or nullptr. */
    const Sampler *sampler() const { return sampler_; }

    // ---- hooks called by the timed components ------------------------

    /** Event kernel: one event popped and about to execute. */
    void queueFire(Tick now, const std::string &label);

    /** Network: message handed to the wire. */
    void message(Tick sent, Tick deliver, unsigned src, unsigned dst,
                 const char *type, Addr addr, bool is_sync);

    /** CPU: request handed to the cache. */
    void opIssue(ProcId p, std::uint64_t req, const char *kind, Addr addr,
                 Pc pc, Tick reached, Tick issued);

    /** CPU: request committed (value bound / local copy modified). */
    void opCommit(ProcId p, std::uint64_t req, Tick now);

    /** CPU: request globally performed. */
    void opPerform(ProcId p, std::uint64_t req, Tick now);

    /**
     * CPU: request retired into the execution, with the full operation
     * payload so the monitor can replay it into its own execution copy.
     * Retire order is program order per processor and the completion
     * order contract of Execution::append.
     */
    void opRetire(ProcId p, std::uint64_t req, Tick now, Addr addr,
                  AccessKind kind, Value value_read, Value value_written,
                  Tick commit_tick);

    /** Cache: outstanding-access counter of @p p changed to @p value. */
    void counterChanged(ProcId p, int value, Tick now);

    /** Cache: reserve bit set on @p addr by processor @p p. */
    void reserveSet(ProcId p, Addr addr, Tick now);

    /** Cache: all reserve bits of processor @p p cleared. */
    void reserveCleared(ProcId p, Tick now);

    /** Cache: the request left the cache as a miss (GetS/GetX sent). */
    void reqMiss(ProcId p, std::uint64_t req);

    /** Cache: the requester's miss was NACKed at a reserved line. */
    void reqNack(ProcId p, std::uint64_t req);

    /**
     * Cache (queue stall mode): the owner is holding @p requester's
     * forwarded request for @p addr at a reserved line.
     */
    void reserveHold(ProcId requester, Addr addr);

    /**
     * CPU: one stall interval [from, to) ended.  Classified into a
     * bucket using the phase plus the miss/NACK facts recorded for
     * @p req, and charged to @p side.
     */
    void stall(ProcId p, std::uint64_t req, Addr addr, StallPhase phase,
               OpSide side, Tick from, Tick to);

    // ---- results -----------------------------------------------------

    /** Per-CPU stall-attribution statistics (group "cpu<p>.stall"). */
    const StatGroup &stallStats(ProcId p) const;

    /** All per-CPU stall groups, for registration with the metrics. */
    std::vector<const StatGroup *> stallGroups() const;

    /**
     * The full trace as Chrome trace-event JSON: a top-level object
     * with a "traceEvents" array of complete ("X"), instant ("i") and
     * metadata ("M") events.  Timestamps are simulator ticks reported
     * as microseconds, so one Perfetto microsecond == one tick.
     */
    std::string chromeTraceJson() const;

    /** The raw event stream, one compact JSON object per line. */
    std::string traceJsonl() const;

    /** Operations issued but never globally performed (so far). */
    std::uint64_t unfinishedOps() const { return live_.size(); }

  private:
    struct LiveOp
    {
        std::string kind;
        Addr addr = invalid_addr;
        Pc pc = 0;
        Tick reached = 0;
        Tick issued = 0;
        Tick committed = 0;
        bool has_committed = false;
    };

    struct ReqFacts
    {
        bool missed = false;
        bool nacked = false;
    };

    /** Append one JSONL record (tracing only). */
    void raw(Json line);

    /** Append one Chrome trace event (tracing only). */
    void chrome(Json ev);

    /** Chrome complete event helper. */
    Json completeEvent(const std::string &name, std::uint64_t tid,
                       Tick start, Tick end) const;

    StallBucket classify(ProcId p, std::uint64_t req, Addr addr,
                         StallPhase phase);

    /** Mirror monitor violations raised since last call into the ring. */
    void mirrorViolations(Tick now);

    ProcId nprocs_;
    bool trace_enabled_ = false;
    bool trace_queue_events_ = false;
    Monitor *monitor_ = nullptr;
    FlightRecorder *recorder_ = nullptr;
    const Sampler *sampler_ = nullptr;
    std::uint64_t mirrored_violations_ = 0;

    std::vector<StatGroup> stall_groups_; //!< one per processor
    std::map<std::pair<ProcId, std::uint64_t>, ReqFacts> facts_;
    std::map<std::pair<ProcId, Addr>, bool> reserve_held_;
    std::map<std::pair<ProcId, std::uint64_t>, LiveOp> live_;

    std::vector<Json> chrome_events_;
    std::vector<std::string> jsonl_;
    std::uint64_t dropped_ops_ = 0; //!< ops never performed by sim end
};

} // namespace wo

#endif // WO_OBS_OBS_HH

/**
 * @file
 * White-box tests of the directory controller: every state transition and
 * the serialization rules (busy, collecting, deferred data), driven by
 * hand-crafted message sequences over a real network with recording
 * sinks standing in for caches.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"

namespace wo {
namespace {

/** Records everything delivered to one node. */
class Sink : public MsgHandler
{
  public:
    void receive(const Message &msg) override { got.push_back(msg); }

    /** Count of messages of one type. */
    int
    count(MsgType t) const
    {
        int n = 0;
        for (const auto &m : got)
            n += m.type == t;
        return n;
    }

    /** The last message of type @p t (asserts existence). */
    Message
    last(MsgType t) const
    {
        for (auto it = got.rbegin(); it != got.rend(); ++it)
            if (it->type == t)
                return *it;
        ADD_FAILURE() << "no message of type " << msgTypeName(t);
        return Message{};
    }

    std::vector<Message> got;
};

/** Harness: 3 caches (sinks 0..2) + a directory at node 3. */
class DirHarness : public testing::Test
{
  protected:
    DirHarness()
        : net_(eq_, NetworkCfg{1, 0, 1}),
          dir_(3, net_, std::vector<Value>{10, 20}, DirectoryCfg{})
    {
        for (NodeId n = 0; n < 3; ++n)
            net_.attach(n, &sinks_[n]);
        net_.attach(3, &dir_);
    }

    /** Send a request into the directory and drain the network. */
    void
    send(MsgType t, NodeId src, Addr addr, NodeId requester = invalid_proc,
         Value value = 0)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = 3;
        m.addr = addr;
        m.requester = requester == invalid_proc ? src : requester;
        m.value = value;
        net_.send(m);
        eq_.runAll();
    }

    EventQueue eq_;
    Network net_;
    Sink sinks_[3];
    Directory dir_;
};

TEST_F(DirHarness, ColdReadServedFromMemory)
{
    send(MsgType::get_s, 0, 0);
    ASSERT_EQ(sinks_[0].count(MsgType::data_s), 1);
    EXPECT_EQ(sinks_[0].last(MsgType::data_s).value, 10);
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, ColdWriteGrantsExclusiveNoAcks)
{
    send(MsgType::get_x, 0, 0);
    ASSERT_EQ(sinks_[0].count(MsgType::data_x), 1);
    EXPECT_EQ(sinks_[0].last(MsgType::data_x).ack_count, 0);
    EXPECT_EQ(dir_.ownerOf(0), 0);
}

TEST_F(DirHarness, UpgradeInvalidatesOtherSharersAndAcks)
{
    send(MsgType::get_s, 0, 0);
    send(MsgType::get_s, 1, 0);
    send(MsgType::get_s, 2, 0);
    send(MsgType::get_x, 0, 0); // upgrade: invalidate 1 and 2
    ASSERT_EQ(sinks_[0].count(MsgType::data_x), 1);
    EXPECT_EQ(sinks_[0].last(MsgType::data_x).ack_count, 2);
    EXPECT_EQ(sinks_[1].count(MsgType::inv), 1);
    EXPECT_EQ(sinks_[2].count(MsgType::inv), 1);
    EXPECT_FALSE(dir_.quiescent()) << "collecting acks";
    send(MsgType::inv_ack, 1, 0);
    EXPECT_EQ(sinks_[0].count(MsgType::mem_ack), 0) << "one ack missing";
    send(MsgType::inv_ack, 2, 0);
    EXPECT_EQ(sinks_[0].count(MsgType::mem_ack), 1);
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, SoleSharerUpgradeNeedsNoAcks)
{
    send(MsgType::get_s, 0, 0);
    send(MsgType::get_x, 0, 0);
    EXPECT_EQ(sinks_[0].last(MsgType::data_x).ack_count, 0);
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, ReadOfDirtyLineForwardsToOwner)
{
    send(MsgType::get_x, 0, 0);
    send(MsgType::get_s, 1, 0);
    ASSERT_EQ(sinks_[0].count(MsgType::fwd_get_s), 1);
    EXPECT_EQ(sinks_[0].last(MsgType::fwd_get_s).requester, 1);
    // Owner answers with a writeback carrying the dirty value.
    send(MsgType::wb_data, 0, 0, /*requester=*/1, /*value=*/99);
    ASSERT_EQ(sinks_[1].count(MsgType::data_s), 1);
    EXPECT_EQ(sinks_[1].last(MsgType::data_s).value, 99);
    EXPECT_EQ(dir_.memoryValue(0), 99);
    EXPECT_EQ(dir_.ownerOf(0), invalid_proc) << "line now shared";
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, WriteOfDirtyLineTransfersOwnership)
{
    send(MsgType::get_x, 0, 0);
    send(MsgType::get_x, 1, 0);
    ASSERT_EQ(sinks_[0].count(MsgType::fwd_get_x), 1);
    send(MsgType::transfer_ack, 0, 0, /*requester=*/1);
    EXPECT_EQ(dir_.ownerOf(0), 1);
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, RequestsQueueBehindBusyLine)
{
    send(MsgType::get_x, 0, 0);
    send(MsgType::get_x, 1, 0); // forwarded to 0; dir busy
    send(MsgType::get_s, 2, 0); // must queue, not forward
    EXPECT_EQ(sinks_[0].count(MsgType::fwd_get_s), 0)
        << "GetS must wait for the in-flight transaction";
    send(MsgType::transfer_ack, 0, 0, /*requester=*/1);
    // Now the queued GetS is replayed against the new owner.
    EXPECT_EQ(sinks_[1].count(MsgType::fwd_get_s), 1);
}

TEST_F(DirHarness, RequestsQueueBehindCollectingLine)
{
    send(MsgType::get_s, 1, 0);
    send(MsgType::get_x, 0, 0); // inv to 1, collecting
    send(MsgType::get_s, 2, 0); // must queue during collection
    EXPECT_EQ(sinks_[0].count(MsgType::fwd_get_s), 0);
    send(MsgType::inv_ack, 1, 0);
    EXPECT_EQ(sinks_[0].count(MsgType::mem_ack), 1);
    // Queued GetS now forwarded to owner 0.
    EXPECT_EQ(sinks_[0].count(MsgType::fwd_get_s), 1);
}

TEST_F(DirHarness, OwnerNackBouncesRequester)
{
    send(MsgType::get_x, 0, 0);
    send(MsgType::get_x, 1, 0); // fwd to 0
    send(MsgType::nack, 0, 0, /*requester=*/1); // owner refuses
    EXPECT_EQ(sinks_[1].count(MsgType::nack), 1);
    EXPECT_EQ(dir_.ownerOf(0), 0) << "ownership unchanged";
    EXPECT_TRUE(dir_.quiescent());
}

TEST_F(DirHarness, IndependentLinesProceedInParallel)
{
    send(MsgType::get_x, 0, 0);
    send(MsgType::get_x, 1, 0); // line 0 busy (fwd to 0)
    send(MsgType::get_x, 2, 1); // line 1 independent
    EXPECT_EQ(sinks_[2].count(MsgType::data_x), 1)
        << "a busy line must not block other lines";
}

TEST_F(DirHarness, Quiescence)
{
    EXPECT_TRUE(dir_.quiescent());
    send(MsgType::get_x, 0, 0);
    EXPECT_TRUE(dir_.quiescent());
    send(MsgType::get_x, 1, 0);
    EXPECT_FALSE(dir_.quiescent());
}

class DeferredDirHarness : public testing::Test
{
  protected:
    DeferredDirHarness()
        : net_(eq_, NetworkCfg{1, 0, 1}),
          dir_(3, net_, std::vector<Value>{10},
               DirectoryCfg{/*forward_line_with_invs=*/false})
    {
        for (NodeId n = 0; n < 3; ++n)
            net_.attach(n, &sinks_[n]);
        net_.attach(3, &dir_);
    }

    void
    send(MsgType t, NodeId src, Addr addr)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = 3;
        m.addr = addr;
        m.requester = src;
        net_.send(m);
        eq_.runAll();
    }

    EventQueue eq_;
    Network net_;
    Sink sinks_[3];
    Directory dir_;
};

TEST_F(DeferredDirHarness, DataWithheldUntilAcksCollected)
{
    send(MsgType::get_s, 1, 0);
    send(MsgType::get_s, 2, 0);
    send(MsgType::get_x, 0, 0);
    EXPECT_EQ(sinks_[0].count(MsgType::data_x), 0)
        << "grant must wait for invalidation acks";
    send(MsgType::inv_ack, 1, 0);
    send(MsgType::inv_ack, 2, 0);
    ASSERT_EQ(sinks_[0].count(MsgType::data_x), 1);
    EXPECT_EQ(sinks_[0].last(MsgType::data_x).ack_count, 0)
        << "deferred grant is already globally performed";
    EXPECT_EQ(sinks_[0].count(MsgType::mem_ack), 0);
}

} // namespace
} // namespace wo

#!/usr/bin/env python3
"""Hold fresh benchmark runs to the committed perf baseline.

Compares the headline throughput numbers of a fresh bench run (a
directory of BENCH_*.json files, typically produced in CI) against the
baseline artifacts committed at the repository root, and fails on a
regression beyond the tolerance band.  Improvements always pass; commit
the refreshed artifacts (scripts/bench_all.sh) to ratchet the baseline.

Usage:
    scripts/perf_gate.py --baseline . --fresh fresh-bench [--tolerance 0.20]
"""

import argparse
import json
import os
import re
import sys

# (artifact file, metric key, human name) -- the gated trajectory.
GATED = [
    ("BENCH_campaign.json", "jobs1_cells_per_sec", "campaign cells/sec"),
    ("BENCH_campaign.json", "jobs4_cells_per_sec",
     "campaign cells/sec (4 workers)"),
    ("BENCH_kernel.json", "ticks_per_sec", "kernel ticks/sec"),
    ("BENCH_fleet.json", "workers1_cells_per_sec",
     "fleet cells/sec (1 worker)"),
    ("BENCH_explore.json", "dpor_states_per_sec",
     "explore DPOR states/sec"),
    ("BENCH_explore.json", "dpor_reduction_ratio",
     "explore DPOR reduction ratio (BFS/DPOR states)"),
    ("BENCH_explore.json", "jobs4_speedup",
     "explore parallel DPOR speedup (4 workers)"),
]


def load_metric(directory, fname, key):
    path = os.path.join(directory, fname)
    if not os.path.exists(path):
        return None, path
    with open(path) as f:
        data = json.load(f)
    if key not in data:
        raise SystemExit(f"error: {path} has no '{key}' member")
    return float(data[key]), path


def load_artifact(directory, fname):
    """The whole artifact object, or None when absent."""
    path = os.path.join(directory, fname)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def load_hw_threads(directory, fname):
    """The recorded hardware concurrency, or None (older artifacts)."""
    data = load_artifact(directory, fname)
    if data is None:
        return None
    value = data.get("hw_threads")
    return int(value) if value is not None else None


def oversubscribed(data, key):
    """Does the artifact mark this jobsN_*/workersN_* row as
    oversubscribed?

    Prefers the explicit jobsN_oversubscribed (workersN_ for the fleet
    bench) flag the bench stamps; derives it from hw_threads for
    artifacts that predate the flag.  An oversubscribed row ran more
    workers than hardware threads, so its speedup and tail-latency
    numbers measure time-slicing, not the scheduler -- asserting on
    them gates on noise.
    """
    if data is None:
        return False
    m = re.match(r"(jobs|workers)(\d+)_", key)
    if not m:
        return False
    flag = data.get(f"{m.group(1)}{m.group(2)}_oversubscribed")
    if flag is not None:
        return bool(flag)
    hw = data.get("hw_threads")
    return hw is not None and int(m.group(2)) > int(hw)


def check_topology(baseline_dir, fresh_dir):
    """Warn visibly when baseline and fresh ran on different topology.

    A 1-thread baseline box against an 8-thread CI runner (or vice
    versa) makes every throughput and scaling comparison suspect; the
    gate still runs, but the note explains anomalous ratios.
    """
    for fname in sorted({fname for fname, _, _ in GATED}):
        base_hw = load_hw_threads(baseline_dir, fname)
        fresh_hw = load_hw_threads(fresh_dir, fname)
        if base_hw is None or fresh_hw is None or base_hw == fresh_hw:
            continue
        print(f"  [topology] NOTE: {fname} baseline ran on "
              f"{base_hw} hw threads, fresh run on {fresh_hw} -- "
              f"throughput ratios compare different machines; treat "
              f"regressions/improvements here with suspicion")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=".",
                    help="directory with the committed BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="directory with the freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    args = ap.parse_args()

    check_topology(args.baseline, args.fresh)

    failures = []
    for fname, key, name in GATED:
        base, base_path = load_metric(args.baseline, fname, key)
        fresh, fresh_path = load_metric(args.fresh, fname, key)
        if fresh is None:
            raise SystemExit(f"error: fresh run produced no {fresh_path}")
        if base is None:
            print(f"  [skip] {name}: no committed baseline "
                  f"({base_path}); run scripts/bench_all.sh and commit")
            continue
        base_over = oversubscribed(load_artifact(args.baseline, fname),
                                   key)
        fresh_over = oversubscribed(load_artifact(args.fresh, fname),
                                    key)
        if base_over or fresh_over:
            where = ("baseline and fresh" if base_over and fresh_over
                     else "baseline" if base_over else "fresh")
            print(f"  [oversub] SKIP {name}: the {where} row ran more "
                  f"workers than hardware threads; its numbers measure "
                  f"time-slicing, not scaling, so no speedup/p99 "
                  f"assertion applies")
            continue
        floor = base * (1.0 - args.tolerance)
        ratio = fresh / base if base > 0 else float("inf")
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(f"  [{verdict}] {name}: fresh {fresh:,.1f} vs baseline "
              f"{base:,.1f} ({ratio:.2f}x, floor {floor:,.1f})")
        if fresh < floor:
            failures.append(name)

    if failures:
        print(f"perf gate FAILED: {', '.join(failures)} regressed more "
              f"than {args.tolerance:.0%} below the committed baseline")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "trace_io.hh"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wo {

std::string
traceToText(const Execution &exec)
{
    std::string out = strprintf("trace %u %u\n", exec.numProcs(),
                                exec.numLocations());
    for (Addr a = 0; a < exec.numLocations(); ++a)
        if (exec.initialValue(a) != 0)
            out += strprintf("init %u %lld\n", a,
                             static_cast<long long>(exec.initialValue(a)));
    for (const MemoryOp &op : exec.ops()) {
        out += strprintf("op %u %s %u %lld %lld %llu\n", op.proc,
                         accessKindName(op.kind), op.addr,
                         static_cast<long long>(op.value_read),
                         static_cast<long long>(op.value_written),
                         static_cast<unsigned long long>(op.commit_tick));
    }
    return out;
}

namespace {

bool
kindFromName(const std::string &name, AccessKind &out)
{
    if (name == "R")
        out = AccessKind::data_read;
    else if (name == "W")
        out = AccessKind::data_write;
    else if (name == "SR")
        out = AccessKind::sync_read;
    else if (name == "SW")
        out = AccessKind::sync_write;
    else if (name == "SRW")
        out = AccessKind::sync_rmw;
    else
        return false;
    return true;
}

} // namespace

TraceParseResult
traceFromText(const std::string &text)
{
    TraceParseResult result;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    ProcId procs = 0;
    Addr locs = 0;
    bool have_header = false;
    std::vector<std::pair<Addr, Value>> inits;
    struct RawOp
    {
        ProcId proc;
        AccessKind kind;
        Addr addr;
        Value vr, vw;
        Tick tick;
    };
    std::vector<RawOp> ops;

    auto error = [&](const std::string &msg) {
        result.errors.push_back(TraceError{lineno, msg});
    };

    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;
        if (word == "trace") {
            unsigned p = 0, l = 0;
            if (!(ls >> p >> l) || p == 0) {
                error("usage: trace <procs> <locations>");
                continue;
            }
            procs = static_cast<ProcId>(p);
            locs = static_cast<Addr>(l);
            have_header = true;
        } else if (word == "init") {
            Addr a;
            long long v;
            if (!(ls >> a >> v)) {
                error("usage: init <addr> <value>");
                continue;
            }
            inits.emplace_back(a, static_cast<Value>(v));
        } else if (word == "op") {
            unsigned p;
            std::string kind_name;
            Addr a;
            long long vr, vw;
            unsigned long long tick = 0;
            if (!(ls >> p >> kind_name >> a >> vr >> vw)) {
                error("usage: op <proc> <kind> <addr> <vread> <vwritten> "
                      "[tick]");
                continue;
            }
            ls >> tick; // optional
            AccessKind kind;
            if (!kindFromName(kind_name, kind)) {
                error("unknown access kind '" + kind_name + "'");
                continue;
            }
            ops.push_back(RawOp{static_cast<ProcId>(p), kind, a,
                                static_cast<Value>(vr),
                                static_cast<Value>(vw), tick});
        } else {
            error("unknown directive '" + word + "'");
        }
    }
    if (!have_header) {
        lineno = 0;
        error("missing 'trace <procs> <locations>' header");
        return result;
    }
    for (const auto &op : ops) {
        if (op.proc >= procs) {
            error(strprintf("op processor %u out of range", op.proc));
            return result;
        }
        if (op.addr >= locs) {
            error(strprintf("op address %u out of range", op.addr));
            return result;
        }
    }
    std::vector<Value> initial(locs, 0);
    for (auto &[a, v] : inits) {
        if (a >= locs) {
            error(strprintf("init address %u out of range", a));
            return result;
        }
        initial[a] = v;
    }
    Execution e(procs, locs, std::move(initial));
    for (const auto &op : ops)
        e.append(op.proc, op.addr, op.kind, op.vr, op.vw, op.tick);
    result.execution = std::move(e);
    return result;
}

TraceParseResult
traceFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        TraceParseResult r;
        r.errors.push_back(TraceError{0, "cannot open '" + path + "'"});
        return r;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return traceFromText(ss.str());
}

} // namespace wo

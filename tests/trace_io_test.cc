/**
 * @file
 * Tests for execution trace serialization: round trips, error handling,
 * and integration with the checkers.
 */

#include <gtest/gtest.h>

#include "execution/trace_io.hh"
#include "hb/fig2.hh"
#include "hb/race.hh"
#include "program/litmus.hh"
#include "sc/sc_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

TEST(TraceIo, RoundTripsFig2)
{
    for (const Execution &e : {fig2::executionA(), fig2::executionB()}) {
        std::string text = traceToText(e);
        auto parsed = traceFromText(text);
        ASSERT_TRUE(parsed.ok())
            << (parsed.errors.empty() ? "?"
                                      : parsed.errors[0].toString());
        const Execution &f = *parsed.execution;
        ASSERT_EQ(f.ops().size(), e.ops().size());
        for (OpId i = 0; i < e.ops().size(); ++i) {
            EXPECT_EQ(f.op(i).proc, e.op(i).proc);
            EXPECT_EQ(f.op(i).kind, e.op(i).kind);
            EXPECT_EQ(f.op(i).addr, e.op(i).addr);
            EXPECT_EQ(f.op(i).value_read, e.op(i).value_read);
            EXPECT_EQ(f.op(i).value_written, e.op(i).value_written);
        }
        // Semantic invariants survive the round trip.
        EXPECT_EQ(findRaces(e).size(), findRaces(f).size());
    }
}

TEST(TraceIo, RoundTripsTimedRunWithTicksAndInitials)
{
    Program p = litmus::fig3Scenario();
    SystemCfg cfg;
    System sys(p, cfg);
    auto r = sys.run();
    ASSERT_TRUE(r.completed);
    auto parsed = traceFromText(traceToText(r.execution));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.execution->initialValue(1), 1) << "s starts held";
    EXPECT_EQ(parsed.execution->ops().size(), r.execution.ops().size());
    EXPECT_EQ(parsed.execution->op(0).commit_tick,
              r.execution.op(0).commit_tick);
    EXPECT_EQ(isSequentiallyConsistent(*parsed.execution),
              isSequentiallyConsistent(r.execution));
}

TEST(TraceIo, ParsesHandWrittenTrace)
{
    auto parsed = traceFromText(R"(
# a stale-read trace
trace 2 2
op 0 W 0 0 1
op 0 W 1 0 1
op 1 R 1 1 0
op 1 R 0 0 0   # stale: flag seen but not data
)");
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(isSequentiallyConsistent(*parsed.execution));
}

TEST(TraceIo, ReportsErrorsWithLines)
{
    auto r = traceFromText("trace 2 2\nop 0 BOGUS 0 0 0\nwat\n");
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.errors.size(), 2u);
    EXPECT_EQ(r.errors[0].line, 2);
    EXPECT_NE(r.errors[0].message.find("unknown access kind"),
              std::string::npos);
    EXPECT_EQ(r.errors[1].line, 3);
}

TEST(TraceIo, MissingHeaderRejected)
{
    auto r = traceFromText("op 0 R 0 0 0\n");
    ASSERT_FALSE(r.ok());
}

TEST(TraceIo, OutOfRangeRejected)
{
    EXPECT_FALSE(traceFromText("trace 1 1\nop 5 R 0 0 0\n").ok());
    EXPECT_FALSE(traceFromText("trace 1 1\nop 0 R 9 0 0\n").ok());
    EXPECT_FALSE(traceFromText("trace 1 1\ninit 7 1\n").ok());
}

TEST(TraceIo, FileNotFound)
{
    auto r = traceFromFile("/no/such/trace.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.errors[0].message.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace wo

#include "instruction.hh"

#include "common/logging.hh"

namespace wo {

bool
Instruction::readsMemory() const
{
    return op == Opcode::load_data || op == Opcode::sync_load ||
           op == Opcode::test_and_set;
}

bool
Instruction::writesMemory() const
{
    return op == Opcode::store_data || op == Opcode::sync_store ||
           op == Opcode::test_and_set;
}

bool
Instruction::isSync() const
{
    return op == Opcode::sync_load || op == Opcode::sync_store ||
           op == Opcode::test_and_set;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::load_data: return "LD";
      case Opcode::store_data: return "ST";
      case Opcode::sync_load: return "SYNC_LD";
      case Opcode::sync_store: return "SYNC_ST";
      case Opcode::test_and_set: return "TAS";
      case Opcode::mov_imm: return "MOVI";
      case Opcode::add: return "ADD";
      case Opcode::add_imm: return "ADDI";
      case Opcode::branch_eq: return "BEQ";
      case Opcode::branch_ne: return "BNE";
      case Opcode::jump: return "JMP";
      case Opcode::delay: return "DELAY";
      case Opcode::halt: return "HALT";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    switch (op) {
      case Opcode::load_data:
      case Opcode::sync_load:
        return strprintf("%-7s r%u <- [%u]", opcodeName(op), dst, addr);
      case Opcode::store_data:
      case Opcode::sync_store:
        if (use_imm)
            return strprintf("%-7s [%u] <- %lld", opcodeName(op), addr,
                             static_cast<long long>(imm));
        return strprintf("%-7s [%u] <- r%u", opcodeName(op), addr, src);
      case Opcode::test_and_set:
        return strprintf("%-7s r%u <- [%u]", opcodeName(op), dst, addr);
      case Opcode::mov_imm:
        return strprintf("%-7s r%u <- %lld", opcodeName(op), dst,
                         static_cast<long long>(imm));
      case Opcode::add:
        return strprintf("%-7s r%u <- r%u + r%u", opcodeName(op), dst, src,
                         src2);
      case Opcode::add_imm:
        return strprintf("%-7s r%u <- r%u + %lld", opcodeName(op), dst, src,
                         static_cast<long long>(imm));
      case Opcode::branch_eq:
      case Opcode::branch_ne:
        return strprintf("%-7s r%u, %lld -> @%u", opcodeName(op), src,
                         static_cast<long long>(imm), target);
      case Opcode::jump:
        return strprintf("%-7s -> @%u", opcodeName(op), target);
      case Opcode::delay:
        return strprintf("%-7s %lld", opcodeName(op),
                         static_cast<long long>(imm));
      case Opcode::halt:
        return "HALT";
    }
    return "?";
}

} // namespace wo

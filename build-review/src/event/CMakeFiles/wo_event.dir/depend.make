# Empty dependencies file for wo_event.
# This may be replaced when dependencies are built.

add_test([=[KernelEquivalence.GoldenCrossCheckOverAllProgramsAndPolicies]=]  /root/repo/build-review/tests/kernel_equiv_test [==[--gtest_filter=KernelEquivalence.GoldenCrossCheckOverAllProgramsAndPolicies]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[KernelEquivalence.GoldenCrossCheckOverAllProgramsAndPolicies]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  kernel_equiv_test_TESTS KernelEquivalence.GoldenCrossCheckOverAllProgramsAndPolicies)

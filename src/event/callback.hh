/**
 * @file
 * The event kernel's callback slot.
 *
 * std::function is the wrong vehicle for a discrete-event hot path: its
 * small-buffer threshold is implementation-defined, it is copyable (so
 * every capture must be), and libstdc++ heap-allocates for captures
 * beyond two pointers.  EventCallback is a move-only callable slot with
 * a guaranteed inline capacity sized for the simulator's largest
 * capture (a Network delivery: this + handler + a Message).  Callables
 * that fit are stored in place; larger ones fall back to the heap and
 * are counted, so a test can pin the simulator's steady state at zero
 * fallbacks.
 */

#ifndef WO_EVENT_CALLBACK_HH
#define WO_EVENT_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace wo {

/** A move-only `void()` callable with small-buffer-optimized storage. */
class EventCallback
{
  public:
    /** Inline capture capacity, in bytes. */
    static constexpr std::size_t inline_capacity = 56;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heap_ops<Fn>;
            ++heap_fallbacks_;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the stored callable (must not be empty). */
    void operator()() { ops_->invoke(buf_); }

    /**
     * Callables too large (or too throwy to move) for the inline buffer
     * since process start.  The simulator's own captures all fit; the
     * counter exists so a regression test can prove they keep fitting.
     */
    static std::uint64_t heapFallbacks() { return heap_fallbacks_; }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct src's callable into dst's buffer, destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inline_capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *self) { (*std::launder(reinterpret_cast<Fn *>(self)))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *self) { std::launder(reinterpret_cast<Fn *>(self))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void *self) { (**reinterpret_cast<Fn **>(self))(); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](void *self) { delete *reinterpret_cast<Fn **>(self); },
    };

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[inline_capacity];

    inline static std::uint64_t heap_fallbacks_ = 0;
};

} // namespace wo

#endif // WO_EVENT_CALLBACK_HH

file(REMOVE_RECURSE
  "CMakeFiles/wo_asm.dir/assembler.cc.o"
  "CMakeFiles/wo_asm.dir/assembler.cc.o.d"
  "libwo_asm.a"
  "libwo_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wo_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Unit tests for wo_common: formatting, RNG, statistics, tables.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace wo {
namespace {

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strprintf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, LongStringsDoNotTruncate)
{
    std::string big(5000, 'q');
    std::string out = strprintf("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(7);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(8);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(10);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(r.chance(1, 1));
        EXPECT_FALSE(r.chance(0, 5));
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    auto orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, SplitIsIndependent)
{
    Rng a(5);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    for (std::uint64_t v : {1u, 2u, 3u, 4u})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 4u);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99.0, 1.0);
    EXPECT_EQ(h.percentile(0), 1u);
    EXPECT_EQ(h.percentile(100), 100u);
}

TEST(Histogram, PercentileClampsOutOfRange)
{
    Histogram h;
    for (std::uint64_t v : {10u, 20u, 30u})
        h.sample(v);
    // Out-of-range p clamps to the min/max rather than asserting.
    EXPECT_EQ(h.percentile(-5.0), h.min());
    EXPECT_EQ(h.percentile(250.0), h.max());
}

TEST(Histogram, PercentileEndpointsMatchMinMax)
{
    Histogram h;
    h.sample(7);
    EXPECT_EQ(h.percentile(0), 7u);
    EXPECT_EQ(h.percentile(50), 7u);
    EXPECT_EQ(h.percentile(100), 7u);
    h.sample(3);
    EXPECT_EQ(h.percentile(0), h.min());
    EXPECT_EQ(h.percentile(100), h.max());
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(StatGroup, DumpIsOrderStable)
{
    // Creation order must not affect the dump: lines sort by name.
    StatGroup a("g");
    a.counter("zeta").inc(1);
    a.counter("alpha").inc(2);
    StatGroup b("g");
    b.counter("alpha").inc(2);
    b.counter("zeta").inc(1);
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_LT(a.dump().find("alpha"), a.dump().find("zeta"));
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(9);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(StatGroup, DumpContainsEverything)
{
    StatGroup g("cpu0");
    g.counter("loads").inc(3);
    g.histogram("latency").sample(12);
    std::string d = g.dump();
    EXPECT_NE(d.find("cpu0.loads 3"), std::string::npos);
    EXPECT_NE(d.find("cpu0.latency"), std::string::npos);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("x");
    g.counter("c").inc(5);
    g.histogram("h").sample(1);
    g.resetAll();
    EXPECT_EQ(g.counter("c").value(), 0u);
    EXPECT_EQ(g.histogram("h").count(), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::string s = t.render();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
    // Header separator lines are present.
    EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(wo_assert(1 == 2, "math broke: %d", 3), "math broke");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    wo_assert(true, "never");
    SUCCEED();
}

} // namespace
} // namespace wo

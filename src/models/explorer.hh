/**
 * @file
 * Exhaustive state-space exploration over any abstract operational model.
 *
 * The explorer collects the set of observable Outcomes of the model's
 * final states.  The outcome *set* is the object the new definition of
 * weak ordering talks about: hardware "appears sequentially consistent"
 * to a program exactly when its outcome set is a subset of the SC
 * machine's outcome set for that program.
 *
 * Two engines share that contract:
 *
 *  - exploreOutcomesBfs: the naive visited-set BFS over the full state
 *    graph.  Simple, obviously correct, and the golden reference the
 *    equivalence suite holds the reduced engine to.
 *
 *  - exploreOutcomesDpor (the default): work-stealing depth-first search
 *    with *sleep sets* [Godefroid] and hashed-state deduplication.  Two
 *    transitions enabled in the same state are independent when executing
 *    them in either order is (a) possible and (b) lands in the identical
 *    state; a sleep set carries transitions whose subtrees are already
 *    covered by an equivalent interleaving, and exploring them again is
 *    skipped.  Independence is decided by *concretely commuting* the two
 *    transitions and comparing the resulting state keys -- never by a
 *    static footprint approximation.  That matters: in the stale-cache
 *    model two stores to different locations broadcast inbox updates
 *    whose arrival orders differ, so an addr-disjointness rule would
 *    wrongly commute them.  Concrete commutation is sound for any model
 *    by construction.  Verdicts are memoized per (state key, transition
 *    pair) in a per-worker direct-mapped cache, so re-entries of a state
 *    under a different sleep set answer their probes without
 *    re-executing the model.
 *
 *    Hashed-state dedup: search nodes are (state, sleep set) pairs keyed
 *    by a 128-bit FNV pair streamed straight off the state bytes (no
 *    intermediate string; see HashEnc) with the sleep labels folded on
 *    top.  A node is explored exactly once no matter which worker, in
 *    which order, reaches it -- the explored set is a fixpoint of the
 *    transition relation, independent of scheduling.  That is what makes
 *    `jobs N` bit-identical to `jobs 1`: outcomes and the deterministic
 *    counters (states, transitions, sleep_pruned, revisit_pruned,
 *    commutation_probes) never depend on the interleaving of workers.
 *
 *    Parallelism (`ExploreCfg::jobs`): each worker owns a deque of
 *    self-contained tasks {state, sleep set, optional successor list};
 *    it pushes and pops its own tail (depth-first) and idle workers
 *    steal unexplored backtrack branches from another worker's head.
 *    The visited table is sharded (alignas(64), one mutex per shard).
 *    A task carries the successor list its parent already computed
 *    during commutation probing, so each state's successors are
 *    materialized once globally instead of once per probe plus once at
 *    expansion -- the single biggest cost in the old engine.
 *
 * Model concept:
 *     struct State;                         // copyable machine state
 *     State initial() const;
 *     bool isFinal(const State&) const;     // halted and quiescent
 *     std::vector<State> successors(const State&) const;
 *     std::vector<LabeledSucc<State>> labeledSuccessors(const State&) const;
 *     Outcome outcome(const State&) const;  // defined for final states
 *     std::string encode(const State&) const; // injective (cold paths)
 *     StateHash hashState(const State&) const; // streamed key (hot path)
 *     static const char *name();
 */

#ifndef WO_MODELS_EXPLORER_HH
#define WO_MODELS_EXPLORER_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "execution/execution.hh"
#include "models/state_enc.hh"
#include "models/transition.hh"
#include "program/program.hh"

namespace wo {

/** Which exploration engine to run. */
enum class ExploreAlgo {
    dpor, ///< sleep-set DPOR with hashed-state dedup (default)
    bfs,  ///< naive visited-set BFS (golden reference)
};

/** Exploration limits. */
struct ExploreCfg
{
    /** Abort after visiting this many states (0 = unlimited). */
    std::uint64_t max_states = 5'000'000;

    /** Engine selection. */
    ExploreAlgo algo = ExploreAlgo::dpor;

    /**
     * Worker threads for the DPOR engine (results are bit-identical for
     * any value; BFS, the golden reference, ignores it and stays
     * single-threaded on purpose).
     */
    int jobs = 1;
};

/** What exploration found. */
struct ExploreResult
{
    std::set<Outcome> outcomes;   //!< outcomes of all reachable final states
    std::uint64_t states = 0;     //!< states visited (expansions)
    bool truncated = false;       //!< state budget hit: outcomes incomplete
    bool stuck = false;           //!< some non-final state had no successors

    std::uint64_t transitions = 0;    //!< edges executed
    std::uint64_t sleep_pruned = 0;   //!< edges skipped by sleep sets
    std::uint64_t revisit_pruned = 0; //!< re-entries deduplicated
    std::uint64_t commutation_probes = 0; //!< independence queries made
    std::uint64_t memo_hits = 0;      //!< probes answered from the memo
    std::uint64_t visited_bytes = 0;  //!< approx. visited-table footprint

    /** Outcome set conclusively computed (neither truncated nor stuck)? */
    bool conclusive() const { return !truncated && !stuck; }

    /**
     * Schedule-independent equality: the fields the engine guarantees
     * bit-identical across jobs counts and across runs.  memo_hits
     * (whether a probe was answered from cache depends on cross-worker
     * timing) and visited_bytes (table size at the instant a truncated
     * search stopped) are diagnostics, deliberately excluded.
     */
    bool
    operator==(const ExploreResult &o) const
    {
        return outcomes == o.outcomes && states == o.states &&
               truncated == o.truncated && stuck == o.stuck &&
               transitions == o.transitions &&
               sleep_pruned == o.sleep_pruned &&
               revisit_pruned == o.revisit_pruned &&
               commutation_probes == o.commutation_probes;
    }

    /** True iff every outcome also appears in @p reference. */
    bool
    subsetOf(const ExploreResult &reference) const
    {
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                return false;
        return true;
    }

    /** Outcomes in this result but not in @p reference. */
    std::set<Outcome>
    minus(const ExploreResult &reference) const
    {
        std::set<Outcome> extra;
        for (const auto &o : outcomes)
            if (!reference.outcomes.count(o))
                extra.insert(o);
        return extra;
    }
};

/**
 * Search for a shortest transition chain from the initial state to a
 * final state whose outcome equals @p target (BFS with parent pointers).
 * Returns the state chain, initial first; empty if unreachable within the
 * budget.  Use Model::dump to render the chain -- this is the "why is
 * this outcome possible" explanation a litmus investigation wants.
 */
template <typename Model>
std::vector<typename Model::State>
witnessChain(const Model &model, const Outcome &target,
             const ExploreCfg &cfg = {})
{
    struct Node
    {
        typename Model::State state;
        std::size_t parent; // index into nodes; SIZE_MAX for the root
    };
    std::vector<Node> nodes;
    std::unordered_set<std::string> visited;
    std::deque<std::size_t> frontier;

    auto push = [&](typename Model::State s, std::size_t parent) {
        std::string key = model.encode(s);
        if (!visited.insert(std::move(key)).second)
            return;
        nodes.push_back(Node{std::move(s), parent});
        frontier.push_back(nodes.size() - 1);
    };

    push(model.initial(), static_cast<std::size_t>(-1));
    std::uint64_t seen = 0;
    while (!frontier.empty()) {
        if (cfg.max_states && ++seen > cfg.max_states)
            break;
        const std::size_t at = frontier.front();
        frontier.pop_front();
        if (model.isFinal(nodes[at].state) &&
            model.outcome(nodes[at].state) == target) {
            std::vector<typename Model::State> chain;
            for (std::size_t n = at; n != static_cast<std::size_t>(-1);
                 n = nodes[n].parent)
                chain.push_back(nodes[n].state);
            std::reverse(chain.begin(), chain.end());
            return chain;
        }
        for (auto &succ : model.successors(nodes[at].state))
            push(std::move(succ), at);
    }
    return {};
}

/** Naive visited-set BFS: the golden reference engine. */
template <typename Model>
ExploreResult
exploreOutcomesBfs(const Model &model, const ExploreCfg &cfg = {})
{
    ExploreResult result;
    std::unordered_set<std::string> visited;
    std::deque<typename Model::State> frontier;

    auto push = [&](typename Model::State s) {
        std::string key = model.encode(s);
        if (visited.insert(std::move(key)).second)
            frontier.push_back(std::move(s));
    };

    push(model.initial());
    while (!frontier.empty()) {
        if (cfg.max_states && result.states >= cfg.max_states) {
            result.truncated = true;
            warn("%s: exploration truncated at %llu states", Model::name(),
                 static_cast<unsigned long long>(result.states));
            break;
        }
        typename Model::State s = std::move(frontier.front());
        frontier.pop_front();
        ++result.states;

        if (model.isFinal(s)) {
            result.outcomes.insert(model.outcome(s));
            continue;
        }
        auto succs = model.successors(s);
        if (succs.empty()) {
            // A non-final state with nothing enabled: the machine is stuck
            // (e.g. a deadlock in a blocking implementation model).
            result.stuck = true;
            continue;
        }
        result.transitions += succs.size();
        for (auto &n : succs)
            push(std::move(n));
    }
    return result;
}

namespace explorer_detail {

/** Fold a transition label's bytes into a running FNV pair. */
inline void
foldLabel(std::uint64_t &a, std::uint64_t &b, const TransLabel &l)
{
    auto fold = [&](const auto &v) {
        const auto *p = reinterpret_cast<const unsigned char *>(&v);
        for (std::size_t i = 0; i < sizeof(v); ++i) {
            a = (a ^ p[i]) * 0x100000001b3ULL;
            b = (b ^ p[i]) * 0x00000100000001b3ULL ^ (b >> 47);
        }
    };
    fold(l.proc);
    fold(l.kind);
    fold(l.addr);
}

/**
 * Dedup key of a search node: the state hash with the (sorted) sleep-set
 * labels folded on top.  Exact-match dedup on this key makes the set of
 * explored nodes a schedule-independent fixpoint, which is what the
 * parallel engine's determinism guarantee rests on.
 */
inline StateHash
nodeKey(const StateHash &state, const std::vector<TransLabel> &sleep)
{
    std::uint64_t a = state.lo, b = state.hi;
    for (const TransLabel &l : sleep)
        foldLabel(a, b, l);
    return StateHash{a, b};
}

/**
 * Conservative over-approximation of everything one processor may still
 * do: the locations reachable code from its current pc may read/write
 * (plus locations its queued effects will write), and whether it may
 * still store or synchronize.  Used to split processors into conflict
 * components: two processors whose footprints are disjoint can never
 * influence each other again, so their transitions commute forever and
 * only one component needs expanding per state.
 */
struct ProcFoot
{
    std::uint64_t reads = 0;  //!< bit per Addr < 64
    std::uint64_t writes = 0; //!< bit per Addr < 64
    bool overflow = false;    //!< an Addr >= 64 appeared: conflict with all
    bool may_sync = false;    //!< a synchronization op is reachable
    bool writes_any = false;  //!< a store (or queued write) is reachable
};

inline void
footAddRead(ProcFoot &f, Addr a)
{
    if (a < 64)
        f.reads |= std::uint64_t{1} << a;
    else
        f.overflow = true;
}

inline void
footAddWrite(ProcFoot &f, Addr a)
{
    if (a < 64)
        f.writes |= std::uint64_t{1} << a;
    else
        f.overflow = true;
}

/**
 * Accumulate the footprint of all code reachable from @p pc.  A
 * *publishing* synchronization read reserves its location in the DRF0
 * machine, so every synchronization op counts as a write to its
 * location (harmless over-approximation elsewhere).
 */
inline void
codeFootprint(const ThreadCode &code, Pc pc, ProcFoot &f)
{
    std::vector<bool> seen(code.size(), false);
    std::vector<Pc> work{pc};
    while (!work.empty()) {
        const Pc at = work.back();
        work.pop_back();
        if (at >= code.size() || seen[at])
            continue;
        seen[at] = true;
        const Instruction &i = code.at(at);
        switch (i.op) {
          case Opcode::halt:
            break;
          case Opcode::jump:
            work.push_back(i.target);
            break;
          case Opcode::branch_eq:
          case Opcode::branch_ne:
            work.push_back(i.target);
            work.push_back(at + 1);
            break;
          case Opcode::load_data:
            footAddRead(f, i.addr);
            work.push_back(at + 1);
            break;
          case Opcode::store_data:
            footAddWrite(f, i.addr);
            f.writes_any = true;
            work.push_back(at + 1);
            break;
          case Opcode::sync_load:
            f.may_sync = true;
            footAddWrite(f, i.addr);
            work.push_back(at + 1);
            break;
          case Opcode::sync_store:
          case Opcode::test_and_set:
            f.may_sync = true;
            f.writes_any = true;
            footAddWrite(f, i.addr);
            work.push_back(at + 1);
            break;
          default:
            work.push_back(at + 1);
            break;
        }
    }
}

/**
 * May processors with footprints @p a and @p b still influence each
 * other?  In a broadcast model (stale-cache: stores update every inbox,
 * barriers wait on every inbox) any writer or synchronizer conflicts
 * with everyone; elsewhere a conflict needs a shared location with at
 * least one writer.
 */
inline bool
footsConflict(const ProcFoot &a, const ProcFoot &b, bool broadcast)
{
    if (broadcast)
        return a.writes_any || a.may_sync || b.writes_any || b.may_sync;
    if (a.overflow || b.overflow)
        return true;
    return ((a.writes & (b.reads | b.writes)) | (b.writes & a.reads)) != 0;
}

template <typename Model>
constexpr bool
modelBroadcasts()
{
    if constexpr (requires { Model::stores_broadcast; })
        return Model::stores_broadcast;
    else
        return false;
}

/**
 * The work-stealing sleep-set DPOR engine.  One instance per
 * exploration; `jobs <= 1` runs the identical task machinery inline on
 * the calling thread, so there is exactly one code path to trust.
 */
template <typename Model>
class DporEngine
{
  public:
    DporEngine(const Model &model, const ExploreCfg &cfg)
        : model_(model), cfg_(cfg),
          jobs_(cfg.jobs > 1 ? static_cast<unsigned>(cfg.jobs) : 1u),
          visited_(visit_shards), slots_(jobs_), workers_(jobs_)
    {
        for (unsigned i = 0; i < jobs_; ++i)
            workers_[i].id = i;
    }

    ExploreResult
    run()
    {
        spawn(0, Task{model_.initial(), {}, std::nullopt});
        if (jobs_ == 1) {
            workerLoop(workers_[0]);
        } else {
            std::vector<std::thread> threads;
            threads.reserve(jobs_);
            for (unsigned i = 0; i < jobs_; ++i)
                threads.emplace_back(
                    [this, i] { workerLoop(workers_[i]); });
            for (auto &t : threads)
                t.join();
        }
        return merge();
    }

  private:
    using State = typename Model::State;
    using Succs = std::vector<LabeledSucc<State>>;
    using Sleep = std::vector<TransLabel>;

    /**
     * A self-contained unit of work: enter `state` with `sleep` asleep.
     * `succs` carries the successor list the parent already materialized
     * for its commutation probes, if any, so it is never computed twice.
     */
    struct Task
    {
        State state;
        Sleep sleep;
        std::optional<Succs> succs;
    };

    static constexpr std::size_t visit_shards = 64;

    /**
     * One visited-set shard: an open-addressing table of 128-bit node
     * keys (linear probing, power-of-two size, grown at 1/2 load).
     * Unlike the node-based std::unordered_set it replaces, inserting
     * allocates nothing except on growth, and the keys sit contiguous
     * for the probe walk.  The all-zero key doubles as the empty-slot
     * marker and gets a dedicated flag.
     */
    struct alignas(64) VisitShard
    {
        std::mutex mu;
        std::vector<StateHash> slots;
        std::size_t used = 0;
        bool zero_present = false;

        /** True if @p k was absent and is now recorded. */
        bool
        insert(const StateHash &k)
        {
            if (!k.lo && !k.hi) {
                if (zero_present)
                    return false;
                zero_present = true;
                ++used;
                return true;
            }
            if ((used + 1) * 2 > slots.size())
                grow();
            std::size_t i = StateHashHash{}(k) & (slots.size() - 1);
            while (slots[i].lo || slots[i].hi) {
                if (slots[i] == k)
                    return false;
                i = (i + 1) & (slots.size() - 1);
            }
            slots[i] = k;
            ++used;
            return true;
        }

        /** Actual table footprint, for ExploreResult::visited_bytes. */
        std::size_t
        bytes() const
        {
            return slots.size() * sizeof(StateHash);
        }

      private:
        void
        grow()
        {
            std::vector<StateHash> old(slots.empty() ? 64
                                                     : slots.size() * 2);
            old.swap(slots);
            for (const StateHash &k : old) {
                if (!k.lo && !k.hi)
                    continue;
                std::size_t i = StateHashHash{}(k) & (slots.size() - 1);
                while (slots[i].lo || slots[i].hi)
                    i = (i + 1) & (slots.size() - 1);
                slots[i] = k;
            }
        }
    };

    /** Key of a memoized commutation verdict: state x unordered pair. */
    struct MemoKey
    {
        StateHash at;
        TransLabel a, b; // canonical: a < b
        bool operator==(const MemoKey &other) const = default;
    };

    struct MemoKeyHash
    {
        std::size_t
        operator()(const MemoKey &k) const
        {
            std::uint64_t a = k.at.lo, b = k.at.hi;
            foldLabel(a, b, k.a);
            foldLabel(a, b, k.b);
            return StateHashHash{}(StateHash{a, b});
        }
    };

    /**
     * One slot of the per-worker commutation memo: a direct-mapped,
     * lossy cache.  Losing an entry only costs re-deriving the same
     * deterministic verdict, so no locks, no allocation, no rehashing
     * -- a probe is one array index whether it hits or misses.
     */
    struct MemoEntry
    {
        MemoKey key{};
        bool verdict = false;
        bool valid = false;
    };

    // Small enough to zero per exploration and stay cache-resident:
    // the hits that exist (re-entries of a just-expanded state) are
    // temporally local, so a big table would only add cold misses.
    static constexpr std::size_t memo_slots = std::size_t{1} << 9;

    struct alignas(64) WorkerSlot
    {
        std::mutex mu;
        std::deque<Task> dq;
    };

    /** Per-worker partial result and caches; merged after the join. */
    struct alignas(64) Worker
    {
        unsigned id = 0;
        std::set<Outcome> outcomes;
        std::uint64_t transitions = 0;
        std::uint64_t sleep_pruned = 0;
        std::uint64_t revisit_pruned = 0;
        std::uint64_t commutation_probes = 0;
        std::uint64_t memo_hits = 0;
        // Footprints of reachable code, memoized per (proc, pc).
        std::map<std::pair<ProcId, Pc>, ProcFoot> code_cache;
        // Commutation-verdict cache (direct-mapped, lossy).
        std::vector<MemoEntry> memo = std::vector<MemoEntry>(memo_slots);
        // persistentFilter scratch, reused across nodes (no per-node
        // allocation).
        std::vector<ProcFoot> foot;
        std::vector<char> active;
        std::vector<Addr> queued;
        std::vector<ProcId> uf_parent;
        std::vector<std::uint32_t> uf_count;
    };

    void
    spawn(unsigned id, Task t)
    {
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        WorkerSlot &s = slots_[id];
        std::lock_guard<std::mutex> g(s.mu);
        s.dq.push_back(std::move(t));
    }

    bool
    popLocal(unsigned id, Task &out)
    {
        WorkerSlot &s = slots_[id];
        std::lock_guard<std::mutex> g(s.mu);
        if (s.dq.empty())
            return false;
        out = std::move(s.dq.back());
        s.dq.pop_back();
        return true;
    }

    bool
    steal(unsigned id, Task &out)
    {
        for (unsigned i = 1; i < jobs_; ++i) {
            WorkerSlot &s = slots_[(id + i) % jobs_];
            std::lock_guard<std::mutex> g(s.mu);
            if (s.dq.empty())
                continue;
            // Steal the oldest (root-most) unexplored backtrack branch:
            // the biggest subtree, touched least recently by its owner.
            out = std::move(s.dq.front());
            s.dq.pop_front();
            return true;
        }
        return false;
    }

    void
    workerLoop(Worker &w)
    {
        Task t;
        for (;;) {
            if (popLocal(w.id, t) || steal(w.id, t)) {
                runTask(std::move(t), w);
                outstanding_.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            if (outstanding_.load(std::memory_order_acquire) == 0)
                break;
            std::this_thread::yield();
        }
    }

    void
    runTask(Task t, Worker &w)
    {
        if (truncated_.load(std::memory_order_relaxed))
            return; // a tripped budget ends the search; drain fast

        const bool is_final = model_.isFinal(t.state);
        if (is_final)
            t.sleep.clear(); // final states carry no transitions to skip

        const StateHash sh = model_.hashState(t.state);
        const StateHash key = nodeKey(sh, t.sleep);
        {
            VisitShard &shard =
                visited_[static_cast<std::size_t>(key.lo) % visit_shards];
            std::lock_guard<std::mutex> g(shard.mu);
            if (!shard.insert(key)) {
                // Exactly one worker wins each node; everyone else is a
                // re-entry.
                ++w.revisit_pruned;
                return;
            }
        }
        if (cfg_.max_states) {
            const std::uint64_t n =
                states_.fetch_add(1, std::memory_order_relaxed);
            if (n >= cfg_.max_states) {
                truncated_.store(true, std::memory_order_relaxed);
                return;
            }
        } else {
            states_.fetch_add(1, std::memory_order_relaxed);
        }

        if (is_final) {
            w.outcomes.insert(model_.outcome(t.state));
            return;
        }
        Succs succs = t.succs ? std::move(*t.succs)
                              : model_.labeledSuccessors(t.state);
        if (succs.empty()) {
            stuck_.store(true, std::memory_order_relaxed);
            return;
        }
        persistentFilter(t.state, succs, w);
        expand(sh, t.sleep, std::move(succs), w);
    }

    /**
     * Persistent-set reduction: split the processors into components
     * that may still influence each other (conservative future
     * footprints) and keep only the cheapest component's transitions.
     * Processors in other components commute with everything the chosen
     * component will ever do, so delaying them to a canonical later
     * point loses no final state.
     */
    void
    persistentFilter(const State &s, Succs &succs, Worker &w)
    {
        const Program &prog = model_.program();
        const ProcId n = prog.numThreads();
        if (n <= 1 || succs.size() <= 1)
            return;
        constexpr bool broadcast = modelBroadcasts<Model>();
        auto &foot = w.foot;
        auto &active = w.active;
        foot.assign(n, ProcFoot{});
        active.assign(n, 0);
        for (ProcId p = 0; p < n; ++p) {
            const auto &t = s.threads[p];
            if (!t.halted) {
                active[p] = 1;
                const auto key = std::make_pair(p, t.pc);
                auto it = w.code_cache.find(key);
                if (it == w.code_cache.end()) {
                    ProcFoot cf;
                    codeFootprint(prog.thread(p), t.pc, cf);
                    it = w.code_cache.emplace(key, cf).first;
                }
                foot[p] = it->second;
            }
            w.queued.clear();
            model_.pendingAddrs(s, p, w.queued);
            for (Addr a : w.queued) {
                footAddWrite(foot[p], a);
                foot[p].writes_any = true;
                active[p] = 1;
            }
        }
        for (const auto &ls : succs)
            active[ls.label.proc] = 1; // e.g. pending inbox deliveries
        // Union-find over conflicting active processors.
        auto &parent = w.uf_parent;
        parent.resize(n);
        for (ProcId p = 0; p < n; ++p)
            parent[p] = p;
        auto find = [&](ProcId p) {
            while (parent[p] != p)
                p = parent[p] = parent[parent[p]];
            return p;
        };
        for (ProcId p = 0; p < n; ++p) {
            if (!active[p])
                continue;
            for (ProcId q = p + 1; q < n; ++q) {
                if (!active[q] ||
                    !footsConflict(foot[p], foot[q], broadcast))
                    continue;
                parent[find(p)] = find(q);
            }
        }
        // Cheapest component with at least one enabled transition wins.
        auto &count = w.uf_count;
        count.assign(n, 0);
        for (const auto &ls : succs)
            ++count[find(ls.label.proc)];
        ProcId best = invalid_proc;
        for (ProcId p = 0; p < n; ++p) {
            const ProcId r = find(p);
            if (r == p && count[r] > 0 &&
                (best == invalid_proc || count[r] < count[best]))
                best = r;
        }
        if (best == invalid_proc || count[best] == succs.size())
            return;
        std::erase_if(succs, [&](const LabeledSucc<State> &ls) {
            return find(ls.label.proc) != best;
        });
    }

    /**
     * Compute every child node of the state hashed @p sh in label order
     * -- the same order the sequential DFS explored them, so the
     * per-child sleep sets (and with them the whole explored fixpoint)
     * are independent of worker scheduling -- then spawn the children
     * as tasks, handing each one the successor list its probes already
     * materialized.
     */
    void
    expand(const StateHash &sh, const Sleep &sleep, Succs succs, Worker &w)
    {
        // Successor lists of this node's children, keyed by the label
        // that reaches them; shared by every commutation probe and then
        // donated to the child tasks.  A flat array beats a map here:
        // the branching factor is small, and every key is a label of
        // `succs` (probes only chase enabled transitions), so reserving
        // once means no reallocation and stable references throughout.
        std::vector<std::pair<TransLabel, Succs>> child_succs;
        child_succs.reserve(succs.size());
        auto childSuccsOf = [&](const TransLabel &l,
                                const State &st) -> const Succs & {
            for (const auto &entry : child_succs)
                if (entry.first == l)
                    return entry.second;
            return child_succs.emplace_back(l, model_.labeledSuccessors(st))
                .second;
        };
        auto findLabel = [](const Succs &list,
                            const TransLabel &l) -> const State * {
            for (const auto &ls : list)
                if (ls.label == l)
                    return &ls.state;
            return nullptr;
        };
        auto cachedSuccs = [&](const TransLabel &l) -> const Succs * {
            for (const auto &entry : child_succs)
                if (entry.first == l)
                    return &entry.second;
            return nullptr;
        };

        struct Child
        {
            std::size_t at;
            Sleep sleep;
        };
        std::vector<Child> children;
        children.reserve(succs.size());
        Sleep done; // labels already expanded from here, in order

        for (std::size_t at = 0; at < succs.size(); ++at) {
            const TransLabel label = succs[at].label;
            if (std::binary_search(sleep.begin(), sleep.end(), label)) {
                // Asleep: an equivalent interleaving already covers this
                // subtree.
                ++w.sleep_pruned;
                continue;
            }
            ++w.transitions;
            const State &child = succs[at].state;

            // Transitions that stay asleep in the child: everything
            // asleep here (or already expanded from here) that
            // concretely commutes with the chosen label.
            Sleep child_sleep;
            auto considerSleeper = [&](const TransLabel &t) {
                if (t == label)
                    return;
                ++w.commutation_probes;
                if (commutes(sh, succs, child, label, t, childSuccsOf,
                             cachedSuccs, findLabel, w))
                    child_sleep.push_back(t);
            };
            for (const TransLabel &t : sleep)
                considerSleeper(t);
            for (const TransLabel &t : done)
                considerSleeper(t);
            std::sort(child_sleep.begin(), child_sleep.end());
            child_sleep.erase(
                std::unique(child_sleep.begin(), child_sleep.end()),
                child_sleep.end());

            done.push_back(label);
            children.push_back(Child{at, std::move(child_sleep)});
        }

        // Spawn in reverse: the local deque is LIFO, so the first child
        // is popped first, matching the sequential DFS order (and its
        // memory profile).  Stealers take from the other end.
        for (std::size_t i = children.size(); i-- > 0;) {
            Child &c = children[i];
            std::optional<Succs> carried;
            for (auto &entry : child_succs)
                if (entry.first == succs[c.at].label) {
                    // Each label spawns at most once, so donating by
                    // move without erasing is safe.
                    carried.emplace(std::move(entry.second));
                    break;
                }
            spawn(w.id, Task{std::move(succs[c.at].state),
                             std::move(c.sleep), std::move(carried)});
        }
    }

    /**
     * Do @p label and @p t concretely commute at the state hashed
     * @p sh?  Memoized per (state, unordered pair): a verdict depends
     * only on the state, so re-entries under a different sleep set
     * answer from the table instead of re-executing the model.
     */
    template <typename ChildSuccsOf, typename CachedSuccs,
              typename FindLabel>
    bool
    commutes(const StateHash &sh, const Succs &succs, const State &child,
             const TransLabel &label, const TransLabel &t,
             ChildSuccsOf &childSuccsOf, CachedSuccs &cachedSuccs,
             FindLabel &findLabel, Worker &w)
    {
        const MemoKey mk{sh, std::min(label, t), std::max(label, t)};
        MemoEntry &e = w.memo[MemoKeyHash{}(mk) & (memo_slots - 1)];
        if (e.valid && e.key == mk) {
            ++w.memo_hits;
            return e.verdict;
        }
        bool verdict = false;
        // t is enabled here: find both one-step states.
        const State *s_t = findLabel(succs, t);
        if (s_t) {
            // t must stay enabled after the chosen label...  (label's
            // list is materialized anyway: it is donated to the spawned
            // child.)
            const State *s_lt = findLabel(childSuccsOf(label, child), t);
            if (s_lt) {
                // ...and the chosen label after t.  When t is asleep its
                // child is never expanded from this frame, so don't
                // materialize that child's whole successor list; chase
                // the single (t, label) edge instead -- unless a probe
                // for an expanded sibling already paid for the list.
                const State *s_tl = nullptr;
                std::optional<State> stepped;
                if (const Succs *have = cachedSuccs(t)) {
                    s_tl = findLabel(*have, label);
                } else {
                    stepped = model_.stepLabel(*s_t, label);
                    if (stepped)
                        s_tl = &*stepped;
                }
                // Both orders must land in the identical state (direct
                // comparison: exact, allocation-free, and with early
                // exit on the first differing field).
                if (s_tl)
                    verdict = *s_lt == *s_tl;
            }
        }
        e = MemoEntry{mk, verdict, true};
        return verdict;
    }

    ExploreResult
    merge()
    {
        ExploreResult result;
        const std::uint64_t claimed =
            states_.load(std::memory_order_relaxed);
        result.states = cfg_.max_states
                            ? std::min(claimed, cfg_.max_states)
                            : claimed;
        result.truncated = truncated_.load(std::memory_order_relaxed);
        result.stuck = stuck_.load(std::memory_order_relaxed);
        for (Worker &w : workers_) {
            result.outcomes.insert(w.outcomes.begin(), w.outcomes.end());
            result.transitions += w.transitions;
            result.sleep_pruned += w.sleep_pruned;
            result.revisit_pruned += w.revisit_pruned;
            result.commutation_probes += w.commutation_probes;
            result.memo_hits += w.memo_hits;
        }
        for (VisitShard &shard : visited_)
            result.visited_bytes += shard.bytes();
        return result;
    }

    const Model &model_;
    const ExploreCfg &cfg_;
    const unsigned jobs_;

    std::vector<VisitShard> visited_;
    std::vector<WorkerSlot> slots_;
    std::vector<Worker> workers_;

    std::atomic<std::uint64_t> states_{0};
    std::atomic<std::uint64_t> outstanding_{0};
    std::atomic<bool> truncated_{false};
    std::atomic<bool> stuck_{false};
};

} // namespace explorer_detail

/**
 * Sleep-set DPOR with hashed-node deduplication and work stealing.
 * Explores a sound subset of the BFS transition graph that still reaches
 * every final state (the equivalence suite asserts outcome sets are
 * bit-identical to exploreOutcomesBfs across programs x models x jobs).
 */
template <typename Model>
ExploreResult
exploreOutcomesDpor(const Model &model, const ExploreCfg &cfg = {})
{
    explorer_detail::DporEngine<Model> engine(model, cfg);
    ExploreResult result = engine.run();
    if (result.truncated)
        warn("%s: DPOR exploration truncated at %llu states", Model::name(),
             static_cast<unsigned long long>(result.states));
    return result;
}

/** Exhaustively explore @p model and collect final-state outcomes. */
template <typename Model>
ExploreResult
exploreOutcomes(const Model &model, const ExploreCfg &cfg = {})
{
    return cfg.algo == ExploreAlgo::bfs ? exploreOutcomesBfs(model, cfg)
                                        : exploreOutcomesDpor(model, cfg);
}

} // namespace wo

#endif // WO_MODELS_EXPLORER_HH

#include "coordinator.hh"

#include <algorithm>
#include <filesystem>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/artifact.hh"
#include "obs/httpd.hh"
#include "obs/metrics.hh"

namespace wo {

namespace {

std::uint64_t
msgUint(const Json &msg, const char *key)
{
    const Json *v = msg.find(key);
    return v && v->isNumber() ? v->uintValue() : 0;
}

std::string
msgString(const Json &msg, const char *key)
{
    const Json *v = msg.find(key);
    return v && v->isString() ? v->stringValue() : "";
}

} // namespace

Coordinator::Coordinator(CoordinatorCfg cfg) : cfg_(std::move(cfg))
{
    if (cfg_.shard_size == 0)
        cfg_.shard_size = 1;
    if (cfg_.max_outstanding < 1)
        cfg_.max_outstanding = 1;
}

Coordinator::~Coordinator()
{
    stop();
}

bool
Coordinator::start()
{
    std::error_code ec;
    std::filesystem::create_directories(cfg_.out_dir, ec);
    if (ec) {
        error_ = cfg_.out_dir + ": " + ec.message();
        return false;
    }
    listen_fd_ = fleetListen(cfg_.addr, cfg_.port, &port_, &error_);
    if (listen_fd_ < 0)
        return false;

    if (cfg_.resume)
        resumeFromOutDir();

    if (cfg_.serve) {
        cfg_.serve->handle("/healthz", [](const HttpRequest &) {
            HttpResponse r;
            r.body = "ok\n";
            return r;
        });
        cfg_.serve->handle("/metrics", [this](const HttpRequest &) {
            HttpResponse r;
            r.content_type = "text/plain; version=0.0.4";
            r.body = prometheusText(metricsJson(), "wo_fleet");
            return r;
        });
        cfg_.serve->handle("/progress", [this](const HttpRequest &) {
            HttpResponse r;
            r.content_type = "application/json";
            r.body = progressJson().dump(1) + "\n";
            return r;
        });
    }

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    pump_ = std::thread([this] { pumpLoop(); });

    // A fully-journaled campaign needs no fleet at all to finish.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &camp : camps_)
            maybeCompleteCampaign(*camp);
    }
    return true;
}

void
Coordinator::stop()
{
    teardown(true);
}

void
Coordinator::kill()
{
    teardown(false);
}

void
Coordinator::teardown(bool drain)
{
    if (!started_)
        return;
    if (stopping_.exchange(true))
        return;

    if (drain) {
        std::lock_guard<std::mutex> lock(mu_);
        const Json msg = fleetMsg("drain");
        for (auto &[id, c] : conns_)
            if (c->role == Role::worker && !c->dead)
                c->sock->writeLine(msg);
    }

    // Unblock the acceptor, then every reader.
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, c] : conns_)
            c->sock->shutdownNow();
    }
    ev_cv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    if (pump_.joinable())
        pump_.join();
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, c] : conns_) {
            if (c->reader.joinable())
                c->reader.join();
            c->sock->closeNow();
        }
        // Commit every merged record; in-flight campaigns stay
        // resumable from exactly this journal state.
        for (auto &camp : camps_)
            if (camp->journal)
                camp->journal->close();
    }
    if (cfg_.serve)
        cfg_.serve->stop();
    state_cv_.notify_all();
    started_ = false;
}

// --- accept / read threads -------------------------------------------

void
Coordinator::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listener gone
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t id = next_conn_++;
        auto conn = std::make_unique<Conn>();
        conn->id = id;
        conn->sock = std::make_unique<LineConn>(fd);
        conn->last_seen = std::chrono::steady_clock::now();
        Conn *raw = conn.get();
        conns_.emplace(id, std::move(conn));
        raw->reader = std::thread([this, id] { readerLoop(id); });
    }
}

void
Coordinator::readerLoop(std::uint64_t conn_id)
{
    LineConn *sock;
    {
        std::lock_guard<std::mutex> lock(mu_);
        sock = conns_.at(conn_id)->sock.get();
    }
    std::string line;
    for (;;) {
        const LineConn::Read r = sock->readLine(line, 500);
        if (r == LineConn::Read::closed)
            break;
        if (r == LineConn::Read::timeout) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            continue;
        }
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject()) {
            warn("fleet: conn %llu sent a malformed line (%s); dropping it",
                 static_cast<unsigned long long>(conn_id),
                 p.ok ? "not an object" : p.error.c_str());
            continue;
        }
        Event ev;
        ev.kind = Event::Kind::message;
        ev.conn = conn_id;
        ev.msg = std::move(p.value);
        pushEvent(std::move(ev));
    }
    Event ev;
    ev.kind = Event::Kind::closed;
    ev.conn = conn_id;
    pushEvent(std::move(ev));
}

void
Coordinator::pushEvent(Event ev)
{
    {
        std::lock_guard<std::mutex> lock(ev_mu_);
        events_.push_back(std::move(ev));
    }
    ev_cv_.notify_one();
}

// --- the pump: all fleet-state mutation happens here -----------------

void
Coordinator::pumpLoop()
{
    for (;;) {
        Event ev;
        bool have = false;
        {
            std::unique_lock<std::mutex> lock(ev_mu_);
            ev_cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
                return !events_.empty() ||
                       stopping_.load(std::memory_order_relaxed);
            });
            if (!events_.empty()) {
                ev = std::move(events_.front());
                events_.pop_front();
                have = true;
            } else if (stopping_.load(std::memory_order_relaxed)) {
                return;
            }
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (have) {
            switch (ev.kind) {
              case Event::Kind::connected:
                break;
              case Event::Kind::message:
                handleMessage(ev.conn, ev.msg);
                break;
              case Event::Kind::closed:
                dropConn(ev.conn, "connection closed");
                break;
            }
        }
        expireSilentWorkers();
        grantLeases();
        sendClientProgress();
    }
}

void
Coordinator::handleMessage(std::uint64_t conn_id, const Json &msg)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end() || it->second->dead)
        return;
    Conn &c = *it->second;
    c.last_seen = std::chrono::steady_clock::now();

    const std::string type = fleetMsgType(msg);
    if (type == "hello") {
        handleHello(c, msg);
    } else if (c.role == Role::unknown) {
        Json err = fleetMsg("error");
        err.set("text", Json("expected hello, got '" + type + "'"));
        c.sock->writeLine(err);
        dropConn(conn_id, "no hello");
    } else if (type == "heartbeat") {
        // last_seen is already refreshed above.
    } else if (type == "submit") {
        handleSubmit(c, msg);
    } else if (type == "result") {
        handleResult(c, msg);
    } else if (type == "lease_done") {
        handleLeaseDone(c, msg);
    } else {
        warn("fleet: conn %llu (%s) sent unknown message type '%s'",
             static_cast<unsigned long long>(conn_id), c.name.c_str(),
             type.c_str());
    }
}

void
Coordinator::handleHello(Conn &c, const Json &msg)
{
    const std::uint64_t proto = msgUint(msg, "proto");
    if (proto != fleet_proto_version) {
        Json err = fleetMsg("error");
        err.set("text",
                Json(strprintf("fleet protocol mismatch: peer speaks v%llu, "
                               "this coordinator v%llu",
                               static_cast<unsigned long long>(proto),
                               static_cast<unsigned long long>(
                                   fleet_proto_version))));
        c.sock->writeLine(err);
        dropConn(c.id, "protocol mismatch");
        return;
    }
    const std::string role = msgString(msg, "role");
    if (role == "worker")
        c.role = Role::worker;
    else if (role == "client")
        c.role = Role::client;
    else {
        Json err = fleetMsg("error");
        err.set("text", Json("unknown role '" + role + "'"));
        c.sock->writeLine(err);
        dropConn(c.id, "unknown role");
        return;
    }
    c.name = msgString(msg, "name");
    if (c.name.empty())
        c.name = strprintf("%s%llu", role.c_str(),
                           static_cast<unsigned long long>(c.id));
    c.jobs = std::max(1, static_cast<int>(msgUint(msg, "jobs")));
    c.hw_threads = msgUint(msg, "hw_threads");

    Json ok = fleetMsg("hello_ok");
    ok.set("proto", Json(fleet_proto_version));
    ok.set("name", Json(c.name));
    c.sock->writeLine(ok);

    if (c.role == Role::worker) {
        if (cfg_.verbose)
            inform("fleet: worker '%s' joined (jobs %d)", c.name.c_str(),
                   c.jobs);
        state_cv_.notify_all();
    }
}

void
Coordinator::handleSubmit(Conn &c, const Json &msg)
{
    const Json *spec_j = msg.find("spec");
    FleetCampaignSpec spec;
    std::string why;
    if (!spec_j || !fleetSpecFromJson(*spec_j, spec, &why)) {
        Json err = fleetMsg("error");
        err.set("text", Json("bad campaign spec: " +
                             (why.empty() ? "missing" : why)));
        c.sock->writeLine(err);
        dropConn(c.id, "bad spec");
        return;
    }
    const std::uint64_t id = enqueueCampaign(std::move(spec), c.id);
    Json acc = fleetMsg("accepted");
    acc.set("campaign", Json(id));
    c.sock->writeLine(acc);
}

void
Coordinator::handleResult(Conn &c, const Json &msg)
{
    const std::uint64_t camp_id = msgUint(msg, "campaign");
    Camp *camp = nullptr;
    for (auto &cp : camps_)
        if (cp->id == camp_id)
            camp = cp.get();
    const Json *cell = msg.find("cell");
    if (!camp || !cell || !cell->isObject())
        return;
    const std::uint64_t idx = msgUint(msg, "idx");
    if (camp->completed || idx >= camp->spec.cells || camp->done[idx]) {
        // A reassigned lease's original holder reported late: the
        // merge is idempotent, the duplicate only counts.
        ++camp->duplicate_results;
        return;
    }
    camp->done[idx] = 1;
    ++camp->done_cells;
    ++camp->ran;
    ++c.cells_done;

    const std::string verdict = msgString(*cell, "verdict");
    if (verdict == "clean")
        ++camp->clean;
    else if (verdict == "race")
        ++camp->racy;
    else if (verdict == "deadlock")
        ++camp->deadlocked;
    else if (verdict == "livelock")
        ++camp->livelocked;
    else if (verdict == "error")
        ++camp->errors;
    else if (verdict.rfind("hw:", 0) == 0)
        ++camp->hw;
    const std::string kind = msgString(*cell, "kind");
    if (!kind.empty())
        ++camp->kind_counts[kind];

    const std::size_t shard_i =
        static_cast<std::size_t>(idx / cfg_.shard_size);
    Shard &shard = camp->shards[shard_i];
    if (shard.remaining > 0)
        --shard.remaining;

    // Merge into the campaign journal, annotated with the fleet
    // provenance a resumed coordinator needs.
    Json rec = *cell;
    rec.set("type", Json("cell"));
    rec.set("idx", Json(idx));
    rec.set("shard", Json(static_cast<std::uint64_t>(shard_i)));
    rec.set("worker", Json(c.name));
    camp->journal->appendJson(std::move(rec));

    if (const Json *f = msg.find("failure"); f && f->isObject()) {
        const std::string fkind = msgString(*f, "kind");
        const std::string wo_text = msgString(*f, "wo_text");
        // Same identity as the single-process engine: a bug found by
        // three workers is still one failure fleet-wide.
        const std::string hash = fnv1aHex(wo_text).substr(0, 12);
        const std::string dedup = fkind + ":" + hash;
        const std::string wo_path =
            camp->dir + "/repro-" + fkind + "-" + hash + ".wo";
        const bool first = camp->journal->recordFailure(
            dedup, fkind, msgString(*cell, "key"), wo_path,
            static_cast<std::size_t>(msgUint(*f, "insns")),
            static_cast<std::size_t>(msgUint(*f, "orig_insns")));
        if (first) {
            ++camp->unique_failures;
            writeFile(wo_path, wo_text);
            if (cfg_.verbose)
                inform("fleet: campaign %llu failure %s (from '%s')",
                       static_cast<unsigned long long>(camp->id),
                       dedup.c_str(), c.name.c_str());
        }
    }

    if (shard.remaining == 0) {
        if (shard.state == Shard::State::leased)
            releaseLease(shard.lease);
        else
            shard.state = Shard::State::done;
    }
    maybeCompleteCampaign(*camp);
}

void
Coordinator::handleLeaseDone(Conn &c, const Json &msg)
{
    const std::uint64_t lease_id = msgUint(msg, "lease");
    auto it = leases_.find(lease_id);
    if (it == leases_.end() || it->second.conn != c.id)
        return; // stale: the lease was reassigned while this ran
    releaseLease(lease_id);
}

void
Coordinator::dropConn(std::uint64_t conn_id, const char *why)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end() || it->second->dead)
        return;
    Conn &c = *it->second;
    c.dead = true;
    c.sock->shutdownNow();
    if (cfg_.verbose && c.role != Role::unknown)
        inform("fleet: %s '%s' gone (%s)",
               c.role == Role::worker ? "worker" : "client",
               c.name.c_str(), why);

    const std::vector<std::uint64_t> held = c.leases;
    for (std::uint64_t lease : held) {
        auto lit = leases_.find(lease);
        if (lit == leases_.end())
            continue;
        for (auto &cp : camps_)
            if (cp->id == lit->second.campaign)
                ++cp->reassigned_leases;
        releaseLease(lease);
    }
    if (c.role == Role::client)
        for (auto &cp : camps_)
            if (cp->client_conn == conn_id)
                cp->client_conn = 0;
    state_cv_.notify_all();
}

void
Coordinator::releaseLease(std::uint64_t lease_id)
{
    auto it = leases_.find(lease_id);
    if (it == leases_.end())
        return;
    const Lease lease = it->second;
    leases_.erase(it);

    auto cit = conns_.find(lease.conn);
    if (cit != conns_.end()) {
        auto &held = cit->second->leases;
        held.erase(std::remove(held.begin(), held.end(), lease_id),
                   held.end());
    }
    for (auto &cp : camps_) {
        if (cp->id != lease.campaign)
            continue;
        Shard &shard = cp->shards[lease.shard];
        if (shard.lease != lease_id)
            break; // already re-leased
        shard.lease = 0;
        // Whatever the holder managed before the lease ended is merged
        // already; the remainder goes back to the pending pool.
        shard.state = shard.remaining == 0 ? Shard::State::done
                                           : Shard::State::pending;
        break;
    }
}

Coordinator::Camp *
Coordinator::activeCampaign()
{
    for (auto &cp : camps_)
        if (!cp->completed)
            return cp.get();
    return nullptr;
}

void
Coordinator::grantLeases()
{
    Camp *camp = activeCampaign();
    if (!camp)
        return;
    for (auto &[id, c] : conns_) {
        if (c->role != Role::worker || c->dead || c->draining)
            continue;
        while (static_cast<int>(c->leases.size()) < cfg_.max_outstanding) {
            Shard *shard = nullptr;
            std::size_t shard_i = 0;
            for (std::size_t i = 0; i < camp->shards.size(); ++i)
                if (camp->shards[i].state == Shard::State::pending) {
                    shard = &camp->shards[i];
                    shard_i = i;
                    break;
                }
            if (!shard)
                return; // the lattice is fully leased or done

            const std::uint64_t lease_id = next_lease_++;
            Json msg = fleetMsg("lease");
            msg.set("campaign", Json(camp->id));
            msg.set("lease", Json(lease_id));
            msg.set("shard", Json(static_cast<std::uint64_t>(shard_i)));
            msg.set("spec", fleetSpecToJson(camp->spec));
            Json indices = Json::array();
            for (std::uint64_t i = shard->lo; i < shard->hi; ++i)
                if (!camp->done[i])
                    indices.push(Json(i));
            msg.set("indices", std::move(indices));
            if (!c->sock->writeLine(msg)) {
                dropConn(id, "lease write failed");
                break;
            }
            shard->state = Shard::State::leased;
            shard->lease = lease_id;
            Lease lease;
            lease.id = lease_id;
            lease.campaign = camp->id;
            lease.shard = shard_i;
            lease.conn = id;
            lease.granted = std::chrono::steady_clock::now();
            leases_.emplace(lease_id, lease);
            c->leases.push_back(lease_id);
            if (cfg_.verbose)
                inform("fleet: lease %llu (campaign %llu shard %zu, "
                       "%llu cells) -> '%s'",
                       static_cast<unsigned long long>(lease_id),
                       static_cast<unsigned long long>(camp->id), shard_i,
                       static_cast<unsigned long long>(shard->remaining),
                       c->name.c_str());
        }
    }
}

void
Coordinator::expireSilentWorkers()
{
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> expired;
    for (auto &[id, c] : conns_) {
        if (c->role != Role::worker || c->dead || c->leases.empty())
            continue;
        const auto silent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - c->last_seen)
                .count();
        if (silent > cfg_.lease_timeout_ms)
            expired.push_back(id);
    }
    for (std::uint64_t id : expired)
        dropConn(id, "heartbeat timeout");
}

void
Coordinator::sendClientProgress()
{
    const auto now = std::chrono::steady_clock::now();
    if (now - last_progress_push_ < std::chrono::milliseconds(500))
        return;
    last_progress_push_ = now;
    for (auto &cp : camps_) {
        if (cp->completed || cp->client_conn == 0)
            continue;
        auto it = conns_.find(cp->client_conn);
        if (it == conns_.end() || it->second->dead)
            continue;
        Json msg = fleetMsg("progress");
        msg.set("campaign", Json(cp->id));
        msg.set("cells", campaignProgressJson(*cp));
        it->second->sock->writeLine(msg);
    }
}

void
Coordinator::maybeCompleteCampaign(Camp &camp)
{
    if (camp.completed || camp.done_cells < camp.spec.cells)
        return;
    camp.completed = true;
    camp.summary = buildSummary(camp);
    camp.journal->close();
    writeFile(camp.dir + "/campaign.summary.json",
              camp.summary.dump(1) + "\n");
    ++completed_campaigns_;
    if (cfg_.verbose)
        inform("fleet: campaign %llu complete (%llu ran, %llu resumed, "
               "%llu unique failures)",
               static_cast<unsigned long long>(camp.id),
               static_cast<unsigned long long>(camp.ran),
               static_cast<unsigned long long>(camp.resumed),
               static_cast<unsigned long long>(camp.unique_failures));

    if (camp.client_conn != 0) {
        auto it = conns_.find(camp.client_conn);
        if (it != conns_.end() && !it->second->dead) {
            Json msg = fleetMsg("done");
            msg.set("campaign", Json(camp.id));
            const Json *hc = camp.summary.find("hardware_clean");
            msg.set("hardware_clean",
                    Json(hc && hc->isBool() && hc->boolValue()));
            msg.set("summary", camp.summary);
            it->second->sock->writeLine(msg);
        }
    }

    if (cfg_.max_campaigns > 0 &&
        completed_campaigns_ >= cfg_.max_campaigns) {
        serving_done_ = true;
        const Json msg = fleetMsg("drain");
        for (auto &[id, c] : conns_)
            if (c->role == Role::worker && !c->dead) {
                c->draining = true;
                c->sock->writeLine(msg);
            }
    }
    state_cv_.notify_all();
}

Json
Coordinator::buildSummary(const Camp &camp) const
{
    Json j = Json::object();
    j.set("campaign", Json(camp.id));
    j.set("cells", Json(camp.spec.cells));
    j.set("ran", Json(camp.ran));
    j.set("resumed", Json(camp.resumed));
    j.set("clean", Json(camp.clean));
    j.set("racy", Json(camp.racy));
    j.set("hw", Json(camp.hw));
    j.set("deadlocked", Json(camp.deadlocked));
    j.set("livelocked", Json(camp.livelocked));
    j.set("errors", Json(camp.errors));
    j.set("duplicate_results", Json(camp.duplicate_results));
    j.set("reassigned_leases", Json(camp.reassigned_leases));
    Json kinds = Json::object();
    for (const auto &[kind, count] : camp.kind_counts)
        kinds.set(kind, Json(count));
    j.set("by_kind", std::move(kinds));
    // The journal's failure map spans resumed history too, so the
    // verdict survives a coordinator restart.
    const auto failures = camp.journal->failures();
    j.set("unique_failures",
          Json(static_cast<std::uint64_t>(failures.size())));
    j.set("hardware_clean", Json(failures.empty()));
    Json fl = Json::array();
    for (const auto &[dedup, f] : failures) {
        Json rec = Json::object();
        rec.set("dedup", Json(dedup));
        rec.set("kind", Json(f.kind));
        rec.set("file", Json(f.file));
        rec.set("insns", Json(static_cast<std::uint64_t>(f.insns)));
        rec.set("count", Json(f.count));
        fl.push(std::move(rec));
    }
    j.set("failures", std::move(fl));
    j.set("wall_s",
          Json(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - camp.t0)
                   .count()));
    return j;
}

// --- campaign setup / resume -----------------------------------------

std::uint64_t
Coordinator::enqueueCampaign(FleetCampaignSpec spec,
                             std::uint64_t client_conn)
{
    auto camp = std::make_unique<Camp>();
    camp->id = next_campaign_++;
    camp->spec = std::move(spec);
    camp->client_conn = client_conn;
    camp->t0 = std::chrono::steady_clock::now();
    camp->dir = cfg_.out_dir +
                strprintf("/c%llu",
                          static_cast<unsigned long long>(camp->id));
    std::error_code ec;
    std::filesystem::create_directories(camp->dir, ec);

    JournalCfg jcfg;
    jcfg.sync_every = cfg_.sync_every;
    jcfg.flush_interval_ms = cfg_.flush_interval_ms;
    camp->journal = std::make_unique<Journal>(
        camp->dir + "/campaign.journal.jsonl", jcfg);
    camp->journal->reserveKeys(camp->spec.cells);
    camp->journal->open(true);
    Json meta = Json::object();
    meta.set("fleet", Json(true));
    meta.set("campaign_id", Json(camp->id));
    meta.set("spec", fleetSpecToJson(camp->spec));
    camp->journal->writeHeader(std::move(meta));

    camp->done.assign(camp->spec.cells, 0);
    const std::size_t nshards = static_cast<std::size_t>(
        (camp->spec.cells + cfg_.shard_size - 1) / cfg_.shard_size);
    camp->shards.resize(nshards);
    for (std::size_t i = 0; i < nshards; ++i) {
        Shard &s = camp->shards[i];
        s.lo = i * cfg_.shard_size;
        s.hi = std::min<std::uint64_t>(s.lo + cfg_.shard_size,
                                       camp->spec.cells);
        s.remaining = s.hi - s.lo;
    }
    const std::uint64_t id = camp->id;
    camps_.push_back(std::move(camp));
    return id;
}

void
Coordinator::resumeFromOutDir()
{
    // Journals live at <out_dir>/c<N>/campaign.journal.jsonl; replay
    // them in campaign order so ids survive the restart.
    std::vector<std::uint64_t> ids;
    std::error_code ec;
    for (const auto &ent :
         std::filesystem::directory_iterator(cfg_.out_dir, ec)) {
        const std::string name = ent.path().filename().string();
        if (name.size() < 2 || name[0] != 'c' || !ent.is_directory())
            continue;
        std::uint64_t id = 0;
        bool numeric = true;
        for (std::size_t i = 1; i < name.size(); ++i) {
            if (name[i] < '0' || name[i] > '9') {
                numeric = false;
                break;
            }
            id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
        }
        if (numeric && id > 0 &&
            std::filesystem::exists(ent.path() /
                                    "campaign.journal.jsonl"))
            ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());

    for (std::uint64_t id : ids) {
        const std::string dir =
            cfg_.out_dir +
            strprintf("/c%llu", static_cast<unsigned long long>(id));
        JournalCfg jcfg;
        jcfg.sync_every = cfg_.sync_every;
        jcfg.flush_interval_ms = cfg_.flush_interval_ms;
        auto journal =
            std::make_unique<Journal>(dir + "/campaign.journal.jsonl",
                                      jcfg);
        journal->load();
        const Json *spec_j = journal->header().find("spec");
        FleetCampaignSpec spec;
        std::string why;
        if (!spec_j || !fleetSpecFromJson(*spec_j, spec, &why)) {
            warn("fleet: %s: cannot rebuild campaign spec from the "
                 "journal header (%s); skipping",
                 dir.c_str(), why.empty() ? "missing" : why.c_str());
            continue;
        }
        auto camp = std::make_unique<Camp>();
        camp->id = id;
        camp->spec = std::move(spec);
        camp->dir = dir;
        camp->t0 = std::chrono::steady_clock::now();
        camp->journal = std::move(journal);
        camp->journal->reserveKeys(camp->spec.cells);
        camp->journal->open(false);

        camp->done.assign(camp->spec.cells, 0);
        for (std::uint64_t idx : camp->journal->resumeIndices())
            if (idx < camp->spec.cells && !camp->done[idx]) {
                camp->done[idx] = 1;
                ++camp->done_cells;
                ++camp->resumed;
            }
        const std::size_t nshards = static_cast<std::size_t>(
            (camp->spec.cells + cfg_.shard_size - 1) / cfg_.shard_size);
        camp->shards.resize(nshards);
        for (std::size_t i = 0; i < nshards; ++i) {
            Shard &s = camp->shards[i];
            s.lo = i * cfg_.shard_size;
            s.hi = std::min<std::uint64_t>(s.lo + cfg_.shard_size,
                                           camp->spec.cells);
            for (std::uint64_t idx = s.lo; idx < s.hi; ++idx)
                if (!camp->done[idx])
                    ++s.remaining;
            if (s.remaining == 0)
                s.state = Shard::State::done;
        }
        next_campaign_ = std::max(next_campaign_, id + 1);
        if (cfg_.verbose)
            inform("fleet: resumed campaign %llu (%llu/%llu cells "
                   "journaled)",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(camp->done_cells),
                   static_cast<unsigned long long>(camp->spec.cells));
        camps_.push_back(std::move(camp));
    }
}

// --- the public, lock-taking surface ---------------------------------

std::uint64_t
Coordinator::submitLocal(const FleetCampaignSpec &spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = enqueueCampaign(spec, 0);
    maybeCompleteCampaign(*camps_.back());
    return id;
}

bool
Coordinator::waitCampaign(std::uint64_t id, int timeout_ms, Json *summary)
{
    std::unique_lock<std::mutex> lock(mu_);
    Camp *camp = nullptr;
    for (auto &cp : camps_)
        if (cp->id == id)
            camp = cp.get();
    if (!camp)
        return false;
    const auto pred = [&] {
        return camp->completed || stopping_.load(std::memory_order_relaxed);
    };
    if (timeout_ms <= 0)
        state_cv_.wait(lock, pred);
    else if (!state_cv_.wait_for(
                 lock, std::chrono::milliseconds(timeout_ms), pred))
        return false;
    if (!camp->completed)
        return false;
    if (summary)
        *summary = camp->summary;
    return true;
}

bool
Coordinator::waitForWorkers(int n, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    const auto pred = [&] {
        int alive = 0;
        for (const auto &[id, c] : conns_)
            if (c->role == Role::worker && !c->dead)
                ++alive;
        return alive >= n || stopping_.load(std::memory_order_relaxed);
    };
    return state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              pred) &&
           !stopping_.load(std::memory_order_relaxed);
}

void
Coordinator::waitDone()
{
    std::unique_lock<std::mutex> lock(mu_);
    state_cv_.wait(lock, [&] {
        return serving_done_ || stopping_.load(std::memory_order_relaxed);
    });
}

int
Coordinator::campaignsCompleted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_campaigns_;
}

int
Coordinator::workersConnected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    int alive = 0;
    for (const auto &[id, c] : conns_)
        if (c->role == Role::worker && !c->dead)
            ++alive;
    return alive;
}

Json
Coordinator::campaignProgressJson(const Camp &camp) const
{
    Json j = Json::object();
    j.set("cells", Json(camp.spec.cells));
    j.set("done", Json(camp.done_cells));
    j.set("ran", Json(camp.ran));
    j.set("resumed", Json(camp.resumed));
    j.set("hw", Json(camp.hw));
    j.set("unique_failures", Json(camp.unique_failures));
    std::uint64_t pending = 0, leased = 0, done = 0;
    for (const Shard &s : camp.shards) {
        if (s.state == Shard::State::pending)
            ++pending;
        else if (s.state == Shard::State::leased)
            ++leased;
        else
            ++done;
    }
    Json shards = Json::object();
    shards.set("pending", Json(pending));
    shards.set("leased", Json(leased));
    shards.set("done", Json(done));
    j.set("shards", std::move(shards));
    return j;
}

Json
Coordinator::progressJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Json j = Json::object();
    j.set("proto", Json(fleet_proto_version));
    int alive = 0;
    Json workers = Json::array();
    for (const auto &[id, c] : conns_) {
        if (c->role != Role::worker || c->dead)
            continue;
        ++alive;
        Json w = Json::object();
        w.set("name", Json(c->name));
        w.set("jobs", Json(c->jobs));
        w.set("cells_done", Json(c->cells_done));
        w.set("leases",
              Json(static_cast<std::uint64_t>(c->leases.size())));
        workers.push(std::move(w));
    }
    j.set("workers_connected", Json(alive));
    j.set("workers", std::move(workers));
    j.set("campaigns_completed", Json(completed_campaigns_));
    Json camps = Json::array();
    for (const auto &cp : camps_) {
        Json c = campaignProgressJson(*cp);
        c.set("campaign", Json(cp->id));
        c.set("completed", Json(cp->completed));
        camps.push(std::move(c));
    }
    j.set("campaigns", std::move(camps));
    return j;
}

Json
Coordinator::metricsJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Json j = Json::object();
    int alive = 0;
    for (const auto &[id, c] : conns_)
        if (c->role == Role::worker && !c->dead)
            ++alive;
    j.set("workers_connected", Json(alive));
    j.set("campaigns_completed", Json(completed_campaigns_));
    j.set("leases_outstanding",
          Json(static_cast<std::uint64_t>(leases_.size())));
    for (const auto &[id, c] : conns_) {
        if (c->role != Role::worker || c->dead)
            continue;
        Json w = Json::object();
        w.set("cells_done", Json(c->cells_done));
        w.set("leases",
              Json(static_cast<std::uint64_t>(c->leases.size())));
        j.set("worker{worker=\"" + c->name + "\"}", std::move(w));
    }
    for (const auto &cp : camps_) {
        Json c = Json::object();
        c.set("cells", Json(cp->spec.cells));
        c.set("done_cells", Json(cp->done_cells));
        c.set("ran", Json(cp->ran));
        c.set("resumed", Json(cp->resumed));
        c.set("hw", Json(cp->hw));
        c.set("unique_failures", Json(cp->unique_failures));
        c.set("duplicate_results", Json(cp->duplicate_results));
        c.set("reassigned_leases", Json(cp->reassigned_leases));
        c.set("completed", Json(cp->completed ? 1 : 0));
        // Per-shard series are bounded by the operator's shard-size
        // choice; cap the cardinality anyway so a million-cell
        // campaign cannot flood a scrape.
        if (cp->shards.size() <= 256)
            for (std::size_t i = 0; i < cp->shards.size(); ++i) {
                Json s = Json::object();
                s.set("state",
                      Json(static_cast<int>(cp->shards[i].state)));
                s.set("remaining", Json(cp->shards[i].remaining));
                c.set(strprintf("shard{shard=\"%zu\"}", i),
                      std::move(s));
            }
        c.set("client_attached", Json(cp->client_conn != 0 ? 1 : 0));
        j.set(strprintf("campaign{campaign=\"%llu\"}",
                        static_cast<unsigned long long>(cp->id)),
              std::move(c));
    }
    return j;
}

} // namespace wo

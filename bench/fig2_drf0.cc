/**
 * @file
 * Experiment E2 -- Figure 2 of the paper: an example (a) and a
 * counter-example (b) of the synchronization model DRF0.
 *
 * Prints both idealized executions, the happens-before edge structure, and
 * the race report: (a) must be race-free; (b) must contain exactly the two
 * families of races the caption names (P0's accesses vs P1's write of y,
 * and P2's write of z vs P4's), while the synchronized P2/P3 pair on z is
 * not flagged.
 */

#include <cstdio>

#include "common/table.hh"
#include "hb/closure.hh"
#include "hb/fig2.hh"
#include "hb/race.hh"
#include "obs/artifact.hh"

namespace wo {
namespace {

Json
report(const char *label, const Execution &e)
{
    std::printf("\n== E2 / Figure 2(%s) ==\n", label);
    std::printf("%s", e.toString().c_str());

    HbClosure closure(e);
    std::printf("program-order edges: %zu, synchronization-order edges: "
                "%zu\n",
                closure.poEdges().size(), closure.soEdges().size());
    for (const auto &[a, b] : closure.soEdges())
        std::printf("  so: %s  ->  %s\n", e.op(a).toString().c_str(),
                    e.op(b).toString().c_str());

    auto races = findRaces(e);
    if (races.empty()) {
        std::printf("result: DRF0 SATISFIED -- all conflicting accesses "
                    "ordered by happens-before\n");
    } else {
        std::printf("result: DRF0 VIOLATED -- %zu race(s):\n",
                    races.size());
        for (const auto &r : races)
            std::printf("  %s\n", r.toString(e).c_str());
    }

    Json j = Json::object();
    j.set("execution", Json(label));
    j.set("po_edges", Json(static_cast<std::uint64_t>(
                               closure.poEdges().size())));
    j.set("so_edges", Json(static_cast<std::uint64_t>(
                               closure.soEdges().size())));
    j.set("obeys_drf0", Json(races.empty()));
    Json rl = Json::array();
    for (const auto &r : races)
        rl.push(Json(r.toString(e)));
    j.set("races", std::move(rl));
    return j;
}

} // namespace
} // namespace wo

int
main()
{
    wo::Json executions = wo::Json::array();
    executions.push(wo::report("a", wo::fig2::executionA()));
    executions.push(wo::report("b", wo::fig2::executionB()));
    std::printf("\nPaper's claim: (a) obeys DRF0; (b) violates it through "
                "P0-vs-P1 on y and P2-vs-P4 on z.\n");
    wo::Json payload = wo::Json::object();
    payload.set("executions", std::move(executions));
    wo::writeBenchArtifact("fig2_drf0", std::move(payload));
    return 0;
}

/**
 * @file
 * The fleet coordinator: the long-running heart of `wotool serve`.
 *
 * One coordinator owns a TCP endpoint speaking the fleet protocol
 * (proto.hh), a queue of submitted campaigns, and the merged campaign
 * journal of whichever campaign is running.  Campaigns execute
 * serially in submission order; each one's program x policy x seed
 * lattice -- the deterministic base stream of fuzzer.hh, a pure
 * function of (seed, index) -- is cut into fixed-size *shards* of
 * consecutive base indices, and shards are handed to workers as
 * *leases*.  Backpressure is the lease count: a worker never holds
 * more than `max_outstanding` leases, so a slow worker bounds its own
 * queue instead of hoarding the lattice.
 *
 * Fault tolerance is lease reassignment + an idempotent merge:
 *
 *  - every RESULT is applied at most once per base index (a stale
 *    result from a lease that was already reassigned and re-run is
 *    dropped), then appended to the campaign journal through the
 *    group-commit writer (journal.hh), annotated with its shard,
 *    index and worker -- the commit point is the flushed batch, same
 *    crash contract as the single-process campaign;
 *  - a worker that dies (socket EOF) or goes silent past
 *    `lease_timeout_ms` (heartbeats count) has its leases' shards
 *    returned to the pending pool and re-leased, minus the indices
 *    already merged, so a SIGKILLed worker loses zero cells;
 *  - a restarted coordinator (`--resume`) replays the journals under
 *    its out-dir: the header line rebuilds each campaign's spec, the
 *    cell lines' `idx` members rebuild the done set, and exactly the
 *    uncommitted indices are re-leased (Journal::resumeIndices()).
 *
 * Shrinking runs on the worker that caught the violation; the RESULT
 * carries the minimized `.wo` text back as failure evidence, and the
 * coordinator deduplicates fleet-wide by verdict kind + shrunk-program
 * hash -- the same identity the single-process campaign uses -- so a
 * bug found by many workers is still reported once.
 *
 * The optional httpd control plane (obs/httpd.hh) mounts /healthz,
 * /metrics and /progress with per-worker, per-campaign and per-shard
 * series, mirroring the in-process campaign's surface.
 */

#ifndef WO_FLEET_COORDINATOR_HH
#define WO_FLEET_COORDINATOR_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.hh"
#include "fleet/proto.hh"

namespace wo {

class HttpServer;

/** Coordinator configuration (the `wotool serve` surface). */
struct CoordinatorCfg
{
    std::string addr = "127.0.0.1"; //!< fleet-protocol bind address
    std::uint16_t port = 0;         //!< 0 = ephemeral (see port())
    std::string out_dir = "fleet-out"; //!< journals + repros, per campaign
    /** Base indices per shard (= per lease); the unit of reassignment. */
    std::uint64_t shard_size = 32;
    /** A worker silent this long forfeits its leases. */
    int lease_timeout_ms = 10'000;
    /** Max leases in flight per worker (the backpressure bound). */
    int max_outstanding = 2;
    /** Journal group-commit granularity (see JournalCfg). */
    std::uint64_t sync_every = 64;
    int flush_interval_ms = 5;
    /** Replay out_dir's journals; re-lease only uncommitted cells. */
    bool resume = false;
    /** Exit waitDone() after this many completed campaigns (0 = run
     *  until stop()); finished fleets DRAIN their workers. */
    int max_campaigns = 0;
    /** Already-started control-plane server to mount /healthz,
     *  /metrics, /progress on (caller binds; stop() stops it). */
    HttpServer *serve = nullptr;
    bool verbose = false; //!< log lease traffic on stderr
};

/** The fleet coordinator (one per `wotool serve`). */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorCfg cfg);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Bind, replay journals when resuming, and start the acceptor +
     * pump threads.  False when the endpoint cannot be bound
     * (lastError() says why).
     */
    bool start();

    /**
     * Shut down: DRAIN connected workers, sever every connection,
     * join all threads, close the journal (committing its tail) and
     * stop the mounted control plane.  Idempotent; the destructor
     * calls it.  In-flight campaigns stay resumable on disk.
     */
    void stop();

    /**
     * The tests' SIGKILL stand-in: sever every socket and join
     * threads *without* draining workers or closing campaigns
     * gracefully.  The journal writer is still joined (its committed
     * batches are exactly what a real SIGKILL would have made
     * durable; sync_every=1 makes every applied record committed).
     */
    void kill();

    /** The bound fleet-protocol port (resolves ephemeral 0). */
    std::uint16_t port() const { return port_; }

    const std::string &lastError() const { return error_; }

    /**
     * Enqueue a campaign without a client connection (benches, tests,
     * and the resume path).  Returns its campaign id.
     */
    std::uint64_t submitLocal(const FleetCampaignSpec &spec);

    /**
     * Block until campaign @p id completes (@p timeout_ms <= 0 waits
     * forever).  @p summary, when non-null, receives the campaign
     * summary JSON.  False on timeout or unknown id.
     */
    bool waitCampaign(std::uint64_t id, int timeout_ms,
                      Json *summary = nullptr);

    /** Block until @p n workers are connected (test convenience). */
    bool waitForWorkers(int n, int timeout_ms);

    /**
     * Block until `max_campaigns` campaigns have completed (or until
     * stop()); the `wotool serve` main loop.
     */
    void waitDone();

    int campaignsCompleted() const;
    int workersConnected() const;

    /** The /progress JSON document (also useful headless). */
    Json progressJson() const;

    /** The /metrics tree (rendered as Prometheus "wo_fleet_..."). */
    Json metricsJson() const;

  private:
    enum class Role : std::uint8_t { unknown, worker, client };

    struct Conn
    {
        std::uint64_t id = 0;
        std::unique_ptr<LineConn> sock;
        std::thread reader;
        bool dead = false;

        // Worker state (meaningful once role == worker).
        Role role = Role::unknown;
        std::string name;
        int jobs = 1;
        std::uint64_t hw_threads = 0;
        std::chrono::steady_clock::time_point last_seen;
        std::vector<std::uint64_t> leases; //!< outstanding lease ids
        std::uint64_t cells_done = 0;
        bool draining = false;
    };

    struct Shard
    {
        enum class State : std::uint8_t { pending, leased, done };
        std::uint64_t lo = 0, hi = 0; //!< base-index range [lo, hi)
        State state = State::pending;
        std::uint64_t lease = 0;    //!< current lease id when leased
        std::uint64_t remaining = 0; //!< indices not yet merged
    };

    struct Camp
    {
        std::uint64_t id = 0;
        FleetCampaignSpec spec;
        std::string dir;
        std::unique_ptr<Journal> journal;
        std::vector<std::uint8_t> done; //!< per base index
        std::vector<Shard> shards;
        std::uint64_t done_cells = 0;
        std::uint64_t resumed = 0; //!< indices replayed from the journal
        std::uint64_t ran = 0;     //!< results merged by this process
        std::uint64_t clean = 0, racy = 0, hw = 0;
        std::uint64_t deadlocked = 0, livelocked = 0, errors = 0;
        std::uint64_t unique_failures = 0;
        std::uint64_t duplicate_results = 0; //!< stale-lease drops
        std::uint64_t reassigned_leases = 0;
        std::map<std::string, std::uint64_t> kind_counts;
        std::uint64_t client_conn = 0; //!< 0 = detached/local submit
        bool completed = false;
        Json summary;
        std::chrono::steady_clock::time_point t0;
    };

    struct Lease
    {
        std::uint64_t id = 0;
        std::uint64_t campaign = 0;
        std::size_t shard = 0;
        std::uint64_t conn = 0;
        std::chrono::steady_clock::time_point granted;
    };

    struct Event
    {
        enum class Kind : std::uint8_t { connected, message, closed };
        Kind kind;
        std::uint64_t conn = 0;
        Json msg;
    };

    void acceptLoop();
    void readerLoop(std::uint64_t conn_id);
    void pumpLoop();
    void pushEvent(Event ev);

    // All of the below run on the pump thread with mu_ held.
    void handleMessage(std::uint64_t conn_id, const Json &msg);
    void handleHello(Conn &c, const Json &msg);
    void handleSubmit(Conn &c, const Json &msg);
    void handleResult(Conn &c, const Json &msg);
    void handleLeaseDone(Conn &c, const Json &msg);
    void dropConn(std::uint64_t conn_id, const char *why);
    void releaseLease(std::uint64_t lease_id);
    void grantLeases();
    void expireSilentWorkers();
    void sendClientProgress();
    void maybeCompleteCampaign(Camp &camp);
    std::uint64_t enqueueCampaign(FleetCampaignSpec spec,
                                  std::uint64_t client_conn);
    void resumeFromOutDir();
    Camp *activeCampaign();
    Json campaignProgressJson(const Camp &camp) const;
    Json buildSummary(const Camp &camp) const;
    void teardown(bool drain);

    CoordinatorCfg cfg_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::string error_;
    bool started_ = false;

    mutable std::mutex mu_;            //!< fleet state (everything below)
    std::condition_variable state_cv_; //!< completion / worker-count waits
    std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::map<std::uint64_t, Lease> leases_;
    std::vector<std::unique_ptr<Camp>> camps_; //!< submission order
    std::uint64_t next_conn_ = 1;
    std::uint64_t next_lease_ = 1;
    std::uint64_t next_campaign_ = 1;
    int completed_campaigns_ = 0;
    bool serving_done_ = false;
    std::chrono::steady_clock::time_point last_progress_push_;

    std::mutex ev_mu_;
    std::condition_variable ev_cv_;
    std::deque<Event> events_;
    std::atomic<bool> stopping_{false};

    std::thread acceptor_;
    std::thread pump_;
};

} // namespace wo

#endif // WO_FLEET_COORDINATOR_HH

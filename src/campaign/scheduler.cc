#include "scheduler.hh"

#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "campaign/journal.hh"
#include "campaign/shrink.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "obs/artifact.hh"

namespace wo {

namespace {

using Clock = std::chrono::steady_clock;

bool
violationKindFromName(const std::string &name, ViolationKind &out)
{
    for (int k = 0; k < num_violation_kinds; ++k)
        if (name == violationKindName(static_cast<ViolationKind>(k))) {
            out = static_cast<ViolationKind>(k);
            return true;
        }
    return false;
}

/**
 * Per-worker deques with stealing.  A worker pushes and pops its own
 * back (LIFO keeps a bug's freshly-mutated neighborhood hot in cache
 * and in mind); thieves take from the front, i.e. the oldest, most
 * "different" work, the classic Cilk/Chase-Lev discipline.  Mutexed
 * rather than lock-free: a cell costs a full simulated run, so deque
 * contention is noise.
 */
class StealDeques
{
  public:
    explicit StealDeques(int n)
    {
        for (int i = 0; i < n; ++i)
            slots_.push_back(std::make_unique<Slot>());
    }

    void
    push(int w, Cell c)
    {
        std::lock_guard<std::mutex> lock(slots_[w]->mu);
        slots_[w]->q.push_back(std::move(c));
    }

    bool
    popLocal(int w, Cell &out)
    {
        std::lock_guard<std::mutex> lock(slots_[w]->mu);
        if (slots_[w]->q.empty())
            return false;
        out = std::move(slots_[w]->q.back());
        slots_[w]->q.pop_back();
        return true;
    }

    /** One full round over the victims, starting at a random one. */
    bool
    steal(int thief, Cell &out, Rng &rng)
    {
        const int n = static_cast<int>(slots_.size());
        if (n <= 1)
            return false;
        int victim = static_cast<int>(rng.below(n));
        for (int i = 0; i < n; ++i, victim = (victim + 1) % n) {
            if (victim == thief)
                continue;
            std::lock_guard<std::mutex> lock(slots_[victim]->mu);
            if (slots_[victim]->q.empty())
                continue;
            out = std::move(slots_[victim]->q.front());
            slots_[victim]->q.pop_front();
            return true;
        }
        return false;
    }

  private:
    struct Slot
    {
        std::mutex mu;
        std::deque<Cell> q;
    };
    std::vector<std::unique_ptr<Slot>> slots_;
};

/** Shared campaign state (one per runCampaign call; no globals). */
struct Engine
{
    explicit Engine(const CampaignCfg &c)
        : cfg(c),
          fuzzer(FuzzerCfg{c.seed, c.policies, c.program_files,
                           c.inject_reserve_bug}),
          journal(c.journal_path), deques(c.jobs)
    {
    }

    const CampaignCfg &cfg;
    Fuzzer fuzzer;
    Journal journal;
    StealDeques deques;
    Clock::time_point t0;

    std::atomic<std::uint64_t> tickets{0};
    std::atomic<std::uint64_t> base_index{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> ran{0};
    std::atomic<std::uint64_t> skipped{0};
    std::atomic<std::uint64_t> clean{0};
    std::atomic<std::uint64_t> racy{0};
    std::atomic<std::uint64_t> hw{0};
    std::atomic<std::uint64_t> deadlocked{0};
    std::atomic<std::uint64_t> livelocked{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> by_kind[num_violation_kinds];
    std::atomic<bool> done{false};

    std::mutex fail_mu;
    std::map<std::string, FailureRecord> failures; //!< this run's finds

    EventQueueKind
    queueKind() const
    {
        return cfg.legacy_queue ? EventQueueKind::legacy_heap
                                : EventQueueKind::calendar;
    }

    bool
    timeUp() const
    {
        if (cfg.time_budget_s <= 0)
            return false;
        return std::chrono::duration<double>(Clock::now() - t0).count() >
               cfg.time_budget_s;
    }

    void
    classify(const CellResult &r)
    {
        for (int k = 0; k < num_violation_kinds; ++k)
            by_kind[k] += r.by_kind[k];
        if (r.primary_kind == "materialize_error")
            ++errors;
        else if (r.hardwareFailure())
            ++hw;
        else if (r.deadlocked)
            ++deadlocked;
        else if (r.livelocked)
            ++livelocked;
        else if (r.races > 0)
            ++racy;
        else
            ++clean;
    }

    void handleFailure(const Cell &cell, CellRun &run);
    void worker(int w);
};

void
Engine::handleFailure(const Cell &cell, CellRun &run)
{
    ViolationKind kind;
    if (!violationKindFromName(run.result.primary_kind, kind))
        return; // cannot name it: leave the cell verdict as evidence

    ShrinkCfg scfg;
    // With shrinking off the single permitted run just confirms the
    // reproduction and renders the unreduced .wo text.
    scfg.max_runs = cfg.shrink ? cfg.shrink_max_runs : 1;
    ShrinkOutcome s =
        shrinkCounterexample(*run.program, run.warm,
                             cell.systemCfg(cfg.max_events, queueKind()), kind,
                             scfg);

    const std::string hash = fnv1aHex(s.wo_text).substr(0, 12);
    const std::string dedup = run.result.primary_kind + ":" + hash;
    const std::string stem =
        cfg.out_dir + "/repro-" + run.result.primary_kind + "-" + hash;
    const std::string wo_path = stem + ".wo";

    const bool first =
        journal.recordFailure(dedup, run.result.primary_kind,
                              run.result.key, wo_path, s.instructions,
                              s.orig_instructions);
    if (first) {
        writeFile(wo_path, s.wo_text);
        // The evidence bundle: re-run the minimum with the flight
        // recorder on and the failure dump pointed into the out dir.
        SystemCfg ev = cell.systemCfg(cfg.max_events, queueKind());
        ev.flight_recorder = true;
        ev.dump_on_fail = stem;
        System sys(*s.program, ev);
        for (const auto &w : s.warm)
            sys.warmShared(w.addr, w.procs);
        sys.run();
    }

    std::lock_guard<std::mutex> lock(fail_mu);
    FailureRecord &rec = failures[dedup];
    ++rec.count;
    if (rec.dedup.empty()) {
        rec.dedup = dedup;
        rec.kind = run.result.primary_kind;
        rec.first_cell = run.result.key;
        rec.repro_path = wo_path;
        rec.instructions = s.instructions;
        rec.orig_instructions = s.orig_instructions;
        rec.reproduced = s.reproduced;
    }
}

void
Engine::worker(int w)
{
    Rng rng(cfg.seed * 7919 + static_cast<std::uint64_t>(w) + 1);
    while (!timeUp()) {
        const std::uint64_t ticket = tickets.fetch_add(1);
        if (ticket >= cfg.cells)
            break;
        // Even tickets always advance the deterministic base stream;
        // only odd ones may take fuzz-frontier work.  A hot mutant
        // neighborhood (every timing mutant of a racy cell tends to
        // show a fresh outcome signature) can therefore never starve
        // base coverage -- at least half the budget walks the stream.
        Cell cell;
        const bool frontier =
            (ticket & 1) &&
            (deques.popLocal(w, cell) || deques.steal(w, cell, rng));
        if (!frontier)
            cell = fuzzer.baseCell(base_index.fetch_add(1));

        if (journal.done(cell.key())) {
            ++skipped;
            ++completed;
            continue;
        }
        CellRun run = runCell(cell, cfg.max_events, queueKind());
        journal.appendCell(run.result);
        classify(run.result);
        for (Cell &m : fuzzer.observe(cell, run.result))
            deques.push(w, std::move(m));
        if (run.result.hardwareFailure() && run.program)
            handleFailure(cell, run);
        ++ran;
        ++completed;
    }
}

} // namespace

CampaignSummary
runCampaign(const CampaignCfg &user_cfg)
{
    CampaignCfg cfg = user_cfg;
    if (cfg.jobs < 1)
        cfg.jobs = 1;
    if (cfg.policies.empty())
        cfg.policies = {OrderingPolicy::wo_drf0};
    if (cfg.journal_path.empty())
        cfg.journal_path = cfg.out_dir + "/campaign.journal.jsonl";
    std::error_code ec;
    std::filesystem::create_directories(cfg.out_dir, ec);
    if (ec)
        warn("cannot create campaign out dir '%s': %s",
             cfg.out_dir.c_str(), ec.message().c_str());

    Engine eng(cfg);
    for (auto &k : eng.by_kind)
        k = 0;
    if (cfg.resume)
        eng.journal.load();
    eng.journal.open(/*fresh=*/!cfg.resume);
    if (!cfg.resume) {
        Json meta = Json::object();
        meta.set("seed", Json(cfg.seed));
        meta.set("cells", Json(cfg.cells));
        meta.set("jobs", Json(static_cast<std::uint64_t>(cfg.jobs)));
        std::string pols;
        for (OrderingPolicy p : cfg.policies)
            pols += std::string(pols.empty() ? "" : ",") +
                    policyFlagName(p);
        meta.set("policies", Json(pols));
        meta.set("max_events", Json(cfg.max_events));
        if (cfg.inject_reserve_bug)
            meta.set("inject_reserve_bug", Json(true));
        eng.journal.writeHeader(std::move(meta));
    }

    eng.t0 = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(cfg.jobs));
    for (int w = 0; w < cfg.jobs; ++w)
        workers.emplace_back([&eng, w] { eng.worker(w); });

    std::thread reporter;
    if (cfg.progress)
        reporter = std::thread([&eng] {
            while (!eng.done.load()) {
                const double secs = std::chrono::duration<double>(
                                        Clock::now() - eng.t0)
                                        .count();
                const std::uint64_t c = eng.completed.load();
                std::size_t uniq;
                {
                    std::lock_guard<std::mutex> lock(eng.fail_mu);
                    uniq = eng.failures.size();
                }
                std::fprintf(
                    stderr,
                    "\r[campaign] %llu/%llu cells  %llu run  %llu "
                    "resumed  %llu hw-fail (%zu unique)  %.1f cells/s ",
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(eng.cfg.cells),
                    static_cast<unsigned long long>(eng.ran.load()),
                    static_cast<unsigned long long>(eng.skipped.load()),
                    static_cast<unsigned long long>(eng.hw.load()), uniq,
                    secs > 0 ? static_cast<double>(c) / secs : 0.0);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            }
            std::fputc('\n', stderr);
        });

    for (auto &t : workers)
        t.join();
    eng.done = true;
    if (reporter.joinable())
        reporter.join();

    CampaignSummary sum;
    sum.ran = eng.ran;
    sum.skipped = eng.skipped;
    sum.clean = eng.clean;
    sum.racy = eng.racy;
    sum.hw = eng.hw;
    sum.deadlocked = eng.deadlocked;
    sum.livelocked = eng.livelocked;
    sum.errors = eng.errors;
    for (int k = 0; k < num_violation_kinds; ++k)
        sum.by_kind[k] = eng.by_kind[k];
    sum.novelty = eng.fuzzer.noveltyCount();
    sum.wall_s =
        std::chrono::duration<double>(Clock::now() - eng.t0).count();
    sum.cells_per_sec =
        sum.wall_s > 0 ? static_cast<double>(sum.ran) / sum.wall_s : 0;

    // Failures: the journal knows every deduplicated failure including
    // those recorded before a resume; this run's records add the
    // shrink provenance.
    for (const auto &[dedup, jf] : eng.journal.failures()) {
        FailureRecord rec;
        rec.dedup = dedup;
        rec.kind = jf.kind;
        rec.repro_path = jf.file;
        rec.instructions = jf.insns;
        rec.count = jf.count;
        auto it = eng.failures.find(dedup);
        if (it != eng.failures.end()) {
            rec.first_cell = it->second.first_cell;
            rec.orig_instructions = it->second.orig_instructions;
            rec.reproduced = it->second.reproduced;
        }
        sum.failures.push_back(std::move(rec));
    }
    return sum;
}

std::string
CampaignSummary::table() const
{
    std::string out;
    out += strprintf(
        "campaign: %llu cells (%llu run, %llu resumed), %.2f s, "
        "%.1f cells/s, %llu frontier discoveries\n",
        static_cast<unsigned long long>(ran + skipped),
        static_cast<unsigned long long>(ran),
        static_cast<unsigned long long>(skipped), wall_s,
        cells_per_sec, static_cast<unsigned long long>(novelty));
    out += strprintf(
        "verdicts: %llu clean, %llu race, %llu hw-violation, "
        "%llu deadlock, %llu livelock, %llu error\n",
        static_cast<unsigned long long>(clean),
        static_cast<unsigned long long>(racy),
        static_cast<unsigned long long>(hw),
        static_cast<unsigned long long>(deadlocked),
        static_cast<unsigned long long>(livelocked),
        static_cast<unsigned long long>(errors));
    bool any_kind = false;
    for (int k = 0; k < num_violation_kinds; ++k)
        any_kind = any_kind || by_kind[k] > 0;
    if (any_kind) {
        out += "monitor findings:";
        for (int k = 0; k < num_violation_kinds; ++k)
            if (by_kind[k] > 0)
                out += strprintf(
                    " %s=%llu",
                    violationKindName(static_cast<ViolationKind>(k)),
                    static_cast<unsigned long long>(by_kind[k]));
        out += "\n";
    }
    if (failures.empty()) {
        out += "hardware: CLEAN (no violation survived shrinking)\n";
        return out;
    }
    out += strprintf("failures (%zu unique after dedup):\n",
                     failures.size());
    for (const FailureRecord &f : failures)
        out += strprintf(
            "  %-16s x%-4llu -> %s (%zu insns%s%s)\n", f.kind.c_str(),
            static_cast<unsigned long long>(f.count),
            f.repro_path.c_str(), f.instructions,
            f.orig_instructions > 0
                ? strprintf(", from %zu", f.orig_instructions).c_str()
                : "",
            f.reproduced ? ", reproduced" : "");
    return out;
}

Json
CampaignSummary::toJson() const
{
    Json j = Json::object();
    j.set("ran", Json(ran));
    j.set("skipped", Json(skipped));
    j.set("clean", Json(clean));
    j.set("race", Json(racy));
    j.set("hw", Json(hw));
    j.set("deadlock", Json(deadlocked));
    j.set("livelock", Json(livelocked));
    j.set("error", Json(errors));
    j.set("novelty", Json(novelty));
    j.set("wall_s", Json(wall_s));
    j.set("cells_per_sec", Json(cells_per_sec));
    Json by = Json::object();
    for (int k = 0; k < num_violation_kinds; ++k)
        if (by_kind[k] > 0)
            by.set(violationKindName(static_cast<ViolationKind>(k)),
                   Json(by_kind[k]));
    j.set("by_kind", std::move(by));
    Json fails = Json::array();
    for (const FailureRecord &f : failures) {
        Json rec = Json::object();
        rec.set("dedup", Json(f.dedup));
        rec.set("kind", Json(f.kind));
        rec.set("file", Json(f.repro_path));
        rec.set("insns", Json(static_cast<std::uint64_t>(f.instructions)));
        rec.set("orig_insns",
                Json(static_cast<std::uint64_t>(f.orig_instructions)));
        rec.set("count", Json(f.count));
        rec.set("reproduced", Json(f.reproduced));
        fails.push(std::move(rec));
    }
    j.set("failures", std::move(fails));
    return j;
}

} // namespace wo

/**
 * @file
 * The crash-safe campaign journal: one JSON object per line, appended
 * and flushed as each cell finishes, so a killed campaign loses at
 * most the in-flight cells.  On `--resume` the journal is replayed:
 * finished cell keys are skipped without re-running, and previously
 * recorded failures keep their deduplication identity (verdict kind +
 * shrunk-program hash), so an interrupted hunt neither repeats work
 * nor double-reports the same bug.
 *
 * Line types (see docs/CAMPAIGN.md for the full schema):
 *
 *   {"type":"campaign", ...config echo...}
 *   {"type":"cell","key":K,"verdict":V,"hw":N,"races":N,"sig":S,...}
 *   {"type":"failure","dedup":D,"kind":K,"file":F,"insns":N,...}
 *
 * A truncated or malformed trailing line (the crash case) is ignored
 * by the reader.  All appends go through one mutex and fflush, so the
 * journal is safe to share across the worker fleet.
 */

#ifndef WO_CAMPAIGN_JOURNAL_HH
#define WO_CAMPAIGN_JOURNAL_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "campaign/cell.hh"
#include "obs/json.hh"

namespace wo {

/** One replayed failure record (resume-time state). */
struct JournalFailure
{
    std::string kind;       //!< violation kind name
    std::string file;       //!< reproducer path (may be empty)
    std::size_t insns = 0;  //!< shrunk instruction count
    std::uint64_t count = 0; //!< equivalent failures seen so far
};

/** The campaign journal (writer + resume reader). */
class Journal
{
  public:
    explicit Journal(std::string path) : path_(std::move(path)) {}
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Replay an existing journal into the done/failure sets.  Missing
     * file is fine (fresh campaign); malformed lines are skipped.
     * Call before open().
     */
    void load();

    /**
     * Open for appending.  @p fresh truncates (non-resume campaigns
     * start clean).  False when the file cannot be opened.
     */
    bool open(bool fresh);

    /** Append the campaign-config header line. */
    void writeHeader(Json meta);

    /** Was @p key journaled (this run or a resumed one)? */
    bool done(const std::string &key) const;

    /** Number of journaled cells (including replayed ones). */
    std::size_t doneCells() const;

    /** Append one finished cell (marks its key done). */
    void appendCell(const CellResult &r);

    /**
     * Record a failure under deduplication key @p dedup ("<kind>:<hash
     * of the shrunk program>").  Returns true when this is the first
     * equivalent failure (caller should emit the reproducer bundle);
     * repeats only bump the count.  Always journaled either way.
     */
    bool recordFailure(const std::string &dedup, const std::string &kind,
                       const std::string &cell_key,
                       const std::string &file, std::size_t insns,
                       std::size_t orig_insns);

    /** Deduplicated failures, keyed by dedup string. */
    std::map<std::string, JournalFailure> failures() const;

    const std::string &path() const { return path_; }

  private:
    void appendLine(const Json &j);

    std::string path_;
    std::FILE *f_ = nullptr;
    mutable std::mutex mu_;
    std::set<std::string> done_;
    std::map<std::string, JournalFailure> failures_;
};

} // namespace wo

#endif // WO_CAMPAIGN_JOURNAL_HH

/**
 * @file
 * A minimal JSON document model with a writer and a strict parser.
 *
 * The observability layer emits three machine-readable formats (Chrome
 * trace-event JSON, a JSONL event stream, and the hierarchical stats
 * dump) and the test suite must validate them without external
 * dependencies, so both directions live here.  Object keys preserve
 * insertion order, which keeps every dump deterministic and diffable.
 *
 * Numbers are stored as one of three variants (unsigned, signed, double)
 * so tick counts survive a round trip exactly; the parser selects the
 * narrowest variant that represents the literal.
 */

#ifndef WO_OBS_JSON_HH
#define WO_OBS_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wo {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind : std::uint8_t
    {
        null,
        boolean,
        unsigned_number,
        signed_number,
        double_number,
        string,
        array,
        object
    };

    Json() : kind_(Kind::null) {}
    Json(bool b) : kind_(Kind::boolean), bool_(b) {}
    Json(std::uint64_t v) : kind_(Kind::unsigned_number), u64_(v) {}
    Json(std::int64_t v) : kind_(Kind::signed_number), i64_(v) {}
    Json(int v) : kind_(Kind::signed_number), i64_(v) {}
    Json(unsigned v) : kind_(Kind::unsigned_number), u64_(v) {}
    Json(double v) : kind_(Kind::double_number), dbl_(v) {}
    Json(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::string), str_(s) {}

    /** An empty array. */
    static Json array();

    /** An empty object. */
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isBool() const { return kind_ == Kind::boolean; }
    bool isString() const { return kind_ == Kind::string; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isObject() const { return kind_ == Kind::object; }

    /** Any of the three numeric variants. */
    bool isNumber() const
    {
        return kind_ == Kind::unsigned_number ||
               kind_ == Kind::signed_number || kind_ == Kind::double_number;
    }

    bool boolValue() const { return bool_; }
    const std::string &stringValue() const { return str_; }

    /** Numeric value as a double (0 for non-numbers). */
    double numberValue() const;

    /** Numeric value truncated to uint64 (0 for non-numbers). */
    std::uint64_t uintValue() const;

    /** Array elements (empty for non-arrays). */
    const std::vector<Json> &items() const { return items_; }

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Append @p v to an array (the value must be an array). */
    void push(Json v);

    /**
     * Set object member @p key to @p v, replacing an existing member of
     * the same name (the value must be an object).
     */
    void set(const std::string &key, Json v);

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Member lookup for mutation; creates nothing. */
    Json *find(const std::string &key);

    /**
     * Render as JSON text.  @p indent > 0 pretty-prints with that many
     * spaces per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::uint64_t u64_ = 0;
    std::int64_t i64_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** Append @p text to @p out with JSON string escaping (no quotes). */
void jsonEscape(std::string &out, const std::string &text);

/** Result of parsing a JSON document. */
struct JsonParseResult
{
    bool ok = false;
    std::string error;  //!< human-readable message when !ok
    std::size_t offset = 0; //!< byte offset of the failure
    Json value;
};

/**
 * Parse one complete JSON document (strict: no trailing garbage, no
 * comments, no trailing commas).  The string_view form parses in place
 * — use it when scanning lines out of a larger buffer (e.g. a JSONL
 * journal) to avoid a copy per line.
 */
JsonParseResult jsonParse(std::string_view text);

} // namespace wo

#endif // WO_OBS_JSON_HH

/**
 * @file
 * The "parallelism only from do-all loops" synchronization model the
 * paper's conclusion proposes, realized as a *structured program* family:
 * computation proceeds in phases separated by centralized barriers, and
 * within a phase each thread touches a declared set of locations.
 *
 * The synchronization model's "enough synchronization" condition is then
 * purely structural -- no execution enumeration at all:
 *
 *   for every phase, no location written by one thread is read or
 *   written by another thread in the same phase
 *
 * (cross-phase conflicts are ordered by the barrier's happens-before
 * chain).  checkDoallDiscipline() validates a phase plan; buildPhased()
 * emits the corresponding program with the barrier code inlined, so the
 * soundness property "valid plan => program obeys DRF0" is testable
 * against the exhaustive checker.
 */

#ifndef WO_CORE_DOALL_HH
#define WO_CORE_DOALL_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "program/program.hh"

namespace wo {

/** One thread's declared accesses within one phase. */
struct PhaseAccess
{
    std::set<Addr> reads;
    std::set<Addr> writes;
};

/** A phased (do-all) program plan. */
struct DoallPlan
{
    std::string name = "doall";
    ProcId threads = 2;
    // plan[phase][thread]
    std::vector<std::vector<PhaseAccess>> phases;
    Addr data_locations = 0; //!< shared data space [0, data_locations)
};

/** One discipline violation. */
struct DoallIssue
{
    std::size_t phase;
    ProcId writer;
    ProcId other;
    Addr addr;
    bool other_writes; //!< write-write (else write-read) overlap

    std::string toString() const;
};

/** Result of the structural check. */
struct DoallResult
{
    bool valid = false;
    std::vector<DoallIssue> issues;

    explicit operator bool() const { return valid; }
};

/** Check the phase plan's disjointness condition. */
DoallResult checkDoallDiscipline(const DoallPlan &plan);

/**
 * Emit the program for a plan: per phase, each thread performs its
 * declared reads and writes (writes store fresh distinct values), then
 * all threads pass a centralized sense-counting barrier built from the
 * canonical lock/flag idioms.  The barrier locations live above
 * plan.data_locations.
 */
Program buildPhased(const DoallPlan &plan);

/**
 * Generate a random VALID plan (threads get disjoint write partitions
 * per phase; reads may target anything written in an earlier phase or
 * their own partition).
 */
DoallPlan randomDoallPlan(ProcId threads, std::size_t phases,
                          Addr locations, int ops_per_phase,
                          std::uint64_t seed);

/**
 * Generate an INVALID plan: like randomDoallPlan but with one injected
 * same-phase conflict.
 */
DoallPlan randomConflictingPlan(ProcId threads, std::size_t phases,
                                Addr locations, int ops_per_phase,
                                std::uint64_t seed);

} // namespace wo

#endif // WO_CORE_DOALL_HH

# Empty compiler generated dependencies file for sweep_mlp.
# This may be replaced when dependencies are built.

/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a bug in this code base.
 *            Prints and aborts (core-dumpable).
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, malformed program).  Prints and exits cleanly.
 * warn()   - something is modelled approximately; the run continues.
 * inform() - a status message with no negative connotation.
 *
 * All four accept printf-style formatting.  A panic/fatal message always
 * carries the source location of the call site.
 */

#ifndef WO_COMMON_LOGGING_HH
#define WO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace wo {

/** Verbosity gate for inform(); warnings and errors always print. */
enum class LogLevel { quiet, normal, verbose };

/** Set the global verbosity used by inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Render a printf-style format into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list ap);

/** Render a printf-style format into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal: print a diagnostic with a severity banner and location. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Internal: print a diagnostic with a severity banner and location. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message (suppressed when the log level is quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message only at verbose log level. */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace wo

/** Report an internal bug and abort. */
#define wo_panic(...) ::wo::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unrecoverable user error and exit(1). */
#define wo_fatal(...) ::wo::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Panic unless a condition holds; the message should state the invariant. */
#define wo_assert(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond))                                                         \
            ::wo::panicImpl(__FILE__, __LINE__, __VA_ARGS__);                \
    } while (0)

#endif // WO_COMMON_LOGGING_HH

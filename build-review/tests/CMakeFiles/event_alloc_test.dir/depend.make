# Empty dependencies file for event_alloc_test.
# This may be replaced when dependencies are built.

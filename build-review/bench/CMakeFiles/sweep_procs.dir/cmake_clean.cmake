file(REMOVE_RECURSE
  "CMakeFiles/sweep_procs.dir/sweep_procs.cc.o"
  "CMakeFiles/sweep_procs.dir/sweep_procs.cc.o.d"
  "sweep_procs"
  "sweep_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "journal.hh"

#include <chrono>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace wo {

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

/** 0 marks an empty slot in the SeenSet table; remap real hashes. */
std::uint64_t
nonZero(std::uint64_t h)
{
    return h ? h : 1;
}

} // namespace

// ------------------------------------------------------------- SeenSet

void
SeenSet::rebuild(std::size_t pow2_cap)
{
    auto fresh =
        std::make_unique<std::atomic<std::uint64_t>[]>(pow2_cap);
    for (std::size_t i = 0; i < pow2_cap; ++i)
        fresh[i].store(0, std::memory_order_relaxed);
    // Re-seat existing entries (reserve() may run after direct-API use).
    if (slots_)
        for (std::size_t i = 0; i < cap_; ++i) {
            const std::uint64_t h =
                slots_[i].load(std::memory_order_relaxed);
            if (h == 0)
                continue;
            std::size_t j = h & (pow2_cap - 1);
            while (fresh[j].load(std::memory_order_relaxed) != 0)
                j = (j + 1) & (pow2_cap - 1);
            fresh[j].store(h, std::memory_order_relaxed);
        }
    slots_ = std::move(fresh);
    cap_ = pow2_cap;
}

void
SeenSet::reserve(std::size_t keys)
{
    std::size_t want = 1u << 12;
    while (want < keys * 2 + 1)
        want <<= 1;
    if (want > cap_)
        rebuild(want);
}

bool
SeenSet::insert(std::uint64_t h)
{
    h = nonZero(h);
    // Past half load the probe chains degrade; spill to the mutexed
    // overflow set instead (reserve() makes this unreachable in
    // practice).
    if (used_.load(std::memory_order_relaxed) * 2 >= cap_)
        return insertOverflow(h);
    std::size_t i = h & (cap_ - 1);
    for (std::size_t probes = 0; probes < cap_; ++probes) {
        std::uint64_t cur = slots_[i].load(std::memory_order_acquire);
        if (cur == h)
            return false;
        if (cur == 0) {
            std::uint64_t expected = 0;
            if (slots_[i].compare_exchange_strong(
                    expected, h, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                used_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            if (expected == h)
                return false;
            // Another key claimed the slot first: keep probing.
        }
        i = (i + 1) & (cap_ - 1);
    }
    return insertOverflow(h);
}

bool
SeenSet::tableContains(std::uint64_t h) const
{
    std::size_t i = h & (cap_ - 1);
    for (std::size_t probes = 0; probes < cap_; ++probes) {
        const std::uint64_t cur =
            slots_[i].load(std::memory_order_acquire);
        if (cur == h)
            return true;
        if (cur == 0)
            return false;
        i = (i + 1) & (cap_ - 1);
    }
    return false;
}

bool
SeenSet::insertOverflow(std::uint64_t h)
{
    if (tableContains(h))
        return false;
    std::lock_guard<std::mutex> lock(ov_mu_);
    const bool inserted = overflow_.insert(h).second;
    if (inserted)
        has_overflow_.store(true, std::memory_order_release);
    return inserted;
}

bool
SeenSet::contains(std::uint64_t h) const
{
    h = nonZero(h);
    if (tableContains(h))
        return true;
    if (!has_overflow_.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(ov_mu_);
    return overflow_.count(h) > 0;
}

std::size_t
SeenSet::overflowSize() const
{
    if (!has_overflow_.load(std::memory_order_acquire))
        return 0;
    std::lock_guard<std::mutex> lock(ov_mu_);
    return overflow_.size();
}

// ------------------------------------------------------------- Journal

Journal::~Journal()
{
    close();
}

void
Journal::load()
{
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f)
        return;
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break; // a line without \n was cut mid-write: ignore it
        // Parse in place: a million-line resume must not copy every
        // line into a fresh string first.
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        JsonParseResult p = jsonParse(line);
        if (!p.ok || !p.value.isObject())
            continue; // crash-truncated or corrupt: skip
        const Json *type = p.value.find("type");
        if (!type || !type->isString())
            continue;
        if (type->stringValue() == "campaign") {
            header_ = p.value;
            if (const Json *sv = p.value.find("schema_version"))
                if (sv->isNumber())
                    loaded_schema_version_ = sv->uintValue();
            if (loaded_schema_version_ != journal_schema_version) {
                schema_mismatch_ = true;
                warn("journal '%s': schema version %llu, this build "
                     "writes %llu -- records from mixed builds; "
                     "resume/merge results may be inconsistent",
                     path_.c_str(),
                     static_cast<unsigned long long>(
                         loaded_schema_version_),
                     static_cast<unsigned long long>(
                         journal_schema_version));
            }
        } else if (type->stringValue() == "cell") {
            if (const Json *k = p.value.find("key"))
                if (k->isString())
                    resume_done_.insert(k->stringValue());
            if (const Json *ix = p.value.find("idx"))
                if (ix->isNumber())
                    resume_idx_.insert(ix->uintValue());
        } else if (type->stringValue() == "failure") {
            const Json *dedup = p.value.find("dedup");
            if (!dedup || !dedup->isString())
                continue;
            JournalFailure &rec = failures_[dedup->stringValue()];
            ++rec.count;
            if (const Json *k = p.value.find("kind"))
                if (k->isString())
                    rec.kind = k->stringValue();
            if (const Json *fl = p.value.find("file"))
                if (fl->isString() && !fl->stringValue().empty())
                    rec.file = fl->stringValue();
            if (const Json *i = p.value.find("insns"))
                if (i->isNumber() && rec.insns == 0)
                    rec.insns = static_cast<std::size_t>(i->uintValue());
        }
    }
}

bool
Journal::open(bool fresh)
{
    f_ = std::fopen(path_.c_str(), fresh ? "wb" : "a+b");
    if (!f_) {
        warn("cannot open campaign journal '%s'", path_.c_str());
        return false;
    }
    if (!fresh) {
        // A crash can tear the last line of the last batch.  Terminate
        // it now so this run's appends never glue onto the torn tail
        // (which would corrupt the first fresh line too); the reader
        // skips the malformed remnant either way.
        if (std::fseek(f_, -1, SEEK_END) == 0) {
            const int last = std::fgetc(f_);
            if (last != EOF && last != '\n')
                std::fputc('\n', f_);
        }
        std::clearerr(f_);
        std::fseek(f_, 0, SEEK_END);
    }
    closing_.store(false, std::memory_order_relaxed);
    writer_ = std::thread([this] { writerLoop(); });
    return true;
}

void
Journal::close()
{
    if (writer_.joinable()) {
        closing_.store(true, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            wake_cv_.notify_one();
        }
        writer_.join();
    }
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

void
Journal::reserveKeys(std::size_t cells)
{
    seen_.reserve(cells);
}

void
Journal::push(Line *n)
{
    Line *h = head_.load(std::memory_order_relaxed);
    do {
        n->next = h;
    } while (!head_.compare_exchange_weak(h, n,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    const std::uint64_t pending =
        queued_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Wake a sleeping writer only at the batch threshold (or always
    // when sync_every == 1): everything else rides the bounded flush
    // interval, so the hot path stays notification-free.
    if (pending >= cfg_.sync_every &&
        writer_idle_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(wake_mu_);
        wake_cv_.notify_one();
    }
}

Journal::Line *
Journal::takeAllFifo()
{
    Line *lifo = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack is newest-first; reverse to recover push order.
    Line *fifo = nullptr;
    while (lifo) {
        Line *next = lifo->next;
        lifo->next = fifo;
        fifo = lifo;
        lifo = next;
    }
    return fifo;
}

void
Journal::commitBatch(Line *fifo)
{
    // One writer_flush span per drained batch (runs on the writer
    // thread; Timeline::current() is the journal-writer lane or null).
    Timeline::Scope flush_span(Timeline::current(),
                               SpanKind::writer_flush);
    std::uint64_t since_flush = 0;
    std::uint64_t drained = 0;
    while (fifo) {
        Line *next = fifo->next;
        std::fwrite(fifo->text.data(), 1, fifo->text.size(), f_);
        delete fifo;
        fifo = next;
        ++drained;
        if (++since_flush >= cfg_.sync_every) {
            std::fflush(f_); // commit point: the batch is durable
            commits_.fetch_add(1, std::memory_order_relaxed);
            since_flush = 0;
        }
    }
    if (since_flush > 0) {
        std::fflush(f_);
        commits_.fetch_add(1, std::memory_order_relaxed);
    }
    queued_.fetch_sub(drained, std::memory_order_acq_rel);
}

void
Journal::writerLoop()
{
    // The writer is an engine thread: it registers for self-profiling
    // and owns the campaign's "journal-writer" timeline lane.
    Profiler::ThreadGuard prof_guard("journal-writer");
    Timeline *tl = cfg_.timeline;
    Timeline::setCurrent(tl);
    if (tl)
        tl->markStart();
    const auto interval =
        std::chrono::milliseconds(cfg_.flush_interval_ms > 0
                                      ? cfg_.flush_interval_ms
                                      : 1);
    for (;;) {
        Line *batch = takeAllFifo();
        if (batch) {
            commitBatch(batch);
            continue;
        }
        if (closing_.load(std::memory_order_acquire)) {
            // close() happens after the fleet joined: one final drain
            // catches anything pushed before the closing flag.
            commitBatch(takeAllFifo());
            if (tl)
                tl->markEnd();
            Timeline::setCurrent(nullptr);
            return;
        }
        std::unique_lock<std::mutex> lock(wake_mu_);
        writer_idle_.store(true, std::memory_order_release);
        if (head_.load(std::memory_order_acquire) == nullptr &&
            !closing_.load(std::memory_order_acquire))
            wake_cv_.wait_for(lock, interval);
        writer_idle_.store(false, std::memory_order_release);
    }
}

void
Journal::appendLine(const Json &j)
{
    if (!writer_.joinable())
        return; // not open: drop, same as the pre-group-commit journal
    // journal_push accounts the producer side (format + enqueue) on
    // whichever lane the calling thread owns.
    Timeline::Scope push_span(Timeline::current(),
                              SpanKind::journal_push);
    Line *n = new Line;
    n->text = j.dump();
    n->text += '\n';
    push(n);
}

void
Journal::writeHeader(Json meta)
{
    Json j = Json::object();
    j.set("type", Json("campaign"));
    j.set("schema_version", Json(journal_schema_version));
    j.set("hw_threads",
          Json(static_cast<std::uint64_t>(
              std::thread::hardware_concurrency())));
    for (const auto &[k, v] : meta.members())
        j.set(k, v);
    appendLine(j);
}

void
Journal::appendJson(Json line)
{
    if (line.isObject()) {
        const Json *type = line.find("type");
        if (type && type->isString() &&
            type->stringValue() == "cell") {
            if (const Json *k = line.find("key"))
                if (k->isString() &&
                    resume_done_.count(k->stringValue()) == 0)
                    seen_.insert(fnv1a64(k->stringValue()));
        }
    }
    appendLine(line);
}

bool
Journal::done(const std::string &key) const
{
    if (resume_done_.count(key) > 0)
        return true;
    return seen_.contains(fnv1a64(key));
}

std::size_t
Journal::doneCells() const
{
    return resume_done_.size() + seen_.size();
}

void
Journal::appendCell(const CellResult &r)
{
    // Mark the key done before the line is durable: done() answers
    // "has this run handled the key", the journal line answers "will a
    // resumed run re-handle it" -- the crash window between the two is
    // the (bounded) uncommitted tail of the current batch.
    if (resume_done_.count(r.key) == 0)
        seen_.insert(fnv1a64(r.key));

    Json j = cellResultToJson(r);
    j.set("type", Json("cell"));
    appendLine(j);
}

bool
Journal::recordFailure(const std::string &dedup, const std::string &kind,
                       const std::string &cell_key,
                       const std::string &file, std::size_t insns,
                       std::size_t orig_insns)
{
    bool first;
    std::string first_file;
    {
        std::lock_guard<std::mutex> lock(fail_mu_);
        JournalFailure &rec = failures_[dedup];
        first = rec.count == 0;
        ++rec.count;
        if (first) {
            rec.kind = kind;
            rec.file = file;
            rec.insns = insns;
        }
        first_file = rec.file;
    }

    Json j = Json::object();
    j.set("type", Json("failure"));
    j.set("dedup", Json(dedup));
    j.set("kind", Json(kind));
    j.set("cell", Json(cell_key));
    j.set("file", Json(first ? file : first_file));
    j.set("insns", Json(static_cast<std::uint64_t>(insns)));
    j.set("orig_insns", Json(static_cast<std::uint64_t>(orig_insns)));
    j.set("dup", Json(!first));
    appendLine(j);
    return first;
}

std::map<std::string, JournalFailure>
Journal::failures() const
{
    std::lock_guard<std::mutex> lock(fail_mu_);
    return failures_;
}

} // namespace wo

/**
 * @file
 * The paper's Figure 2: an example and a counter-example of DRF0, encoded
 * as idealized executions.
 *
 * The figure itself is a two-dimensional timing diagram; this encoding is a
 * faithful reconstruction that preserves exactly the properties the caption
 * states:
 *
 *  (a) six processors; every pair of conflicting accesses is ordered by
 *      happens-before through chains of synchronization operations ==> the
 *      execution obeys DRF0;
 *  (b) five processors; the accesses of P0 conflict with the write of P1
 *      but are not ordered with respect to it by happens-before, and the
 *      writes by P2 and P4 conflict but are unordered ==> the execution
 *      violates DRF0, with precisely those two families of races.
 */

#ifndef WO_HB_FIG2_HH
#define WO_HB_FIG2_HH

#include "execution/execution.hh"

namespace wo {
namespace fig2 {

/** Location numbering shared by both executions. */
inline constexpr Addr loc_x = 0; //!< data
inline constexpr Addr loc_y = 1; //!< data
inline constexpr Addr loc_z = 2; //!< data
inline constexpr Addr loc_a = 3; //!< synchronization
inline constexpr Addr loc_b = 4; //!< synchronization

/** Figure 2(a): the DRF0-obeying execution. */
Execution executionA();

/** Figure 2(b): the DRF0-violating execution. */
Execution executionB();

} // namespace fig2
} // namespace wo

#endif // WO_HB_FIG2_HH

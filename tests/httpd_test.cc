// Tests for the control-plane HTTP server (obs/httpd.hh): routing,
// error statuses, concurrent clients, bind failures, and the prompt
// clean shutdown the campaign integration depends on.

#include <arpa/inet.h>
#include <atomic>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "obs/httpd.hh"

namespace wo {
namespace {

/** Send one raw request to 127.0.0.1:@p port; return the whole
 *  response (the server closes after each response, so read-to-EOF
 *  frames it). */
std::string
rawRequest(std::uint16_t port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in sa = {};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) <
        0) {
        ::close(fd);
        return "";
    }
    ::send(fd, request.data(), request.size(), 0);
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

std::string
httpGet(std::uint16_t port, const std::string &path)
{
    return rawRequest(port, "GET " + path +
                                " HTTP/1.1\r\n"
                                "Host: x\r\nConnection: close\r\n\r\n");
}

TEST(Httpd, RoutesGetByExactPath)
{
    HttpServer srv;
    srv.handle("/healthz", [](const HttpRequest &) {
        HttpResponse r;
        r.body = "ok\n";
        return r;
    });
    srv.handle("/metrics", [](const HttpRequest &req) {
        HttpResponse r;
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        r.body = "wo_up 1\n";
        EXPECT_EQ(req.method, "GET");
        return r;
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();
    ASSERT_NE(srv.port(), 0); // ephemeral port resolved

    const std::string health = httpGet(srv.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos) << health;
    EXPECT_NE(health.find("ok\n"), std::string::npos);

    const std::string metrics = httpGet(srv.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.find("wo_up 1\n"), std::string::npos);
    EXPECT_GE(srv.requestsServed(), 2u);
}

TEST(Httpd, QueryStringIsStrippedAndPassedThrough)
{
    HttpServer srv;
    std::string seen_query;
    srv.handle("/progress", [&](const HttpRequest &req) {
        seen_query = req.query;
        HttpResponse r;
        r.body = "{}";
        return r;
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();
    const std::string resp = httpGet(srv.port(), "/progress?pretty=1");
    EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
    EXPECT_EQ(seen_query, "pretty=1");
}

TEST(Httpd, UnroutedPathIs404NonGetIs405)
{
    HttpServer srv;
    srv.handle("/only", [](const HttpRequest &) {
        return HttpResponse{};
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();
    EXPECT_NE(httpGet(srv.port(), "/nope").find("HTTP/1.1 404"),
              std::string::npos);
    const std::string post = rawRequest(
        srv.port(), "POST /only HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
}

TEST(Httpd, ConcurrentClientsAllGetTheirResponse)
{
    HttpServer srv;
    std::atomic<int> handled{0};
    srv.handle("/work", [&](const HttpRequest &) {
        handled.fetch_add(1);
        HttpResponse r;
        r.body = "done";
        return r;
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();

    constexpr int clients = 8, each = 5;
    std::atomic<int> good{0};
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c)
        pool.emplace_back([&] {
            for (int i = 0; i < each; ++i)
                if (httpGet(srv.port(), "/work").find("done") !=
                    std::string::npos)
                    good.fetch_add(1);
        });
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(good.load(), clients * each);
    EXPECT_EQ(handled.load(), clients * each);
}

TEST(Httpd, PortInUseFailsStartWithReason)
{
    HttpServer first;
    first.handle("/", [](const HttpRequest &) {
        return HttpResponse{};
    });
    ASSERT_TRUE(first.start()) << first.lastError();

    HttpServerCfg cfg;
    cfg.port = first.port();
    HttpServer second(cfg);
    EXPECT_FALSE(second.start());
    EXPECT_FALSE(second.lastError().empty());
    // The loser must not have torn down the winner.
    EXPECT_NE(httpGet(first.port(), "/").find("HTTP/1.1 200"),
              std::string::npos);
}

TEST(Httpd, StreamDeliversFramedEventsUntilGeneratorEnds)
{
    HttpServerCfg cfg;
    cfg.stream_interval_ms = 10;
    HttpServer srv(cfg);
    srv.stream("/events", [n = 0](std::string &chunk) mutable {
        if (n >= 3)
            return false;
        chunk = "event: tick\ndata: " + std::to_string(n++) + "\n\n";
        return true;
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();
    const std::string resp = httpGet(srv.port(), "/events");
    EXPECT_NE(resp.find("text/event-stream"), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("data: 0\n"), std::string::npos);
    EXPECT_NE(resp.find("data: 2\n"), std::string::npos);
}

TEST(Httpd, StopIsPromptWithAStreamingClientAttached)
{
    HttpServerCfg cfg;
    cfg.stream_interval_ms = 10;
    HttpServer srv(cfg);
    srv.stream("/events", [](std::string &chunk) {
        chunk.clear(); // nothing to say; keep the stream open
        return true;
    });
    ASSERT_TRUE(srv.start()) << srv.lastError();

    // A client parked on the infinite stream must not wedge stop():
    // this is the mid-campaign ^C path.
    std::thread client(
        [port = srv.port()] { httpGet(port, "/events"); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    srv.stop();  // joins acceptor + handlers; must return promptly
    client.join(); // stream ended => client read EOF
    srv.stop();    // idempotent
    SUCCEED();
}

} // namespace
} // namespace wo

file(REMOVE_RECURSE
  "CMakeFiles/wotool.dir/wotool.cc.o"
  "CMakeFiles/wotool.dir/wotool.cc.o.d"
  "wotool"
  "wotool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wotool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Parallel tree reduction as a do-all (phased) program: the classic
 * data-parallel kernel of the paper's conclusion ("parallelism only from
 * do-all loops").  log2(N) phases, each halving the live array by adding
 * pairs; barriers order the phases and no locks exist anywhere -- phase
 * disjointness alone makes the program data-race-free.
 *
 * The do-all discipline checker certifies the plan structurally, and the
 * run verifies the arithmetic on every ordering policy.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/doall.hh"
#include "program/builder.hh"
#include "sys/system.hh"

namespace wo {
namespace {

/**
 * Build the reduction by hand (the plan drives the access sets; the
 * arithmetic itself needs the value flow, so the program is emitted
 * directly rather than through buildPhased's synthetic stores).
 *
 * Data layout: cell[i] for i in [0, n); barrier support above.
 */
Program
reduction(ProcId threads, int n)
{
    const Addr lock = static_cast<Addr>(n);
    int phases = 0;
    for (int w = n; w > 1; w = (w + 1) / 2)
        ++phases;
    auto counter_of = [&](int ph) {
        return lock + 1 + static_cast<Addr>(2 * ph);
    };
    auto flag_of = [&](int ph) {
        return lock + 2 + static_cast<Addr>(2 * ph);
    };

    ProgramBuilder b("tree-reduction", threads);
    for (ProcId t = 0; t < threads; ++t) {
        auto &tb = b.thread(t);
        int width = n;
        for (int ph = 0; ph < phases; ++ph) {
            const int half = (width + 1) / 2;
            // Pairs are dealt round-robin to threads.
            for (int i = 0; i < half; ++i) {
                if (static_cast<ProcId>(i % threads) != t)
                    continue;
                const int lo = i, hi = i + half;
                if (hi < width) {
                    tb.load(0, static_cast<Addr>(lo));
                    tb.load(1, static_cast<Addr>(hi));
                    tb.add(0, 0, 1);
                    tb.storeReg(static_cast<Addr>(lo), 0);
                }
            }
            // Barrier.
            std::string skip = strprintf("skip%d", ph);
            std::string spin = strprintf("spin%d", ph);
            tb.acquire(lock);
            tb.load(4, counter_of(ph)).addi(4, 4, 1).storeReg(
                counter_of(ph), 4);
            tb.release(lock);
            tb.bne(4, static_cast<Value>(threads), skip);
            tb.syncStore(flag_of(ph), 1);
            tb.label(skip);
            tb.label(spin);
            tb.syncLoad(5, flag_of(ph));
            tb.beq(5, 0, spin);
            width = half;
        }
        tb.halt();
    }
    for (int i = 0; i < n; ++i)
        b.initLocation(static_cast<Addr>(i), i + 1); // cell i = i+1
    return b.build();
}

/** The matching access plan, for the structural certifier. */
DoallPlan
reductionPlan(ProcId threads, int n)
{
    DoallPlan plan;
    plan.name = "tree-reduction";
    plan.threads = threads;
    plan.data_locations = static_cast<Addr>(n);
    int width = n;
    while (width > 1) {
        const int half = (width + 1) / 2;
        std::vector<PhaseAccess> accesses(threads);
        for (int i = 0; i < half; ++i) {
            auto t = static_cast<ProcId>(i % threads);
            const int lo = i, hi = i + half;
            if (hi < width) {
                accesses[t].reads.insert(static_cast<Addr>(lo));
                accesses[t].reads.insert(static_cast<Addr>(hi));
                accesses[t].writes.insert(static_cast<Addr>(lo));
            }
        }
        plan.phases.push_back(std::move(accesses));
        width = half;
    }
    return plan;
}

void
runReduction()
{
    const ProcId threads = 4;
    const int n = 16;
    const Value expected = n * (n + 1) / 2; // 1 + 2 + ... + n

    auto plan = reductionPlan(threads, n);
    auto cert = checkDoallDiscipline(plan);
    std::printf("tree reduction of %d cells on %u threads "
                "(%zu phases)\n",
                n, threads, plan.phases.size());
    std::printf("do-all discipline: %s\n\n",
                cert.valid ? "VALID (phase access sets are disjoint)"
                           : "INVALID");

    Program p = reduction(threads, n);
    Table t({"policy", "exec time", "sum", "correct?"});
    for (OrderingPolicy pol :
         {OrderingPolicy::sc, OrderingPolicy::wo_def1,
          OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro}) {
        SystemCfg cfg;
        cfg.policy = pol;
        cfg.net.hop_latency = 10;
        System sys(p, cfg);
        auto r = sys.run();
        t.addRow({policyName(pol),
                  r.completed
                      ? strprintf("%llu",
                                  (unsigned long long)r.finish_tick)
                      : "DNF",
                  strprintf("%lld",
                            static_cast<long long>(r.outcome.memory[0])),
                  r.outcome.memory[0] == expected ? "yes" : "NO"});
    }
    t.print();
    std::printf("\nsum(1..%d) = %lld on every machine: the barriers are "
                "the only synchronization the kernel needs.\n",
                n, static_cast<long long>(expected));
}

} // namespace
} // namespace wo

int
main()
{
    wo::runReduction();
    return 0;
}

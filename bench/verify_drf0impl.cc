/**
 * @file
 * Experiment E5 -- the central theorem (Section 5 / Appendix B): the new
 * implementation is weakly ordered with respect to DRF0 under
 * Definition 2, i.e. it appears sequentially consistent to every DRF0
 * program -- while genuinely exceeding SC on racy programs (which is why
 * Definition 1 does not admit it, and why it is faster).
 *
 * Three parts:
 *  1. the Definition-2 contract table for the abstract Section-5 machine
 *     (base and read-only-sync-refined);
 *  2. the same theorem on the *timed* Section-5.3 machine: executions of
 *     random DRF0 programs are SC-explainable (Lemma 1's executable form);
 *  3. the divergence table: racy programs on which the machine produces
 *     outcomes SC cannot.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/conditions.hh"
#include "core/weak_ordering.hh"
#include "models/wo_drf0_model.hh"
#include "program/litmus.hh"
#include "program/workload.hh"
#include "sc/sc_checker.hh"
#include "sys/system.hh"

namespace wo {
namespace {

void
contractTable()
{
    std::vector<Program> suite;
    suite.push_back(litmus::fig1StoreBuffer());
    suite.push_back(litmus::messagePassing());
    suite.push_back(litmus::messagePassingSync());
    suite.push_back(litmus::fig3Scenario());
    suite.push_back(litmus::fig3ScenarioTestAndTas());
    suite.push_back(litmus::lockedCounter(2, 1));
    suite.push_back(litmus::barrier(2));
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Drf0WorkloadCfg cfg;
        cfg.seed = seed;
        cfg.procs = 2;
        cfg.sections = 1;
        cfg.ops_per_section = 2;
        cfg.test_and_tas = (seed % 2) == 0;
        suite.push_back(randomDrf0Program(cfg));
    }

    for (bool refined : {false, true}) {
        // The refined machine's contract is stated against the refined
        // synchronization model (read-only syncs publish no ordering).
        Drf0CheckerCfg sw;
        sw.flavor = refined ? HbRelation::SyncFlavor::weak_sync_read
                            : HbRelation::SyncFlavor::drf0;
        auto result = checkContract(
            [refined](const Program &p) {
                return WoDrf0Model(p, 4, refined);
            },
            suite, sw);
        std::printf("== E5.%d: Definition-2 contract for the Section-5 "
                    "machine (%s) ==\n",
                    refined ? 2 : 1,
                    refined ? "with read-only-sync refinement" : "base");
        Table t({"program", "obeys DRF0", "appears SC", "contract"});
        for (const auto &e : result.entries)
            t.addRow({e.program, e.obeys_model ? "yes" : "no",
                      e.appears_sc ? "yes" : "NO",
                      !e.relevant ? "n/a (racy)"
                                  : (e.appears_sc ? "ok" : "VIOLATED")});
        t.print();
        std::printf("contract %s\n\n", result.holds ? "HOLDS" : "VIOLATED");
    }
}

void
timedTheorem()
{
    std::printf("== E5.3: timed Section-5.3 machine -- SC-explainability "
                "of DRF0 executions, plus the Section-5.1 "
                "sufficient-conditions audit ==\n");
    Table t({"policy", "programs", "completed", "SC-explainable",
             "conditions 2-5 hold"});
    for (OrderingPolicy pol :
         {OrderingPolicy::wo_drf0, OrderingPolicy::wo_drf0_ro,
          OrderingPolicy::wo_def1, OrderingPolicy::sc}) {
        int total = 0, completed = 0, sc_ok = 0, cond_ok = 0;
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            Drf0WorkloadCfg wl;
            wl.seed = seed;
            wl.procs = 3;
            wl.regions = 2;
            wl.sections = 2;
            wl.ops_per_section = 3;
            wl.private_ops = 2;
            wl.test_and_tas = (seed % 2) == 0;
            Program p = randomDrf0Program(wl);
            SystemCfg cfg;
            cfg.policy = pol;
            cfg.net.hop_latency = 10;
            cfg.net.jitter = 5;
            cfg.net.seed = seed;
            System sys(p, cfg);
            auto r = sys.run();
            ++total;
            if (!r.completed)
                continue;
            ++completed;
            ScCheckerCfg sc_cfg;
            sc_cfg.expected_final = r.outcome.memory;
            if (checkSequentialConsistency(r.execution, sc_cfg).sc)
                ++sc_ok;
            if (checkSufficientConditions(r).ok)
                ++cond_ok;
        }
        t.addRow({policyName(pol), strprintf("%d", total),
                  strprintf("%d", completed), strprintf("%d", sc_ok),
                  strprintf("%d", cond_ok)});
    }
    t.print();
    std::printf("Every completed run of a DRF0 program must be "
                "SC-explainable under every policy.\n\n");
}

void
divergenceTable()
{
    std::printf("== E5.4: the machine is genuinely weaker than SC on "
                "racy programs ==\n");
    Table t({"racy program", "SC outcomes", "machine outcomes",
             "beyond SC"});
    std::vector<Program> racy;
    racy.push_back(litmus::fig1StoreBuffer());
    racy.push_back(litmus::messagePassing());
    racy.push_back(litmus::racyCounter(2, 1));
    for (const auto &p : racy) {
        WoDrf0Model m(p);
        auto c = conformsForProgram(m, p);
        t.addRow({p.name(), strprintf("%zu", c.sc.outcomes.size()),
                  strprintf("%zu", c.hw.outcomes.size()),
                  strprintf("%zu", c.extra.size())});
    }
    t.print();
}

} // namespace
} // namespace wo

int
main()
{
    wo::contractTable();
    wo::timedTheorem();
    wo::divergenceTable();
    return 0;
}

/**
 * @file
 * A litmus-test laboratory: run the classical litmus shapes across every
 * abstract memory model and print the forbidden/allowed matrix -- the kind
 * of table memory-model papers and verification tools (herd, diy) revolve
 * around, generated here from first principles by exhaustive exploration.
 */

#include <cstdio>
#include <functional>

#include "common/table.hh"
#include "models/explorer.hh"
#include "models/network_model.hh"
#include "models/sc_model.hh"
#include "models/stale_cache_model.hh"
#include "models/wo_def1_model.hh"
#include "models/wo_drf0_model.hh"
#include "models/write_buffer_model.hh"
#include "program/litmus.hh"

namespace wo {
namespace {

/** A litmus test with its interesting (SC-forbidden) predicate. */
struct LitmusCase
{
    Program prog;
    const char *predicate; //!< human description of the probed outcome
    std::function<bool(const Outcome &)> probe;
};

std::vector<LitmusCase>
cases()
{
    std::vector<LitmusCase> v;
    v.push_back({litmus::fig1StoreBuffer(), "P0:r0=0 & P1:r0=0 (SB)",
                 [](const Outcome &o) {
                     return o.regs[0][0] == 0 && o.regs[1][0] == 0;
                 }});
    v.push_back({litmus::messagePassing(), "P1 sees flag=1,data=0 (MP)",
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[1][1] == 0;
                 }});
    v.push_back({litmus::coherenceCoRR(), "P1 reads 1 then 0 (CoRR)",
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[1][1] == 0;
                 }});
    v.push_back({litmus::iriw(), "P2 and P3 disagree on order (IRIW)",
                 [](const Outcome &o) {
                     return o.regs[2][0] == 1 && o.regs[2][1] == 0 &&
                            o.regs[3][0] == 1 && o.regs[3][1] == 0;
                 }});
    v.push_back({litmus::loadBuffering(), "r0=1 & r1=1 (LB)",
                 [](const Outcome &o) {
                     return o.regs[0][0] == 1 && o.regs[1][1] == 1;
                 }});
    v.push_back({litmus::wrc(), "causality broken (WRC)",
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.regs[2][1] == 1 &&
                            o.regs[2][2] == 0;
                 }});
    v.push_back({litmus::twoPlusTwoW(), "x=1 & y=1 final (2+2W)",
                 [](const Outcome &o) {
                     return o.memory[0] == 1 && o.memory[1] == 1;
                 }});
    v.push_back({litmus::sShape(), "r0=1 & x=2 final (S)",
                 [](const Outcome &o) {
                     return o.regs[1][0] == 1 && o.memory[0] == 2;
                 }});
    return v;
}

template <typename Model>
const char *
allowed(const Model &m, const std::function<bool(const Outcome &)> &probe)
{
    auto r = exploreOutcomes(m);
    for (const auto &o : r.outcomes)
        if (probe(o))
            return "ALLOWED";
    return "forbidden";
}

void
matrix()
{
    Table t({"litmus / probed outcome", "SC", "write-buffer", "network",
             "stale-cache", "WO-Def1", "WO-DRF0"});
    for (const auto &c : cases()) {
        const Program &p = c.prog;
        t.addRow({strprintf("%s: %s", p.name().c_str(), c.predicate),
                  allowed(ScModel(p), c.probe),
                  allowed(WriteBufferModel(p), c.probe),
                  allowed(NetworkReorderModel(p), c.probe),
                  allowed(StaleCacheModel(p), c.probe),
                  allowed(WoDef1Model(p), c.probe),
                  allowed(WoDrf0Model(p), c.probe)});
    }
    std::printf("Litmus matrix: can each machine produce the probed "
                "(SC-forbidden) outcome?\n");
    t.print();
    std::printf("\nNotes: the write-buffer machine preserves its own "
                "store order, so MP stays forbidden there but SB is "
                "allowed; the pool-based weak machines relax write-write "
                "order and allow both.  All machines keep per-location "
                "coherence (CoRR forbidden).\n");
}

} // namespace
} // namespace wo

int
main()
{
    wo::matrix();
    return 0;
}

/**
 * @file
 * Steady-state allocation audit of the event kernel.
 *
 * The calendar queue recycles its bucket vectors and the callback/label
 * slots store captures inline, so after a warm-up phase that grows the
 * arena to its working-set size, scheduling and firing events must
 * perform zero heap allocations.  This binary replaces the global
 * operator new/delete with counting versions and measures the delta
 * across a controlled region -- which is why the audit lives in its own
 * test executable rather than inside event_test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "event/event_queue.hh"

namespace {

std::uint64_t g_allocs = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocs;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace wo {
namespace {

/**
 * A deterministic event mesh shaped like the simulator's traffic:
 * several self-rescheduling chains with mixed short/medium delays,
 * same-tick collisions, and an occasional burst past the wheel window.
 */
void
drive(EventQueue &q, std::uint64_t events)
{
    struct Chain
    {
        EventQueue *q;
        std::uint64_t *remaining;
        std::uint64_t rng;

        void
        operator()()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            // Mostly near-monotone small delays, occasionally a hop
            // beyond the bucket wheel to exercise the overflow heap.
            const Tick delay =
                (rng % 97 == 0) ? 5000 + rng % 3000 : rng % 24;
            q->schedule(delay, "chain", *this);
        }
    };

    static std::uint64_t budgets[8];
    for (int c = 0; c < 8; ++c) {
        budgets[c] = events / 8;
        Chain chain{&q, &budgets[c],
                    0x9e3779b97f4a7c15ULL * (c + 1)};
        q.schedule(static_cast<Tick>(c), "seed", chain);
    }
    q.runAll();
}

TEST(EventAllocation, SteadyStateSchedulesWithoutAllocating)
{
    EventQueue q;
    // Warm-up: give every bucket of the wheel (and the overflow heap)
    // more capacity than the steady workload's peak per-tick occupancy,
    // then run the workload once to size anything shape-dependent.
    for (Tick t = 1; t <= 8192; ++t)
        for (int i = 0; i < 24; ++i)
            q.schedule(t, "warm", [] {});
    q.runAll();
    drive(q, 40'000);

    const std::uint64_t allocs_before = g_allocs;
    const std::uint64_t heap_cb_before = EventCallback::heapFallbacks();
    drive(q, 200'000);
    const std::uint64_t allocs = g_allocs - allocs_before;
    const std::uint64_t heap_cbs =
        EventCallback::heapFallbacks() - heap_cb_before;

    EXPECT_EQ(allocs, 0u)
        << "steady-state event scheduling touched the heap";
    EXPECT_EQ(heap_cbs, 0u)
        << "a simulator-sized capture no longer fits the inline slot";
    EXPECT_GE(q.executed(), 240'000u);
}

} // namespace
} // namespace wo

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/execution_test[1]_include.cmake")
include("/root/repo/build/tests/hb_test[1]_include.cmake")
include("/root/repo/build/tests/sc_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/lemma1_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/lockset_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/dot_test[1]_include.cmake")
include("/root/repo/build/tests/conditions_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/doall_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
